#!/usr/bin/env python3
"""Post-optimisation sensitivity analysis of the cruise controller.

After OBC/CF configures the bus, inspect the result the way a system
integrator would: which activities sit closest to their deadlines, how
loaded each bus segment is, and what the static schedule looks like.
"""

from repro import analyse_system, cruise_controller, optimise_obc
from repro.analysis.sensitivity import bottlenecks, bus_load
from repro.viz import render_cycle, render_schedule


def main() -> None:
    system = cruise_controller()
    print(system.describe())

    result = optimise_obc(system, method="curvefit")
    print(result.describe())
    if not result.schedulable:
        print("no schedulable configuration found; nothing to analyse")
        return

    analysis = analyse_system(system, result.config)

    print("\n--- tightest activities (least slack first) ---")
    for entry in bottlenecks(system, analysis, count=8):
        bar = "#" * round(entry.usage * 30)
        print(
            f"  {entry.name:22s} R={entry.wcrt:>7} D={entry.deadline:>7} "
            f"slack={entry.slack:>7}  |{bar:<30}|"
        )

    load = bus_load(system, result.config)
    print("\n--- bus load ---")
    print(f"  static segment demand : {load.st_demand:6.1%}")
    print(f"  dynamic segment demand: {load.dyn_demand:6.1%}")
    print(f"  cycle share (static)  : {load.cycle_share_st:6.1%}")

    print("\n--- bus cycle ---")
    print(render_cycle(result.config))

    print("\n--- static schedule (first 40 ms) ---")
    print(render_schedule(analysis.table, system.nodes, until=40_000))


if __name__ == "__main__":
    main()
