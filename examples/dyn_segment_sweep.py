#!/usr/bin/env python3
"""Response time vs. DYN segment length (the trade-off behind Fig. 7).

Sweeps the dynamic segment length of a generated system and prints the
response-time curve of a few dynamic messages as ASCII art: very short
segments force many filled bus cycles, very long segments make every
wasted cycle expensive -- the U-shaped trade-off that motivates the
curve-fitting heuristic of Section 6.2.1.
"""

from repro import GeneratorConfig, generate_system
from repro.analysis import AnalysisContext
from repro.core import basic_configuration, dyn_segment_bounds
from repro.core.search import BusOptimisationOptions, sweep_lengths


def main() -> None:
    system = generate_system(GeneratorConfig(n_nodes=3, seed=300))
    print(system.describe())

    options = BusOptimisationOptions()
    template = basic_configuration(system, n_minislots=1_000, options=options)
    lo, hi = dyn_segment_bounds(system, template.st_bus, options)
    lengths = sweep_lengths(lo, hi, 24)

    dyn_names = sorted(m.name for m in system.application.dyn_messages())[:4]
    print(f"sweeping DYN length over [{lo}, {hi}] minislots\n")

    curves = {name: [] for name in dyn_names}
    costs = []
    # One warm AnalysisContext serves the whole sweep: the per-system
    # invariants and interference structure are computed once, not per
    # point (the incremental analysis engine the optimisers use too).
    context = AnalysisContext(system)
    for n in lengths:
        result = context.analyse(template.with_dyn_length(n))
        costs.append(result.cost_value)
        for name in dyn_names:
            curves[name].append(result.wcrt.get(name, 0))

    width = 48
    for name in dyn_names:
        values = curves[name]
        top = max(values) or 1
        print(f"message {name}: response time vs DYN length "
              f"(max {top} MT)")
        for n, v in zip(lengths, values):
            bar = "#" * max(1, round(v / top * width))
            print(f"  {n:>6} | {bar} {v}")
        print()

    best = min(zip(costs, lengths))
    print(f"best cost {best[0]:.0f} at DYN length {best[1]} minislots")


if __name__ == "__main__":
    main()
