#!/usr/bin/env python3
"""The paper's real-life case study (Section 7): a vehicle cruise controller.

54 tasks and 26 messages in 4 task graphs (2 time-triggered, 2
event-triggered) mapped over 5 nodes.  The paper reports that the BBC
configuration is unschedulable while both OBC variants find schedulable
configurations, OBC/CF within ~1 % of OBC/EE's cost at a fraction of the
run time.  This example reruns that comparison.
"""

import time

from repro import (
    SAOptions,
    cruise_controller,
    optimise_bbc,
    optimise_obc,
    optimise_sa,
    validate_system,
)
from repro.casestudy import shape_summary


def main() -> None:
    system = cruise_controller()
    print(system.describe())
    print("shape:", shape_summary(system))
    for node in system.nodes:
        print(f"  {node}: CPU utilisation {system.node_utilisation(node):5.1%}")
    for finding in validate_system(system):
        print("  ", finding)

    rows = []
    for label, runner in (
        ("BBC", lambda: optimise_bbc(system)),
        ("OBC/CF", lambda: optimise_obc(system, method="curvefit")),
        ("OBC/EE", lambda: optimise_obc(system, method="exhaustive")),
        ("SA", lambda: optimise_sa(system, sa_options=SAOptions(iterations=250))),
    ):
        t0 = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - t0
        rows.append((label, result, elapsed))
        print(f"\n{label}: {result.describe()}")

    print("\n=== summary (paper: BBC unschedulable, OBC/CF ~1.2% off OBC/EE, much faster) ===")
    print(f"{'algorithm':<8} {'schedulable':<12} {'cost':>14} {'analyses':>9} {'time [s]':>9}")
    for label, result, elapsed in rows:
        print(
            f"{label:<8} {str(result.schedulable):<12} {result.cost:>14.1f} "
            f"{result.evaluations:>9} {elapsed:>9.2f}"
        )

    ee = next(r for label, r, _ in rows if label == "OBC/EE")
    cf = next(r for label, r, _ in rows if label == "OBC/CF")
    if ee.schedulable and cf.schedulable and ee.cost != 0:
        gap = (cf.cost - ee.cost) / abs(ee.cost) * 100.0
        print(f"\nOBC/CF cost is {gap:+.2f}% relative to OBC/EE")


if __name__ == "__main__":
    main()
