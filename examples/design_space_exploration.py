#!/usr/bin/env python3
"""Inspect how the optimisers move through the design space.

Runs BBC, OBC/CF and SA on a generated system, dumps their search
traces (every evaluated configuration with its cost), and renders the
winning bus cycle as ASCII art.  Demonstrates the `trace` field of
:class:`repro.OptimisationResult` and the `repro.viz` helpers.
"""

from repro import (
    GeneratorConfig,
    SAOptions,
    generate_system,
    optimise_bbc,
    optimise_obc,
    optimise_sa,
)
from repro.viz import render_cycle


def show_trace(result, limit=12) -> None:
    print(f"\n{result.describe()}")
    exact = [p for p in result.trace if p.exact]
    estimates = [p for p in result.trace if not p.exact]
    print(f"  trace: {len(exact)} exact analyses, {len(estimates)} interpolations")
    print(f"  {'slots':>5} {'slot MT':>8} {'minislots':>10} {'cost':>14} {'sched':>6}")
    for point in exact[:limit]:
        print(
            f"  {point.n_static_slots:>5} {point.gd_static_slot:>8} "
            f"{point.n_minislots:>10} {point.cost:>14.1f} "
            f"{str(point.schedulable):>6}"
        )
    if len(exact) > limit:
        print(f"  ... {len(exact) - limit} more")


def main() -> None:
    system = generate_system(GeneratorConfig(n_nodes=2, seed=303))
    print(system.describe())

    bbc = optimise_bbc(system)
    show_trace(bbc)

    obc = optimise_obc(system, method="curvefit")
    show_trace(obc)

    sa = optimise_sa(system, sa_options=SAOptions(iterations=150))
    show_trace(sa)

    winner = min(
        (r for r in (bbc, obc, sa) if r.config is not None),
        key=lambda r: r.cost,
        default=None,
    )
    if winner is not None:
        print(f"\nwinner: {winner.algorithm}")
        print(render_cycle(winner.config))


if __name__ == "__main__":
    main()
