#!/usr/bin/env python3
"""Quickstart: model a tiny FlexRay system, optimise its bus, inspect it.

A two-node system: a time-triggered sensor->controller chain using the
static segment, and an event-triggered alarm path using the dynamic
segment.  We let the BBC and OBC heuristics derive bus configurations
and compare the resulting worst-case response times.
"""

from repro import (
    Application,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
    analyse_system,
    optimise_bbc,
    optimise_obc,
    simulate,
    validate_system,
)


def build_system() -> System:
    """Two nodes, one TT control graph, one ET alarm graph."""
    control = TaskGraph(
        name="control",
        period=10_000,  # 10 ms in macroticks (1 MT = 1 us)
        deadline=8_000,
        tasks=(
            Task("sense", wcet=400, node="sensor_ecu", policy=SchedulingPolicy.SCS),
            Task("actuate", wcet=700, node="actor_ecu", policy=SchedulingPolicy.SCS),
        ),
        messages=(
            Message(
                "m_setpoint",
                size=16,
                sender="sense",
                receivers=("actuate",),
                kind=MessageKind.ST,
            ),
        ),
    )
    alarm = TaskGraph(
        name="alarm",
        period=20_000,
        deadline=15_000,
        tasks=(
            Task(
                "detect",
                wcet=900,
                node="sensor_ecu",
                policy=SchedulingPolicy.FPS,
                priority=1,
            ),
            Task(
                "react",
                wcet=1_200,
                node="actor_ecu",
                policy=SchedulingPolicy.FPS,
                priority=1,
            ),
        ),
        messages=(
            Message(
                "m_alarm",
                size=8,
                sender="detect",
                receivers=("react",),
                kind=MessageKind.DYN,
            ),
        ),
    )
    return System(
        ("sensor_ecu", "actor_ecu"), Application("quickstart", (control, alarm))
    )


def main() -> None:
    system = build_system()
    print(system.describe())
    for finding in validate_system(system):
        print("  ", finding)

    print("\n--- Basic Bus Configuration (BBC, Fig. 5) ---")
    bbc = optimise_bbc(system)
    print(bbc.describe())

    print("\n--- Optimised Bus Configuration (OBC/CF, Fig. 6+8) ---")
    obc = optimise_obc(system, method="curvefit")
    print(obc.describe())

    best = obc.config if obc.schedulable else bbc.config
    if best is None:
        print("no feasible configuration found")
        return

    print(f"\nSelected configuration: {best.describe()}")
    result = analyse_system(system, best)
    print("\nWorst-case response times vs deadlines:")
    app = system.application
    for g in app.graphs:
        for name in g.topological_order():
            print(
                f"  {name:12s} R = {result.wcrt[name]:>6} MT   "
                f"D = {app.deadline_of(name):>6} MT"
            )

    print("\nSimulating one application cycle for cross-validation:")
    sim = simulate(system, best, table=result.table)
    for name, observed in sorted(sim.observed_wcrt.items()):
        bound = result.wcrt[name]
        print(f"  {name:12s} observed {observed:>6} <= bound {bound:>6}")
    assert all(
        sim.observed_wcrt[n] <= result.wcrt[n] for n in sim.observed_wcrt
    ), "simulation must never exceed the analytic bound"


if __name__ == "__main__":
    main()
