#!/usr/bin/env python3
"""Replay the paper's Fig. 4 on the simulator and print the bus trace.

Two nodes exchange three dynamic messages.  Three FrameID/segment
configurations are simulated; the printed traces show the FTDMA
mechanics: shared FrameIDs force a whole-cycle wait, unique FrameIDs
avoid it, and a longer dynamic segment lets everything through in the
first cycle.
"""

from repro import (
    Application,
    FlexRayConfig,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
    simulate,
)
from repro.flexray.events import EventKind


def build_system() -> System:
    graph = TaskGraph(
        name="fig4",
        period=200,
        deadline=200,
        tasks=(
            Task("s1", wcet=1, node="N1", policy=SchedulingPolicy.SCS),
            Task("s2", wcet=1, node="N2", policy=SchedulingPolicy.SCS),
            Task("d1", wcet=1, node="N2", policy=SchedulingPolicy.FPS, priority=1),
            Task("d2", wcet=1, node="N1", policy=SchedulingPolicy.FPS, priority=1),
            Task("d3", wcet=1, node="N2", policy=SchedulingPolicy.FPS, priority=2),
        ),
        messages=(
            Message("m1", size=9, sender="s1", receivers=("d1",), priority=0,
                    kind=MessageKind.DYN),
            Message("m2", size=5, sender="s2", receivers=("d2",), priority=0,
                    kind=MessageKind.DYN),
            Message("m3", size=3, sender="s1", receivers=("d3",), priority=1,
                    kind=MessageKind.DYN),
        ),
    )
    return System(("N1", "N2"), Application("fig4", (graph,)))


SCENARIOS = (
    ("a) m1/m3 share FrameID 1, 13 minislots", {"m1": 1, "m2": 2, "m3": 1}, 13),
    ("b) unique FrameIDs, 13 minislots", {"m1": 1, "m2": 2, "m3": 3}, 13),
    ("c) unique FrameIDs, 20 minislots", {"m1": 1, "m2": 2, "m3": 3}, 20),
)


def main() -> None:
    system = build_system()
    for title, frame_ids, minislots in SCENARIOS:
        config = FlexRayConfig(
            static_slots=("N1", "N2"),
            gd_static_slot=8,
            n_minislots=minislots,
            frame_ids=frame_ids,
        )
        result = simulate(system, config)
        print(f"--- {title} (gdCycle = {config.gd_cycle} MT) ---")
        for event in result.trace:
            if event.kind in (EventKind.DYN_TX_START, EventKind.MSG_ARRIVAL):
                print("   ", event)
        for name in ("m1", "m2", "m3"):
            print(f"    R({name}) = {result.observed_wcrt[name]} MT")
        print()


if __name__ == "__main__":
    main()
