#!/usr/bin/env python3
"""Doctest-style tour of the public analysis/optimisation API.

Every snippet below is a doctest: ``python examples/api_tour.py`` (or
the tier-1 example smoke test) executes them with ``doctest`` and fails
on any drift between the documented and the actual behaviour.  The tour
covers the three layers a user touches, with their determinism
guarantees:

1. one-off analysis -- ``repro.analysis.analyse_system``;
2. repeated analysis -- ``repro.analysis.AnalysisContext`` (the
   incremental engine: bit-identical to one-off, just faster);
3. backends -- ``AnalysisOptions.backend`` (the batched numpy array
   engine behind the ``repro[numpy]`` extra and the compiled native
   engine behind ``repro[native]``, both bit-identical to the Python
   oracle);
4. optimisation -- the strategy registry (``repro.core.optimise``
   dispatches any registered strategy by name) on the unified search
   runtime, serial or parallel, chunked or not, always byte-identical
   at a fixed seed;
5. campaigns -- declarative (system x strategy) job matrices with
   JSON-persisted results and resumable checkpoints;
6. fault injection -- seeded channel fault models with
   retransmission-aware simulation, and the k-error analysis bound
   (``AnalysisOptions.fault_hypothesis``) that stays above every
   faulty run;
7. the service layer -- ``python -m repro serve`` puts the same stack
   behind a JSON/HTTP front (``repro.service``) with a warm evaluator
   pool, admission control and restart-surviving campaigns.

>>> from repro.synth import paper_suite
>>> from repro.analysis import AnalysisContext, AnalysisOptions, analyse_system
>>> from repro.core import optimise, optimise_obc
>>> from repro.core.bbc import basic_configuration
>>> from repro.core.search import (
...     BusOptimisationOptions,
...     dyn_segment_bounds,
...     min_static_slot,
... )

A deterministic workload: suites are regenerated from ``(class, count,
seed)`` alone, so every run of this file sees the same system.

>>> system = paper_suite(n_nodes=2, count=1, seed=23)[0]
>>> len(system.nodes)
2

**One-off analysis.**  ``dyn_segment_bounds`` gives the legal DYN
segment lengths for a static-segment size, ``basic_configuration``
derives the BBC bus setup for one such length, and ``analyse_system``
schedules the static segment and runs the holistic fix point.

>>> options = BusOptimisationOptions()
>>> st_bus = len(system.st_sender_nodes()) * min_static_slot(system, options)
>>> lo, hi = dyn_segment_bounds(system, st_bus, options)
>>> lo <= hi
True
>>> config = basic_configuration(system, n_minislots=lo, options=options)
>>> result = analyse_system(system, config)
>>> result.feasible
True
>>> sorted(result.wcrt) == sorted(
...     a.name for g in system.application.graphs
...     for a in (*g.tasks, *g.messages)
... )
True

**Repeated analysis.**  An ``AnalysisContext`` shares per-system
invariants, cached schedule artifacts and certified fix-point warm
starts across calls.  The default ``AnalysisOptions.warm_start ==
"certified"`` mode is locked bit-identical to the fully cold
``"off"`` oracle (see docs/ANALYSIS.md), so a warm context is a pure
speedup:

>>> AnalysisOptions().warm_start
'certified'
>>> warm = AnalysisContext(system)
>>> cold = AnalysisContext(system, AnalysisOptions(warm_start="off"))
>>> sweep = [config.with_dyn_length(lo + k) for k in (0, 4, 8)]
>>> [warm.analyse(c).wcrt for c in sweep] == [
...     cold.analyse(c).wcrt for c in sweep
... ]
True

**Dominance tables.**  The FPS maximisation elides *pattern-level
dominated* critical instants: instants whose delivered-slack function
another instant dominates pointwise can never produce the worst busy
window (docs/ANALYSIS.md has the proof).  The tables are a property of
the ``NodeAvailability`` pattern alone -- built lazily, cached on the
pattern, togglable per analysis via ``AnalysisOptions.dominance``
(``"on"`` default, ``"off"`` oracle, ``"verify"`` cross-check):

>>> AnalysisOptions().dominance
'on'
>>> from repro.analysis import NodeAvailability
>>> av = NodeAvailability([(0, 4), (6, 8), (9, 10)], period=12)
>>> dom = av.dominance_tables()
>>> instants = av.critical_instants()
>>> [instants[i] for i in dom.maximal_order]  # longest block survives
[0]
>>> sorted(dom.maximal_order + dom.dominated_order) == list(
...     range(len(instants))
... )
True
>>> all(dom.witness[i] in dom.maximal_order for i in dom.dominated_order)
True

**Evaluation backends.**  ``AnalysisOptions.backend`` selects the
fix-point engine: ``"python"`` (default), ``"numpy"`` -- the batched
array backend, which lowers the system's invariants into packed int64
arrays once and advances a whole batch of busy-window fix points in
lockstep via ``AnalysisContext.analyse_batch`` -- ``"native"`` -- the
compiled backend, same lowering but with each lane's entire fix point
running inside the ``repro._native`` C extension -- or ``"verify"``,
which runs the oracle plus every available accelerated backend and
counts divergences (contractually zero).  Results are bit-identical
across backends; numpy is the optional ``repro[numpy]`` extra and the
extension the ``repro[native]`` extra, so this snippet climbs to the
best rung actually installed and degrades to the Python backend when
neither is:

>>> AnalysisOptions().backend
'python'
>>> from repro.analysis.backend import native_or_none, numpy_or_none
>>> have_numpy = numpy_or_none() is not None
>>> have_native = have_numpy and native_or_none() is not None
>>> backend = "native" if have_native else "numpy" if have_numpy else "python"
>>> batched = AnalysisContext(system, AnalysisOptions(backend=backend))
>>> [r.wcrt for r in batched.analyse_batch(sweep)] == [
...     warm.analyse(c).wcrt for c in sweep
... ]
True
>>> batched.backend_divergences
0

**Optimisation.**  Every strategy -- BBC, OBC/CF, OBC/EE, SA, GA --
is a proposal generator executed by the unified search runtime
(``repro.core.runtime.SearchDriver``): the driver owns candidate
evaluation (batched through the ``Evaluator``'s warm context, LRU
result cache and opt-in process pool), budgets, trace recording and
deterministic best-selection.  Strategies dispatch by registry name:

>>> from repro.core import available_strategies
>>> [n for n in available_strategies()
...  if n in ("bbc", "obc-cf", "obc-ee", "sa", "ga")]
['bbc', 'ga', 'obc-cf', 'obc-ee', 'sa']
>>> small = BusOptimisationOptions(
...     ee_max_dyn_points=24, max_extra_static_slots=1, max_slot_size_steps=1
... )
>>> from repro.core import StrategyOptions
>>> by_name = optimise(system, "obc-ee", StrategyOptions(bus=small))
>>> direct = optimise_obc(system, small, method="exhaustive")
>>> by_name.trace == direct.trace
True

Fixed options give byte-identical outcomes however the work is
scheduled -- here: the chunked OBC outer loop must find the same
optimum as the serial one.

>>> import dataclasses
>>> chunked = optimise_obc(
...     system,
...     dataclasses.replace(small, obc_chunk_size=3),
...     method="exhaustive",
... )
>>> direct.best.config.cache_key() == chunked.best.config.cache_key()
True
>>> direct.best.cost.value == chunked.best.cost.value
True

``OptimisationResult`` carries the audit trail the paper's experiment
tables are built from: exact analysis count, cache hits and the search
trace.

>>> direct.evaluations > 0
True
>>> len(direct.trace) == direct.evaluations
True

**Campaigns.**  A campaign is a (system x strategy x options) job
matrix run through the registry, with every job's full result
persisted as schema-versioned JSON when a checkpoint directory is
given -- re-running the same campaign resumes from those files.

>>> import tempfile
>>> from repro.core import campaign_matrix, run_campaign
>>> systems = {"s0": system}
>>> jobs = campaign_matrix(
...     systems, ["bbc", "obc-cf"], bus=small
... )
>>> [j.job_id for j in jobs]
['s0__bbc', 's0__obc-cf']
>>> with tempfile.TemporaryDirectory() as ckpt:
...     cold = run_campaign(systems, jobs, checkpoint_dir=ckpt)
...     warm = run_campaign(systems, jobs, checkpoint_dir=ckpt)
>>> len(cold.executed), len(cold.resumed)
(2, 0)
>>> len(warm.executed), len(warm.resumed)
(0, 2)
>>> warm.result_for("s0", "bbc").trace == cold.result_for("s0", "bbc").trace
True

**Fault injection.**  ``SimulationOptions.faults`` takes a seeded
channel fault model; corrupted frames are retransmitted (ST in the
next cycle, DYN by re-arbitration) and counted.  A rate-0 model is
byte-identical to a clean run, and analysing under
``AnalysisOptions.fault_hypothesis=k`` upper-bounds every simulated
response time of a run with at most ``k`` errors:

>>> from repro.flexray.faults import IidFaults
>>> from repro.flexray.simulator import SimulationOptions, simulate
>>> clean = simulate(system, config)
>>> zero = SimulationOptions(faults=IidFaults(rate=0.0, seed=1))
>>> simulate(system, config, zero).response_times == clean.response_times
True
>>> noisy = SimulationOptions(faults=IidFaults(rate=0.3, seed=1))
>>> faulty = simulate(system, config, noisy)
>>> k = faulty.total_retransmissions
>>> k > 0
True
>>> bound = analyse_system(
...     system, config, AnalysisOptions(fault_hypothesis=k)
... )
>>> all(
...     r <= bound.wcrt[name]
...     for (name, _instance), r in faulty.response_times.items()
... )
True

**Analysis as a service.**  ``python -m repro serve`` exposes the same
stack over JSON/HTTP (see ``docs/ARCHITECTURE.md``, "The service
layer"): ``POST /analyse`` answers from a warm evaluator pool keyed by
system fingerprint, ``POST /campaigns`` runs checkpoint-backed job
matrices that survive server restarts.  The client side is stdlib
urllib -- the wire documents are exactly the
``repro.io.serialization`` schemas:

>>> import json, tempfile, threading, urllib.request
>>> from repro.io.serialization import config_to_dict, system_to_dict
>>> from repro.service import ServiceConfig, create_server
>>> server = create_server(ServiceConfig(
...     port=0, state_dir=tempfile.mkdtemp(prefix="repro-service-")
... ))
>>> threading.Thread(target=server.serve_forever, daemon=True).start()
>>> url = "http://127.0.0.1:%d/analyse" % server.server_address[1]
>>> body = json.dumps({
...     "kind": "analyse_request",
...     "system": system_to_dict(system),
...     "config": config_to_dict(config),
... }).encode("utf-8")
>>> def analyse_remotely():
...     with urllib.request.urlopen(urllib.request.Request(
...         url, data=body, headers={"Content-Type": "application/json"}
...     )) as response:
...         return json.loads(response.read())
>>> cold = analyse_remotely()
>>> cold["result"]["schedulable"] == result.schedulable
True
>>> cold["service"]["pool_hit"]
False
>>> warm = analyse_remotely()  # same fingerprint: warm pool + cache
>>> warm["service"]["pool_hit"], warm["service"]["evaluations"]
(True, 0)
>>> warm["result"] == cold["result"]
True
>>> server.shutdown(); server.server_close()
"""

import doctest
import sys


def main() -> int:
    failures, tests = doctest.testmod(
        sys.modules[__name__], verbose=False, report=True
    )
    print(f"api_tour: {tests} doctests, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
