"""Additional OBC unit coverage: static-structure exploration order."""

import pytest

from repro.core import BusOptimisationOptions, optimise_obc
from repro.core.obc import _template
from repro.flexray import params

from tests.util import fig3_system, fig4_system


class TestTemplateConstruction:
    def test_valid_template(self):
        options = BusOptimisationOptions()
        cfg = _template(("N1", "N2"), 8, 10, {}, options)
        assert cfg is not None
        assert cfg.gd_cycle == 26

    def test_oversized_static_returns_none(self):
        options = BusOptimisationOptions()
        # 30 slots x 600 MT = 18 ms > the 16 ms protocol cap.
        cfg = _template(("N1",) * 30, 600, 10, {}, options)
        assert cfg is None


class TestExplorationBehaviour:
    def test_stop_when_schedulable_limits_work(self):
        fast = optimise_obc(
            fig4_system(),
            BusOptimisationOptions(stop_when_schedulable=True),
            method="curvefit",
        )
        thorough = optimise_obc(
            fig4_system(),
            BusOptimisationOptions(stop_when_schedulable=False),
            method="curvefit",
        )
        assert fast.schedulable and thorough.schedulable
        assert fast.evaluations <= thorough.evaluations
        # More exploration can only improve (or match) the cost.
        assert thorough.cost <= fast.cost

    def test_static_structure_bounds_respected(self):
        options = BusOptimisationOptions(
            max_extra_static_slots=0, max_slot_size_steps=0
        )
        result = optimise_obc(fig3_system(), options, method="exhaustive")
        assert result.best is not None
        cfg = result.config
        assert cfg.n_static_slots == 2  # exactly the per-sender minimum
        assert cfg.gd_static_slot == 4  # exactly the largest-frame minimum

    def test_larger_exploration_never_worse(self):
        narrow = optimise_obc(
            fig3_system(),
            BusOptimisationOptions(
                max_extra_static_slots=0,
                max_slot_size_steps=0,
                stop_when_schedulable=False,
            ),
        )
        wide = optimise_obc(
            fig3_system(),
            BusOptimisationOptions(
                max_extra_static_slots=2,
                max_slot_size_steps=2,
                stop_when_schedulable=False,
            ),
        )
        assert wide.cost <= narrow.cost
