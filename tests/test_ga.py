"""Tests for the GA baseline optimiser (related work [5])."""

from repro.core import GAOptions, optimise_ga

from tests.util import fig3_system, fig4_system


class TestGA:
    def test_finds_schedulable_config_on_fig4(self):
        result = optimise_ga(
            fig4_system(), ga_options=GAOptions(population=14, generations=14, seed=3)
        )
        assert result.algorithm == "GA"
        assert result.best is not None
        assert result.schedulable

    def test_deterministic_for_seed(self):
        opts = GAOptions(population=8, generations=5, seed=11)
        a = optimise_ga(fig4_system(), ga_options=opts)
        b = optimise_ga(fig4_system(), ga_options=opts)
        assert a.cost == b.cost
        assert a.evaluations == b.evaluations

    def test_static_only_system(self):
        result = optimise_ga(
            fig3_system(), ga_options=GAOptions(population=6, generations=4)
        )
        assert result.schedulable

    def test_evaluations_bounded_by_budget(self):
        opts = GAOptions(population=6, generations=4, seed=2)
        result = optimise_ga(fig4_system(), ga_options=opts)
        # At most population * (generations + 1) distinct analyses (the
        # evaluator caches repeats).
        assert result.evaluations <= 6 * 5

    def test_respects_time_budget(self):
        opts = GAOptions(population=20, generations=500, seed=2, max_seconds=0.3)
        result = optimise_ga(fig4_system(), ga_options=opts)
        assert result.elapsed_seconds < 3.0
