"""Unit tests for SCS placement candidates (FPS-aware spreading)."""

from repro.analysis.schedule_table import ScheduleTable
from repro.analysis.scheduler import ScheduleOptions, _placement_candidates
from repro.core.config import FlexRayConfig
from repro.model.jobs import Job
from repro.model import Application, System, TaskGraph

from tests.util import scs_task


def make_job(wcet=10, period=100, deadline=100, release=0):
    task = scs_task("t", wcet=wcet, node="N1")
    graph = TaskGraph(
        name="g", period=period, deadline=deadline, tasks=(task,)
    )
    Application("app", (graph,))
    return Job(
        activity=task,
        graph=graph,
        instance=0,
        release=release,
        abs_deadline=deadline,
    )


def make_table(horizon=100):
    cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=4, n_minislots=0)
    return ScheduleTable(cfg, horizon=horizon)


class TestPlacementCandidates:
    def test_single_candidate_without_fps_awareness_budget(self):
        job = make_job()
        table = make_table()
        out = _placement_candidates(table, job, 0, ScheduleOptions(fps_candidates=1))
        assert out == [0]

    def test_candidates_spread_over_slack_window(self):
        job = make_job(wcet=10, deadline=100)
        table = make_table()
        out = _placement_candidates(table, job, 0, ScheduleOptions(fps_candidates=4))
        assert out[0] == 0
        assert out[-1] == 90  # latest start meeting the deadline
        assert len(out) == 4

    def test_candidates_respect_busy_intervals(self):
        job = make_job(wcet=10, deadline=100)
        table = make_table()
        table.add_task("x#0", scs_task("x", wcet=20, node="N1"), 0)
        out = _placement_candidates(table, job, 0, ScheduleOptions(fps_candidates=3))
        assert all(start >= 20 for start in out)

    def test_no_negative_window(self):
        # Deadline already passed relative to asap: single candidate at asap.
        job = make_job(wcet=10, deadline=100)
        table = make_table(horizon=400)
        out = _placement_candidates(
            table, job, 250, ScheduleOptions(fps_candidates=4)
        )
        assert out == [250]

    def test_deduplicated_and_sorted(self):
        job = make_job(wcet=50, deadline=60)  # tiny slack window
        table = make_table()
        out = _placement_candidates(table, job, 0, ScheduleOptions(fps_candidates=4))
        assert out == sorted(set(out))
