"""Unit tests for the DYN message response-time analysis (Section 5.1)."""

import pytest

from repro.analysis.dyn import (
    dyn_message_busy_window,
    dyn_message_wcrt,
    interference_sets,
    sigma,
)
from repro.core.config import FlexRayConfig
from repro.errors import AnalysisError

from tests.util import fig4_system


def make_config(frame_ids, n_minislots=13):
    return FlexRayConfig(
        static_slots=("N1", "N2"),
        gd_static_slot=8,
        n_minislots=n_minislots,
        frame_ids=frame_ids,
    )


PERIODS = lambda name: 200  # noqa: E731 - all fig4 activities have period 200
CAP = 100_000


class TestInterferenceSets:
    def test_shared_frame_id_scenario(self):
        # Fig. 4 Table A: m1 -> 1, m2 -> 2, m3 -> 1.
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 1})
        app = sys_.application
        s3 = interference_sets(app.message("m3"), cfg, sys_)
        assert [m.name for m in s3.hp] == ["m1"]
        assert s3.lf == () and s3.lower_slots == 0
        s2 = interference_sets(app.message("m2"), cfg, sys_)
        assert {m.name for m in s2.lf} == {"m1", "m3"}
        assert s2.hp == () and s2.lower_slots == 1

    def test_unique_frame_id_scenario(self):
        # Fig. 4 Table B: m1 -> 1, m2 -> 2, m3 -> 3.
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        app = sys_.application
        s3 = interference_sets(app.message("m3"), cfg, sys_)
        assert s3.hp == ()
        assert {m.name for m in s3.lf} == {"m1", "m2"}
        assert s3.lower_slots == 2

    def test_higher_priority_is_smaller_value(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 1})
        app = sys_.application
        s1 = interference_sets(app.message("m1"), cfg, sys_)
        assert s1.hp == ()  # m3 has a larger priority value -> lower priority

    def test_rejects_st_message(self):
        from tests.util import fig3_system

        sys_ = fig3_system()
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=4
        )
        with pytest.raises(AnalysisError):
            interference_sets(sys_.application.message("m1"), cfg, sys_)


class TestSigma:
    def test_first_slot(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 1})
        # gdCycle 29, STbus 16, f=1 -> sigma = 13 (whole DYN segment)
        assert sigma(sys_.application.message("m1"), cfg) == 13

    def test_later_slot_smaller_sigma(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        assert sigma(sys_.application.message("m3"), cfg) == 11


class TestBusyWindow:
    def test_no_interference_first_slot(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        m1 = sys_.application.message("m1")
        r = dyn_message_busy_window(m1, cfg, sys_, {}, PERIODS, CAP)
        # sigma (13) + 0 filled cycles + STbus (16)
        assert r.converged and r.value == 29

    def test_hp_message_costs_one_cycle(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 1})
        m3 = sys_.application.message("m3")
        r = dyn_message_busy_window(m3, cfg, sys_, {}, PERIODS, CAP)
        # sigma (13) + 1 cycle for m1 (29) + STbus (16)
        assert r.converged and r.value == 58

    def test_lf_traffic_fills_cycles(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        m3 = sys_.application.message("m3")
        r = dyn_message_busy_window(m3, cfg, sys_, {}, PERIODS, CAP)
        # pLatestTx(N1)=5, lam=4, theta=3; instances: m1 (a=8), m2 (a=4)
        # -> fills = min(2, 12//3) = 2, leftover 6, consumed min(4, 2+6)=4
        # w = 11 + 2*29 + 16 + 4 = 89
        assert r.converged and r.value == 89

    def test_wcrt_adds_jitter_and_ct(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        m3 = sys_.application.message("m3")
        base = dyn_message_wcrt(m3, cfg, sys_, {}, PERIODS, CAP)
        assert base.value == 89 + 3
        jit = dyn_message_wcrt(m3, cfg, sys_, {"m3": 10}, PERIODS, CAP)
        assert jit.value == 89 + 3 + 10

    def test_longer_dyn_segment_reduces_lf_fills(self):
        sys_ = fig4_system()
        m3 = sys_.application.message("m3")
        short = make_config({"m1": 1, "m2": 2, "m3": 3}, n_minislots=13)
        long_ = make_config({"m1": 1, "m2": 2, "m3": 3}, n_minislots=30)
        r_short = dyn_message_busy_window(m3, short, sys_, {}, PERIODS, CAP)
        r_long = dyn_message_busy_window(m3, long_, sys_, {}, PERIODS, CAP)
        # Larger segment -> theta grows -> fewer filled cycles.
        assert r_long.converged
        # short: 2 filled cycles of 29; long: 0 filled cycles.
        assert r_long.value < r_short.value

    def test_infeasible_frame_id_hits_cap(self):
        sys_ = fig4_system()
        # pLatestTx(N1) = 13-9+1 = 5; give m3 fid 6 (> pLatestTx).
        cfg = make_config({"m1": 1, "m2": 2, "m3": 6})
        m3 = sys_.application.message("m3")
        r = dyn_message_busy_window(m3, cfg, sys_, {}, PERIODS, CAP)
        assert r.value == CAP and not r.converged

    def test_dense_periods_diverge_to_cap(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        m3 = sys_.application.message("m3")
        # hp/lf activations every 30 MT: the bus cannot keep up.
        r = dyn_message_busy_window(m3, cfg, sys_, {}, lambda n: 30, CAP)
        assert not r.converged and r.value == CAP

    def test_jitter_of_interferer_adds_activations(self):
        sys_ = fig4_system()
        cfg = make_config({"m1": 1, "m2": 2, "m3": 3})
        m3 = sys_.application.message("m3")
        no_jit = dyn_message_busy_window(m3, cfg, sys_, {}, PERIODS, CAP)
        with_jit = dyn_message_busy_window(
            m3, cfg, sys_, {"m1": 150}, PERIODS, CAP
        )
        assert with_jit.value >= no_jit.value
