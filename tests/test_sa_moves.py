"""Unit tests for the SA neighbourhood moves."""

import random

import pytest

from repro.core.sa import (
    _move_add_slot,
    _move_dyn_length,
    _move_dyn_scale,
    _move_relocate_frame_id,
    _move_remove_slot,
    _move_reassign_slot,
    _move_slot_size,
    _move_swap_frame_ids,
    _neighbour,
)
from repro.core.search import BusOptimisationOptions, dyn_segment_bounds
from repro.core.config import FlexRayConfig

from tests.util import fig3_system, fig4_system


OPTIONS = BusOptimisationOptions()


def fig3_config(slots=("N1", "N2"), size=4):
    return FlexRayConfig(static_slots=slots, gd_static_slot=size, n_minislots=0)


def fig4_config(n_minislots=20):
    return FlexRayConfig(
        static_slots=(),
        gd_static_slot=0,
        n_minislots=n_minislots,
        frame_ids={"m1": 1, "m2": 2, "m3": 3},
    )


class TestDynMoves:
    def test_dyn_length_stays_in_bounds(self):
        system = fig4_system()
        cfg = fig4_config()
        lo, hi = dyn_segment_bounds(system, cfg.st_bus, OPTIONS)
        rng = random.Random(1)
        for _ in range(50):
            out = _move_dyn_length(system, cfg, OPTIONS, rng)
            assert out is not None
            assert lo <= out.n_minislots <= hi

    def test_dyn_scale_traverses_quickly(self):
        system = fig4_system()
        cfg = fig4_config(n_minislots=4000)
        rng = random.Random(2)
        seen = {cfg.n_minislots}
        for _ in range(20):
            cfg2 = _move_dyn_scale(system, cfg, OPTIONS, rng)
            seen.add(cfg2.n_minislots)
        assert min(seen) <= 2000 or max(seen) >= 7900

    def test_no_dyn_moves_without_st_change(self):
        system = fig4_system()
        cfg = fig4_config()
        rng = random.Random(3)
        out = _move_dyn_length(system, cfg, OPTIONS, rng)
        assert out.frame_ids == cfg.frame_ids


class TestStaticMoves:
    def test_slot_size_respects_floor(self):
        system = fig3_system()
        cfg = fig3_config(size=4)  # the minimum (largest ST frame)
        rng = random.Random(4)
        for _ in range(30):
            out = _move_slot_size(system, cfg, OPTIONS, rng)
            assert out.gd_static_slot >= 4

    def test_slot_size_noop_without_static(self):
        system = fig4_system()
        assert _move_slot_size(system, fig4_config(), OPTIONS, random.Random(5)) is None

    def test_add_slot_grows(self):
        system = fig3_system()
        out = _move_add_slot(system, fig3_config(), OPTIONS, random.Random(6))
        assert out.n_static_slots == 3

    def test_remove_slot_keeps_senders_covered(self):
        system = fig3_system()
        cfg = fig3_config(slots=("N1", "N2", "N2"))
        out = _move_remove_slot(system, cfg, OPTIONS, random.Random(7))
        assert out is not None
        assert set(out.static_slots) == {"N1", "N2"}

    def test_remove_slot_refuses_minimum(self):
        system = fig3_system()
        assert (
            _move_remove_slot(system, fig3_config(), OPTIONS, random.Random(8))
            is None
        )

    def test_reassign_only_duplicated_slots(self):
        system = fig3_system()
        # Only single slots per node: nothing reassignable.
        assert (
            _move_reassign_slot(system, fig3_config(), OPTIONS, random.Random(9))
            is None
        )
        cfg = fig3_config(slots=("N1", "N2", "N2"))
        out = _move_reassign_slot(system, cfg, OPTIONS, random.Random(9))
        assert out is not None
        assert set(out.static_slots) >= {"N1", "N2"}


class TestFrameIdMoves:
    def test_swap_preserves_id_multiset(self):
        system = fig4_system()
        cfg = fig4_config()
        out = _move_swap_frame_ids(system, cfg, OPTIONS, random.Random(10))
        assert sorted(out.frame_ids.values()) == [1, 2, 3]
        assert out.frame_ids != cfg.frame_ids

    def test_relocate_moves_to_unused_id(self):
        system = fig4_system()
        cfg = fig4_config()
        out = _move_relocate_frame_id(system, cfg, OPTIONS, random.Random(11))
        assert out is not None
        assert len(set(out.frame_ids.values())) == 3

    def test_swap_noop_with_single_message(self):
        system = fig4_system()
        cfg = FlexRayConfig(
            static_slots=(), gd_static_slot=0, n_minislots=20,
            frame_ids={"m1": 1},
        )
        assert _move_swap_frame_ids(system, cfg, OPTIONS, random.Random(12)) is None


class TestNeighbourDispatcher:
    def test_neighbour_returns_valid_or_none(self):
        system = fig4_system()
        cfg = fig4_config()
        rng = random.Random(13)
        produced = 0
        for _ in range(60):
            out = _neighbour(system, cfg, OPTIONS, rng)
            if out is not None:
                produced += 1
                assert out.gd_cycle > 0
        assert produced > 20
