"""Unit tests for the DYN-length search strategies (Fig. 8)."""

import pytest

from repro.core.bbc import basic_configuration
from repro.core.dynlen import curvefit_dyn_length, exhaustive_dyn_length
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    dyn_segment_bounds,
)

from tests.util import fig4_system


@pytest.fixture
def setup():
    system = fig4_system()
    options = BusOptimisationOptions()
    evaluator = Evaluator(system, options)
    template = basic_configuration(system, n_minislots=20, options=options)
    lo, hi = dyn_segment_bounds(system, template.st_bus, options)
    return system, evaluator, template, lo, hi


class TestExhaustive:
    def test_finds_best_over_grid(self, setup):
        _, evaluator, template, lo, hi = setup
        best = exhaustive_dyn_length(evaluator, template, lo, hi, max_points=64)
        assert best is not None and best.feasible
        # it must be the minimum over everything analysed
        costs = [p.cost for p in evaluator.trace]
        assert best.cost_value == min(costs)

    def test_respects_point_budget(self, setup):
        _, evaluator, template, lo, hi = setup
        exhaustive_dyn_length(evaluator, template, lo, hi, max_points=9)
        assert evaluator.evaluations <= 9

    def test_empty_range(self, setup):
        _, evaluator, template, lo, hi = setup
        assert exhaustive_dyn_length(evaluator, template, 10, 9) is None


class TestCurveFit:
    def test_finds_schedulable_solution(self, setup):
        _, evaluator, template, lo, hi = setup
        best = curvefit_dyn_length(evaluator, template, lo, hi)
        assert best is not None
        assert best.schedulable

    def test_uses_fewer_analyses_than_exhaustive(self, setup):
        system, _, template, lo, hi = setup
        options = BusOptimisationOptions()
        ev_cf = Evaluator(system, options)
        curvefit_dyn_length(ev_cf, template, lo, hi)
        ev_ee = Evaluator(system, options)
        exhaustive_dyn_length(ev_ee, template, lo, hi)
        assert ev_cf.evaluations < ev_ee.evaluations

    def test_respects_point_cap(self, setup):
        system, _, template, lo, hi = setup
        options = BusOptimisationOptions(cf_max_points=7, initial_cf_points=3)
        evaluator = Evaluator(system, options)
        curvefit_dyn_length(evaluator, template, lo, hi)
        assert evaluator.evaluations <= 7

    def test_empty_range_returns_none(self, setup):
        _, evaluator, template, _, __ = setup
        assert curvefit_dyn_length(evaluator, template, 10, 9) is None

    def test_interpolation_estimates_recorded(self, setup):
        system, _, template, lo, hi = setup
        # Force the heuristic past the seed phase by starting from a
        # range whose seeds are unschedulable (very short segments are
        # infeasible for the 9-minislot frame, long ones cost more).
        options = BusOptimisationOptions(
            initial_cf_points=3, stop_when_schedulable=False
        )
        evaluator = Evaluator(system, options)
        curvefit_dyn_length(evaluator, template, lo, hi)
        kinds = {p.exact for p in evaluator.trace}
        assert True in kinds


class TestBatchedSeedPoints:
    def test_seed_points_go_through_analyse_many(self, setup):
        """The OBC/CF seed set is analysed as one batch: warming the
        evaluator cache with exactly the seed configurations makes the
        seed phase free, and the outcome is unchanged."""
        from repro.core.curvefit import spread_points

        system, _, template, lo, hi = setup
        options = BusOptimisationOptions()

        plain = Evaluator(system, options)
        expected = curvefit_dyn_length(plain, template, lo, hi)

        warmed = Evaluator(system, options)
        seeds = [
            template.with_dyn_length(n)
            for n in spread_points(lo, hi, options.initial_cf_points)
        ]
        warmed.analyse_many(seeds)
        primed_evals = warmed.evaluations
        result = curvefit_dyn_length(warmed, template, lo, hi)
        assert result.config.cache_key() == expected.config.cache_key()
        assert result.cost_value == expected.cost_value
        # every seed analysis of the CF run hit the warmed cache
        assert warmed.cache_hits >= len(seeds)
        assert warmed.evaluations - primed_evals == (
            plain.evaluations - len(seeds)
        )
