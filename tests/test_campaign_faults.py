"""Fault tolerance of the campaign runtime (repro.core.campaign).

Covers the robustness contract: per-job wall-clock timeouts, bounded
retries, failure recording (the matrix finishes even when cells die),
fail-fast writability probes, checkpoint quarantine, and the acceptance
scenario -- one timed-out job plus one corrupted checkpoint in a single
campaign that completes, reports both, and resumes cleanly afterwards.

Test strategies are registered through the public registry
(:func:`repro.core.strategies.register_strategy`) and removed again by
the fixture, so the registry other tests see stays untouched.
"""

import json
import os
import time

import pytest

from repro.core.campaign import (
    CampaignJobFailure,
    campaign_matrix,
    ensure_writable_dir,
    ensure_writable_file,
    job_id_for,
    run_campaign,
)
from repro.core.strategies import (
    StrategyOptions,
    StrategySpec,
    _REGISTERED,
    optimise,
    register_strategy,
)
from repro.errors import CampaignError

from tests.util import fig3_system


@pytest.fixture
def registry():
    """Register test strategies, restore the registry afterwards."""
    added = []

    def register(name, runner):
        register_strategy(
            StrategySpec(
                name=name,
                summary=f"test strategy {name}",
                options_type=StrategyOptions,
                runner=runner,
            )
        )
        added.append(name)

    yield register
    for name in added:
        _REGISTERED.pop(name, None)


def _bbc(system, options):
    return optimise(system, "bbc", None)


def _sleepy(system, options):
    time.sleep(30)
    return _bbc(system, options)  # pragma: no cover - always timed out


def _boom(system, options):
    raise ValueError("injected failure")


class TestTimeoutsAndRetries:
    def test_job_timeout_is_recorded_not_raised(self, registry):
        registry("sleepy", _sleepy)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["sleepy", "bbc"])
        report = run_campaign(
            systems, jobs, job_timeout=0.05, retry_backoff=0.0
        )
        # The campaign completed: the slow cell failed, the other ran.
        assert set(report.results) == {"s__bbc"}
        assert set(report.failures) == {"s__sleepy"}
        failure = report.failures["s__sleepy"]
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert "wall-clock timeout" in failure.message
        assert not report.all_succeeded
        with pytest.raises(CampaignError, match="timed out"):
            report.result_for("s", "sleepy")

    def test_exception_is_recorded_with_type_and_message(self, registry):
        registry("boom", _boom)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["boom"])
        report = run_campaign(systems, jobs, retry_backoff=0.0)
        failure = report.failures["s__boom"]
        assert failure.kind == "error"
        assert "ValueError" in failure.message
        assert "injected failure" in failure.message
        with pytest.raises(CampaignError, match="injected failure"):
            report.result_for("s", "boom")

    def test_bounded_retry_recovers_a_flaky_job(self, registry):
        calls = {"n": 0}

        def flaky(system, options):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _bbc(system, options)

        registry("flaky", flaky)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["flaky"])
        report = run_campaign(
            systems, jobs, max_retries=2, retry_backoff=0.0
        )
        assert calls["n"] == 3
        assert report.all_succeeded
        assert report.result_for("s", "flaky").evaluations > 0

    def test_retries_exhausted_reports_attempt_count(self, registry):
        registry("boom", _boom)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["boom"])
        report = run_campaign(
            systems, jobs, max_retries=2, retry_backoff=0.0
        )
        assert report.failures["s__boom"].attempts == 3

    def test_negative_max_retries_rejected(self):
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["bbc"])
        with pytest.raises(CampaignError, match="max_retries"):
            run_campaign(systems, jobs, max_retries=-1)

    def test_failed_job_writes_no_checkpoint(self, registry, tmp_path):
        registry("boom", _boom)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["boom"])
        report = run_campaign(
            systems, jobs, checkpoint_dir=str(tmp_path), retry_backoff=0.0
        )
        assert report.failures
        assert not os.path.exists(tmp_path / "s__boom.json")


class TestWritabilityFailFast:
    # Note: permission-bit tests are useless under root (root bypasses
    # mode checks), so the unwritable targets here are paths *under a
    # regular file*, which fail with ENOTDIR for every uid.

    def test_unwritable_checkpoint_dir_fails_before_any_job(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        bad_dir = str(blocker / "checkpoints")
        with pytest.raises(CampaignError, match="--checkpoint-dir"):
            ensure_writable_dir(bad_dir)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["bbc"])
        ran = {"jobs": 0}
        with pytest.raises(CampaignError, match="not writable"):
            run_campaign(
                systems,
                jobs,
                checkpoint_dir=bad_dir,
                progress=lambda *a: ran.__setitem__("jobs", ran["jobs"] + 1),
            )
        assert ran["jobs"] == 0  # failed fast, before any job ran

    def test_unwritable_output_file_message_names_the_flag(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        with pytest.raises(CampaignError, match="--output"):
            ensure_writable_file(str(blocker / "summary.json"))

    def test_probes_leave_no_residue(self, tmp_path):
        target_dir = tmp_path / "checkpoints"
        ensure_writable_dir(str(target_dir))
        assert list(target_dir.iterdir()) == []
        out = tmp_path / "summary.json"
        ensure_writable_file(str(out))
        assert not out.exists()
        # An existing output file is probed but kept.
        out.write_text("{}\n")
        ensure_writable_file(str(out))
        assert out.read_text() == "{}\n"


class TestQuarantine:
    def test_corrupted_checkpoint_is_quarantined_and_job_rerun(self, tmp_path):
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["bbc"])
        first = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert first.executed == ("s__bbc",)
        path = tmp_path / "s__bbc.json"
        path.write_text('{"job": {"truncated...')  # half-written file

        second = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert second.quarantined == ("s__bbc",)
        assert second.executed == ("s__bbc",)  # re-ran, not resumed
        quarantined = tmp_path / "s__bbc.json.quarantined.1"
        assert quarantined.read_text().startswith('{"job"')
        # A fresh checkpoint replaced the corrupted one: next run resumes.
        third = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert third.resumed == ("s__bbc",)
        assert not third.quarantined
        assert third.results["s__bbc"].cost == first.results["s__bbc"].cost

    def test_quarantine_suffixes_do_not_collide(self, tmp_path):
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["bbc"])
        for n in (1, 2):
            (tmp_path / "s__bbc.json").write_text("garbage")
            report = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
            assert report.quarantined == ("s__bbc",)
            assert (tmp_path / f"s__bbc.json.quarantined.{n}").exists()


class TestAcceptanceScenario:
    def test_timeout_plus_corrupted_checkpoint_then_clean_resume(
        self, registry, tmp_path
    ):
        """The PR's acceptance criterion: a campaign with one injected
        job timeout and one corrupted checkpoint completes, reports both
        failures in the report, and resumes cleanly afterwards."""
        registry("sleepy", _sleepy)
        systems = {"s": fig3_system()}
        jobs = campaign_matrix(systems, ["bbc", "sleepy"])

        # Seed a valid checkpoint for bbc, then corrupt it.
        seeded = run_campaign(
            systems, campaign_matrix(systems, ["bbc"]),
            checkpoint_dir=str(tmp_path),
        )
        good_cost = seeded.results["s__bbc"].cost
        (tmp_path / "s__bbc.json").write_text("{{{ corrupted")

        report = run_campaign(
            systems,
            jobs,
            checkpoint_dir=str(tmp_path),
            job_timeout=0.05,
            retry_backoff=0.0,
        )
        # Completed, reporting both problems.
        assert report.quarantined == ("s__bbc",)
        assert set(report.failures) == {"s__sleepy"}
        assert report.failures["s__sleepy"].kind == "timeout"
        assert report.results["s__bbc"].cost == good_cost  # re-ran fine
        assert isinstance(report.failures["s__sleepy"], CampaignJobFailure)

        # Quarantined bytes stay inspectable; the fresh checkpoint is
        # valid JSON, so the next (timeout-free) run resumes cleanly.
        assert (tmp_path / "s__bbc.json.quarantined.1").exists()
        with open(tmp_path / "s__bbc.json", encoding="utf-8") as fh:
            assert json.load(fh)["job"]["job_id"] == job_id_for("s", "bbc")
        resumed = run_campaign(
            systems, campaign_matrix(systems, ["bbc"]),
            checkpoint_dir=str(tmp_path),
        )
        assert resumed.resumed == ("s__bbc",)
        assert resumed.all_succeeded
