"""Tests for the ASCII Gantt rendering."""

import pytest

from repro.analysis import analyse_system
from repro.errors import ValidationError
from repro.flexray.simulator import simulate
from repro.viz import render_bus_trace, render_cycle, render_schedule

from tests.util import basic_config, fig3_system, fig4_system


@pytest.fixture
def fig3_analysis():
    sys_ = fig3_system()
    cfg = basic_config(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
    return sys_, cfg, analyse_system(sys_, cfg)


class TestRenderSchedule:
    def test_contains_all_nodes_and_legend(self, fig3_analysis):
        sys_, _, res = fig3_analysis
        text = render_schedule(res.table, sys_.nodes)
        assert "N1" in text and "N2" in text
        assert "t1" in text  # legend entry

    def test_until_truncates(self, fig3_analysis):
        sys_, _, res = fig3_analysis
        text = render_schedule(res.table, sys_.nodes, until=5)
        assert "[0, 5)" in text

    def test_rejects_tiny_width(self, fig3_analysis):
        sys_, _, res = fig3_analysis
        with pytest.raises(ValidationError):
            render_schedule(res.table, sys_.nodes, width=3)


class TestRenderCycle:
    def test_shows_slot_owners(self):
        cfg = basic_config(static_slots=("N1", "N2"), gd_static_slot=8)
        text = render_cycle(cfg)
        assert "ST slot 1: N1" in text
        assert "dynamic segment" in text

    def test_pure_static_cycle(self):
        cfg = basic_config(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0
        )
        text = render_cycle(cfg)
        assert "dynamic segment" not in text

    def test_rejects_tiny_width(self):
        with pytest.raises(ValidationError):
            render_cycle(basic_config(), width=2)


class TestRenderBusTrace:
    def test_trace_lane_contains_cycles(self):
        sys_ = fig4_system()
        cfg = basic_config(frame_ids={"m1": 1, "m2": 2, "m3": 3})
        result = simulate(sys_, cfg)
        text = render_bus_trace(result.trace, cfg)
        assert "bus" in text and "cycles" in text

    def test_empty_trace(self):
        cfg = basic_config(frame_ids={})
        assert "no transmissions" in render_bus_trace([], cfg)
