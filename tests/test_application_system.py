"""Unit tests for Application and System."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.model import Application, System, TaskGraph

from tests.util import dyn_msg, fps_task, scs_task, st_msg


def two_graph_app():
    g1 = TaskGraph(
        name="g1",
        period=20,
        deadline=18,
        tasks=(scs_task("a1", node="N1"), scs_task("b1", node="N2")),
        messages=(st_msg("m1", 2, "a1", "b1"),),
    )
    g2 = TaskGraph(
        name="g2",
        period=30,
        deadline=30,
        tasks=(
            fps_task("a2", node="N1", priority=1),
            fps_task("b2", node="N2", priority=2),
        ),
        messages=(dyn_msg("m2", 3, "a2", "b2", deadline=25),),
    )
    return Application("app", (g1, g2))


class TestApplication:
    def test_hyperperiod(self):
        assert two_graph_app().hyperperiod == 60

    def test_graph_lookup(self):
        app = two_graph_app()
        assert app.graph("g1").period == 20
        with pytest.raises(ModelError):
            app.graph("zz")

    def test_task_and_message_lookup_across_graphs(self):
        app = two_graph_app()
        assert app.task("a2").is_fps
        assert app.message("m1").is_static
        with pytest.raises(ModelError):
            app.task("m1")  # message, not task
        with pytest.raises(ModelError):
            app.message("a1")

    def test_graph_of(self):
        app = two_graph_app()
        assert app.graph_of("a1").name == "g1"
        assert app.graph_of("m2").name == "g2"
        with pytest.raises(ModelError):
            app.graph_of("zz")

    def test_period_and_deadline_of(self):
        app = two_graph_app()
        assert app.period_of("m1") == 20
        assert app.deadline_of("a1") == 18  # graph deadline
        assert app.deadline_of("m2") == 25  # individual deadline wins

    def test_message_kind_iterators(self):
        app = two_graph_app()
        assert [m.name for m in app.st_messages()] == ["m1"]
        assert [m.name for m in app.dyn_messages()] == ["m2"]

    def test_rejects_duplicate_activity_name_across_graphs(self):
        g1 = TaskGraph(
            name="g1", period=10, deadline=10, tasks=(scs_task("x", node="N1"),)
        )
        g2 = TaskGraph(
            name="g2", period=10, deadline=10, tasks=(scs_task("x", node="N1"),)
        )
        with pytest.raises(ValidationError, match="globally unique"):
            Application("app", (g1, g2))

    def test_rejects_duplicate_graph_name(self):
        g = TaskGraph(
            name="g", period=10, deadline=10, tasks=(scs_task("x", node="N1"),)
        )
        g2 = TaskGraph(
            name="g", period=10, deadline=10, tasks=(scs_task("y", node="N1"),)
        )
        with pytest.raises(ValidationError, match="duplicate graph"):
            Application("app", (g, g2))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Application("app", ())


class TestSystem:
    def test_tasks_on(self):
        sys_ = System(("N1", "N2"), two_graph_app())
        assert {t.name for t in sys_.tasks_on("N1")} == {"a1", "a2"}
        with pytest.raises(ModelError):
            sys_.tasks_on("N9")

    def test_sender_nodes(self):
        sys_ = System(("N1", "N2"), two_graph_app())
        assert sys_.st_sender_nodes() == ("N1",)
        assert sys_.dyn_sender_nodes() == ("N1",)
        m1 = sys_.application.message("m1")
        assert sys_.sender_node(m1) == "N1"

    def test_messages_sent_by(self):
        sys_ = System(("N1", "N2"), two_graph_app())
        assert {m.name for m in sys_.messages_sent_by("N1")} == {"m1", "m2"}
        assert set(sys_.messages_sent_by("N2")) == set()

    def test_node_utilisation(self):
        sys_ = System(("N1", "N2"), two_graph_app())
        # a1: 1/20, a2: 1/30
        assert sys_.node_utilisation("N1") == pytest.approx(1 / 20 + 1 / 30)

    def test_rejects_unknown_mapping(self):
        with pytest.raises(ValidationError, match="unknown node"):
            System(("N1",), two_graph_app())

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValidationError, match="unique"):
            System(("N1", "N1", "N2"), two_graph_app())

    def test_describe_mentions_counts(self):
        text = System(("N1", "N2"), two_graph_app()).describe()
        assert "2 nodes" in text and "4 tasks" in text and "2 messages" in text
