"""Tests for filled-cycle counting (bin covering)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.fill import fill_bound, max_filled_cycles
from repro.errors import AnalysisError


class TestFillBound:
    def test_simple(self):
        assert fill_bound([8, 4], 3) == 2  # item count binds
        assert fill_bound([1, 1, 1], 3) == 1  # sum binds
        assert fill_bound([], 3) == 0

    def test_zero_items_excluded(self):
        assert fill_bound([0, 0, 5], 3) == 1

    def test_rejects_bad_theta(self):
        with pytest.raises(AnalysisError):
            fill_bound([1], 0)


class TestExactFill:
    def test_exact_matches_bound_when_items_large(self):
        # each item alone covers a bin
        assert max_filled_cycles([8, 4], 3, "exact") == 2

    def test_exact_tighter_than_bound(self):
        # bound: min(2, 9//3) = 2; exact: {8} covers, {1} cannot -> 1
        assert fill_bound([8, 1], 3) == 2
        assert max_filled_cycles([8, 1], 3, "exact") == 1

    def test_exact_combines_small_items(self):
        # {2,1} covers one bin of 3; {2,2} another
        assert max_filled_cycles([2, 2, 2, 1], 3, "exact") == 2

    def test_exact_equal_split(self):
        assert max_filled_cycles([3, 3, 3], 3, "exact") == 3

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AnalysisError, match="unknown"):
            max_filled_cycles([1], 1, "magic")

    def test_large_multiset_falls_back_to_bound(self):
        items = [5] * 30
        assert max_filled_cycles(items, 3, "exact", exact_limit=14) == fill_bound(
            items, 3
        )

    @given(
        st.lists(st.integers(0, 12), max_size=9),
        st.integers(1, 10),
    )
    @settings(max_examples=200)
    def test_exact_never_exceeds_bound(self, items, theta):
        exact = max_filled_cycles(items, theta, "exact")
        assert exact <= fill_bound(items, theta)

    @given(
        st.lists(st.integers(0, 12), max_size=8),
        st.integers(1, 10),
    )
    @settings(max_examples=200)
    def test_exact_at_least_greedy(self, items, theta):
        # The exact optimum is at least the first-fit-decreasing cover.
        desc = sorted((a for a in items if a > 0), reverse=True)
        bins, acc = 0, 0
        for a in desc:
            acc += a
            if acc >= theta:
                bins += 1
                acc = 0
        assert max_filled_cycles(items, theta, "exact") >= bins


class TestAggregatedEquivalence:
    """(size, count) aggregation must match the per-instance API."""

    @given(
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 6)), max_size=6),
        st.integers(1, 10),
    )
    @settings(max_examples=300, deadline=None)  # "exact" DFS can spike
    def test_bound_matches_materialised(self, pairs, theta):
        from repro.analysis.fill import (
            fill_bound_aggregated,
            max_filled_cycles_aggregated,
        )

        items = [size for size, count in pairs for _ in range(count)]
        assert fill_bound_aggregated(pairs, theta) == fill_bound(items, theta)
        for strategy in ("bound", "exact"):
            assert max_filled_cycles_aggregated(
                pairs, theta, strategy
            ) == max_filled_cycles(items, theta, strategy)

    def test_aggregated_validates_like_original(self):
        from repro.analysis.fill import (
            fill_bound_aggregated,
            max_filled_cycles_aggregated,
        )

        with pytest.raises(AnalysisError, match="theta"):
            fill_bound_aggregated([(3, 2)], 0)
        with pytest.raises(AnalysisError, match="unknown fill strategy"):
            max_filled_cycles_aggregated([(3, 2)], 2, "nope")
