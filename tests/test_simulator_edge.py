"""Failure-injection and edge-case tests for the simulator."""

import pytest

from repro.analysis.schedule_table import ScheduleTable
from repro.core.config import FlexRayConfig
from repro.errors import SimulationError
from repro.flexray.simulator import SimulationOptions, simulate
from repro.model import Application, System, TaskGraph

from tests.util import dyn_msg, fps_task, scs_task, single_graph_system, st_msg


class TestStMessageConsistency:
    def test_frame_before_sender_finish_rejected(self):
        """Failure injection: a hand-built table that transmits an ST
        message before its sender completed must be caught at run time."""
        g = TaskGraph(
            name="g",
            period=40,
            deadline=40,
            tasks=(
                scs_task("a", wcet=10, node="N1"),
                scs_task("b", wcet=1, node="N2"),
            ),
            messages=(st_msg("m", 2, "a", "b"),),
        )
        app = Application("app", (g,))
        system = System(("N1", "N2"), app)
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0
        )
        table = ScheduleTable(cfg, horizon=40)
        table.add_task("a#0", app.task("a"), 0)  # finishes at 10
        table.add_message("m#0", app.message("m"), cycle=0, slot=1)  # slot at 0!
        with pytest.raises(SimulationError, match="not ready"):
            simulate(system, cfg, table=table)

    def test_scs_receiver_before_arrival_rejected(self):
        g = TaskGraph(
            name="g",
            period=40,
            deadline=40,
            tasks=(
                scs_task("a", wcet=1, node="N1"),
                scs_task("b", wcet=1, node="N2"),
            ),
            messages=(st_msg("m", 2, "a", "b"),),
        )
        app = Application("app", (g,))
        system = System(("N1", "N2"), app)
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0
        )
        table = ScheduleTable(cfg, horizon=40)
        table.add_task("a#0", app.task("a"), 0)
        table.add_message("m#0", app.message("m"), cycle=1, slot=1)  # arrives ~10
        table.add_task("b#0", app.task("b"), 2)  # starts before the data
        with pytest.raises(SimulationError, match="inputs arrive"):
            simulate(system, cfg, table=table)


class TestDrainBehaviour:
    def test_slow_dyn_traffic_drains_past_hyperperiod(self):
        # One DYN message per 100-MT period; the bus cycle is large so
        # the last instances complete after the hyper-period.
        tasks = [
            scs_task("s", wcet=1, node="N1"),
            fps_task("r", wcet=1, node="N2", priority=1),
        ]
        msgs = [dyn_msg("m", 30, "s", "r")]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=60,
            n_minislots=35,
            frame_ids={"m": 1},
        )
        result = simulate(sys_, cfg)
        assert result.all_finished

    def test_drain_cap_reports_unfinished(self):
        # Sender finishes after the cycle's DYN slot passed, so the
        # frame needs the next bus cycle -- beyond the zero-drain cap.
        tasks = [
            scs_task("s", wcet=70, node="N1"),
            fps_task("r", wcet=1, node="N2", priority=1),
        ]
        msgs = [dyn_msg("m", 30, "s", "r")]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=60,
            n_minislots=35,
            frame_ids={"m": 1},
        )
        result = simulate(sys_, cfg, options=SimulationOptions(drain_factor=0))
        # With no drain budget the receiver task cannot complete.
        assert not result.all_finished
        assert any(u.startswith("r#") or u.startswith("m#")
                   for u in result.unfinished)


class TestTraceContent:
    def test_release_events_per_graph_instance(self):
        sys_ = single_graph_system(
            [scs_task("a", node="N1"), scs_task("b", node="N2")],
            nodes=("N1", "N2"),
            period=50,
            deadline=50,
        )
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0
        )
        result = simulate(sys_, cfg)
        from repro.flexray.events import EventKind

        releases = [e for e in result.trace if e.kind is EventKind.RELEASE]
        assert len(releases) == 1  # hyper-period == period -> one instance
