"""Tests for the synthetic workload generator and benchmark suites."""

import pytest

from repro.errors import ValidationError
from repro.model import validate_system
from repro.synth import GeneratorConfig, generate_system, paper_suite
from repro.synth.suite import full_paper_benchmark


class TestGeneratorConfig:
    def test_defaults_follow_paper_recipe(self):
        cfg = GeneratorConfig()
        assert cfg.tasks_per_node == 10
        assert cfg.tasks_per_graph == 5
        assert cfg.node_utilisation == (0.30, 0.60)
        assert cfg.bus_utilisation == (0.10, 0.70)

    def test_rejects_single_node(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(n_nodes=1)

    def test_rejects_indivisible_grouping(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(n_nodes=3, tasks_per_node=10, tasks_per_graph=7)

    def test_rejects_bad_tt_share(self):
        with pytest.raises(ValidationError):
            GeneratorConfig(tt_graph_share=1.5)


class TestGenerateSystem:
    def test_deterministic_for_seed(self):
        a = generate_system(GeneratorConfig(seed=5))
        b = generate_system(GeneratorConfig(seed=5))
        assert a.describe() == b.describe()
        assert [t.wcet for t in a.application.tasks()] == [
            t.wcet for t in b.application.tasks()
        ]

    def test_different_seeds_differ(self):
        a = generate_system(GeneratorConfig(seed=5))
        b = generate_system(GeneratorConfig(seed=6))
        assert [t.wcet for t in a.application.tasks()] != [
            t.wcet for t in b.application.tasks()
        ]

    def test_task_and_graph_counts(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=4, seed=1))
        app = sys_.application
        assert sum(1 for _ in app.tasks()) == 40
        assert len(app.graphs) == 8
        assert all(len(g.tasks) == 5 for g in app.graphs)

    def test_balanced_mapping(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=9))
        for node in sys_.nodes:
            assert len(sys_.tasks_on(node)) == 10

    def test_node_utilisation_in_range(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=11))
        for node in sys_.nodes:
            util = sys_.node_utilisation(node)
            assert 0.25 <= util <= 0.65  # rounding tolerance around 0.30-0.60

    def test_half_graphs_time_triggered(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=4, seed=2))
        tt = sum(
            1 for g in sys_.application.graphs if all(t.is_scs for t in g.tasks)
        )
        assert tt == 4  # of 8

    def test_graphs_homogeneous_policy(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=3))
        for g in sys_.application.graphs:
            assert len({t.policy for t in g.tasks}) == 1

    def test_message_kind_matches_graph_policy(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=4))
        for g in sys_.application.graphs:
            tt = all(t.is_scs for t in g.tasks)
            for m in g.messages:
                assert m.is_static == tt

    def test_message_size_cap(self):
        sys_ = generate_system(
            GeneratorConfig(n_nodes=2, seed=7, max_message_size=100)
        )
        assert all(m.size <= 100 for m in sys_.application.messages())

    def test_unique_fps_priorities_per_node(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=8))
        findings = validate_system(sys_)
        assert not any("share priority" in f for f in findings)

    def test_structurally_valid(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=5, seed=12))
        errors = [f for f in validate_system(sys_) if f.startswith("error")]
        assert errors == []


class TestSuites:
    def test_paper_suite_size_and_nodes(self):
        suite = paper_suite(3, count=4, seed=1)
        assert len(suite) == 4
        assert all(len(s.nodes) == 3 for s in suite)

    def test_suite_deterministic(self):
        a = paper_suite(2, count=2, seed=9)
        b = paper_suite(2, count=2, seed=9)
        assert [s.describe() for s in a] == [s.describe() for s in b]

    def test_suite_members_distinct(self):
        suite = paper_suite(2, count=3, seed=9)
        descs = {
            tuple(t.wcet for t in s.application.tasks()) for s in suite
        }
        assert len(descs) == 3

    def test_full_benchmark_structure(self):
        bench = full_paper_benchmark(node_counts=(2, 3), count=2, seed=5)
        assert set(bench) == {2, 3}
        assert all(len(v) == 2 for v in bench.values())
