"""Integration tests for the holistic analysis (Section 5)."""

import pytest

from repro.analysis.holistic import AnalysisOptions, analyse_system, analysis_cap
from repro.core.config import FlexRayConfig
from repro.model import Application, System, TaskGraph

from tests.util import (
    dyn_msg,
    fig3_system,
    fig4_system,
    fps_task,
    scs_task,
    single_graph_system,
    st_msg,
)


def fig4_config(frame_ids=None, n_minislots=13):
    return FlexRayConfig(
        static_slots=("N1", "N2"),
        gd_static_slot=8,
        n_minislots=n_minislots,
        frame_ids=frame_ids or {"m1": 1, "m2": 2, "m3": 3},
    )


class TestStaticOnlySystems:
    def test_fig3_all_activities_have_wcrt(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0
        )
        res = analyse_system(sys_, cfg)
        assert res.feasible and res.schedulable
        names = {t.name for t in sys_.application.tasks()}
        names |= {m.name for m in sys_.application.messages()}
        assert set(res.wcrt) == names

    def test_receiver_after_message(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0
        )
        res = analyse_system(sys_, cfg)
        assert res.wcrt["r2"] > res.wcrt["m2"]

    def test_infeasible_config_reported(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(
            static_slots=("N1",), gd_static_slot=8, n_minislots=0
        )
        res = analyse_system(sys_, cfg)
        assert not res.feasible
        assert not res.schedulable
        assert res.cost_value == float("inf")
        assert "owns no" in res.failure or "scheduling failed" in res.failure

    def test_tight_deadline_unschedulable(self):
        sys_ = fig3_system(deadline=5)
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0
        )
        res = analyse_system(sys_, cfg)
        assert res.feasible and not res.schedulable
        assert res.cost.value > 0


class TestDynSystems:
    def test_fig4_analysis_runs(self):
        sys_ = fig4_system()
        res = analyse_system(sys_, fig4_config())
        assert res.feasible
        assert set(res.wcrt) >= {"m1", "m2", "m3"}

    def test_dyn_message_inherits_scs_sender_offset(self):
        sys_ = fig4_system()
        res = analyse_system(sys_, fig4_config())
        # sender s1 has wcet 1 -> R(s1) = 1 -> J(m1) = 1 -> R(m1) = 1 + w + C
        assert res.wcrt["m1"] == res.wcrt["s1"] + 29 + 9

    def test_larger_dyn_segment_helps_lf_victim(self):
        sys_ = fig4_system()
        short = analyse_system(sys_, fig4_config(n_minislots=13))
        long_ = analyse_system(sys_, fig4_config(n_minislots=30))
        assert long_.wcrt["m3"] < short.wcrt["m3"]


class TestFpsChains:
    def fps_chain_system(self, period=200, deadline=200):
        tasks = [
            fps_task("src", wcet=5, node="N1", priority=1),
            fps_task("dst", wcet=7, node="N2", priority=1),
        ]
        msgs = [dyn_msg("dm", 4, "src", "dst")]
        return single_graph_system(
            tasks, msgs, period=period, deadline=deadline
        )

    def make_cfg(self):
        return FlexRayConfig(
            static_slots=("N1", "N2"),
            gd_static_slot=2,
            n_minislots=12,
            frame_ids={"dm": 1},
        )

    def test_jitter_propagates_along_chain(self):
        res = analyse_system(self.fps_chain_system(), self.make_cfg())
        assert res.feasible and res.converged
        # R(src) = 5 (empty node); J(dm) = 5; R(dm) = 5 + w + 4;
        # R(dst) = R(dm) + 7.
        assert res.wcrt["src"] == 5
        assert res.wcrt["dm"] > 5 + 4
        assert res.wcrt["dst"] == res.wcrt["dm"] + 7

    def test_scs_interference_slows_fps(self):
        tasks = [
            fps_task("e", wcet=5, node="N1", priority=1),
            scs_task("s", wcet=50, node="N1"),
        ]
        sys_ = single_graph_system(tasks, nodes=("N1",), period=100, deadline=100)
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        res = analyse_system(sys_, cfg)
        # worst case: e released right as s starts -> 50 + 5
        assert res.wcrt["e"] == 55

    def test_overloaded_fps_unschedulable(self):
        # Utilisation 1.1: the busy-window recurrence still reaches a
        # fix point (w = 160 > D = 100), reported as a deadline miss.
        tasks = [
            fps_task("e", wcet=60, node="N1", priority=2),
            fps_task("hi", wcet=50, node="N1", priority=1),
        ]
        g = TaskGraph(
            name="g", period=100, deadline=100, tasks=tuple(tasks)
        )
        sys_ = System(("N1",), Application("app", (g,)))
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        res = analyse_system(sys_, cfg)
        assert res.feasible
        assert not res.schedulable
        assert res.wcrt["e"] == 160
        assert res.cost.value > 0

    def test_starved_fps_hits_cap_not_converged(self):
        tasks = [
            fps_task("e", wcet=5, node="N1", priority=1),
            scs_task("s", wcet=100, node="N1"),
        ]
        sys_ = single_graph_system(tasks, nodes=("N1",), period=100, deadline=100)
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        res = analyse_system(sys_, cfg)
        assert res.feasible
        assert not res.converged
        assert not res.schedulable


class TestAnalysisCap:
    def test_cap_exceeds_deadlines_and_hyperperiod(self):
        sys_ = fig4_system()
        cfg = fig4_config()
        cap = analysis_cap(sys_, cfg, cap_factor=8)
        assert cap >= 8 * sys_.application.hyperperiod
        assert cap > max(g.deadline for g in sys_.application.graphs)

    def test_options_cap_factor(self):
        sys_ = fig4_system()
        assert analysis_cap(sys_, fig4_config(), 2) < analysis_cap(
            sys_, fig4_config(), 20
        )
