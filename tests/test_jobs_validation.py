"""Unit tests for job expansion and system-level validation."""

import pytest

from repro.errors import ValidationError
from repro.model import Application, System, TaskGraph, expand_jobs, job_count
from repro.model.validation import validate_system

from tests.util import dyn_msg, fps_task, scs_task, st_msg


def make_app(period1=20, period2=40):
    g1 = TaskGraph(
        name="g1",
        period=period1,
        deadline=period1,
        tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
        messages=(st_msg("m", 2, "a", "b"),),
    )
    g2 = TaskGraph(
        name="g2",
        period=period2,
        deadline=period2,
        tasks=(fps_task("e", node="N1"),),
    )
    return Application("app", (g1, g2))


class TestExpandJobs:
    def test_instance_count_follows_period(self):
        app = make_app()
        jobs = expand_jobs(app)  # hyperperiod 40 -> g1 twice
        names = sorted(j.key for j in jobs)
        assert names == ["a#0", "a#1", "b#0", "b#1", "m#0", "m#1"]

    def test_releases_and_deadlines(self):
        app = make_app()
        jobs = {j.key: j for j in expand_jobs(app)}
        assert jobs["a#0"].release == 0
        assert jobs["a#1"].release == 20
        assert jobs["a#1"].abs_deadline == 40
        assert jobs["m#1"].abs_deadline == 40

    def test_task_release_offset_applied(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a", node="N1", release=3),),
        )
        app = Application("app", (g,))
        jobs = expand_jobs(app)
        assert jobs[0].release == 3

    def test_individual_deadline_wins(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a", node="N1", deadline=7),),
        )
        app = Application("app", (g,))
        assert expand_jobs(app)[0].abs_deadline == 7

    def test_fps_tasks_excluded_by_default(self):
        app = make_app()
        assert all(j.name != "e" for j in expand_jobs(app))

    def test_all_activities_when_not_scs_only(self):
        app = make_app()
        names = {j.name for j in expand_jobs(app, scs_only=False)}
        assert "e" in names

    def test_job_count(self):
        assert job_count(make_app()) == 6

    def test_custom_horizon(self):
        app = make_app()
        jobs = expand_jobs(app, horizon=20)
        assert sorted(j.key for j in jobs) == ["a#0", "b#0", "m#0"]

    def test_is_task_flag(self):
        app = make_app()
        by_key = {j.key: j for j in expand_jobs(app)}
        assert by_key["a#0"].is_task
        assert not by_key["m#0"].is_task


class TestValidateSystem:
    def test_clean_system_has_no_errors(self):
        sys_ = System(("N1", "N2"), make_app())
        assert [f for f in validate_system(sys_) if f.startswith("error")] == []

    def test_overutilised_node_flagged(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a", node="N1", wcet=11),),
        )
        sys_ = System(("N1",), Application("app", (g,)))
        findings = validate_system(sys_)
        assert any("over-utilised" in f for f in findings)
        with pytest.raises(ValidationError):
            validate_system(sys_, strict=True)

    def test_duplicate_fps_priorities_warned(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(
                fps_task("a", node="N1", priority=1),
                fps_task("b", node="N1", priority=1),
            ),
        )
        sys_ = System(("N1",), Application("app", (g,)))
        assert any("share priority" in f for f in validate_system(sys_))

    def test_duplicate_dyn_priorities_warned(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(
                fps_task("a", node="N1"),
                fps_task("b", node="N2"),
                fps_task("c", node="N2"),
            ),
        )
        g2 = TaskGraph(
            name="g2",
            period=10,
            deadline=10,
            tasks=(
                fps_task("x", node="N1"),
                fps_task("y", node="N2"),
            ),
            messages=(dyn_msg("mx", 1, "x", "y", priority=3),),
        )
        g3 = TaskGraph(
            name="g3",
            period=10,
            deadline=10,
            tasks=(
                fps_task("u", node="N1"),
                fps_task("v", node="N2"),
            ),
            messages=(dyn_msg("mu", 1, "u", "v", priority=3),),
        )
        sys_ = System(("N1", "N2"), Application("app", (g, g2, g3)))
        assert any("share priority" in f for f in validate_system(sys_))

    def test_deadline_beyond_period_noted(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=25,
            tasks=(scs_task("a", node="N1"),),
        )
        sys_ = System(("N1",), Application("app", (g,)))
        assert any("exceeds its period" in f for f in validate_system(sys_))

    def test_empty_node_noted(self):
        sys_ = System(("N1", "N2", "N3"), make_app())
        assert any("no tasks" in f for f in validate_system(sys_))
