"""Tests for the task-mapping exploration (Section 6.2 motivation)."""

import pytest

from repro.core.mapping import (
    MappingOptions,
    optimise_mapping,
    remap_task,
)
from repro.errors import OptimisationError
from repro.model import validate_system

from tests.util import fig3_system, fig4_system


class TestRemapTask:
    def test_move_changes_node(self):
        sys_ = fig3_system()
        out = remap_task(sys_, "r1", "N1")
        assert out.application.task("r1").node == "N1"

    def test_message_collapses_when_local(self):
        sys_ = fig3_system()
        # r1 receives m1 from t1 (N1); moving r1 to N1 makes m1 local.
        out = remap_task(sys_, "r1", "N1")
        names = {m.name for m in out.application.messages()}
        assert "m1" not in names
        g = out.application.graph_of("r1")
        assert ("t1", "r1") in g.precedences

    def test_precedence_becomes_message_when_crossing(self):
        sys_ = fig3_system()
        out = remap_task(sys_, "r1", "N1")
        back = remap_task(out, "r1", "N2")
        g = back.application.graph_of("r1")
        crossing = [
            m for m in g.messages if m.sender == "t1" and "r1" in m.receivers
        ]
        assert len(crossing) == 1
        # the original payload is not recoverable; the default applies
        assert crossing[0].size in (4, 8)

    def test_structure_stays_valid(self):
        sys_ = fig4_system()
        out = remap_task(sys_, "d1", "N1")
        errors = [f for f in validate_system(out) if f.startswith("error")]
        assert errors == []

    def test_unknown_node_rejected(self):
        with pytest.raises(OptimisationError):
            remap_task(fig3_system(), "r1", "N9")

    def test_total_task_count_preserved(self):
        sys_ = fig4_system()
        out = remap_task(sys_, "d3", "N1")
        assert sum(1 for _ in out.application.tasks()) == sum(
            1 for _ in sys_.application.tasks()
        )


class TestOptimiseMapping:
    def test_never_worse_than_initial(self):
        sys_ = fig4_system()
        from repro.core import optimise_bbc

        initial = optimise_bbc(sys_)
        result = optimise_mapping(
            sys_, mapping_options=MappingOptions(iterations=8, seed=5)
        )
        assert result.cost <= initial.cost

    def test_deterministic(self):
        opts = MappingOptions(iterations=6, seed=9)
        a = optimise_mapping(fig4_system(), mapping_options=opts)
        b = optimise_mapping(fig4_system(), mapping_options=opts)
        assert a.cost == b.cost
        assert a.moves_accepted == b.moves_accepted

    def test_counts_consistent(self):
        result = optimise_mapping(
            fig4_system(), mapping_options=MappingOptions(iterations=10, seed=2)
        )
        assert 0 <= result.moves_accepted <= result.moves_tried <= 10

    def test_rejects_unknown_inner(self):
        with pytest.raises(OptimisationError):
            optimise_mapping(
                fig3_system(), mapping_options=MappingOptions(inner="magic")
            )

    def test_time_budget(self):
        result = optimise_mapping(
            fig4_system(),
            mapping_options=MappingOptions(
                iterations=10_000, max_seconds=0.5, seed=1
            ),
        )
        assert result.elapsed_seconds < 5.0
