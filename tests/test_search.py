"""Unit tests for the shared optimiser machinery."""

import pytest

from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    better,
    dyn_segment_bounds,
    min_static_slot,
    quota_slot_assignment,
    sweep_lengths,
)
from repro.errors import OptimisationError
from repro.flexray import params

from tests.util import (
    basic_config,
    dyn_msg,
    fig3_system,
    fig4_system,
    fps_task,
    scs_task,
    single_graph_system,
    st_msg,
)


class TestSweepLengths:
    def test_full_range_when_small(self):
        assert sweep_lengths(5, 9, 100) == [5, 6, 7, 8, 9]

    def test_endpoints_always_included(self):
        pts = sweep_lengths(10, 1000, 12)
        assert pts[0] == 10 and pts[-1] == 1000
        assert len(pts) <= 12

    def test_empty_range(self):
        assert sweep_lengths(5, 4, 10) == []

    def test_single_point_cap(self):
        assert sweep_lengths(5, 100, 1) == [5]

    def test_rejects_zero_cap(self):
        with pytest.raises(OptimisationError):
            sweep_lengths(0, 10, 0)


class TestMinStaticSlot:
    def test_fits_largest_st_frame(self):
        assert min_static_slot(fig3_system(), BusOptimisationOptions()) == 4

    def test_default_when_no_st_messages(self):
        assert min_static_slot(fig4_system(), BusOptimisationOptions()) == 1

    def test_overhead_included(self):
        options = BusOptimisationOptions(frame_overhead_bytes=8)
        assert min_static_slot(fig3_system(), options) == 12


class TestDynBounds:
    def test_no_dyn_messages(self):
        assert dyn_segment_bounds(fig3_system(), 16, BusOptimisationOptions()) == (
            0,
            0,
        )

    def test_lower_bound_fits_largest_frame_in_highest_slot(self):
        lo, hi = dyn_segment_bounds(fig4_system(), 16, BusOptimisationOptions())
        # m1 needs 9 minislots and the highest of 3 unique FrameIDs adds
        # 2 slot-counter minislots: 9 + 3 - 1 = 11.
        assert lo == 11
        assert hi == params.MAX_MINISLOTS  # tighter than the 16 ms budget

    def test_lower_bound_is_message_count_when_frames_small(self):
        tasks = [
            fps_task("a", wcet=1, node="N1", priority=1),
            fps_task("b", wcet=1, node="N2", priority=1),
        ]
        msgs = [dyn_msg(f"m{i}", 1, "a", "b", priority=i) for i in range(5)]
        sys_ = single_graph_system(tasks, msgs)
        lo, _ = dyn_segment_bounds(sys_, 0, BusOptimisationOptions())
        assert lo == 5

    def test_hi_respects_protocol_minislot_cap(self):
        lo, hi = dyn_segment_bounds(fig4_system(), 0, BusOptimisationOptions())
        assert hi == params.MAX_MINISLOTS

    def test_empty_range_when_static_eats_cycle(self):
        lo, hi = dyn_segment_bounds(
            fig4_system(), params.MAX_CYCLE_MT - 2, BusOptimisationOptions()
        )
        assert hi < lo


class TestQuotaAssignment:
    def test_one_slot_per_sender_minimum(self):
        assert quota_slot_assignment(fig3_system(), 2) == ("N1", "N2")

    def test_surplus_goes_to_heavier_sender(self):
        # N2 sends 2 ST messages, N1 sends 1.
        slots = quota_slot_assignment(fig3_system(), 4)
        assert slots.count("N2") == 3 or slots.count("N2") == 2
        assert slots.count("N1") >= 1
        assert len(slots) == 4

    def test_round_robin_interleaving(self):
        slots = quota_slot_assignment(fig3_system(), 3)
        # quotas: N1 1, N2 2 -> interleaved N1 N2 N2
        assert slots == ("N1", "N2", "N2")

    def test_rejects_too_few_slots(self):
        with pytest.raises(OptimisationError):
            quota_slot_assignment(fig3_system(), 1)

    def test_no_st_senders(self):
        assert quota_slot_assignment(fig4_system(), 0) == ()


class TestEvaluator:
    def test_counts_and_caches(self):
        sys_ = fig3_system()
        ev = Evaluator(sys_, BusOptimisationOptions())
        cfg = basic_config(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        r1 = ev.analyse(cfg)
        r2 = ev.analyse(cfg)
        assert r1 is r2
        assert ev.evaluations == 1
        assert len(ev.trace) == 1 and ev.trace[0].exact

    def test_note_estimate_traced(self):
        sys_ = fig3_system()
        ev = Evaluator(sys_, BusOptimisationOptions())
        cfg = basic_config(n_minislots=5)
        ev.note_estimate(cfg, -12.0)
        assert not ev.trace[0].exact
        assert ev.trace[0].cost == -12.0


class TestBetter:
    def test_none_comparisons(self):
        assert not better(None, None)

    def test_lower_cost_wins(self):
        sys_ = fig3_system()
        ev = Evaluator(sys_, BusOptimisationOptions())
        a = ev.analyse(
            basic_config(static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0)
        )
        b = ev.analyse(
            basic_config(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        )
        assert better(a, b) == (a.cost_value < b.cost_value)
        assert better(a, None)
        assert not better(None, a)
