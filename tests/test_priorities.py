"""Unit tests for the modified critical-path list-scheduling priority."""

from repro.analysis.priorities import critical_path_priorities, message_costs
from repro.core.config import FlexRayConfig
from repro.model import Application, System, TaskGraph

from tests.util import fig3_system, scs_task, st_msg


def make_config():
    return FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)


class TestMessageCosts:
    def test_uses_bus_transmission_time(self):
        sys_ = fig3_system()
        costs = message_costs(sys_.application, make_config())
        assert costs == {"m1": 4, "m2": 3, "m3": 2}

    def test_overhead_affects_costs(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"),
            gd_static_slot=20,
            n_minislots=0,
            frame_overhead_bytes=8,
        )
        costs = message_costs(sys_.application, cfg)
        assert costs["m3"] == 10


class TestCriticalPathPriorities:
    def test_upstream_activity_has_higher_priority(self):
        sys_ = fig3_system()
        prio = critical_path_priorities(sys_.application, make_config())
        # t2 precedes m2 which precedes r2: priorities must decrease.
        assert prio["t2"] > prio["m2"] > prio["r2"]

    def test_tight_graph_outranks_slack_graph(self):
        tight = TaskGraph(
            name="tight",
            period=100,
            deadline=12,
            tasks=(scs_task("a", wcet=10, node="N1"),),
        )
        slack = TaskGraph(
            name="slack",
            period=100,
            deadline=90,
            tasks=(scs_task("b", wcet=10, node="N1"),),
        )
        app = Application("app", (tight, slack))
        System(("N1",), app)  # mapping validity
        prio = critical_path_priorities(app, make_config())
        assert prio["a"] > prio["b"]

    def test_priority_covers_every_activity(self):
        sys_ = fig3_system()
        prio = critical_path_priorities(sys_.application, make_config())
        names = {t.name for t in sys_.application.tasks()}
        names |= {m.name for m in sys_.application.messages()}
        assert set(prio) == names
