"""Unit tests for the CHI send buffers (communication controller)."""

from repro.flexray.controller import ChiQueues

from tests.util import basic_config, fig4_system


def make_chi(frame_ids=None, n_minislots=13):
    system = fig4_system()
    config = basic_config(
        frame_ids=frame_ids or {"m1": 1, "m2": 2, "m3": 3},
        n_minislots=n_minislots,
    )
    return system, config, ChiQueues(config, system)


class TestChiQueues:
    def test_queue_returns_sender_node(self):
        system, _, chi = make_chi()
        m1 = system.application.message("m1")
        assert chi.queue(m1, 0, 5) == "N1"
        assert chi.pending == 1

    def test_pop_respects_queue_time(self):
        system, _, chi = make_chi()
        m1 = system.application.message("m1")
        chi.queue(m1, 0, 10)
        # Slot starts before the frame was queued: nothing to send.
        assert chi.pop_for_slot(1, slot_start=9, minislot=1) is None
        assert chi.pop_for_slot(1, slot_start=10, minislot=1) == (m1, 0)
        assert chi.pending == 0

    def test_pop_respects_p_latest_tx(self):
        system, config, chi = make_chi()
        m1 = system.application.message("m1")
        chi.queue(m1, 0, 0)
        latest = chi.p_latest_tx("N1")  # 13 - 9 + 1 = 5
        assert latest == 5
        assert chi.pop_for_slot(1, slot_start=50, minislot=latest + 1) is None
        assert chi.pop_for_slot(1, slot_start=50, minislot=latest) == (m1, 0)

    def test_priority_order_within_shared_frame_id(self):
        system, _, chi = make_chi({"m1": 1, "m2": 2, "m3": 1})
        m1 = system.application.message("m1")  # priority 0
        m3 = system.application.message("m3")  # priority 1
        chi.queue(m3, 0, 0)
        chi.queue(m1, 0, 0)
        assert chi.pop_for_slot(1, 10, 1) == (m1, 0)
        assert chi.pop_for_slot(1, 10, 1) == (m3, 0)

    def test_fifo_among_instances_of_same_message(self):
        system, _, chi = make_chi()
        m1 = system.application.message("m1")
        chi.queue(m1, 1, 20)
        chi.queue(m1, 0, 10)
        assert chi.pop_for_slot(1, 30, 1) == (m1, 0)
        assert chi.pop_for_slot(1, 30, 1) == (m1, 1)

    def test_empty_slot_returns_none(self):
        _, __, chi = make_chi()
        assert chi.pop_for_slot(2, 10, 2) is None

    def test_max_frame_id(self):
        _, __, chi = make_chi({"m1": 1, "m2": 5, "m3": 3})
        assert chi.max_frame_id == 5

    def test_p_latest_none_for_silent_node(self):
        system, config, _ = make_chi()
        from tests.util import fig3_system

        st_system = fig3_system()
        st_config = basic_config(n_minislots=13)
        chi = ChiQueues(st_config, st_system)
        assert chi.p_latest_tx("N1") is None
