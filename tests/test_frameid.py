"""Unit tests for criticality-driven FrameID assignment (Eq. (4))."""

from repro.core.frameid import assign_frame_ids, message_criticalities

from tests.util import dyn_msg, fps_task, single_graph_system


def chain_system():
    """Three DYN messages with different deadlines/path depths."""
    tasks = [
        fps_task("a", wcet=2, node="N1", priority=1),
        fps_task("b", wcet=2, node="N2", priority=1),
        fps_task("c", wcet=2, node="N1", priority=2),
        fps_task("d", wcet=2, node="N2", priority=2),
    ]
    msgs = [
        dyn_msg("urgent", 4, "a", "b", deadline=20),
        dyn_msg("relaxed", 4, "c", "d", deadline=90),
    ]
    return single_graph_system(tasks, msgs, period=100, deadline=100)


class TestCriticalities:
    def test_cp_is_deadline_minus_longest_path(self):
        sys_ = chain_system()
        crit = message_criticalities(sys_)
        # urgent: LP = wcet(a) + C(urgent) = 2 + 4 = 6 -> CP = 14
        assert crit["urgent"] == 20 - 6
        assert crit["relaxed"] == 90 - 6

    def test_only_dyn_messages_considered(self):
        sys_ = chain_system()
        assert set(message_criticalities(sys_)) == {"urgent", "relaxed"}


class TestAssignment:
    def test_most_critical_gets_smallest_frame_id(self):
        fids = assign_frame_ids(chain_system())
        assert fids["urgent"] == 1
        assert fids["relaxed"] == 2

    def test_unique_and_contiguous(self):
        fids = assign_frame_ids(chain_system())
        assert sorted(fids.values()) == [1, 2]

    def test_deterministic_tie_break_by_name(self):
        tasks = [
            fps_task("a", wcet=2, node="N1", priority=1),
            fps_task("b", wcet=2, node="N2", priority=1),
        ]
        msgs = [
            dyn_msg("mx", 4, "a", "b"),
            dyn_msg("my", 4, "a", "b"),
        ]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        fids = assign_frame_ids(sys_)
        assert fids["mx"] == 1 and fids["my"] == 2

    def test_empty_when_no_dyn_messages(self):
        from tests.util import fig3_system

        assert assign_frame_ids(fig3_system()) == {}
