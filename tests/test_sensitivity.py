"""Tests for slack reporting and bus-load metrics."""

import pytest

from repro.analysis import analyse_system
from repro.analysis.sensitivity import bottlenecks, bus_load, slack_report
from repro.core.config import FlexRayConfig
from repro.errors import AnalysisError

from tests.util import basic_config, fig3_system, fig4_system


@pytest.fixture
def analysed_fig3():
    sys_ = fig3_system()
    cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
    return sys_, cfg, analyse_system(sys_, cfg)


class TestSlackReport:
    def test_sorted_tightest_first(self, analysed_fig3):
        sys_, _, res = analysed_fig3
        report = slack_report(sys_, res)
        slacks = [e.slack for e in report]
        assert slacks == sorted(slacks)

    def test_covers_all_activities(self, analysed_fig3):
        sys_, _, res = analysed_fig3
        assert len(slack_report(sys_, res)) == 8

    def test_slack_and_usage(self, analysed_fig3):
        sys_, _, res = analysed_fig3
        entry = next(e for e in slack_report(sys_, res) if e.name == "m1")
        assert entry.slack == 40 - res.wcrt["m1"]
        assert entry.usage == pytest.approx(res.wcrt["m1"] / 40)

    def test_bottlenecks_prefix(self, analysed_fig3):
        sys_, _, res = analysed_fig3
        assert bottlenecks(sys_, res, 3) == slack_report(sys_, res)[:3]

    def test_infeasible_rejected(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=8, n_minislots=0)
        res = analyse_system(sys_, cfg)
        with pytest.raises(AnalysisError):
            slack_report(sys_, res)


class TestBusLoad:
    def test_st_only_system(self, analysed_fig3):
        sys_, cfg, _ = analysed_fig3
        load = bus_load(sys_, cfg)
        # 9 MT of ST payload per 40 MT period; capacity 16 MT per 16 MT cycle.
        assert load.dyn_demand == 0.0
        assert 0 < load.st_demand < 1
        assert load.cycle_share_st == 1.0

    def test_dyn_system(self):
        sys_ = fig4_system()
        cfg = basic_config(frame_ids={"m1": 1, "m2": 2, "m3": 3})
        load = bus_load(sys_, cfg)
        assert load.st_demand == 0.0
        assert 0 < load.dyn_demand < 1
        assert 0 < load.cycle_share_st < 1

    def test_overload_detectable(self):
        sys_ = fig4_system()
        # A single minislot-wide DYN segment cannot carry 17 MT per period.
        cfg = FlexRayConfig(
            static_slots=("N1", "N2"),
            gd_static_slot=8,
            n_minislots=13,
            frame_ids={"m1": 1, "m2": 2, "m3": 3},
        )
        # shrink period pressure by checking the number is finite and
        # grows when the segment shrinks
        small = bus_load(sys_, cfg.with_dyn_length(13))
        large = bus_load(sys_, cfg.with_dyn_length(100))
        assert small.dyn_demand > large.dyn_demand