"""Smoke tests: every example script must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, timeout: int = 300) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Worst-case response times" in out
        assert "observed" in out

    def test_api_tour(self):
        """The doctest-style API tour must stay in sync with the API."""
        out = run_example("api_tour.py")
        assert "0 failures" in out

    def test_bus_trace(self):
        out = run_example("bus_trace.py")
        assert "dyn_tx_start" in out
        assert "R(m2)" in out

    @pytest.mark.slow
    def test_dyn_segment_sweep(self):
        out = run_example("dyn_segment_sweep.py")
        assert "best cost" in out

    @pytest.mark.slow
    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py")
        assert "trace:" in out

    @pytest.mark.slow
    def test_slack_analysis(self):
        out = run_example("slack_analysis.py")
        assert "bus load" in out or "nothing to analyse" in out
