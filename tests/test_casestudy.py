"""Tests for the cruise-controller case study."""

from repro.casestudy import cruise_controller, shape_summary
from repro.model import validate_system


class TestShape:
    def test_paper_published_shape(self):
        summary = shape_summary(cruise_controller())
        assert summary == {
            "nodes": 5,
            "graphs": 4,
            "tasks": 54,
            "messages": 26,
            "tt_graphs": 2,
            "et_graphs": 2,
        }

    def test_structurally_valid(self):
        findings = validate_system(cruise_controller())
        assert [f for f in findings if f.startswith("error")] == []

    def test_no_priority_ties(self):
        findings = validate_system(cruise_controller())
        assert not any("share priority" in f for f in findings)

    def test_every_node_hosts_tasks(self):
        system = cruise_controller()
        for node in system.nodes:
            assert system.tasks_on(node)

    def test_utilisations_realistic(self):
        system = cruise_controller()
        for node in system.nodes:
            assert 0.0 < system.node_utilisation(node) < 0.8

    def test_deterministic_construction(self):
        a = cruise_controller()
        b = cruise_controller()
        assert a.describe() == b.describe()
        assert [t.priority for t in a.application.tasks()] == [
            t.priority for t in b.application.tasks()
        ]

    def test_tt_graphs_use_static_messages_only(self):
        system = cruise_controller()
        for g in system.application.graphs:
            if all(t.is_scs for t in g.tasks):
                assert all(m.is_static for m in g.messages)
            else:
                assert all(m.is_dynamic for m in g.messages)
