"""Shared builders for the test suite.

Every system, configuration and scenario factory that more than one
test module needs lives here -- the individual modules import these
instead of keeping their own drifting copies:

* task/message/system builders (``scs_task`` ... ``fig4_system``),
* ``FIG4_FRAME_IDS`` -- the frame-id map the Fig. 4 DYN messages use,
* ``campaign_systems`` / ``small_bus`` -- the canonical two-system
  campaign matrix and the tight search budget that keeps it fast,
* ``bound_scenario_systems`` / ``fuzz_faults`` -- the (system, config)
  grid and fault-model scenarios behind the fault-hypothesis soundness
  referee (``tests/test_faults.py``) and its hypothesis twin
  (``tests/test_properties.py``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.config import FlexRayConfig
from repro.core.search import BusOptimisationOptions
from repro.flexray.faults import (
    BlackoutFaults,
    GilbertElliottFaults,
    IidFaults,
)
from repro.model import (
    Application,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
)

#: Frame identifiers for the three DYN messages of :func:`fig4_system`.
FIG4_FRAME_IDS = {"m1": 1, "m2": 2, "m3": 3}


def scs_task(name: str, wcet: int = 1, node: str = "N1", **kw) -> Task:
    return Task(name=name, wcet=wcet, node=node, policy=SchedulingPolicy.SCS, **kw)


def fps_task(name: str, wcet: int = 1, node: str = "N1", priority: int = 0, **kw) -> Task:
    return Task(
        name=name,
        wcet=wcet,
        node=node,
        policy=SchedulingPolicy.FPS,
        priority=priority,
        **kw,
    )


def st_msg(name: str, size: int, sender: str, receiver: str, **kw) -> Message:
    return Message(
        name=name,
        size=size,
        sender=sender,
        receivers=(receiver,),
        kind=MessageKind.ST,
        **kw,
    )


def dyn_msg(
    name: str, size: int, sender: str, receiver: str, priority: int = 0, **kw
) -> Message:
    return Message(
        name=name,
        size=size,
        sender=sender,
        receivers=(receiver,),
        kind=MessageKind.DYN,
        priority=priority,
        **kw,
    )


def single_graph_system(
    tasks: Sequence[Task],
    messages: Sequence[Message] = (),
    nodes: Tuple[str, ...] = ("N1", "N2"),
    period: int = 100,
    deadline: int = 100,
    precedences: Tuple[Tuple[str, str], ...] = (),
) -> System:
    graph = TaskGraph(
        name="g0",
        period=period,
        deadline=deadline,
        tasks=tuple(tasks),
        messages=tuple(messages),
        precedences=precedences,
    )
    return System(nodes, Application("app", (graph,)))


def fig3_system(period: int = 40, deadline: int = 40) -> System:
    """Two nodes; N1 sends m1 (4 MT), N2 sends m2 (3 MT) and m3 (2 MT), all ST."""
    tasks = [
        scs_task("t1", wcet=1, node="N1"),
        scs_task("t2", wcet=1, node="N2"),
        scs_task("r1", wcet=1, node="N2"),
        scs_task("r2", wcet=1, node="N1"),
        scs_task("r3", wcet=1, node="N1"),
    ]
    msgs = [
        st_msg("m1", 4, "t1", "r1"),
        st_msg("m2", 3, "t2", "r2"),
        st_msg("m3", 2, "t2", "r3"),
    ]
    return single_graph_system(tasks, msgs, period=period, deadline=deadline)


def fig4_system(period: int = 200, deadline: int = 120) -> System:
    """Two nodes exchanging three DYN messages (paper Fig. 4 shape).

    N1 sends m1 (9 MT) and m3 (3 MT); N2 sends m2 (5 MT).
    priority(m1) > priority(m3).
    """
    tasks = [
        scs_task("s1", wcet=1, node="N1"),
        scs_task("s2", wcet=1, node="N2"),
        fps_task("d1", wcet=1, node="N2", priority=1),
        fps_task("d2", wcet=1, node="N1", priority=1),
        fps_task("d3", wcet=1, node="N2", priority=2),
    ]
    msgs = [
        dyn_msg("m1", 9, "s1", "d1", priority=0),
        dyn_msg("m2", 5, "s2", "d2", priority=0),
        dyn_msg("m3", 3, "s1", "d3", priority=1),
    ]
    return single_graph_system(tasks, msgs, period=period, deadline=deadline)


def campaign_systems():
    """The canonical two-system campaign matrix: one ST-heavy system
    (paper Fig. 3) and one DYN-heavy system (paper Fig. 4)."""
    return {"static": fig3_system(), "dyn": fig4_system()}


def small_bus(**kw) -> BusOptimisationOptions:
    """A tightly budgeted search space: keeps optimiser-driving tests
    (campaigns, the service layer) fast without changing semantics."""
    return BusOptimisationOptions(
        max_dyn_points=8,
        ee_max_dyn_points=12,
        max_extra_static_slots=0,
        max_slot_size_steps=0,
        **kw,
    )


def bound_scenario_systems():
    """(system, config) pairs exercised by the fault-bound referees:
    an all-ST system, the Fig. 4 DYN system, and the same system with a
    longer dynamic segment."""
    return [
        (fig3_system(period=80, deadline=80), basic_config()),
        (
            fig4_system(),
            basic_config(frame_ids=FIG4_FRAME_IDS),
        ),
        (
            fig4_system(),
            basic_config(n_minislots=20, frame_ids=FIG4_FRAME_IDS),
        ),
    ]


def fuzz_faults(config):
    """The fault-model grid of the soundness referee: iid channels at
    two rates x three seeds, one bursty Gilbert--Elliott channel, and a
    three-cycle blackout."""
    scenarios = []
    for rate in (0.3, 0.6):
        for seed in (1, 2, 3):
            scenarios.append(IidFaults(rate=rate, seed=seed))
    scenarios.append(
        GilbertElliottFaults(
            good_to_bad=0.4, bad_to_good=0.3, bad_rate=0.8, seed=5
        )
    )
    scenarios.append(BlackoutFaults(((0, 3 * config.gd_cycle),)))
    return scenarios


def basic_config(
    system: System = None,
    static_slots: Tuple[str, ...] = ("N1", "N2"),
    gd_static_slot: int = 8,
    n_minislots: int = 13,
    frame_ids=None,
) -> FlexRayConfig:
    return FlexRayConfig(
        static_slots=static_slots,
        gd_static_slot=gd_static_slot,
        n_minislots=n_minislots,
        frame_ids=frame_ids or {},
    )
