"""Unit tests for TaskGraph: structure, ordering, path metrics."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.model import Message, MessageKind, Task, TaskGraph

from tests.util import dyn_msg, scs_task, st_msg


def chain_graph():
    """t1 (N1) --m--> t2 (N2) --prec--> t3 (N2)."""
    return TaskGraph(
        name="g",
        period=50,
        deadline=40,
        tasks=(
            scs_task("t1", wcet=2, node="N1"),
            scs_task("t2", wcet=3, node="N2"),
            scs_task("t3", wcet=4, node="N2"),
        ),
        messages=(st_msg("m", 5, "t1", "t2"),),
        precedences=(("t2", "t3"),),
    )


class TestStructure:
    def test_topological_order_respects_edges(self):
        g = chain_graph()
        order = g.topological_order()
        assert order.index("t1") < order.index("m") < order.index("t2")
        assert order.index("t2") < order.index("t3")

    def test_sources_and_sinks(self):
        g = chain_graph()
        assert g.sources() == ("t1",)
        assert g.sinks() == ("t3",)

    def test_predecessors_successors(self):
        g = chain_graph()
        assert g.predecessors("t2") == ("m",)
        assert g.successors("t1") == ("m",)
        assert g.successors("t3") == ()

    def test_unknown_activity_raises(self):
        g = chain_graph()
        with pytest.raises(ModelError):
            g.successors("nope")
        with pytest.raises(ModelError):
            g.task("nope")
        with pytest.raises(ModelError):
            g.message("nope")

    def test_task_and_message_lookup(self):
        g = chain_graph()
        assert g.task("t1").wcet == 2
        assert g.message("m").size == 5


class TestValidation:
    def test_rejects_cycle(self):
        with pytest.raises(ValidationError, match="cycle"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a"), scs_task("b")),
                precedences=(("a", "b"), ("b", "a")),
            )

    def test_rejects_duplicate_task_names(self):
        with pytest.raises(ValidationError, match="duplicate"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a"), scs_task("a")),
            )

    def test_rejects_message_shadowing_task_name(self):
        with pytest.raises(ValidationError, match="duplicate"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
                messages=(st_msg("a", 1, "a", "b"),),
            )

    def test_rejects_unknown_sender(self):
        with pytest.raises(ValidationError, match="sender"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a", node="N1"),),
                messages=(st_msg("m", 1, "zz", "a"),),
            )

    def test_rejects_unknown_receiver(self):
        with pytest.raises(ValidationError, match="receiver"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a", node="N1"),),
                messages=(st_msg("m", 1, "a", "zz"),),
            )

    def test_rejects_same_node_message(self):
        with pytest.raises(ValidationError, match="same node"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a", node="N1"), scs_task("b", node="N1")),
                messages=(st_msg("m", 1, "a", "b"),),
            )

    def test_rejects_self_loop_precedence(self):
        with pytest.raises(ValidationError, match="self-loop"):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a"),),
                precedences=(("a", "a"),),
            )

    def test_rejects_precedence_to_message(self):
        with pytest.raises(ValidationError):
            TaskGraph(
                name="g",
                period=10,
                deadline=10,
                tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
                messages=(st_msg("m", 1, "a", "b"),),
                precedences=(("m", "b"),),
            )

    def test_rejects_empty_graph(self):
        with pytest.raises(ValidationError):
            TaskGraph(name="g", period=10, deadline=10, tasks=())

    def test_rejects_zero_period(self):
        with pytest.raises(ValidationError):
            TaskGraph(name="g", period=0, deadline=10, tasks=(scs_task("a"),))


class TestPathMetrics:
    def test_longest_path_to_with_byte_costs(self):
        g = chain_graph()
        # t1(2) -> m(5) -> t2(3) -> t3(4)
        assert g.longest_path_to("t1") == 2
        assert g.longest_path_to("m") == 7
        assert g.longest_path_to("t2") == 10
        assert g.longest_path_to("t3") == 14

    def test_longest_path_from(self):
        g = chain_graph()
        assert g.longest_path_from("t1") == 14
        assert g.longest_path_from("m") == 12
        assert g.longest_path_from("t3") == 4

    def test_message_cost_override(self):
        g = chain_graph()
        assert g.longest_path_from("t1", {"m": 50}) == 59

    def test_diamond_takes_max_branch(self):
        g = TaskGraph(
            name="d",
            period=100,
            deadline=100,
            tasks=(
                scs_task("src", wcet=1),
                scs_task("fast", wcet=2),
                scs_task("slow", wcet=30),
                scs_task("sink", wcet=1),
            ),
            precedences=(
                ("src", "fast"),
                ("src", "slow"),
                ("fast", "sink"),
                ("slow", "sink"),
            ),
        )
        assert g.longest_path_to("sink") == 32
        assert g.longest_path_from("src") == 32

    def test_multi_receiver_message_edges(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(
                scs_task("a", node="N1"),
                scs_task("b", node="N2"),
                scs_task("c", node="N2"),
            ),
            messages=(
                Message(
                    "m",
                    size=1,
                    sender="a",
                    receivers=("b", "c"),
                    kind=MessageKind.ST,
                ),
            ),
        )
        assert set(g.successors("m")) == {"b", "c"}
        assert g.predecessors("b") == ("m",)
