"""Unit tests for the schedulability-degree cost function (Eq. (5))."""

import pytest

from repro.core.cost import cost_function
from repro.errors import AnalysisError

from tests.util import fig3_system


def wcrt_for(system, default):
    names = [t.name for t in system.application.tasks()]
    names += [m.name for m in system.application.messages()]
    return {n: default for n in names}


class TestCostFunction:
    def test_schedulable_cost_is_negative(self):
        sys_ = fig3_system(deadline=40)
        wcrt = wcrt_for(sys_, 10)
        cost = cost_function(sys_.application, wcrt)
        assert cost.schedulable
        assert cost.value == (10 - 40) * 8  # 8 activities
        assert cost.misses == 0
        assert cost.total_slack == 240

    def test_single_miss_dominates(self):
        sys_ = fig3_system(deadline=40)
        wcrt = wcrt_for(sys_, 10)
        wcrt["m3"] = 55
        cost = cost_function(sys_.application, wcrt)
        assert not cost.schedulable
        assert cost.value == 15  # only the violation counts
        assert cost.misses == 1
        assert cost.worst_violation == 15

    def test_multiple_misses_sum(self):
        sys_ = fig3_system(deadline=40)
        wcrt = wcrt_for(sys_, 10)
        wcrt["m3"] = 55
        wcrt["m2"] = 45
        cost = cost_function(sys_.application, wcrt)
        assert cost.value == 20
        assert cost.misses == 2
        assert cost.worst_violation == 15

    def test_exact_deadline_is_schedulable(self):
        sys_ = fig3_system(deadline=40)
        wcrt = wcrt_for(sys_, 40)
        cost = cost_function(sys_.application, wcrt)
        assert cost.schedulable and cost.value == 0

    def test_individual_deadline_respected(self):
        sys_ = fig3_system(deadline=40)
        # message deadline via application.deadline_of falls back to graph;
        # give one activity a response beyond an individual deadline.
        wcrt = wcrt_for(sys_, 10)
        cost_default = cost_function(sys_.application, wcrt)
        assert cost_default.schedulable

    def test_missing_activity_raises(self):
        sys_ = fig3_system()
        wcrt = wcrt_for(sys_, 10)
        del wcrt["m3"]
        with pytest.raises(AnalysisError, match="m3"):
            cost_function(sys_.application, wcrt)

    def test_float_conversion(self):
        sys_ = fig3_system(deadline=40)
        cost = cost_function(sys_.application, wcrt_for(sys_, 10))
        assert float(cost) == cost.value
