"""Additional model edge-case coverage."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.model import (
    Application,
    Message,
    MessageKind,
    System,
    Task,
    TaskGraph,
)

from tests.util import fps_task, scs_task, st_msg


class TestGraphEdgeCases:
    def test_single_task_graph(self):
        g = TaskGraph(name="g", period=10, deadline=10, tasks=(scs_task("a"),))
        assert g.sources() == ("a",)
        assert g.sinks() == ("a",)
        assert g.longest_path_from("a") == g.task("a").wcet

    def test_parallel_independent_tasks(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a"), scs_task("b"), scs_task("c")),
        )
        assert set(g.sources()) == {"a", "b", "c"}
        assert set(g.sinks()) == {"a", "b", "c"}

    def test_multi_hop_chain_costs(self):
        g = TaskGraph(
            name="g",
            period=100,
            deadline=100,
            tasks=(
                scs_task("a", wcet=1, node="N1"),
                scs_task("b", wcet=2, node="N2"),
                scs_task("c", wcet=3, node="N1"),
            ),
            messages=(
                st_msg("m1", 10, "a", "b"),
                st_msg("m2", 20, "b", "c"),
            ),
        )
        assert g.longest_path_to("c") == 1 + 10 + 2 + 20 + 3

    def test_activity_cost_for_message_uses_size_without_map(self):
        g = TaskGraph(
            name="g",
            period=100,
            deadline=100,
            tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
            messages=(st_msg("m", 7, "a", "b"),),
        )
        assert g.activity_cost("m") == 7
        assert g.activity_cost("m", {"m": 70}) == 70

    def test_duplicate_precedence_edges_collapse_in_scheduler(self):
        # Duplicate precedences are legal in the model; the DAG stays valid.
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a"), scs_task("b")),
            precedences=(("a", "b"), ("a", "b")),
        )
        assert list(g.predecessors("b")).count("a") == 2


class TestApplicationEdgeCases:
    def test_hyperperiod_of_coprime_periods(self):
        g1 = TaskGraph(name="g1", period=7, deadline=7, tasks=(scs_task("a"),))
        g2 = TaskGraph(name="g2", period=11, deadline=11, tasks=(scs_task("b"),))
        assert Application("app", (g1, g2)).hyperperiod == 77

    def test_sender_node_helper(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
            messages=(st_msg("m", 1, "a", "b"),),
        )
        app = Application("app", (g,))
        assert app.sender_node("m") == "N1"
        with pytest.raises(ModelError):
            app.sender_node("zz")


class TestSystemEdgeCases:
    def test_single_node_system_rejects_any_message(self):
        # A message requires sender/receiver on different nodes, so a
        # one-node system can only host message-free graphs.
        g = TaskGraph(name="g", period=10, deadline=10, tasks=(scs_task("a"),))
        system = System(("N1",), Application("app", (g,)))
        assert system.st_sender_nodes() == ()
        assert system.dyn_sender_nodes() == ()

    def test_multicast_message_counts_once(self):
        g = TaskGraph(
            name="g",
            period=10,
            deadline=10,
            tasks=(
                scs_task("a", node="N1"),
                scs_task("b", node="N2"),
                scs_task("c", node="N3"),
            ),
            messages=(
                Message(
                    "m",
                    size=1,
                    sender="a",
                    receivers=("b", "c"),
                    kind=MessageKind.ST,
                ),
            ),
        )
        system = System(("N1", "N2", "N3"), Application("app", (g,)))
        assert [m.name for m in system.messages_sent_by("N1")] == ["m"]
