"""Unit tests for FPS response-time analysis with SCS interference."""

import math

import pytest

from repro.analysis.availability import NodeAvailability
from repro.analysis.fps import (
    fps_task_busy_window,
    hp_tasks,
    node_local_fps_cost,
)

from tests.util import fps_task, scs_task, single_graph_system


def periods(mapping):
    return lambda name: mapping[name]


class TestHpTasks:
    def test_strictly_higher_priority_included(self):
        a = fps_task("a", priority=1)
        b = fps_task("b", priority=2)
        assert hp_tasks(b, [a, b]) == [a]
        assert hp_tasks(a, [a, b]) == []

    def test_equal_priority_peers_included(self):
        a = fps_task("a", priority=1)
        b = fps_task("b", priority=1)
        assert hp_tasks(b, [a, b]) == [a]
        assert hp_tasks(a, [a, b]) == []  # 'a' sorts before 'b'

    def test_scs_tasks_never_interfere_here(self):
        s = scs_task("s")
        b = fps_task("b", priority=9)
        assert hp_tasks(b, [s, b]) == []


class TestBusyWindow:
    def test_no_interference_full_availability(self):
        av = NodeAvailability([], period=100)
        t = fps_task("t", wcet=7)
        r = fps_task_busy_window(t, [], av, {}, periods({}), cap=10_000)
        assert r.value == 7 and r.converged

    def test_classic_rta_two_tasks(self):
        # hp: C=2, T=10; own C=5 -> w = 5 + ceil(w/10)*2 -> 7
        av = NodeAvailability([], period=100)
        hi = fps_task("hi", wcet=2, priority=1)
        lo = fps_task("lo", wcet=5, priority=2)
        r = fps_task_busy_window(
            lo, [hi], av, {}, periods({"hi": 10, "lo": 100}), cap=10_000
        )
        assert r.value == 7

    def test_rta_with_second_preemption(self):
        # hp: C=4, T=10; own C=7 -> w = 7+4 = 11 -> 7+8 = 15 -> stable
        av = NodeAvailability([], period=1000)
        hi = fps_task("hi", wcet=4, priority=1)
        lo = fps_task("lo", wcet=7, priority=2)
        r = fps_task_busy_window(
            lo, [hi], av, {}, periods({"hi": 10, "lo": 1000}), cap=10_000
        )
        assert r.value == 15

    def test_jitter_increases_interference(self):
        av = NodeAvailability([], period=1000)
        hi = fps_task("hi", wcet=4, priority=1)
        lo = fps_task("lo", wcet=7, priority=2)
        r = fps_task_busy_window(
            lo, [hi], av, {"hi": 6}, periods({"hi": 10, "lo": 1000}), cap=10_000
        )
        # w=15 without jitter; with J=6: ceil((15+6)/10)=3 -> w=19 -> ceil(25/10)=3 stable
        assert r.value == 19

    def test_scs_busy_interval_delays_task(self):
        # Node busy [0, 50) each period of 100; FPS task C=5 released at busy start.
        av = NodeAvailability([(0, 50)], period=100)
        t = fps_task("t", wcet=5)
        r = fps_task_busy_window(t, [], av, {}, periods({}), cap=10_000)
        assert r.value == 55

    def test_critical_instant_is_worst_busy_start(self):
        # Two SCS blocks; the longer one dominates.
        av = NodeAvailability([(10, 20), (40, 70)], period=100)
        t = fps_task("t", wcet=5)
        r = fps_task_busy_window(t, [], av, {}, periods({}), cap=10_000)
        assert r.value == 35  # released at 40, runs [70, 75)

    def test_divergent_load_hits_cap(self):
        av = NodeAvailability([], period=100)
        hi = fps_task("hi", wcet=10, priority=1)
        lo = fps_task("lo", wcet=5, priority=2)
        r = fps_task_busy_window(
            lo, [hi], av, {}, periods({"hi": 10, "lo": 100}), cap=500
        )
        assert r.value == 500 and not r.converged

    def test_no_slack_hits_cap(self):
        av = NodeAvailability([(0, 100)], period=100)
        t = fps_task("t", wcet=1)
        r = fps_task_busy_window(t, [], av, {}, periods({}), cap=777)
        assert r.value == 777 and not r.converged


class TestNodeLocalCost:
    def test_zero_without_fps_tasks(self):
        sys_ = single_graph_system([scs_task("s", node="N1")], nodes=("N1",))
        assert node_local_fps_cost(sys_, "N1", [(0, 10)], 100) == 0.0

    def test_cost_grows_with_scs_load(self):
        sys_ = single_graph_system(
            [
                scs_task("s", wcet=10, node="N1"),
                fps_task("e", wcet=5, node="N1", priority=1),
            ],
            nodes=("N1",),
        )
        low = node_local_fps_cost(sys_, "N1", [(0, 10)], 100)
        high = node_local_fps_cost(sys_, "N1", [(0, 60)], 100)
        assert high > low

    def test_infinite_when_fps_starves(self):
        sys_ = single_graph_system(
            [fps_task("e", wcet=5, node="N1", priority=1)], nodes=("N1",)
        )
        assert node_local_fps_cost(sys_, "N1", [(0, 100)], 100) == math.inf
