"""FPS critical-instant pruning: the incremental per-instant bound.

The third-generation kernel skips a critical instant t once a single
table-driven ``advance`` shows ``phi_t(W) <= W`` for the worst window W
found so far (``phi_t`` is the instant's monotone window map), guarded
by an activation-count bound that certifies the skipped instant would
also have converged within the iteration limit.  The claim shipped with
it -- validated here the same way PR 2 pinned its findings -- is
**bit-identical results**: both the worst window *and* the convergence
flag equal the unpruned path's, for arbitrary availability patterns,
interferer sets, jitters, seeds and caps.

Two layers:

* a hypothesis property test over randomised kernels (pruned vs.
  unpruned, seeded and unseeded), plus deterministic edge patterns;
* byte-identical WCRTs across the bench sweep: the full analysis under
  the default (pruned) mode against the ``warm_start="off"`` oracle,
  which runs every instant cold -- asserted point-by-point over the
  same OBC/EE sweep the benchmarks measure.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import AnalysisContext, AnalysisOptions, NodeAvailability
from repro.analysis.fps import prepped_busy_window, seeded_busy_window
from repro.core.bbc import basic_configuration
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.synth import paper_suite


@st.composite
def _kernel_case(draw):
    period = draw(st.integers(min_value=4, max_value=120))
    n_busy = draw(st.integers(min_value=0, max_value=6))
    busy = []
    for _ in range(n_busy):
        s = draw(st.integers(min_value=0, max_value=period - 2))
        e = draw(st.integers(min_value=s + 1, max_value=period))
        busy.append((s, e))
    n_info = draw(st.integers(min_value=0, max_value=4))
    info = tuple(
        (
            f"j{k}",
            draw(st.integers(min_value=3, max_value=250)),
            draw(st.booleans()),
            draw(st.integers(min_value=1, max_value=8)),
        )
        for k in range(n_info)
    )
    jitters = {
        name: draw(st.integers(min_value=0, max_value=60))
        for name, _, _, _ in info
    }
    wcet = draw(st.integers(min_value=1, max_value=12))
    cap = draw(st.integers(min_value=40, max_value=6000))
    own = draw(st.integers(min_value=0, max_value=40))
    return busy, period, info, jitters, wcet, cap, own


class TestPruningEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(_kernel_case())
    def test_pruned_equals_unpruned(self, case):
        busy, period, info, jitters, wcet, cap, own = case
        availability = NodeAvailability(busy, period)
        unpruned = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=False
        )
        pruned = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=True
        )
        assert pruned == unpruned

    @settings(max_examples=200, deadline=None)
    @given(_kernel_case(), st.randoms(use_true_random=False))
    def test_pruned_equals_unpruned_with_certified_seeds(self, case, rng):
        """Seeds and pruning compose: still bit-identical to cold."""
        busy, period, info, jitters, wcet, cap, own = case
        availability = NodeAvailability(busy, period)
        cold = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=False
        )
        # Converged demands from an unpruned seeded run are certified
        # lower bounds; any value at or below them must reproduce cold.
        _, _, demands = seeded_busy_window(
            wcet, info, availability, jitters, cap, own, None, False
        )
        seeds = [None if d is None else rng.randint(0, d) for d in demands]
        value, ok, _ = seeded_busy_window(
            wcet, info, availability, jitters, cap, own, seeds, True
        )
        assert (value, ok) == cold

    def test_zero_wcet_and_degenerate_patterns(self):
        """Generic-path corners: idle node, zero slack, wcet == 0."""
        cases = [
            ([], 10, 0),            # fully idle node
            ([(0, 10)], 10, 3),     # zero slack
            ([(2, 5)], 10, 0),      # wcet == 0 (generic path)
        ]
        info = (("j0", 7, False, 2),)
        jitters = {"j0": 5}
        for busy, period, wcet in cases:
            availability = NodeAvailability(busy, period)
            for prune in (False, True):
                got = prepped_busy_window(
                    wcet, info, availability, jitters, 500, 0, prune=prune
                )
                assert got == prepped_busy_window(
                    wcet, info, availability, jitters, 500, 0, prune=False
                )

    def test_eval_order_is_a_permutation(self):
        av = NodeAvailability([(1, 4), (6, 7), (8, 9)], 12)
        tables = av.instant_advance_tables()
        instants, eval_order = tables[0], tables[6]
        assert sorted(eval_order) == list(range(len(instants)))
        # Longest initial busy run first.
        blocks = []
        for i in eval_order:
            t = instants[i]
            block = next((e - s for s, e in av.busy if s == t), 0)
            blocks.append(block)
        assert blocks == sorted(blocks, reverse=True)


class TestPruningOnBenchSweep:
    def test_byte_identical_wcrt_across_bench_sweep(self):
        """The default (pruned) analysis vs. the unpruned cold oracle,
        point by point over the benchmarks' OBC/EE sweep workload."""
        system = paper_suite(4, count=1, seed=23)[0]
        options = BusOptimisationOptions()
        st_nodes = system.st_sender_nodes()
        slot = min_static_slot(system, options) if st_nodes else 0
        lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
        configs = [
            basic_configuration(system, n, options)
            for n in sweep_lengths(lo, hi, 64)
        ]
        pruned_ctx = AnalysisContext(system)  # default: certified + pruned
        oracle_ctx = AnalysisContext(system, AnalysisOptions(warm_start="off"))
        for config in configs:
            pruned = pruned_ctx.analyse(config)
            oracle = oracle_ctx.analyse(config)
            assert pruned.wcrt == oracle.wcrt, config.describe()
            assert pruned.converged == oracle.converged
            assert pruned.schedulable == oracle.schedulable
            assert pruned.feasible == oracle.feasible
