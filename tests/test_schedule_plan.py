"""Retimable schedule plan: replay equivalence and retiming.

The tentpole property: a :class:`SchedulePlan` built once per bus-speed
parameter set must, replayed at any cycle geometry, produce a table
byte-identical to a from-scratch ``build_schedule`` at that geometry --
including the satellite property that building at ``gd_cycle=C1`` and
retiming/replaying to ``C2`` equals building fresh at ``C2``.
"""

import random

import pytest

from repro.analysis.priorities import critical_path_priorities
from repro.analysis.scheduler import SchedulePlan, ScheduleOptions, build_schedule
from repro.core.bbc import basic_configuration
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.synth import paper_suite

from tests.util import fig3_system, fig4_system


def _table_fingerprint(table):
    """Every observable of a schedule table, absolute times included."""
    return (
        table.horizon,
        {k: (e.task.name, e.start, e.finish) for k, e in table.tasks.items()},
        {
            k: (
                e.message.name, e.cycle, e.slot, e.offset, e.ct,
                e.slot_start, e.start, e.finish,
            )
            for k, e in table.messages.items()
        },
        {n: table.busy_intervals(n) for n in _nodes_of(table)},
        dict(table._frame_used),
    )


def _nodes_of(table):
    return sorted({e.task.node for e in table.tasks.values()})


def _sweep_configs(system, per_system=8):
    options = BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    return [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, per_system)
    ]


class TestReplayEquivalence:
    @pytest.mark.parametrize("fps_aware", [False, True])
    def test_plan_replay_equals_fresh_build(self, fps_aware):
        """One plan, replayed across a DYN sweep == per-config builds."""
        rng = random.Random(20070429)
        options = ScheduleOptions(fps_aware=fps_aware)
        for n_nodes in (2, 3, 4):
            system = paper_suite(
                n_nodes, count=1, seed=rng.randrange(10_000)
            )[0]
            configs = _sweep_configs(system)
            plan = None
            for config in configs:
                fresh = build_schedule(system, config, options)
                if plan is None:
                    plan = SchedulePlan(
                        system,
                        options,
                        critical_path_priorities(system.application, config),
                    )
                replayed = plan.replay(config)
                assert _table_fingerprint(replayed) == _table_fingerprint(
                    fresh
                ), f"replay diverged ({n_nodes} nodes, {config.describe()})"

    def test_build_at_c1_replayed_at_c2_equals_fresh_c2(self):
        """The retiming satellite property, ST messages included."""
        system = paper_suite(4, count=1, seed=23)[0]
        assert system.application.st_messages()
        configs = _sweep_configs(system)
        c1, c2 = configs[0], configs[-1]
        assert c1.gd_cycle != c2.gd_cycle
        options = ScheduleOptions()
        plan = SchedulePlan(
            system, options, critical_path_priorities(system.application, c1)
        )
        plan.replay(c1)  # "build at C1" -- replay must be stateless
        assert _table_fingerprint(plan.replay(c2)) == _table_fingerprint(
            build_schedule(system, c2, options)
        )

    def test_no_st_messages_tables_identical_across_sweep(self):
        """Purely event-triggered systems: one placement set, retimed."""
        system = fig4_system()
        configs = _sweep_configs(system)
        options = ScheduleOptions()
        plan = SchedulePlan(
            system,
            options,
            critical_path_priorities(system.application, configs[0]),
        )
        first = plan.replay(configs[0])
        for config in configs[1:]:
            table = build_schedule(system, config, options)
            # Index-space placements coincide...
            assert table.tasks == first.tasks
            assert table.messages == first.messages
            # ... so retiming the first table IS the fresh build.
            assert _table_fingerprint(
                first.retime_for(config)
            ) == _table_fingerprint(table)


class TestRetimeFor:
    def test_retime_rebinds_derived_message_times(self):
        system = paper_suite(4, count=1, seed=23)[0]
        configs = _sweep_configs(system)
        c1 = configs[0]
        table = build_schedule(system, c1)
        c2 = c1.with_dyn_length(c1.n_minislots + 40)
        retimed = table.retime_for(c2)
        assert retimed.config is c2
        for key, entry in retimed.messages.items():
            original = table.messages[key]
            # Placement indices are preserved bit for bit...
            assert (entry.cycle, entry.slot, entry.offset, entry.ct) == (
                original.cycle, original.slot, original.offset, original.ct
            )
            assert entry == original  # dataclass equality is index-space
            # ... while derived absolute times follow the new geometry.
            expected = (
                entry.cycle * c2.gd_cycle
                + (entry.slot - 1) * c2.gd_static_slot
            )
            assert entry.slot_start == expected
            if entry.cycle > 0:
                assert entry.slot_start != original.slot_start

    def test_clone_for_alias_kept(self):
        system = fig3_system()
        config = _sweep_configs(system, per_system=1)[0]
        table = build_schedule(system, config)
        assert table.clone_for(config).tasks == table.tasks
