"""Chunked parallel OBC outer loop (BusOptimisationOptions.obc_chunk_size).

Static-segment variants are independent until the first schedulable hit,
so a chunk's initial candidate sets can race through one
``Evaluator.analyse_many`` batch.  The guarantees pinned here:

* ``obc_chunk_size=1`` is byte-identical to the pre-chunking loop (it
  *is* the pre-chunking loop -- no prefetch happens);
* at a fixed chunk size, serial and parallel runs are byte-identical
  (evaluations, cache hits, trace, result);
* chunking never changes the *outcome*: the first-hit resolution scans
  variants in serial order, so the best configuration and its cost
  equal the unchunked run's -- only the evaluation count may grow
  (prefetched candidates of variants past the stopping one);
* for OBC/EE without early stopping, chunking is a pure batching
  transformation: even the trace is identical.
"""

import dataclasses

import pytest

from repro.core import optimise_obc
from repro.core.obc import _static_variants
from repro.core.search import BusOptimisationOptions
from repro.synth import paper_suite


def _small_options(**kw):
    return BusOptimisationOptions(
        ee_max_dyn_points=32,
        cf_candidates=64,
        max_extra_static_slots=1,
        max_slot_size_steps=2,
        **kw,
    )


def _outcome(result):
    cfg = result.config
    return (
        result.cost,
        result.schedulable,
        result.evaluations,
        result.cache_hits,
        None if cfg is None else cfg.cache_key(),
        result.trace,
    )


def _best_key(result):
    cfg = result.config
    return (
        None if cfg is None else cfg.cache_key(),
        result.cost,
        result.schedulable,
    )


@pytest.fixture(scope="module")
def system():
    return paper_suite(3, count=1, seed=23)[0]


class TestChunkedOBC:
    def test_variant_enumeration_matches_serial_loop(self, system):
        options = _small_options()
        variants = _static_variants(system, options)
        assert variants, "workload must produce static variants"
        # Serial order: slot count outer, slot size inner, both ascending.
        keys = [
            (v[0].n_static_slots, v[0].gd_static_slot) for v in variants
        ]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("method", ["exhaustive", "curvefit"])
    def test_chunked_same_best_as_unchunked(self, system, method):
        base = optimise_obc(system, _small_options(), method)
        for chunk in (2, 3, 100):
            chunked = optimise_obc(
                system, _small_options(obc_chunk_size=chunk), method
            )
            assert _best_key(chunked) == _best_key(base), (
                f"chunk={chunk} changed the {method} outcome"
            )
            # The racing chunk may analyse more, never fewer, candidates.
            assert chunked.evaluations >= base.evaluations

    @pytest.mark.parametrize("method", ["exhaustive", "curvefit"])
    def test_chunked_serial_vs_parallel_byte_identical(self, system, method):
        serial = optimise_obc(
            system, _small_options(obc_chunk_size=3), method
        )
        parallel = optimise_obc(
            system,
            _small_options(obc_chunk_size=3, parallel_workers=2),
            method,
        )
        assert _outcome(serial) == _outcome(parallel)

    def test_ee_without_early_stop_chunking_is_pure_batching(self, system):
        """No early exit -> every variant is searched either way, and the
        prefetch enumerates exactly the serial candidate order: the
        exact-evaluation count and the trace must match.  The only
        accounting difference is *where* results come from -- the
        per-variant search re-reads every prefetched result from the
        evaluator's cache, so the chunked run reports exactly one cache
        hit per exact analysis."""
        plain = optimise_obc(
            system, _small_options(stop_when_schedulable=False), "exhaustive"
        )
        chunked = optimise_obc(
            system,
            _small_options(stop_when_schedulable=False, obc_chunk_size=4),
            "exhaustive",
        )
        assert chunked.evaluations == plain.evaluations
        assert chunked.trace == plain.trace
        assert _best_key(chunked) == _best_key(plain)
        assert chunked.cache_hits == plain.cache_hits + plain.evaluations

    def test_chunk_size_one_is_default_and_legacy(self, system):
        options = _small_options()
        assert options.obc_chunk_size == 1
        explicit = optimise_obc(
            system, dataclasses.replace(options, obc_chunk_size=1), "curvefit"
        )
        default = optimise_obc(system, options, "curvefit")
        assert _outcome(explicit) == _outcome(default)
