"""Crash/chaos battery of the distributed campaign fabric.

The fabric (:mod:`repro.core.fabric`) promises that any number of
worker processes can drain one campaign concurrently, that any worker
may die at any point without corrupting or losing results, and that the
merged report is byte-identical (modulo wall-clock fields) to a
sequential single-process run.  This module attacks each leg:

* manifest submission is idempotent and content-addressed; a foreign
  campaign is rejected rather than racing the workers' matrix,
* a single worker's drain reproduces the sequential oracle exactly,
* concurrent workers partition the matrix with exactly one ``completed``
  journal event per job (the lease accounting),
* expired, corrupt and foreign leases are reaped/honoured correctly,
* a terminally failing job lands in a failure marker once instead of
  being re-claimed forever,
* and the acceptance chaos test: two subprocess workers, one SIGKILLed
  mid-lease, the survivor reaps the dead lease, finishes the matrix,
  and the merged report equals the oracle -- with zero jobs run twice
  to completion.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core import strategies as strategies_module
from repro.core.campaign import CampaignOptions, run_campaign
from repro.core.fabric import (
    _lease_path,
    fabric_collect,
    fabric_events,
    fabric_status,
    fabric_submit,
    fabric_work,
    load_fabric,
)
from repro.core.sa import SAOptions
from repro.core.strategies import StrategyOptions, StrategySpec, register_strategy
from repro.errors import CampaignError
from repro.io.serialization import result_to_dict
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system

from tests.util import campaign_systems, small_bus

pytestmark = pytest.mark.fabric


# ----------------------------------------------------------------------
# shared fixtures
# ----------------------------------------------------------------------
def _strategies(sa_iterations=30):
    return ["bbc", ("sa", SAOptions(iterations=sa_iterations, seed=7))]


def _submit(root, **kw):
    kw.setdefault("bus", small_bus())
    return fabric_submit(root, campaign_systems(), _strategies(), **kw)


def _oracle(spec):
    """The sequential single-process run of the fabric's own matrix."""
    return run_campaign(spec.systems, spec.jobs, options=spec.options)


def _strip_clocks(doc):
    """Drop wall-clock fields: 'byte-identical modulo wall-clock'."""
    if isinstance(doc, dict):
        return {
            key: _strip_clocks(value)
            for key, value in doc.items()
            if key != "elapsed_seconds"
        }
    if isinstance(doc, list):
        return [_strip_clocks(item) for item in doc]
    return doc


def _result_docs(report):
    return {
        job_id: _strip_clocks(result_to_dict(result))
        for job_id, result in report.results.items()
    }


def _completions(root):
    """job_id -> [worker, ...] of journalled ``completed`` events."""
    done = {}
    for event in fabric_events(root):
        if event["event"] == "completed":
            done.setdefault(event["job"], []).append(event["worker"])
    return done


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_submission_is_idempotent_and_content_addressed(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        again = _submit(root)
        assert again.fabric_id == spec.fabric_id
        assert [j.job_id for j in again.jobs] == [j.job_id for j in spec.jobs]

        loaded = load_fabric(root)
        assert loaded.fabric_id == spec.fabric_id
        # The decoded matrix carries the campaign-wide bus preset.
        assert all(j.options.bus == small_bus() for j in loaded.jobs)
        assert loaded.options == CampaignOptions()

    def test_submitting_a_different_campaign_is_rejected(self, tmp_path):
        root = str(tmp_path / "fab")
        _submit(root)
        with pytest.raises(CampaignError, match="different campaign"):
            fabric_submit(root, campaign_systems(), ["bbc"], bus=small_bus())

    def test_load_requires_a_manifest(self, tmp_path):
        with pytest.raises(CampaignError, match="not a fabric directory"):
            load_fabric(str(tmp_path / "empty"))

    def test_campaign_options_and_meta_ride_the_manifest(self, tmp_path):
        root = str(tmp_path / "fab")
        options = CampaignOptions(job_timeout=9.0, max_retries=2)
        _submit(root, options=options, meta={"suite": {"count": 3}})
        loaded = load_fabric(root)
        assert loaded.options == options
        assert loaded.meta == {"suite": {"count": 3}}

    def test_per_strategy_bus_must_match_the_campaign_bus(self, tmp_path):
        with pytest.raises(CampaignError, match="bus"):
            fabric_submit(
                str(tmp_path / "fab"),
                campaign_systems(),
                [("sa", SAOptions(iterations=5, bus=small_bus()))],
                bus=None,
            )


# ----------------------------------------------------------------------
# draining
# ----------------------------------------------------------------------
class TestDrain:
    def test_single_worker_matches_sequential_oracle(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        report = fabric_work(root, worker_id="w0", lease_ttl=5.0)
        assert sorted(report.completed) == sorted(
            j.job_id for j in spec.jobs
        )

        merged = fabric_collect(root)
        oracle = _oracle(spec)
        assert _result_docs(merged) == _result_docs(oracle)
        assert merged.executed == oracle.executed  # matrix order too
        assert merged.failures == {} and oracle.failures == {}
        assert fabric_status(root).complete

    def test_drained_fabric_gives_workers_nothing(self, tmp_path):
        root = str(tmp_path / "fab")
        _submit(root)
        fabric_work(root, worker_id="w0", lease_ttl=5.0)
        again = fabric_work(root, worker_id="w1", lease_ttl=5.0)
        assert again.completed == () and again.reaped == ()
        # Still exactly one completion per job after the second pass.
        assert all(
            len(workers) == 1 for workers in _completions(root).values()
        )

    def test_incomplete_fabric_refuses_to_collect(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        fabric_work(root, worker_id="w0", lease_ttl=5.0, max_jobs=1)
        with pytest.raises(CampaignError, match="incomplete"):
            fabric_collect(root)
        partial = fabric_collect(root, require_complete=False)
        assert len(partial.results) == 1 and len(spec.jobs) == 4

    def test_concurrent_workers_partition_the_matrix(self, tmp_path):
        import threading

        root = str(tmp_path / "fab")
        spec = _submit(root)
        reports = {}

        def work(worker_id):
            reports[worker_id] = fabric_work(
                root, worker_id=worker_id, lease_ttl=5.0, poll=0.05
            )

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        completions = _completions(root)
        assert sorted(completions) == sorted(j.job_id for j in spec.jobs)
        assert all(len(workers) == 1 for workers in completions.values())
        claimed = [
            job_id for r in reports.values() for job_id in r.completed
        ]
        assert sorted(claimed) == sorted(j.job_id for j in spec.jobs)
        assert _result_docs(fabric_collect(root)) == _result_docs(
            _oracle(spec)
        )


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
class TestLeases:
    def test_live_foreign_lease_is_honoured(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        blocked = spec.jobs[0]
        path = _lease_path(root, blocked.job_id)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"owner": "ghost", "ttl": 9999.0, "beats": 0}, fh)

        report = fabric_work(root, worker_id="w0", lease_ttl=5.0, once=True)
        assert blocked.job_id not in report.completed
        assert len(report.completed) == len(spec.jobs) - 1
        assert blocked.job_id in fabric_status(root).leased

        os.remove(path)
        fabric_work(root, worker_id="w0", lease_ttl=5.0)
        assert fabric_status(root).complete

    def test_expired_lease_is_reaped_and_taken_over(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        dead = spec.jobs[0]
        path = _lease_path(root, dead.job_id)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"owner": "ghost", "ttl": 1.0, "beats": 3}, fh)
        stale = time.time() - 60
        os.utime(path, (stale, stale))

        report = fabric_work(root, worker_id="w0", lease_ttl=5.0)
        assert dead.job_id in report.reaped
        assert dead.job_id in report.completed
        reap_events = [
            e for e in fabric_events(root) if e["event"] == "reaped"
        ]
        assert [e["dead_owner"] for e in reap_events] == ["ghost"]
        # The tombstone keeps the takeover inspectable.
        assert os.path.exists(f"{path}.reaped.1")

    def test_corrupt_lease_is_reclaimed_not_deadlocked(self, tmp_path):
        root = str(tmp_path / "fab")
        spec = _submit(root)
        path = _lease_path(root, spec.jobs[0].job_id)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{half-written garbage")

        report = fabric_work(root, worker_id="w0", lease_ttl=5.0)
        assert spec.jobs[0].job_id in report.completed
        assert fabric_status(root).complete


# ----------------------------------------------------------------------
# failure markers
# ----------------------------------------------------------------------
def _exploding_runner(system, options):
    raise RuntimeError("boom")


class TestFailureMarkers:
    def test_failing_job_settles_once_instead_of_looping(self, tmp_path):
        register_strategy(
            StrategySpec(
                name="explode",
                summary="always raises (test-only)",
                options_type=StrategyOptions,
                runner=_exploding_runner,
            )
        )
        try:
            root = str(tmp_path / "fab")
            spec = fabric_submit(
                root,
                campaign_systems(),
                ["bbc", "explode"],
                bus=small_bus(),
            )
            report = fabric_work(root, worker_id="w0", lease_ttl=5.0)
            exploded = sorted(
                j.job_id for j in spec.jobs if j.strategy == "explode"
            )
            assert sorted(report.failed) == exploded
            status = fabric_status(root)
            assert status.complete and sorted(status.failed) == exploded

            # A second worker sees settled failures, not claimable work.
            again = fabric_work(root, worker_id="w1", lease_ttl=5.0)
            assert again.completed == () and again.failed == ()

            merged = fabric_collect(root)
            assert sorted(merged.failures) == exploded
            for failure in merged.failures.values():
                assert failure.kind == "error"
                assert "boom" in failure.message
        finally:
            strategies_module._REGISTERED.pop("explode", None)


# ----------------------------------------------------------------------
# the chaos acceptance test
# ----------------------------------------------------------------------
def _spawn_worker(root, worker_id, lease_ttl):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(repo, "src"), env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", str(root),
         "--worker-id", worker_id, "--lease-ttl", str(lease_ttl),
         "--poll", "0.1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=repo,
    )


@pytest.mark.perf_smoke
class TestChaosTakeover:
    def test_sigkill_mid_lease_takeover_matches_oracle(self, tmp_path):
        started = time.monotonic()
        # One fast job (bbc, checkpoints in ~0.4s) and one long job
        # (sa at 160 iterations, ~1.4s): worker A finishes bbc, is
        # SIGKILLed mid-sa, and worker B must reap the dead lease.
        system = generate_system(
            GeneratorConfig(
                n_nodes=6, tasks_per_node=24, tasks_per_graph=4, seed=3
            )
        )
        root = str(tmp_path / "fab")
        spec = fabric_submit(
            root,
            {"gen6": system},
            ["bbc", ("sa", SAOptions(iterations=160, seed=11))],
        )
        long_job = "gen6__sa"
        assert [j.job_id for j in spec.jobs] == ["gen6__bbc", long_job]

        ttl = 1.2
        journal_a = os.path.join(root, "journal", "A.jsonl")
        worker_a = _spawn_worker(root, "A", ttl)
        worker_b = None
        try:
            # Wait until A holds the long job's lease, then pull the
            # plug mid-run (SIGKILL: no cleanup, the lease stays).
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if worker_a.poll() is not None:
                    raise AssertionError(
                        f"worker A exited early:\n{worker_a.stdout.read()}"
                    )
                if os.path.exists(journal_a) and any(
                    json.loads(line)["event"] == "claimed"
                    and json.loads(line)["job"] == long_job
                    for line in open(journal_a, encoding="utf-8")
                ):
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("worker A never claimed the long job")
            time.sleep(0.2)  # let the sa run get properly underway
            worker_a.kill()
            worker_a.wait(timeout=10)

            # Worker B joins after the crash: it must wait out the dead
            # lease's ttl, reap it, and finish the matrix.
            worker_b = _spawn_worker(root, "B", ttl)
            assert worker_b.wait(timeout=30) == 0, worker_b.stdout.read()
        finally:
            for proc in (worker_a, worker_b):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

        # The merged report is byte-identical (modulo wall-clock
        # fields) to the sequential single-worker oracle.
        merged = fabric_collect(root)
        oracle = _oracle(spec)
        assert _result_docs(merged) == _result_docs(oracle)
        assert merged.executed == oracle.executed
        assert merged.failures == {} and oracle.failures == {}

        # Lease accounting: zero jobs ran twice to completion, and the
        # long job's completion belongs to the surviving worker after
        # an explicit takeover of A's dead lease.
        completions = _completions(root)
        assert sorted(completions) == [j.job_id for j in spec.jobs]
        assert all(len(workers) == 1 for workers in completions.values())
        assert completions["gen6__bbc"] == ["A"]
        assert completions[long_job] == ["B"]
        takeovers = [
            e for e in fabric_events(root) if e["event"] == "reaped"
        ]
        assert [(e["job"], e["dead_owner"]) for e in takeovers] == [
            (long_job, "A")
        ]
        assert time.monotonic() - started < 10.0
