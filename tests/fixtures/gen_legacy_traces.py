#!/usr/bin/env python3
"""Regenerate the pinned legacy-equivalence oracle traces.

The JSON files next to this script were produced by the *pre-refactor*
optimiser implementations (each strategy owning its private loop, PR 4
state) and pin their fixed-seed behaviour: algorithm label, exact
evaluation count, cache-hit count, the full search trace and the best
configuration.  ``tests/test_legacy_equivalence.py`` asserts that the
unified search runtime reproduces every one of them byte-identically.

Do NOT regenerate these files casually -- they are the oracle.  Rerun
this script only when a deliberate, documented behaviour change makes
the old traces obsolete, and say so in CHANGES.md::

    PYTHONPATH=src python -m tests.fixtures.gen_legacy_traces
"""

import json
import os

from repro.io.serialization import result_to_dict

from tests.fixtures.legacy_cases import LEGACY_CASES

OUT_DIR = os.path.join(os.path.dirname(__file__), "legacy_traces")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    for case in LEGACY_CASES:
        result = case.run()
        payload = result_to_dict(result)
        # Wall-clock is machine noise, not behaviour: zero it so the
        # fixture diff stays meaningful across regenerations.
        payload["elapsed_seconds"] = 0.0
        path = os.path.join(OUT_DIR, f"{case.case_id}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"{case.case_id}: {result.algorithm} evaluations="
            f"{result.evaluations} trace={len(result.trace)} -> {path}"
        )


if __name__ == "__main__":
    main()
