"""The fixed-seed optimiser runs pinned by the legacy-equivalence oracle.

Shared between the fixture generator (``gen_legacy_traces.py``, run once
against the pre-refactor implementations) and the equivalence test
(``tests/test_legacy_equivalence.py``, run forever against the unified
search runtime).  Every case must be fully deterministic: fixed seeds,
fixed options, synthetic systems regenerated from constants.
"""

from dataclasses import dataclass
from typing import Callable

from repro.core import (
    GAOptions,
    SAOptions,
    optimise_bbc,
    optimise_ga,
    optimise_obc,
    optimise_sa,
)
from repro.core.result import OptimisationResult
from repro.core.search import BusOptimisationOptions
from repro.synth import paper_suite

from tests.util import fig3_system, fig4_system


def _small_bus(**kw) -> BusOptimisationOptions:
    """Laptop-sized OBC budgets (mirrors the bench presets)."""
    return BusOptimisationOptions(
        ee_max_dyn_points=48,
        cf_candidates=64,
        max_extra_static_slots=1,
        max_slot_size_steps=1,
        **kw,
    )


@dataclass(frozen=True)
class LegacyCase:
    """One pinned optimiser run: a stable id plus a deterministic runner."""

    case_id: str
    run: Callable[[], OptimisationResult]


LEGACY_CASES = (
    LegacyCase("bbc_fig3", lambda: optimise_bbc(fig3_system())),
    LegacyCase("bbc_fig4", lambda: optimise_bbc(fig4_system())),
    LegacyCase(
        "obc_cf_fig4",
        lambda: optimise_obc(fig4_system(), method="curvefit"),
    ),
    LegacyCase(
        "obc_cf_paper3_no_early_stop",
        lambda: optimise_obc(
            paper_suite(3, count=1, seed=23)[0],
            _small_bus(stop_when_schedulable=False),
            "curvefit",
        ),
    ),
    LegacyCase(
        "obc_ee_paper3",
        lambda: optimise_obc(
            paper_suite(3, count=1, seed=23)[0], _small_bus(), "exhaustive"
        ),
    ),
    LegacyCase(
        "obc_ee_paper3_chunked",
        lambda: optimise_obc(
            paper_suite(3, count=1, seed=23)[0],
            _small_bus(obc_chunk_size=3),
            "exhaustive",
        ),
    ),
    LegacyCase(
        "sa_fig4",
        lambda: optimise_sa(
            fig4_system(), sa_options=SAOptions(iterations=120, seed=11)
        ),
    ),
    LegacyCase(
        "sa_fig4_restarts",
        lambda: optimise_sa(
            fig4_system(),
            sa_options=SAOptions(iterations=60, seed=7, restarts=2),
        ),
    ),
    LegacyCase(
        "ga_fig4",
        lambda: optimise_ga(
            fig4_system(),
            ga_options=GAOptions(population=8, generations=5, seed=11),
        ),
    ),
)
