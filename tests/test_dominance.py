"""Pattern-level dominance: construction soundness and kernel bit-identity.

The engine's newest cache layer elides FPS critical instants whose
delivered-slack function is pointwise dominated by another instant's --
a property of the
:class:`~repro.analysis.availability.NodeAvailability` pattern alone,
built lazily in near-linear time and cached on the availability (see
``docs/ANALYSIS.md``, "Pattern-level dominance").  Like the per-instant
bound before it (``tests/test_fps_pruning.py``), the claim shipped with
it is **bit-identical results**, validated in three layers:

* semantic soundness of the construction itself: every dominated
  instant's witness satisfies the pointwise delivered-slack inequality,
  checked exhaustively against ``available_in`` over two periods;
* hypothesis property tests: the dominance-elided kernel equals the
  unpruned oracle for arbitrary patterns, interferers, jitters, seeds
  and caps -- including a deterministic trigger of the near-cap guard
  fallback and a zero-budget construction;
* the full analysis: ``dominance="on"`` vs. the ``"off"`` oracle across
  a DYN-length sweep, plus ``"verify"`` asserting zero divergences.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import AnalysisContext, AnalysisOptions, NodeAvailability
from repro.analysis.availability import DominanceTables
from repro.analysis.fps import (
    MAX_FIXPOINT_ITERATIONS,
    prepped_busy_window,
    seeded_busy_window,
)
from repro.core.bbc import basic_configuration
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.errors import ConfigurationError
from repro.synth import paper_suite


@st.composite
def _pattern(draw):
    period = draw(st.integers(min_value=2, max_value=80))
    n_busy = draw(st.integers(min_value=0, max_value=7))
    busy = []
    for _ in range(n_busy):
        s = draw(st.integers(min_value=0, max_value=period - 1))
        e = draw(st.integers(min_value=s + 1, max_value=period))
        busy.append((s, e))
    return busy, period


@st.composite
def _kernel_case(draw):
    busy, period = draw(_pattern())
    n_info = draw(st.integers(min_value=0, max_value=4))
    info = tuple(
        (
            f"j{k}",
            draw(st.integers(min_value=3, max_value=250)),
            draw(st.booleans()),
            draw(st.integers(min_value=1, max_value=8)),
        )
        for k in range(n_info)
    )
    jitters = {
        name: draw(st.integers(min_value=0, max_value=60))
        for name, _, _, _ in info
    }
    wcet = draw(st.integers(min_value=1, max_value=12))
    cap = draw(st.integers(min_value=40, max_value=6000))
    own = draw(st.integers(min_value=0, max_value=40))
    return busy, period, info, jitters, wcet, cap, own


class TestConstructionSoundness:
    @settings(max_examples=300, deadline=None)
    @given(_pattern())
    def test_witnesses_dominate_pointwise(self, pattern):
        """Exhaustive semantic check of every elision the tables allow:
        the witness delivers at most as much slack at every window."""
        busy, period = pattern
        av = NodeAvailability(busy, period)
        dom = av.dominance_tables()
        instants = av.critical_instants()
        n = len(instants)
        assert sorted(dom.maximal_order + dom.dominated_order) == list(range(n))
        assert len(dom.witness) == n
        for idx in dom.maximal_order:
            assert dom.witness[idx] == -1
        for idx in dom.dominated_order:
            u_idx = dom.witness[idx]
            assert u_idx in dom.maximal_order
            t, u = instants[idx], instants[u_idx]
            for w in range(2 * period + 1):
                assert av.available_in(t, t + w) >= av.available_in(u, u + w)

    @settings(max_examples=200, deadline=None)
    @given(_pattern())
    def test_orders_are_subsequences_of_eval_order(self, pattern):
        busy, period = pattern
        av = NodeAvailability(busy, period)
        dom = av.dominance_tables()
        eval_order = list(av.instant_advance_tables().eval_order)
        maximal = set(dom.maximal_order)
        assert list(dom.maximal_order) == [
            i for i in eval_order if i in maximal
        ]
        assert list(dom.dominated_order) == [
            i for i in eval_order if i not in maximal
        ]

    def test_edge_patterns(self):
        # Fully idle node: the single instant 0, trivially maximal.
        dom = NodeAvailability([], 10).dominance_tables()
        assert dom == DominanceTables((0,), (), (-1,))
        # Permanently busy node (zero slack): every instant's delivered
        # slack is identically zero, so the duplicate instant at the
        # busy start collapses onto instant 0.
        dom = NodeAvailability([(0, 10)], 10).dominance_tables()
        assert dom.maximal_order == (0,)
        assert dom.dominated_order == (1,)
        assert dom.witness == (-1, 0)
        # Single busy interval (single wrap-around gap): instant 0 sees
        # the whole gap before the block, so the block start dominates.
        av = NodeAvailability([(3, 7)], 10)
        dom = av.dominance_tables()
        assert [av.critical_instants()[i] for i in dom.maximal_order] == [3]
        assert dom.witness[0] == 1  # instant 0 dominated by instant 3
        # A long block dominating a short one.
        av = NodeAvailability([(0, 5), (7, 8)], 10)
        dom = av.dominance_tables()
        assert 2 in dom.dominated_order  # instant 7 (block 1 < block 5)

    def test_lazy_and_cached(self):
        av = NodeAvailability([(2, 5)], 10)
        assert av.instant_advance_tables().dominance is None
        dom = av.dominance_tables()  # direct request: builds immediately
        assert av.dominance_tables() is dom
        assert av.instant_advance_tables().dominance is dom

    def test_kernel_path_defers_until_amortisation_threshold(self):
        """The kernel-facing path builds only once the pattern has served
        enough maximisations to amortise the construction."""
        from repro.analysis.availability import DOMINANCE_LAZY_THRESHOLD

        av = NodeAvailability([(2, 5)], 10)
        for _ in range(DOMINANCE_LAZY_THRESHOLD):
            assert av.instant_advance_tables(dominance=True).dominance is None
        # Requests without the flag never count toward the threshold.
        assert av.instant_advance_tables().dominance is None
        assert av.instant_advance_tables(dominance=True).dominance is not None

    def test_budget_exhaustion_keeps_instants(self, monkeypatch):
        """A zero work budget must degrade pruning, never correctness."""
        import repro.analysis.availability as availability_mod

        monkeypatch.setattr(availability_mod, "DOMINANCE_BUDGET_FACTOR", 0)
        av = NodeAvailability([(0, 4), (6, 7), (8, 9)], 12)
        dom = av.dominance_tables()
        assert dom.dominated_order == ()
        assert set(dom.witness) == {-1}


class TestKernelBitIdentity:
    @settings(max_examples=300, deadline=None)
    @given(_kernel_case())
    def test_dominance_equals_unpruned(self, case):
        busy, period, info, jitters, wcet, cap, own = case
        availability = NodeAvailability(busy, period)
        availability.dominance_tables()  # force-build: exercise elision
        unpruned = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=False
        )
        elided = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=True,
            dominance=True,
        )
        assert elided == unpruned

    @settings(max_examples=150, deadline=None)
    @given(_kernel_case(), st.randoms(use_true_random=False))
    def test_dominance_composes_with_certified_seeds(self, case, rng):
        busy, period, info, jitters, wcet, cap, own = case
        availability = NodeAvailability(busy, period)
        availability.dominance_tables()  # force-build: exercise elision
        cold = prepped_busy_window(
            wcet, info, availability, jitters, cap, own, prune=False
        )
        _, _, demands = seeded_busy_window(
            wcet, info, availability, jitters, cap, own, None, False
        )
        seeds = [None if d is None else rng.randint(0, d) for d in demands]
        value, ok, _ = seeded_busy_window(
            wcet, info, availability, jitters, cap, own, seeds, True, True
        )
        assert (value, ok) == cold

    def test_zero_wcet_and_degenerate_patterns(self):
        """Generic-path corners: idle node, zero slack, wcet == 0."""
        cases = [
            ([], 10, 0),            # fully idle node
            ([(0, 10)], 10, 3),     # zero slack
            ([(2, 5)], 10, 0),      # wcet == 0 (generic path)
        ]
        info = (("j0", 7, False, 2),)
        jitters = {"j0": 5}
        for busy, period, wcet in cases:
            availability = NodeAvailability(busy, period)
            availability.dominance_tables()  # force-build: exercise elision
            reference = prepped_busy_window(
                wcet, info, availability, jitters, 500, 0, prune=False
            )
            got = prepped_busy_window(
                wcet, info, availability, jitters, 500, 0, prune=True,
                dominance=True,
            )
            assert got == reference

    def test_guard_fallback_replays_without_dominance(self):
        """Deterministic trigger of the near-cap regime: a zero-cost
        interferer with a huge jitter inflates the activation count past
        the iteration limit while the window stays tiny, so the flag
        certificate fails and the kernel must replay without dominance
        -- still bit-identical to the unpruned path."""
        availability = NodeAvailability([(0, 4), (6, 7)], 10)
        dom = availability.dominance_tables()
        assert dom.dominated_order  # the elision path is actually active
        info = (("j0", 1, False, 0),)
        jitters = {"j0": 2 * MAX_FIXPOINT_ITERATIONS}
        for wcet in (1, 3):
            unpruned = prepped_busy_window(
                wcet, info, availability, jitters, 10_000, 0, prune=False
            )
            elided = prepped_busy_window(
                wcet, info, availability, jitters, 10_000, 0, prune=True,
                dominance=True,
            )
            assert elided == unpruned


@pytest.fixture
def eager_dominance(monkeypatch):
    """Build dominance tables on the first kernel request.

    The production threshold defers construction past what a short test
    sweep would ever cross; forcing it to zero makes the elision path
    demonstrably active in the full-analysis equivalence tests below.
    """
    import repro.analysis.availability as availability_mod

    monkeypatch.setattr(availability_mod, "DOMINANCE_LAZY_THRESHOLD", 0)


class TestAnalysisBitIdentity:
    def _sweep(self, n_points=24):
        system = paper_suite(3, count=1, seed=23)[0]
        options = BusOptimisationOptions()
        st_nodes = system.st_sender_nodes()
        slot = min_static_slot(system, options) if st_nodes else 0
        lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
        return system, [
            basic_configuration(system, n, options)
            for n in sweep_lengths(lo, hi, n_points)
        ]

    def test_rejects_unknown_mode(self):
        system, _ = self._sweep(1)
        with pytest.raises(ConfigurationError):
            AnalysisContext(system, AnalysisOptions(dominance="maybe"))

    def test_sweep_identical_to_dominance_off(self, eager_dominance):
        system, configs = self._sweep()
        on_ctx = AnalysisContext(system)  # default: dominance="on"
        off_ctx = AnalysisContext(system, AnalysisOptions(dominance="off"))
        for config in configs:
            on = on_ctx.analyse(config)
            off = off_ctx.analyse(config)
            assert on.wcrt == off.wcrt, config.describe()
            assert on.converged == off.converged
            assert on.schedulable == off.schedulable
            assert on.feasible == off.feasible

    def test_verify_mode_reports_zero_divergences(self):
        # Deliberately NOT eager: "verify" must force-build the tables
        # past the amortisation threshold, or it would compare the full
        # maximisation with itself and report vacuous zeros.
        system, configs = self._sweep()
        verify_ctx = AnalysisContext(
            system, AnalysisOptions(dominance="verify")
        )
        off_ctx = AnalysisContext(system, AnalysisOptions(dominance="off"))
        for config in configs:
            checked = verify_ctx.analyse(config)
            oracle = off_ctx.analyse(config)
            assert checked.wcrt == oracle.wcrt
            assert checked.converged == oracle.converged
        assert verify_ctx.dominance_divergences == 0
        # The cross-check really ran the elided path: the dominance
        # tables of the cached availability patterns were built.
        built = [
            availability.instant_advance_tables().dominance
            for entry in verify_ctx._schedule_cache.values()
            if entry.availability is not None
            for availability in entry.availability.values()
        ]
        assert built and all(dom is not None for dom in built)
        assert any(dom.dominated_order for dom in built)
