"""Additional BBC unit coverage."""

import pytest

from repro.core import BusOptimisationOptions, basic_configuration, optimise_bbc

from tests.util import (
    dyn_msg,
    fig3_system,
    fig4_system,
    fps_task,
    scs_task,
    single_graph_system,
)


class TestBasicConfigurationEdges:
    def test_message_free_system(self):
        sys_ = single_graph_system(
            [scs_task("a", node="N1"), scs_task("b", node="N2")],
            nodes=("N1", "N2"),
        )
        # No ST senders and no DYN messages: one minislot keeps the
        # cycle non-empty.
        cfg = basic_configuration(sys_, n_minislots=0)
        assert cfg.gd_cycle >= 1

    def test_custom_bus_speed_propagates(self):
        options = BusOptimisationOptions(bits_per_mt=10, frame_overhead_bytes=8)
        cfg = basic_configuration(fig3_system(), 0, options)
        assert cfg.bits_per_mt == 10
        assert cfg.frame_overhead_bytes == 8
        # largest ST frame: (4 + 8) bytes = 96 bits -> 10 MT slot
        assert cfg.gd_static_slot == 10

    def test_frame_ids_follow_criticality(self):
        cfg = basic_configuration(fig4_system(), n_minislots=30)
        # all fig4 messages share the graph deadline; LP decides:
        # longer path to the message = smaller CP = smaller FrameID.
        assert set(cfg.frame_ids.values()) == {1, 2, 3}


class TestOptimiseBBCEdges:
    def test_message_free_system_schedulable(self):
        sys_ = single_graph_system(
            [scs_task("a", node="N1"), scs_task("b", node="N2")],
            nodes=("N1", "N2"),
        )
        result = optimise_bbc(sys_)
        assert result.schedulable
        assert result.evaluations == 1

    def test_pure_et_system(self):
        tasks = [
            fps_task("x", wcet=2, node="N1", priority=1),
            fps_task("y", wcet=2, node="N2", priority=1),
        ]
        msgs = [dyn_msg("m", 3, "x", "y")]
        sys_ = single_graph_system(tasks, msgs, period=200, deadline=200)
        result = optimise_bbc(sys_)
        assert result.schedulable
        assert result.config.st_bus == 0  # no static segment needed

    def test_trace_costs_match_best(self):
        result = optimise_bbc(fig4_system())
        assert result.best is not None
        assert result.cost == min(p.cost for p in result.trace)
