"""Unit and integration tests for the global static scheduler (Fig. 2)."""

import pytest

from repro.analysis.scheduler import ScheduleOptions, build_schedule
from repro.core.config import FlexRayConfig
from repro.errors import SchedulingError
from repro.model import Application, System, TaskGraph

from tests.util import (
    dyn_msg,
    fig3_system,
    fps_task,
    scs_task,
    single_graph_system,
    st_msg,
)


def fig3_config(slots=("N1", "N2"), size=8, minis=0):
    if minis == 0:
        return FlexRayConfig(static_slots=slots, gd_static_slot=size, n_minislots=0)
    return FlexRayConfig(static_slots=slots, gd_static_slot=size, n_minislots=minis)


class TestTaskPlacement:
    def test_chain_respects_precedence_across_nodes(self):
        sys_ = fig3_system()
        table = build_schedule(sys_, fig3_config())
        t2 = table.tasks["t2#0"]
        m2 = table.messages["m2#0"]
        r2 = table.tasks["r2#0"]
        assert m2.slot_start >= t2.finish
        assert r2.start >= m2.finish

    def test_same_node_tasks_do_not_overlap(self):
        tasks = [scs_task(f"t{i}", wcet=4, node="N1") for i in range(5)]
        sys_ = single_graph_system(tasks, nodes=("N1",), period=100, deadline=100)
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        table = build_schedule(sys_, cfg)
        busy = table.busy_intervals("N1")
        assert len(busy) >= 1
        assert sum(e - s for s, e in busy) == 20
        for (s1, e1), (s2, e2) in zip(busy, busy[1:]):
            assert e1 <= s2

    def test_release_offset_respected(self):
        tasks = [scs_task("t", wcet=2, node="N1", release=30)]
        sys_ = single_graph_system(tasks, nodes=("N1",))
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        table = build_schedule(sys_, cfg)
        assert table.tasks["t#0"].start >= 30

    def test_periodic_instances_each_scheduled(self):
        g1 = TaskGraph(
            name="g1", period=20, deadline=20, tasks=(scs_task("a", node="N1"),)
        )
        g2 = TaskGraph(
            name="g2", period=40, deadline=40, tasks=(scs_task("b", node="N1"),)
        )
        sys_ = System(("N1",), Application("app", (g1, g2)))
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        table = build_schedule(sys_, cfg)
        assert set(table.tasks) == {"a#0", "a#1", "b#0"}
        assert table.tasks["a#1"].start >= 20

    def test_critical_path_priority_orders_ready_tasks(self):
        # Two independent chains on one node; the long chain's head must
        # be scheduled first even though both are ready at time 0.
        tasks = [
            scs_task("short", wcet=2, node="N1"),
            scs_task("long_head", wcet=2, node="N1"),
            scs_task("long_tail", wcet=50, node="N1"),
        ]
        sys_ = single_graph_system(
            tasks,
            nodes=("N1",),
            precedences=(("long_head", "long_tail"),),
        )
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        table = build_schedule(sys_, cfg)
        assert table.tasks["long_head#0"].start < table.tasks["short#0"].start


class TestMessagePlacement:
    def test_message_waits_for_sender(self):
        sys_ = fig3_system()
        table = build_schedule(sys_, fig3_config())
        for key, entry in table.messages.items():
            sender = sys_.application.message(entry.message.name).sender
            instance = key.rsplit("#", 1)[1]
            assert entry.slot_start >= table.tasks[f"{sender}#{instance}"].finish

    def test_message_in_sender_slot_only(self):
        sys_ = fig3_system()
        table = build_schedule(sys_, fig3_config())
        assert table.messages["m1#0"].slot == 1  # N1's slot
        assert table.messages["m2#0"].slot == 2  # N2's slot

    def test_frame_packing_when_slot_large_enough(self):
        sys_ = fig3_system()
        table = build_schedule(sys_, fig3_config(size=8))
        m2, m3 = table.messages["m2#0"], table.messages["m3#0"]
        assert (m2.cycle, m2.slot) == (m3.cycle, m3.slot)
        assert m3.offset == m2.ct

    def test_no_packing_when_slot_too_small(self):
        sys_ = fig3_system()
        table = build_schedule(sys_, fig3_config(size=4))
        m2, m3 = table.messages["m2#0"], table.messages["m3#0"]
        assert (m2.cycle, m2.slot) != (m3.cycle, m3.slot)

    def test_second_slot_speeds_up_second_message(self):
        sys_ = fig3_system()
        narrow = build_schedule(sys_, fig3_config(slots=("N1", "N2"), size=4))
        wide = build_schedule(sys_, fig3_config(slots=("N1", "N2", "N2"), size=4))
        assert wide.messages["m3#0"].finish < narrow.messages["m3#0"].finish

    def test_unschedulable_when_no_slot(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=8, n_minislots=0)
        with pytest.raises(SchedulingError, match="no static slot"):
            build_schedule(sys_, cfg)

    def test_messages_of_fps_graph_ignored(self):
        tasks = [
            fps_task("e1", node="N1", priority=1),
            fps_task("e2", node="N2", priority=1),
        ]
        msgs = [dyn_msg("dm", 3, "e1", "e2")]
        sys_ = single_graph_system(tasks, msgs)
        cfg = FlexRayConfig(
            static_slots=("N1",), gd_static_slot=4, n_minislots=10,
            frame_ids={"dm": 1},
        )
        table = build_schedule(sys_, cfg)
        assert table.tasks == {} and table.messages == {}


class TestMixedDependencies:
    def test_scs_after_fps_requires_estimates(self):
        tasks = [
            fps_task("e", node="N1", priority=1),
            scs_task("s", node="N1"),
        ]
        sys_ = single_graph_system(
            tasks, nodes=("N1",), precedences=(("e", "s"),)
        )
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        with pytest.raises(SchedulingError, match="wcrt_estimates"):
            build_schedule(sys_, cfg)
        table = build_schedule(sys_, cfg, wcrt_estimates={"e": 42})
        assert table.tasks["s#0"].start >= 42


class TestFpsAwarePlacement:
    def test_fps_aware_produces_valid_schedule(self):
        tasks = [
            scs_task("s1", wcet=10, node="N1"),
            scs_task("s2", wcet=10, node="N1"),
            fps_task("e1", wcet=5, node="N1", priority=1),
        ]
        sys_ = single_graph_system(tasks, nodes=("N1",), period=60, deadline=60)
        cfg = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)
        table = build_schedule(
            sys_, cfg, ScheduleOptions(fps_aware=True, fps_candidates=3)
        )
        busy = table.busy_intervals("N1")
        assert sum(e - s for s, e in busy) == 20
