"""Tests for the campaign orchestration layer (repro.core.campaign)."""

import json
import os

import pytest

from repro.core.campaign import (
    CampaignJob,
    CampaignOptions,
    campaign_matrix,
    job_id_for,
    run_campaign,
)
from repro.core.sa import SAOptions
from repro.errors import CampaignError, OptimisationError

from tests.util import campaign_systems as _systems
from tests.util import fig3_system, fig4_system
from tests.util import small_bus as _small_bus


class TestCampaignMatrix:
    def test_cross_product_in_order(self):
        jobs = campaign_matrix(_systems(), ["bbc", "obc-cf"])
        assert [j.job_id for j in jobs] == [
            "static__bbc",
            "static__obc-cf",
            "dyn__bbc",
            "dyn__obc-cf",
        ]
        assert all(isinstance(j, CampaignJob) for j in jobs)

    def test_strategy_options_and_bus_preset(self):
        bus = _small_bus(parallel_workers=2)
        sa = SAOptions(iterations=5, seed=3)
        jobs = campaign_matrix(["s"], [("sa", sa)], bus=bus)
        assert jobs[0].options.iterations == 5
        assert jobs[0].options.bus is bus

    def test_unknown_strategy_fails_at_matrix_time(self):
        with pytest.raises(OptimisationError, match="unknown strategy"):
            campaign_matrix(["s"], ["magic"])

    def test_illegal_system_id_rejected(self):
        with pytest.raises(CampaignError, match="illegal system id"):
            campaign_matrix(["a/b"], ["bbc"])

    def test_duplicate_cell_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            campaign_matrix(["s"], ["bbc", "bbc"])


class TestRunCampaign:
    def test_runs_every_cell_and_reports(self):
        systems = _systems()
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        seen = []
        report = run_campaign(
            systems, jobs, progress=lambda j, r, res: seen.append((j.job_id, res))
        )
        assert set(report.results) == {"static__bbc", "dyn__bbc"}
        assert report.executed == ("static__bbc", "dyn__bbc")
        assert report.resumed == ()
        assert seen == [("static__bbc", False), ("dyn__bbc", False)]
        assert report.result_for("dyn", "bbc").algorithm == "BBC"

    def test_unknown_system_reference(self):
        jobs = campaign_matrix(["ghost"], ["bbc"])
        with pytest.raises(CampaignError, match="unknown system"):
            run_campaign(_systems(), jobs)

    def test_result_for_unknown_cell(self):
        systems = _systems()
        report = run_campaign(
            systems, campaign_matrix(systems, ["bbc"], bus=_small_bus())
        )
        with pytest.raises(CampaignError, match="no job"):
            report.result_for("static", "sa")


def _strip_clocks(doc):
    if isinstance(doc, dict):
        return {
            k: _strip_clocks(v)
            for k, v in doc.items()
            if k != "elapsed_seconds"
        }
    if isinstance(doc, list):
        return [_strip_clocks(v) for v in doc]
    return doc


class TestCampaignWorkers:
    """``CampaignOptions.campaign_workers``: the job-level thread pool."""

    def test_threaded_run_matches_serial_byte_for_byte(self):
        from repro.io.serialization import result_to_dict

        systems = _systems()
        jobs = campaign_matrix(
            systems,
            ["bbc", ("sa", SAOptions(iterations=8, seed=5))],
            bus=_small_bus(),
        )
        serial = run_campaign(systems, jobs)
        threaded = run_campaign(
            systems, jobs, options=CampaignOptions(campaign_workers=4)
        )
        assert threaded.executed == serial.executed  # matrix order kept
        assert set(threaded.results) == set(serial.results)
        for job_id, result in serial.results.items():
            assert _strip_clocks(
                result_to_dict(threaded.results[job_id])
            ) == _strip_clocks(result_to_dict(result))

    def test_threaded_failures_cost_cells_not_the_campaign(self):
        from repro.core.strategies import (
            StrategyOptions,
            StrategySpec,
            register_strategy,
        )
        from repro.core import strategies as strategies_module

        def _boom(system, options):
            raise RuntimeError("boom")

        register_strategy(
            StrategySpec(
                name="explode",
                summary="always raises (test-only)",
                options_type=StrategyOptions,
                runner=_boom,
            )
        )
        try:
            systems = _systems()
            jobs = campaign_matrix(
                systems, ["bbc", "explode"], bus=_small_bus()
            )
            report = run_campaign(
                systems, jobs, options=CampaignOptions(campaign_workers=3)
            )
            assert sorted(report.failures) == ["dyn__explode", "static__explode"]
            assert sorted(report.results) == ["dyn__bbc", "static__bbc"]
            for failure in report.failures.values():
                assert failure.kind == "error" and "boom" in failure.message
        finally:
            strategies_module._REGISTERED.pop("explode", None)

    def test_options_and_legacy_kwargs_are_exclusive(self):
        systems = _systems()
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        with pytest.raises(CampaignError, match="options"):
            run_campaign(
                systems, jobs, options=CampaignOptions(), max_retries=1
            )

    def test_campaign_options_are_validated(self):
        with pytest.raises(CampaignError):
            CampaignOptions(campaign_workers=0)
        with pytest.raises(CampaignError):
            CampaignOptions(max_retries=-1)


class TestCheckpoints:
    def test_resume_loads_identical_results(self, tmp_path):
        systems = _systems()
        jobs = campaign_matrix(
            systems,
            ["bbc", ("sa", SAOptions(iterations=15, seed=5))],
            bus=_small_bus(),
        )
        first = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert len(first.executed) == 4 and not first.resumed
        second = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert len(second.resumed) == 4 and not second.executed
        for job in jobs:
            a = first.results[job.job_id]
            b = second.results[job.job_id]
            assert a.trace == b.trace
            assert a.evaluations == b.evaluations
            assert a.cost == b.cost
            assert a.schedulable == b.schedulable

    def test_partial_checkpoint_set_resumes_partially(self, tmp_path):
        systems = _systems()
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        run_campaign(systems, jobs[:1], checkpoint_dir=str(tmp_path))
        report = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert report.resumed == ("static__bbc",)
        assert report.executed == ("dyn__bbc",)

    def test_corrupted_checkpoint_is_rerun_and_overwritten(self, tmp_path):
        systems = _systems()
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        path = tmp_path / f"{job_id_for('static', 'bbc')}.json"
        path.write_text("{ not json", encoding="utf-8")
        report = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        assert "static__bbc" in report.executed
        # overwritten with a valid checkpoint
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["job"]["strategy"] == "bbc"

    def test_foreign_checkpoint_raises(self, tmp_path):
        systems = _systems()
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        run_campaign(systems, jobs[:1], checkpoint_dir=str(tmp_path))
        # rename the static checkpoint over the dyn job's slot
        src = tmp_path / "static__bbc.json"
        dst = tmp_path / "dyn__bbc.json"
        os.rename(src, dst)
        with pytest.raises(CampaignError, match="belongs to"):
            run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))

    def test_redefined_options_invalidate_checkpoint(self, tmp_path):
        """Same job id, changed strategy options: the stale checkpoint
        must be re-run, not resumed."""
        systems = {"dyn": fig4_system()}
        quick = campaign_matrix(
            systems, [("sa", SAOptions(iterations=10, seed=5))],
            bus=_small_bus(),
        )
        run_campaign(systems, quick, checkpoint_dir=str(tmp_path))
        bigger = campaign_matrix(
            systems, [("sa", SAOptions(iterations=25, seed=5))],
            bus=_small_bus(),
        )
        report = run_campaign(systems, bigger, checkpoint_dir=str(tmp_path))
        assert report.executed == ("dyn__sa",)
        assert not report.resumed
        assert report.results["dyn__sa"].evaluations > 10

    def test_worker_count_change_keeps_checkpoints(self, tmp_path):
        """Runs are byte-identical serial vs. parallel, so resuming a
        sweep with a different --workers must reuse its checkpoints."""
        systems = {"dyn": fig4_system()}
        serial = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        run_campaign(systems, serial, checkpoint_dir=str(tmp_path))
        parallel = campaign_matrix(
            systems, ["bbc"], bus=_small_bus(parallel_workers=4)
        )
        report = run_campaign(systems, parallel, checkpoint_dir=str(tmp_path))
        assert report.resumed == ("dyn__bbc",)
        assert not report.executed

    def test_changed_system_invalidates_checkpoint(self, tmp_path):
        jobs = campaign_matrix(["s"], ["bbc"], bus=_small_bus())
        run_campaign({"s": fig4_system()}, jobs, checkpoint_dir=str(tmp_path))
        # same id, different system content
        report = run_campaign(
            {"s": fig3_system()}, jobs, checkpoint_dir=str(tmp_path)
        )
        assert report.executed == ("s__bbc",)
        assert not report.resumed

    def test_checkpoint_files_are_self_describing(self, tmp_path):
        systems = {"dyn": fig4_system()}
        jobs = campaign_matrix(systems, ["bbc"], bus=_small_bus())
        run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
        payload = json.loads(
            (tmp_path / "dyn__bbc.json").read_text(encoding="utf-8")
        )
        meta = payload["job"]
        assert meta["job_id"] == "dyn__bbc"
        assert meta["system_id"] == "dyn"
        assert meta["strategy"] == "bbc"
        assert meta["options_fingerprint"]
        assert meta["system_fingerprint"]
        assert payload["result"]["kind"] == "optimisation_result"
        assert payload["result"]["trace"]
