"""Property-based tests (hypothesis) for core invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import analyse_system
from repro.analysis.holistic import AnalysisOptions, analysis_cap
from repro.analysis.availability import (
    NodeAvailability,
    merge_intervals,
    wrap_busy_intervals,
)
from repro.core.bbc import basic_configuration
from repro.core.curvefit import NewtonInterpolator, spread_points
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    sweep_lengths,
)
from repro.flexray.faults import GilbertElliottFaults, IidFaults
from repro.flexray.simulator import SimulationOptions, simulate
from repro.io import system_from_dict, system_to_dict
from tests.util import bound_scenario_systems
from repro.model import (
    Application,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
)

# ----------------------------------------------------------------------
# availability
# ----------------------------------------------------------------------
intervals_strategy = st.lists(
    st.tuples(st.integers(0, 90), st.integers(1, 20)).map(
        lambda se: (se[0], min(100, se[0] + se[1]))
    ),
    max_size=6,
)


class TestAvailabilityProperties:
    @given(intervals_strategy, st.integers(0, 120), st.integers(0, 60))
    @settings(max_examples=150)
    def test_advance_is_exact_inverse_of_available_in(self, busy, t0, demand):
        av = NodeAvailability(busy, period=100)
        if av.slack_per_period == 0:
            assert demand == 0 or av.advance(t0, demand) is None
            return
        t = av.advance(t0, demand)
        assert av.available_in(t0, t) == demand
        if demand > 0:
            assert av.available_in(t0, t - 1) < demand

    @given(intervals_strategy)
    @settings(max_examples=100)
    def test_merge_intervals_disjoint_and_ordered(self, busy):
        merged = merge_intervals(busy)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        assert sum(e - s for s, e in merged) <= 100

    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(1, 80)).map(
                lambda se: (se[0], se[0] + se[1])
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_wrap_preserves_total_busy_time_modulo_saturation(self, busy):
        wrapped = wrap_busy_intervals(busy, 100)
        assert all(0 <= s < e <= 100 for s, e in wrapped)
        raw_total = sum(e - s for s, e in busy)
        wrapped_total = sum(e - s for s, e in wrapped)
        assert wrapped_total <= min(raw_total, 100)


# ----------------------------------------------------------------------
# curve fitting
# ----------------------------------------------------------------------
class TestCurveFitProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(-50, 50), st.integers(-1000, 1000)
            ),
            min_size=1,
            max_size=7,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=150)
    def test_interpolation_reproduces_every_node(self, points):
        ip = NewtonInterpolator([p[0] for p in points], [p[1] for p in points])
        for x, y in points:
            assert abs(ip(x) - y) < 1e-6 * max(1, abs(y))

    @given(st.integers(0, 500), st.integers(0, 500), st.integers(1, 12))
    @settings(max_examples=150)
    def test_spread_points_within_range_and_sorted(self, a, span, count):
        lo, hi = a, a + span
        pts = spread_points(lo, hi, count)
        assert pts == sorted(set(pts))
        assert pts[0] == lo and pts[-1] == hi if len(pts) > 1 else pts == [lo]
        assert all(lo <= p <= hi for p in pts)

    @given(st.integers(0, 500), st.integers(0, 500), st.integers(1, 40))
    @settings(max_examples=150)
    def test_sweep_lengths_bounds(self, a, span, cap):
        lo, hi = a, a + span
        pts = sweep_lengths(lo, hi, cap)
        assert len(pts) <= cap
        assert all(lo <= p <= hi for p in pts)
        assert pts == sorted(set(pts))


# ----------------------------------------------------------------------
# random small systems: simulation never exceeds the analysis
# ----------------------------------------------------------------------
@st.composite
def small_system(draw):
    """A 2-node system with one TT chain and one ET chain."""
    tt_len = draw(st.integers(2, 3))
    et_len = draw(st.integers(2, 3))
    period = draw(st.sampled_from([200, 400]))

    def chain(prefix, length, policy, kind, wcets, sizes):
        tasks = []
        messages = []
        for i in range(length):
            node = "N1" if (i + (prefix == "e")) % 2 == 0 else "N2"
            tasks.append(
                Task(
                    f"{prefix}{i}",
                    wcet=wcets[i],
                    node=node,
                    policy=policy,
                    priority=i,
                )
            )
        for i in range(length - 1):
            messages.append(
                Message(
                    f"{prefix}m{i}",
                    size=sizes[i],
                    sender=f"{prefix}{i}",
                    receivers=(f"{prefix}{i + 1}",),
                    kind=kind,
                    priority=i,
                )
            )
        return tasks, messages

    tt_wcets = draw(
        st.lists(st.integers(1, 15), min_size=tt_len, max_size=tt_len)
    )
    et_wcets = draw(
        st.lists(st.integers(1, 15), min_size=et_len, max_size=et_len)
    )
    tt_sizes = draw(
        st.lists(st.integers(1, 8), min_size=tt_len - 1, max_size=tt_len - 1)
    )
    et_sizes = draw(
        st.lists(st.integers(1, 8), min_size=et_len - 1, max_size=et_len - 1)
    )
    tt_tasks, tt_msgs = chain(
        "t", tt_len, SchedulingPolicy.SCS, MessageKind.ST, tt_wcets, tt_sizes
    )
    et_tasks, et_msgs = chain(
        "e", et_len, SchedulingPolicy.FPS, MessageKind.DYN, et_wcets, et_sizes
    )
    graphs = (
        TaskGraph(
            name="tt",
            period=period,
            deadline=period,
            tasks=tuple(tt_tasks),
            messages=tuple(tt_msgs),
        ),
        TaskGraph(
            name="et",
            period=period,
            deadline=period,
            tasks=tuple(et_tasks),
            messages=tuple(et_msgs),
        ),
    )
    return System(("N1", "N2"), Application("prop", graphs))


class TestSimulationBoundedByAnalysis:
    @given(small_system(), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_simulated_wcrt_below_analysed_wcrt(self, system, dyn_extra):
        options = BusOptimisationOptions()
        lo, hi = dyn_segment_bounds(system, 0, options)
        n_minislots = min(hi, lo + dyn_extra * 5) if hi >= lo else 0
        config = basic_configuration(system, n_minislots, options)
        analysed = analyse_system(system, config)
        if not analysed.feasible:
            return
        simulated = simulate(system, config, table=analysed.table)
        for name, r_sim in simulated.observed_wcrt.items():
            assert r_sim <= analysed.wcrt[name], (
                name,
                r_sim,
                analysed.wcrt[name],
            )


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestSerializationProperties:
    @given(small_system())
    @settings(max_examples=40, deadline=None)
    def test_system_round_trip(self, system):
        clone = system_from_dict(system_to_dict(system))
        assert clone.describe() == system.describe()
        assert [t.wcet for t in clone.application.tasks()] == [
            t.wcet for t in system.application.tasks()
        ]


# ----------------------------------------------------------------------
# fault-tolerant analysis: the k-error bound is sound on any channel
# ----------------------------------------------------------------------
fault_channels = st.one_of(
    st.builds(
        IidFaults,
        rate=st.floats(0.05, 0.9),
        seed=st.integers(0, 2**16),
    ),
    st.builds(
        GilbertElliottFaults,
        good_to_bad=st.floats(0.05, 0.95),
        bad_to_good=st.floats(0.05, 0.95),
        bad_rate=st.floats(0.3, 1.0),
        seed=st.integers(0, 2**16),
    ),
)


class TestFaultHypothesisProperties:
    """Hypothesis twin of the fuzz referee in ``tests/test_faults.py``:
    instead of a fixed fault grid, the channel itself is drawn."""

    @given(scenario=st.integers(0, 2), faults=fault_channels)
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_k_error_bound_covers_any_simulated_channel(
        self, scenario, faults
    ):
        system, config = bound_scenario_systems()[scenario]
        run = simulate(
            system,
            config,
            SimulationOptions(record_trace=False, faults=faults),
        )
        # Judge the analysis at exactly the error count the channel
        # produced: with fault_hypothesis=k, every simulated response
        # time (retransmissions included) must sit below the bound.
        k = run.total_retransmissions
        options = AnalysisOptions(fault_hypothesis=k)
        bound = analyse_system(system, config, options)
        cap = analysis_cap(system, config, options.cap_factor)
        for (name, _), observed in run.response_times.items():
            if bound.wcrt[name] >= cap:
                # A capped value is a certified deadline miss marker,
                # not an upper bound -- nothing to compare against.
                continue
            assert observed <= bound.wcrt[name], (name, observed, k)
