"""Integration tests for BBC, OBC/CF, OBC/EE and SA on small systems."""

import pytest

from repro.core import (
    BusOptimisationOptions,
    SAOptions,
    basic_configuration,
    optimise_bbc,
    optimise_obc,
    optimise_sa,
)
from repro.errors import OptimisationError

from tests.util import (
    dyn_msg,
    fig3_system,
    fig4_system,
    fps_task,
    scs_task,
    single_graph_system,
    st_msg,
)


class TestBasicConfiguration:
    def test_one_slot_per_st_sender(self):
        cfg = basic_configuration(fig3_system(), n_minislots=0)
        assert cfg.static_slots == ("N1", "N2")
        assert cfg.gd_static_slot == 4  # largest ST frame

    def test_unique_frame_ids(self):
        cfg = basic_configuration(fig4_system(), n_minislots=20)
        assert sorted(cfg.frame_ids.values()) == [1, 2, 3]

    def test_pure_dynamic_when_no_st(self):
        cfg = basic_configuration(fig4_system(), n_minislots=20)
        assert cfg.static_slots == () and cfg.st_bus == 0


class TestBBC:
    def test_schedulable_on_easy_static_system(self):
        result = optimise_bbc(fig3_system())
        assert result.schedulable
        assert result.algorithm == "BBC"
        assert result.evaluations == 1  # no DYN messages -> single analysis

    def test_finds_config_on_dyn_system(self):
        result = optimise_bbc(fig4_system())
        assert result.best is not None
        assert result.evaluations > 1
        assert all(p.exact for p in result.trace)

    def test_respects_max_dyn_points(self):
        options = BusOptimisationOptions(max_dyn_points=7)
        result = optimise_bbc(fig4_system(), options)
        assert result.evaluations <= 7


class TestOBC:
    def test_rejects_unknown_method(self):
        with pytest.raises(OptimisationError, match="unknown"):
            optimise_obc(fig3_system(), method="magic")

    def test_cf_schedulable_on_fig4(self):
        result = optimise_obc(fig4_system(), method="curvefit")
        assert result.schedulable
        assert result.algorithm == "OBC/CF"

    def test_ee_schedulable_on_fig4(self):
        result = optimise_obc(fig4_system(), method="exhaustive")
        assert result.schedulable
        assert result.algorithm == "OBC/EE"

    def test_cf_uses_far_fewer_analyses_than_ee(self):
        cf = optimise_obc(fig4_system(), method="curvefit")
        ee = optimise_obc(fig4_system(), method="exhaustive")
        assert cf.evaluations < ee.evaluations / 10

    def test_explores_static_alternatives_when_needed(self):
        # A system whose BBC static structure is too tight: two ST senders
        # with many messages each and a short deadline.
        tasks = [
            scs_task("a", wcet=1, node="N1"),
            scs_task("b", wcet=1, node="N2"),
            scs_task("c", wcet=1, node="N2"),
            scs_task("d", wcet=1, node="N1"),
        ]
        msgs = [
            st_msg("m1", 4, "a", "b"),
            st_msg("m2", 4, "b", "d"),
            st_msg("m3", 4, "c", "d"),
        ]
        sys_ = single_graph_system(tasks, msgs, period=60, deadline=26)
        bbc = optimise_bbc(sys_)
        obc = optimise_obc(sys_, method="curvefit")
        assert obc.cost <= bbc.cost

    def test_trace_contains_estimates_for_cf(self):
        result = optimise_obc(fig4_system(), method="curvefit")
        kinds = {p.exact for p in result.trace}
        # CF runs exact seed analyses; interpolation estimates appear when
        # the seed grid alone is not schedulable.
        assert True in kinds


class TestSA:
    def test_sa_schedulable_on_fig4(self):
        result = optimise_sa(
            fig4_system(), sa_options=SAOptions(iterations=300, seed=7)
        )
        assert result.schedulable
        assert result.algorithm == "SA"

    def test_sa_deterministic_for_fixed_seed(self):
        opts = SAOptions(iterations=150, seed=11)
        a = optimise_sa(fig4_system(), sa_options=opts)
        b = optimise_sa(fig4_system(), sa_options=opts)
        assert a.cost == b.cost
        assert a.evaluations == b.evaluations

    def test_sa_improves_on_bbc(self):
        sys_ = fig4_system()
        bbc = optimise_bbc(sys_)
        sa = optimise_sa(sys_, sa_options=SAOptions(iterations=300, seed=3))
        assert sa.cost <= bbc.cost

    def test_sa_respects_time_budget(self):
        result = optimise_sa(
            fig4_system(),
            sa_options=SAOptions(iterations=10_000, max_seconds=0.2, seed=5),
        )
        assert result.elapsed_seconds < 2.0


class TestOptimisationResult:
    def test_describe_mentions_algorithm_and_cost(self):
        result = optimise_bbc(fig3_system())
        text = result.describe()
        assert "BBC" in text and "cost=" in text

    def test_unsolvable_system_returns_no_config(self):
        # Impossibly tight deadline: even the best bus misses it.
        tasks = [
            scs_task("a", wcet=1, node="N1"),
            scs_task("b", wcet=1, node="N2"),
        ]
        msgs = [st_msg("m", 600, "a", "b")]
        sys_ = single_graph_system(tasks, msgs, period=16000, deadline=2)
        result = optimise_bbc(sys_)
        assert not result.schedulable
        # a best (non-schedulable) configuration is still reported
        assert result.best is not None
        assert result.cost > 0
