"""Unit tests for the node availability function."""

import pytest

from repro.analysis.availability import NodeAvailability, merge_intervals
from repro.errors import AnalysisError


class TestMergeIntervals:
    def test_disjoint_sorted(self):
        assert merge_intervals([(5, 7), (0, 2)]) == [(0, 2), (5, 7)]

    def test_overlap_merged(self):
        assert merge_intervals([(0, 4), (2, 6)]) == [(0, 6)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 2), (2, 4)]) == [(0, 4)]

    def test_empty_dropped(self):
        assert merge_intervals([(3, 3), (1, 2)]) == [(1, 2)]

    def test_nested(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]


class TestNodeAvailability:
    def test_slack_per_period(self):
        av = NodeAvailability([(2, 5), (8, 10)], period=10)
        assert av.slack_per_period == 5

    def test_is_busy_wraps_periodically(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.is_busy(3)
        assert not av.is_busy(0)
        assert av.is_busy(13)
        assert not av.is_busy(15)

    def test_available_in_within_one_period(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.available_in(0, 10) == 7
        assert av.available_in(2, 5) == 0
        assert av.available_in(0, 3) == 2

    def test_available_in_across_periods(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.available_in(0, 20) == 14
        assert av.available_in(4, 12) == 7  # [4,5) busy; [5,10) and [10,12) free

    def test_available_empty_window(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.available_in(5, 5) == 0
        assert av.available_in(7, 3) == 0

    def test_advance_simple(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.advance(0, 2) == 2
        assert av.advance(0, 3) == 6  # 2 free, then busy until 5, 1 more
        assert av.advance(3, 1) == 6

    def test_advance_zero_demand(self):
        av = NodeAvailability([(2, 5)], period=10)
        assert av.advance(4, 0) == 4

    def test_advance_across_periods(self):
        av = NodeAvailability([(0, 9)], period=10)  # 1 MT slack per period
        assert av.advance(0, 3) == 30

    def test_advance_no_slack_returns_none(self):
        av = NodeAvailability([(0, 10)], period=10)
        assert av.advance(0, 1) is None

    def test_advance_full_slack(self):
        av = NodeAvailability([], period=10)
        assert av.advance(7, 5) == 12

    def test_advance_result_consistent_with_available_in(self):
        av = NodeAvailability([(1, 3), (4, 8)], period=10)
        for t0 in range(0, 12):
            for demand in range(1, 15):
                t = av.advance(t0, demand)
                assert av.available_in(t0, t) == demand
                # minimality: one tick earlier serves strictly less
                assert av.available_in(t0, t - 1) < demand

    def test_busy_starts(self):
        av = NodeAvailability([(2, 5), (8, 10)], period=10)
        assert av.busy_starts() == [2, 8]

    def test_rejects_interval_outside_period(self):
        with pytest.raises(AnalysisError):
            NodeAvailability([(5, 12)], period=10)

    def test_rejects_negative_demand(self):
        av = NodeAvailability([], period=10)
        with pytest.raises(AnalysisError):
            av.advance(0, -1)

    def test_rejects_bad_period(self):
        with pytest.raises(AnalysisError):
            NodeAvailability([], period=0)


class TestAdvanceBisectEquivalence:
    """The bisecting ``advance`` must match the reference gap walk."""

    @staticmethod
    def _walk_advance(av, t0, demand):
        """The pre-optimisation implementation, kept as the oracle."""
        if demand == 0:
            return t0
        if not av.busy:
            return t0 + demand
        slack = av.slack_per_period
        if slack == 0:
            return None
        period = av.period
        gaps = av._gap_list
        remaining = demand
        whole = (remaining - 1) // slack
        t = t0 + whole * period
        remaining -= whole * slack
        while remaining > 0:
            base = (t // period) * period
            x = t - base
            for s, e in gaps:
                lo = s if s > x else x
                if lo >= e:
                    continue
                room = e - lo
                if room >= remaining:
                    return base + lo + remaining
                remaining -= room
            t = base + period
        return t

    def test_fuzz_against_reference_walk(self):
        import random

        rng = random.Random(20070501)
        for _ in range(1500):
            period = rng.randint(1, 60)
            busy = []
            for _ in range(rng.randint(0, 6)):
                s = rng.randint(0, period - 1)
                busy.append((s, rng.randint(s + 1, period)))
            av = NodeAvailability(busy, period)
            for _ in range(12):
                t0 = rng.randint(0, 4 * period)
                demand = rng.randint(0, 5 * period)
                assert av.advance(t0, demand) == self._walk_advance(
                    av, t0, demand
                ), (period, busy, t0, demand)

    def test_instant_tables_consistent_with_advance(self):
        av = NodeAvailability([(2, 5), (8, 10)], period=12)
        tables = av.instant_advance_tables()
        (instants, before, slack, period, gap_ends, through, eval_order,
         dominance) = tables
        assert dominance is None  # lazily built, not requested here
        assert instants == av.critical_instants()
        assert slack == av.slack_per_period and period == av.period
        # The evaluation order is a permutation sorted by descending
        # initial busy-run length: instant 2 blocks for 3, instant 8 for
        # 2, instant 0 not at all.
        assert sorted(eval_order) == list(range(len(instants)))
        assert [instants[i] for i in eval_order] == [2, 8, 0]
        for idx, t0 in enumerate(instants):
            for demand in range(1, 3 * period):
                target = before[idx] + demand
                whole, rem = divmod(target - 1, slack)
                import bisect

                k = bisect.bisect_left(through, rem + 1)
                end = whole * period + gap_ends[k] - (through[k] - rem - 1)
                assert end == av.advance(t0, demand)

    def test_idle_pattern_tables(self):
        av = NodeAvailability([], period=10)
        tables = av.instant_advance_tables()
        assert tables.gap_ends is None and tables.instants == [0]
        assert tables.eval_order == (0,)

    def test_tables_are_a_named_tuple(self):
        """The kernel tables are an :class:`InstantTables` -- positional
        layout stable for the inlined kernels, names for everyone else."""
        from repro.analysis.availability import InstantTables

        av = NodeAvailability([(2, 5)], period=10)
        tables = av.instant_advance_tables()
        assert isinstance(tables, InstantTables)
        assert tables.instants == tables[0]
        assert tables.eval_order == tables[6]
        assert tables.dominance is None
        # A direct request builds and caches the tables in place.
        dom = av.dominance_tables()
        assert dom is not None
        assert av.instant_advance_tables().dominance is dom
