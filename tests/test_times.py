"""Unit tests for repro.model.times."""

import pytest

from repro.errors import ValidationError
from repro.model.times import bytes_to_mt, ceil_div, check_time, lcm


class TestCheckTime:
    def test_accepts_zero_by_default(self):
        assert check_time(0) == 0

    def test_accepts_positive(self):
        assert check_time(17, "x") == 17

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_time(-1, "x")

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(ValidationError, match="positive"):
            check_time(0, "x", allow_zero=False)

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="int"):
            check_time(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="int"):
            check_time(True, "x")


class TestLcm:
    def test_single(self):
        assert lcm([7]) == 7

    def test_pair(self):
        assert lcm([4, 6]) == 12

    def test_many(self):
        assert lcm([2, 3, 5, 10]) == 30

    def test_idempotent(self):
        assert lcm([8, 8, 8]) == 8

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            lcm([])

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            lcm([0, 4])


class TestCeilDiv:
    @pytest.mark.parametrize(
        "n,d,expected",
        [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (10, 3, 4), (9, 3, 3)],
    )
    def test_values(self, n, d, expected):
        assert ceil_div(n, d) == expected

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValidationError):
            ceil_div(4, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValidationError):
            ceil_div(-4, 2)


class TestBytesToMt:
    def test_default_rate_10mbps(self):
        # 10 bits per MT: 5 bytes = 40 bits -> 4 MT
        assert bytes_to_mt(5) == 4

    def test_rounding_up(self):
        # 1 byte = 8 bits -> ceil(8/10) = 1 MT
        assert bytes_to_mt(1) == 1

    def test_byte_per_mt_rate(self):
        assert bytes_to_mt(7, bits_per_mt=8) == 7

    def test_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            bytes_to_mt(0)
