"""Tests for the discrete-event FlexRay simulator."""

import pytest

from repro.analysis import analyse_system
from repro.core.config import FlexRayConfig
from repro.errors import SimulationError
from repro.flexray.events import EventKind
from repro.flexray.simulator import SimulationOptions, simulate

from tests.util import (
    dyn_msg,
    fig3_system,
    fig4_system,
    fps_task,
    scs_task,
    single_graph_system,
    st_msg,
)


def fig4_config(frame_ids, n_minislots=13):
    return FlexRayConfig(
        static_slots=("N1", "N2"),
        gd_static_slot=8,
        n_minislots=n_minislots,
        frame_ids=frame_ids,
    )


class TestStaticSegmentSimulation:
    def test_all_jobs_finish(self):
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        result = simulate(fig3_system(), cfg)
        assert result.all_finished
        assert not result.deadline_misses

    def test_matches_schedule_table_times(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        analysed = analyse_system(sys_, cfg)
        result = simulate(sys_, cfg, table=analysed.table)
        # Static activities are deterministic: simulation == analysis.
        for name in ("t1", "t2", "m1", "m2", "m3"):
            assert result.observed_wcrt[name] == analysed.wcrt[name]

    def test_frame_packing_visible_in_trace(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        result = simulate(sys_, cfg)
        st_frames = [e for e in result.trace if e.kind is EventKind.ST_FRAME]
        assert {e.activity for e in st_frames} == {"m1", "m2", "m3"}


class TestDynamicSegmentSimulation:
    def test_fig4_scenario_a_shared_frame_id(self):
        """Fig. 4.a: m1 and m3 share FrameID 1; m2 does not fit cycle 0."""
        sys_ = fig4_system()
        result = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 1}))
        tx = {
            e.activity: e.time
            for e in result.trace
            if e.kind is EventKind.DYN_TX_START
        }
        gd_cycle = 29
        assert tx["m1"] < gd_cycle  # cycle 0
        assert gd_cycle < tx["m3"] < 2 * gd_cycle  # m3 waits a whole cycle (hp)
        assert tx["m2"] > gd_cycle  # pushed out by m1's length

    def test_fig4_scenario_b_unique_frame_ids(self):
        """Fig. 4.b: m3 gets its own FrameID -> no full-cycle hp wait."""
        sys_ = fig4_system()
        result = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 3}))
        shared = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 1}))
        assert result.observed_wcrt["m2"] <= shared.observed_wcrt["m2"]

    def test_fig4_scenario_c_longer_dyn_segment(self):
        """Fig. 4.c: enlarging the DYN segment lets m2 send in cycle 0."""
        sys_ = fig4_system()
        short = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 3}, 13))
        long_ = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 3}, 20))
        assert long_.observed_wcrt["m2"] < short.observed_wcrt["m2"]
        tx = {
            e.activity: e.time
            for e in long_.trace
            if e.kind is EventKind.DYN_TX_START
        }
        assert tx["m2"] < long_.trace[0].time + 36  # within cycle 0

    def test_p_latest_tx_blocks_late_start(self):
        """A frame whose slot arrives after pLatestTx waits a cycle."""
        sys_ = fig4_system()
        result = simulate(sys_, fig4_config({"m1": 1, "m2": 2, "m3": 3}))
        tx = {
            e.activity: e.time
            for e in result.trace
            if e.kind is EventKind.DYN_TX_START
        }
        # m1 (9 minislots) ends at 25; slot 2 then sits at minislot 10 which
        # is beyond pLatestTx(N2) = 9 -> m2 goes in cycle 1.
        assert 29 <= tx["m2"] < 58

    def test_local_priority_queue_orders_same_frame_id(self):
        tasks = [
            scs_task("s", wcet=1, node="N1"),
            fps_task("r1", wcet=1, node="N2", priority=1),
            fps_task("r2", wcet=1, node="N2", priority=2),
        ]
        msgs = [
            dyn_msg("hi", 3, "s", "r1", priority=1),
            dyn_msg("lo", 3, "s", "r2", priority=2),
        ]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=2,
            n_minislots=6,
            frame_ids={"hi": 1, "lo": 1},
        )
        result = simulate(sys_, cfg)
        tx = {
            e.activity: e.time
            for e in result.trace
            if e.kind is EventKind.DYN_TX_START
        }
        assert tx["hi"] < tx["lo"]

    def test_message_queued_after_slot_waits_next_cycle(self):
        # Sender finishes after its slot passed in the current cycle.
        tasks = [
            scs_task("s", wcet=5, node="N1"),
            fps_task("r", wcet=1, node="N2", priority=1),
        ]
        msgs = [dyn_msg("m", 2, "s", "r")]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=2,
            n_minislots=8,
            frame_ids={"m": 1},
        )
        # gdCycle = 10; sender finishes at 5; DYN slot 1 of cycle 0 is at 2.
        result = simulate(sys_, cfg)
        tx = [e for e in result.trace if e.kind is EventKind.DYN_TX_START][0]
        assert tx.time == 12  # cycle 1 DYN start


class TestSimulationVsAnalysis:
    @pytest.mark.parametrize("frame_ids", [
        {"m1": 1, "m2": 2, "m3": 3},
        {"m1": 1, "m2": 2, "m3": 1},
        {"m1": 2, "m2": 1, "m3": 3},
    ])
    def test_simulated_r_never_exceeds_analysed_r(self, frame_ids):
        sys_ = fig4_system()
        cfg = fig4_config(frame_ids)
        analysed = analyse_system(sys_, cfg)
        simulated = simulate(sys_, cfg, table=analysed.table)
        assert simulated.all_finished
        for name, r_sim in simulated.observed_wcrt.items():
            assert r_sim <= analysed.wcrt[name], name

    def et_only_system(self):
        tasks = [
            fps_task("a", wcet=2, node="N1", priority=1),
            fps_task("b", wcet=3, node="N2", priority=1),
        ]
        msgs = [dyn_msg("dm", 4, "a", "b")]
        return single_graph_system(tasks, msgs, period=100, deadline=100)

    def test_offsets_still_bounded_by_analysis(self):
        sys_ = self.et_only_system()
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=2,
            n_minislots=8,
            frame_ids={"dm": 1},
        )
        analysed = analyse_system(sys_, cfg)
        for offset in (0, 3, 7, 11, 17):
            simulated = simulate(
                sys_,
                cfg,
                options=SimulationOptions(graph_offsets={"g0": offset}),
                table=analysed.table,
            )
            for name, r_sim in simulated.observed_wcrt.items():
                assert r_sim <= analysed.wcrt[name], (name, offset)

    def test_offset_rejected_for_scs_graphs(self):
        sys_ = fig4_system()
        cfg = fig4_config({"m1": 1, "m2": 2, "m3": 3})
        with pytest.raises(SimulationError, match="desynchronise"):
            simulate(
                sys_, cfg, options=SimulationOptions(graph_offsets={"g0": 5})
            )


class TestSimulatorDiagnostics:
    def test_trace_can_be_disabled(self):
        sys_ = fig3_system()
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        result = simulate(sys_, cfg, options=SimulationOptions(record_trace=False))
        assert result.trace == ()
        assert result.all_finished

    def test_deadline_misses_reported(self):
        sys_ = fig3_system(deadline=5)
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0)
        result = simulate(sys_, cfg)
        assert result.deadline_misses

    def test_unfinished_reported_when_bus_too_small(self):
        # DYN message whose frame can never be sent is caught by
        # validate_for; instead starve the message with hp traffic.
        tasks = [
            scs_task("s", wcet=1, node="N1"),
            fps_task("r", wcet=1, node="N2", priority=1),
        ]
        msgs = [dyn_msg("m", 10, "s", "r")]
        sys_ = single_graph_system(tasks, msgs, period=100, deadline=100)
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=2,
            n_minislots=9,
            frame_ids={"m": 1},
        )
        # 10 MT frame needs 10 minislots > 9 available -> invalid config.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            simulate(sys_, cfg)

    def test_response_times_per_instance(self):
        # Two graphs with different periods: the faster one is released
        # twice within the hyper-period.
        from repro.model import Application, System, TaskGraph

        g1 = TaskGraph(
            name="fast",
            period=20,
            deadline=20,
            tasks=(scs_task("a", node="N1"), scs_task("b", node="N2")),
            messages=(st_msg("m", 2, "a", "b"),),
        )
        g2 = TaskGraph(
            name="slow",
            period=40,
            deadline=40,
            tasks=(scs_task("c", node="N1"),),
        )
        sys_ = System(("N1", "N2"), Application("app", (g1, g2)))
        cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0)
        result = simulate(sys_, cfg)
        assert ("m", 0) in result.response_times
        assert ("m", 1) in result.response_times
        assert ("c", 0) in result.response_times
