"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.io import save_config, save_system

from tests.util import basic_config, fig3_system, fig4_system


@pytest.fixture
def system_path(tmp_path):
    path = str(tmp_path / "system.json")
    save_system(fig3_system(), path)
    return path


@pytest.fixture
def dyn_system_path(tmp_path):
    path = str(tmp_path / "dyn_system.json")
    save_system(fig4_system(), path)
    return path


@pytest.fixture
def config_path(tmp_path):
    path = str(tmp_path / "config.json")
    save_config(
        basic_config(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0),
        path,
    )
    return path


class TestGenerate:
    def test_generate_writes_system(self, tmp_path, capsys):
        out = str(tmp_path / "gen.json")
        assert main(["generate", out, "--nodes", "2", "--seed", "4"]) == 0
        assert os.path.exists(out)
        assert "2 nodes" in capsys.readouterr().out

    def test_generate_cruise_controller(self, tmp_path, capsys):
        out = str(tmp_path / "cc.json")
        assert main(["generate", out, "--cruise-controller"]) == 0
        assert "54 tasks" in capsys.readouterr().out


class TestAnalyse:
    def test_analyse_schedulable(self, system_path, config_path, capsys):
        assert main(["analyse", system_path, config_path]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out and "R=" in out

    def test_analyse_json_output(self, system_path, config_path, capsys):
        assert main(["analyse", system_path, config_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schedulable"] is True
        assert "m3" in payload["wcrt"]

    def test_analyse_infeasible(self, system_path, tmp_path, capsys):
        bad = str(tmp_path / "bad.json")
        save_config(
            basic_config(static_slots=("N1",), gd_static_slot=8, n_minislots=0),
            bad,
        )
        assert main(["analyse", system_path, bad]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out


class TestOptimise:
    def test_bbc(self, system_path, capsys):
        assert main(["optimise", system_path, "--algorithm", "bbc"]) == 0
        assert "BBC" in capsys.readouterr().out

    def test_obc_cf_writes_config(self, dyn_system_path, tmp_path, capsys):
        out = str(tmp_path / "best.json")
        code = main(
            ["optimise", dyn_system_path, "--algorithm", "obc-cf", "--output", out]
        )
        assert code == 0
        assert os.path.exists(out)

    def test_sa_budgeted(self, dyn_system_path, capsys):
        # Exercises the CLI plumbing; with a tiny budget SA may or may
        # not reach a schedulable configuration, so only the exit-code
        # contract is pinned.
        code = main(
            ["optimise", dyn_system_path, "--algorithm", "sa",
             "--sa-iterations", "120"]
        )
        assert code in (0, 1)
        assert "SA" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_with_gantt(self, system_path, config_path, capsys):
        assert main(["simulate", system_path, config_path, "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "bus cycle" in out
        assert "observed R" in out

    def test_simulate_trace(self, system_path, config_path, capsys):
        assert main(["simulate", system_path, config_path, "--trace"]) == 0
        assert "task_finish" in capsys.readouterr().out


class TestShowAndErrors:
    def test_show_system(self, system_path, capsys):
        assert main(["show", system_path]) == 0
        assert "graph g0" in capsys.readouterr().out

    def test_show_config(self, config_path, capsys):
        assert main(["show", config_path]) == 0
        assert "ST slot 1" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["show", "/nonexistent/x.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestFaultFlags:
    def test_simulate_fault_rate_reports_retransmissions(
        self, system_path, config_path, capsys
    ):
        rc = main(
            [
                "simulate", system_path, config_path,
                "--fault-rate", "0.5", "--fault-seed", "0",
            ]
        )
        assert rc in (0, 1)
        out = capsys.readouterr().out
        assert "retransmissions=4" in out

    def test_simulate_clean_run_has_no_retransmission_line(
        self, system_path, config_path, capsys
    ):
        main(["simulate", system_path, config_path])
        assert "retransmissions" not in capsys.readouterr().out

    def test_analyse_fault_hypothesis_inflates_bounds(
        self, system_path, config_path, capsys
    ):
        main(["analyse", system_path, config_path, "--json"])
        clean = json.loads(capsys.readouterr().out)
        main(
            [
                "analyse", system_path, config_path, "--json",
                "--fault-hypothesis", "2",
            ]
        )
        faulty = json.loads(capsys.readouterr().out)
        assert all(
            faulty["wcrt"][name] >= clean["wcrt"][name]
            for name in clean["wcrt"]
        )
        assert any(
            faulty["wcrt"][name] > clean["wcrt"][name]
            for name in clean["wcrt"]
        )

    def test_invalid_fault_hypothesis_is_a_cli_error(
        self, system_path, config_path, capsys
    ):
        rc = main(
            [
                "analyse", system_path, config_path,
                "--fault-hypothesis", "-1",
            ]
        )
        assert rc == 2
        assert "fault_hypothesis" in capsys.readouterr().err


class TestCampaignRuntimeFlags:
    def test_job_timeout_failure_sets_exit_code(
        self, system_path, tmp_path, capsys
    ):
        out = str(tmp_path / "summary.json")
        # The job must outlive the timeout by much more than one GIL
        # switch interval, so a tiny bbc run will not do: budget the SA
        # job ~1s of annealing and time it out after 50ms.
        rc = main(
            [
                "campaign", system_path,
                "--strategies", "sa",
                "--sa-iterations", "20000",
                "--job-timeout", "0.05",
                "--output", out,
            ]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "timed out" in captured.err
        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["jobs"] == {}
        assert payload["failures"]["system__sa"]["kind"] == "timeout"

    def test_unwritable_output_fails_before_jobs(
        self, system_path, tmp_path, capsys
    ):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        rc = main(
            [
                "campaign", system_path,
                "--strategies", "bbc",
                "--output", str(blocker / "summary.json"),
            ]
        )
        assert rc == 2
        assert "--output" in capsys.readouterr().err


class TestConsoleEntryPoint:
    """The packaged `repro` command is `repro.cli:main` (setup.py
    console_scripts); `--help` must exit 0 on every layer of it."""

    @pytest.mark.parametrize(
        "argv",
        [["--help"], ["serve", "--help"], ["analyse", "--help"]],
        ids=lambda a: " ".join(a),
    )
    def test_help_exits_zero(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_setup_declares_the_console_script(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "setup.py"), encoding="utf-8") as fh:
            assert "repro=repro.cli:main" in fh.read()

    def test_serve_help_names_the_service_knobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        for flag in ("--state-dir", "--max-concurrent", "--pool-entries",
                     "--max-campaigns"):
            assert flag in out
