"""Unit tests for bus-cycle geometry helpers."""

import pytest

from repro.core.config import FlexRayConfig
from repro.errors import ConfigurationError
from repro.flexray import timeline


@pytest.fixture
def cfg():
    # ST: 2 slots x 8 MT, DYN: 13 minislots x 1 MT -> gdCycle 29
    return FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=13)


class TestCycleGeometry:
    def test_cycle_start(self, cfg):
        assert timeline.cycle_start(cfg, 0) == 0
        assert timeline.cycle_start(cfg, 3) == 87

    def test_rejects_negative_cycle(self, cfg):
        with pytest.raises(ConfigurationError):
            timeline.cycle_start(cfg, -1)

    def test_st_slot_start_and_end(self, cfg):
        assert timeline.st_slot_start(cfg, 0, 1) == 0
        assert timeline.st_slot_start(cfg, 0, 2) == 8
        assert timeline.st_slot_start(cfg, 1, 1) == 29
        assert timeline.st_slot_end(cfg, 1, 2) == 29 + 16

    def test_rejects_slot_out_of_range(self, cfg):
        with pytest.raises(ConfigurationError):
            timeline.st_slot_start(cfg, 0, 0)
        with pytest.raises(ConfigurationError):
            timeline.st_slot_start(cfg, 0, 3)

    def test_dyn_segment_bounds(self, cfg):
        assert timeline.dyn_segment_start(cfg, 0) == 16
        assert timeline.dyn_segment_end(cfg, 0) == 29
        assert timeline.dyn_segment_start(cfg, 2) == 58 + 16

    def test_cycle_of(self, cfg):
        assert timeline.cycle_of(cfg, 0) == 0
        assert timeline.cycle_of(cfg, 28) == 0
        assert timeline.cycle_of(cfg, 29) == 1
        with pytest.raises(ConfigurationError):
            timeline.cycle_of(cfg, -1)

    def test_next_cycle_start(self, cfg):
        assert timeline.next_cycle_start(cfg, 0) == 29
        assert timeline.next_cycle_start(cfg, 28) == 29
        assert timeline.next_cycle_start(cfg, 29) == 58

    def test_earliest_dyn_slot_start(self, cfg):
        assert timeline.earliest_dyn_slot_start(cfg, 0, 1) == 16
        assert timeline.earliest_dyn_slot_start(cfg, 0, 4) == 19
        with pytest.raises(ConfigurationError):
            timeline.earliest_dyn_slot_start(cfg, 0, 0)


class TestSlotInstances:
    def test_instances_ordered_and_bounded(self, cfg):
        inst = list(timeline.st_slot_instances(cfg, "N2", horizon=60))
        assert inst == [(0, 2, 8), (1, 2, 37)]

    def test_node_without_slots(self, cfg):
        assert list(timeline.st_slot_instances(cfg, "N9", horizon=60)) == []

    def test_multi_slot_node(self):
        cfg = FlexRayConfig(
            static_slots=("N1", "N2", "N1"), gd_static_slot=4, n_minislots=0
        )
        inst = list(timeline.st_slot_instances(cfg, "N1", horizon=13))
        assert inst == [(0, 1, 0), (0, 3, 8), (1, 1, 12)]
