"""Unit tests for the static schedule table."""

import pytest

from repro.analysis.schedule_table import ScheduleTable
from repro.core.config import FlexRayConfig
from repro.errors import SchedulingError

from tests.util import fig3_system, scs_task, st_msg


@pytest.fixture
def cfg():
    return FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=13)


@pytest.fixture
def table(cfg):
    return ScheduleTable(cfg, horizon=100)


class TestTaskPlacement:
    def test_add_and_lookup(self, table):
        t = scs_task("a", wcet=5, node="N1")
        entry = table.add_task("a#0", t, start=10)
        assert entry.finish == 15
        assert table.finish_of("a#0") == 15
        assert table.busy_intervals("N1") == [(10, 15)]

    def test_rejects_duplicate_job(self, table):
        t = scs_task("a", wcet=5)
        table.add_task("a#0", t, 0)
        with pytest.raises(SchedulingError, match="already"):
            table.add_task("a#0", t, 20)

    def test_rejects_overlap(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 10)
        with pytest.raises(SchedulingError, match="overlaps"):
            table.add_task("b#0", scs_task("b", wcet=5), 12)

    def test_adjacent_placements_allowed(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 10)
        table.add_task("b#0", scs_task("b", wcet=5), 15)
        table.add_task("c#0", scs_task("c", wcet=5), 5)
        assert table.busy_intervals("N1") == [(5, 10), (10, 15), (15, 20)]

    def test_nodes_tracked_separately(self, table):
        table.add_task("a#0", scs_task("a", wcet=5, node="N1"), 10)
        table.add_task("b#0", scs_task("b", wcet=5, node="N2"), 10)
        assert table.busy_intervals("N2") == [(10, 15)]


class TestFirstFit:
    def test_empty_node(self, table):
        assert table.first_fit("N1", 7, 5) == 7

    def test_skips_busy(self, table):
        table.add_task("a#0", scs_task("a", wcet=10), 5)
        assert table.first_fit("N1", 0, 6) == 15  # gap [0,5) too small

    def test_uses_leading_gap_when_big_enough(self, table):
        table.add_task("a#0", scs_task("a", wcet=10), 5)
        assert table.first_fit("N1", 0, 5) == 0

    def test_between_intervals(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 0)
        table.add_task("b#0", scs_task("b", wcet=5), 12)
        assert table.first_fit("N1", 0, 7) == 5  # gap [5, 12) just fits
        assert table.first_fit("N1", 0, 8) == 17
        assert table.first_fit("N1", 6, 7) == 17

    def test_gap_starts_candidates(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 2)
        table.add_task("b#0", scs_task("b", wcet=5), 12)
        starts = table.gap_starts("N1", 0, 2, limit=3)
        assert starts[0] == 0
        assert 7 in starts or 17 in starts

    def test_gap_starts_one_candidate_per_gap(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 2)
        table.add_task("b#0", scs_task("b", wcet=5), 12)
        # gaps: [0,2) fits 2, [7,12) fits 2+, tail from 17
        assert table.gap_starts("N1", 0, 2, limit=10) == [0, 7, 17]
        # duration 4 skips the leading gap: first fit lands at 7
        assert table.gap_starts("N1", 0, 4, limit=10) == [7, 17]

    def test_gap_starts_abutting_intervals_not_reproposed(self, table):
        """Abutting busy intervals are one blocked region: the rescan
        must neither re-propose a start inside it nor skip the gap
        behind it (the seed's ``start + 1`` advance did both)."""
        table.add_task("a#0", scs_task("a", wcet=5), 5)
        table.add_task("b#0", scs_task("b", wcet=5), 10)  # abuts a#0
        table.add_task("c#0", scs_task("c", wcet=5), 20)
        starts = table.gap_starts("N1", 0, 3, limit=10)
        assert starts == [0, 15, 25]
        assert len(set(starts)) == len(starts)

    def test_gap_starts_zero_leading_gap(self, table):
        table.add_task("a#0", scs_task("a", wcet=4), 0)
        table.add_task("b#0", scs_task("b", wcet=4), 4)  # abuts at 4
        assert table.gap_starts("N1", 0, 2, limit=5) == [8]

    def test_gap_starts_limit_one_is_first_fit(self, table):
        table.add_task("a#0", scs_task("a", wcet=5), 2)
        assert table.gap_starts("N1", 0, 2, limit=1) == [
            table.first_fit("N1", 0, 2)
        ]
        assert table.gap_starts("N1", 0, 2, limit=0) == []

    def test_gap_starts_strictly_increasing_and_feasible(self, table):
        import random

        rng = random.Random(5)
        t = 0
        for k in range(8):
            t += rng.randint(1, 6)
            table.add_task(f"x{k}#0", scs_task(f"x{k}", wcet=rng.randint(1, 4)), t)
            t = table.tasks[f"x{k}#0"].finish
        for duration in (1, 2, 5):
            starts = table.gap_starts("N1", 0, duration, limit=6)
            assert starts == sorted(set(starts))
            for s in starts:
                # each candidate must itself be a feasible first fit
                assert table.first_fit("N1", s, duration) == s

    def test_rejects_zero_duration(self, table):
        with pytest.raises(SchedulingError):
            table.first_fit("N1", 0, 0)


class TestMessagePlacement:
    def test_add_message_offsets_accumulate(self, table):
        sys_ = fig3_system()
        m2 = sys_.application.message("m2")
        m3 = sys_.application.message("m3")
        e2 = table.add_message("m2#0", m2, cycle=0, slot=2)
        e3 = table.add_message("m3#0", m3, cycle=0, slot=2)
        assert e2.offset == 0 and e2.slot_start == 8
        assert e2.finish == 11
        assert e3.offset == 3
        assert e3.finish == 8 + 3 + 2
        assert table.frame_used(0, 2) == 5

    def test_rejects_frame_overflow(self, table):
        sys_ = fig3_system()
        m1 = sys_.application.message("m1")  # 4 MT, slot payload 8 MT
        table.add_message("m1#0", m1, 0, 1)
        table.add_message("m1#1", m1, 0, 1)
        with pytest.raises(SchedulingError, match="does not fit"):
            table.add_message("m1#2", m1, 0, 1)

    def test_st_message_entries_sorted(self, table):
        sys_ = fig3_system()
        m1 = sys_.application.message("m1")
        m2 = sys_.application.message("m2")
        table.add_message("m2#0", m2, 0, 2)
        table.add_message("m1#0", m1, 0, 1)
        entries = table.st_message_entries()
        assert [e.job_key for e in entries] == ["m1#0", "m2#0"]

    def test_makespan(self, table):
        sys_ = fig3_system()
        table.add_task("a#0", scs_task("a", wcet=5), 40)
        table.add_message("m2#0", sys_.application.message("m2"), 1, 2)
        # slot start = 29 + 8 = 37, finish 40; task finish 45
        assert table.makespan() == 45

    def test_rejects_bad_horizon(self, cfg):
        with pytest.raises(SchedulingError):
            ScheduleTable(cfg, horizon=0)
