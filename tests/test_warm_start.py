"""Fix-point warm starting: certified inner seeds and outer sweep modes.

Three layers, three guarantees:

* the *inner* busy-window warm starts are certified lower-bound seeding
  -- bit-identical to cold by construction, fuzzed here against
  uncertified seeds to exercise the runtime guards;
* ``warm_start="certified"`` (the default) seeds the outer iteration
  from the configuration's own static-only state -- a provable lower
  bound of the least fixed point -- so it is locked byte-identical to
  the fully cold ``"off"`` oracle, *including* on the adversarial
  64-point sweep where neighbour seeding is known to diverge (the
  retirement regression for the 2/64 counterexample);
* ``warm_start="seed"`` (legacy neighbour seeding, opt-in) still
  diverges on that sweep -- the pinned finding that the outer fix point
  is not start-independent, and the reason certified seeds come from
  the configuration's own lower bound rather than a neighbour's fixed
  point.
"""

import random

import pytest

from repro.analysis import AnalysisContext, AnalysisOptions
from repro.analysis.availability import NodeAvailability
from repro.analysis.dyn import (
    prepped_busy_window as dyn_cold,
    seeded_busy_window as dyn_seeded,
)
from repro.analysis.fps import (
    prepped_busy_window as fps_cold,
    seeded_busy_window as fps_seeded,
)
from repro.core.bbc import basic_configuration
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.errors import ConfigurationError
from repro.synth import paper_suite


def _signature(result):
    return (
        result.feasible,
        result.schedulable,
        result.converged,
        result.failure,
        None if result.cost is None else result.cost.value,
        tuple(sorted(result.wcrt.items())),
    )


def _sweep(system, points=24):
    options = BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    return [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, points)
    ]


#: The OBC/EE sweep on this suite member contains neighbouring DYN
#: lengths whose seeded outer iteration converges to a strictly larger
#: fixed point than the cold one -- the measured counterexample that
#: rules out unconditional outer warm starting.
ADVERSARIAL = dict(n_nodes=4, count=1, seed=23, points=64)


class TestInnerWarmStartKernels:
    def _random_case(self, rng):
        period = rng.randint(20, 120)
        busy = []
        for _ in range(rng.randint(0, 4)):
            s = rng.randint(0, period - 2)
            busy.append((s, rng.randint(s + 1, period)))
        availability = NodeAvailability(busy, period)
        info = tuple(
            (f"j{k}", rng.randint(5, 200), rng.random() < 0.2,
             rng.randint(1, 6))
            for k in range(rng.randint(0, 4))
        )
        jitters = {name: rng.randint(0, 40) for name, _, _, _ in info}
        return availability, info, jitters

    def test_fps_certified_seeds_bit_identical(self):
        rng = random.Random(7)
        for _ in range(400):
            availability, info, jitters = self._random_case(rng)
            wcet = rng.randint(1, 10)
            cap = rng.randint(50, 4000)
            own = rng.randint(0, 30)
            cold = fps_cold(wcet, info, availability, jitters, cap, own)
            value, ok, demands = fps_seeded(
                wcet, info, availability, jitters, cap, own, None
            )
            assert (value, ok) == cold
            # Certified seeds: any start at or below the converged
            # demand must reproduce the cold result exactly.
            seeds = [
                None if d is None else rng.randint(0, d) for d in demands
            ]
            again = fps_seeded(
                wcet, info, availability, jitters, cap, own, seeds
            )
            assert (again[0], again[1]) == cold
            # Exact re-seed with the converged demands: same again.
            exact = fps_seeded(
                wcet, info, availability, jitters, cap, own, demands
            )
            assert (exact[0], exact[1]) == cold

    def test_fps_uncertified_seed_guard(self):
        """Seeds above the fixed point: the descent guard replays cold.

        An over-seed that happens to land in the basin of a *higher*
        fixed point can legitimately converge there without a single
        descending step -- that is exactly why the least fixed point is
        not start-independent from above, and why the analysis only ever
        passes certified (lower-bound) seeds.  The guard's contract is
        therefore: the result is never *below* the cold least fixed
        point, and descending trajectories are replayed cold.
        """
        rng = random.Random(11)
        guarded = 0
        for _ in range(400):
            availability, info, jitters = self._random_case(rng)
            wcet = rng.randint(1, 10)
            cap = rng.randint(50, 4000)
            own = rng.randint(0, 30)
            cold_value, _ = fps_cold(
                wcet, info, availability, jitters, cap, own
            )
            _, _, demands = fps_seeded(
                wcet, info, availability, jitters, cap, own, None
            )
            bogus = [
                None if d is None else d + rng.randint(1, 25) for d in demands
            ]
            value, _, _ = fps_seeded(
                wcet, info, availability, jitters, cap, own, bogus
            )
            assert value >= cold_value
            if value == cold_value:
                guarded += 1
        # On this corpus the guard recovers the cold value nearly
        # always; the deterministic count pins the behaviour.
        assert guarded > 350

    def test_dyn_certified_seeds_bit_identical(self):
        rng = random.Random(13)
        for _ in range(400):
            n_info = rng.randint(0, 3)
            hp = tuple(
                (f"h{k}", rng.randint(10, 300), rng.random() < 0.2)
                for k in range(n_info)
            )
            lf = tuple(
                (f"l{k}", rng.randint(10, 300), rng.random() < 0.2,
                 rng.randint(0, 4))
                for k in range(rng.randint(0, 4))
            )
            jitters = {
                name: rng.randint(0, 50)
                for name in [r[0] for r in hp] + [r[0] for r in lf]
            }
            lower = len(lf)
            lam = lower + rng.randint(0, 3)
            theta = rng.randint(1, 5)
            sigma = rng.randint(1, 60)
            ct = rng.randint(1, 12)
            gd_cycle = rng.randint(20, 150)
            st_bus = rng.randint(0, 15)
            ms = rng.randint(1, 4)
            cap = rng.randint(100, 6000)
            own = rng.randint(0, 40)
            for strategy in ("bound", "exact"):
                cold = dyn_cold(
                    hp, lf, lower, lam, theta, sigma, ct, gd_cycle, st_bus,
                    ms, jitters, cap, own, strategy,
                )
                w, ok, final = dyn_seeded(
                    hp, lf, lower, lam, theta, sigma, ct, gd_cycle, st_bus,
                    ms, jitters, cap, own, strategy,
                )
                assert (w, ok) == cold
                seeded = dyn_seeded(
                    hp, lf, lower, lam, theta, sigma, ct, gd_cycle, st_bus,
                    ms, jitters, cap, own, strategy,
                    seed=rng.randint(0, final),
                )
                assert (seeded[0], seeded[1]) == cold
                # Uncertified over-seeds: never below the cold least
                # fixed point (see the FPS guard test for why equality
                # cannot be promised).
                bogus = dyn_seeded(
                    hp, lf, lower, lam, theta, sigma, ct, gd_cycle, st_bus,
                    ms, jitters, cap, own, strategy,
                    seed=final + rng.randint(1, 30),
                )
                assert bogus[0] >= cold[0]


class TestOuterWarmStartModes:
    def test_default_certified_equals_fresh_contexts_fig7_sweep(self):
        from benchmarks.bench_fig7_dyn_length_sweep import build_system

        assert AnalysisOptions().warm_start == "certified"
        system = build_system()
        configs = _sweep(system, points=12)
        warm = AnalysisContext(system)
        for config in configs:
            fresh = AnalysisContext(system).analyse(config)
            assert _signature(warm.analyse(config)) == _signature(fresh)

    def test_all_modes_agree_with_cold_on_fig7_sweep(self):
        """The Fig. 7 workload warm-starts cleanly in every mode."""
        from benchmarks.bench_fig7_dyn_length_sweep import build_system

        system = build_system()
        configs = _sweep(system, points=12)
        cold = [
            AnalysisContext(
                system, AnalysisOptions(warm_start="off")
            ).analyse(c)
            for c in configs
        ]
        for mode in ("certified", "seed", "verify"):
            ctx = AnalysisContext(system, AnalysisOptions(warm_start=mode))
            got = [ctx.analyse(c) for c in configs]
            assert [_signature(r) for r in got] == [
                _signature(r) for r in cold
            ]
            assert ctx.warm_start_divergences == 0

    def test_certified_locked_to_cold_on_adversarial_sweep(self):
        """Retirement regression for the 2/64 divergence counterexample.

        PR 2 measured that seeding the outer fix point from a
        *neighbour's* solution converges to a strictly larger fixed
        point on 2 of the 64 sweep points of this workload.  The
        certified warm start seeds from the configuration's own
        static-only lower bound instead, so it is provably -- and here
        byte-identically, across the full 64-point sweep -- equal to
        the cold oracle, which is why it ships default-on.
        """
        system = paper_suite(
            ADVERSARIAL["n_nodes"], count=ADVERSARIAL["count"],
            seed=ADVERSARIAL["seed"],
        )[0]
        configs = _sweep(system, points=ADVERSARIAL["points"])
        cold_ctx = AnalysisContext(system, AnalysisOptions(warm_start="off"))
        cold = [cold_ctx.analyse(c) for c in configs]

        certified_ctx = AnalysisContext(system)  # the default mode
        certified = [certified_ctx.analyse(c) for c in configs]
        assert [_signature(r) for r in certified] == [
            _signature(r) for r in cold
        ]

        # "verify" runs both trajectories itself and must count zero
        # divergences -- the cross-check mode the default is shipped
        # with.
        ctx = AnalysisContext(system, AnalysisOptions(warm_start="verify"))
        verified = [ctx.analyse(c) for c in configs]
        assert [_signature(r) for r in verified] == [
            _signature(r) for r in cold
        ]
        assert ctx.warm_start_divergences == 0

        # ... while legacy "seed" mode really does diverge there, which
        # is the documented reason neighbour seeding stays opt-in.
        ctx_seed = AnalysisContext(system, AnalysisOptions(warm_start="seed"))
        seeded = [ctx_seed.analyse(c) for c in configs]
        assert [_signature(r) for r in seeded] != [
            _signature(r) for r in cold
        ]

    def test_seeding_requires_sweep_neighbours(self):
        """Changing the FrameID assignment invalidates the seed state."""
        system = paper_suite(3, count=1, seed=23)[0]
        configs = _sweep(system, points=4)
        ctx = AnalysisContext(system, AnalysisOptions(warm_start="seed"))
        for config in configs:
            ctx.analyse(config)
        # A different FrameID permutation is not a sweep neighbour: the
        # next analysis must fall back to a cold start (seed key check).
        fids = dict(configs[-1].frame_ids)
        names = sorted(fids)
        if len(names) >= 2:
            a, b = names[0], names[1]
            fids[a], fids[b] = fids[b], fids[a]
        try:
            other = configs[-1].with_frame_ids(fids)
            other.validate_for(system)
        except ConfigurationError:
            pytest.skip("no legal FrameID permutation for this system")
        cold = AnalysisContext(system).analyse(other)
        assert _signature(ctx.analyse(other)) == _signature(cold)

    def test_unknown_mode_rejected(self):
        system = paper_suite(2, count=1, seed=23)[0]
        with pytest.raises(ConfigurationError, match="warm_start"):
            AnalysisContext(system, AnalysisOptions(warm_start="always"))
