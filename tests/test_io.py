"""Round-trip tests for JSON serialization."""

import json

import pytest

from repro.core import optimise_bbc, optimise_obc
from repro.errors import SerializationError
from repro.io import (
    config_from_dict,
    config_to_dict,
    load_config,
    load_result,
    load_system,
    result_from_dict,
    result_to_dict,
    save_config,
    save_result,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.synth import GeneratorConfig, generate_system

from tests.util import basic_config, fig3_system, fig4_system


class TestSystemRoundTrip:
    def test_fig3_round_trip(self):
        sys_ = fig3_system()
        clone = system_from_dict(system_to_dict(sys_))
        assert clone.describe() == sys_.describe()
        assert [t.wcet for t in clone.application.tasks()] == [
            t.wcet for t in sys_.application.tasks()
        ]

    def test_generated_system_round_trip(self):
        sys_ = generate_system(GeneratorConfig(n_nodes=3, seed=77))
        clone = system_from_dict(system_to_dict(sys_))
        assert clone.describe() == sys_.describe()
        for g1, g2 in zip(sys_.application.graphs, clone.application.graphs):
            assert g1.precedences == g2.precedences
            assert [m.size for m in g1.messages] == [m.size for m in g2.messages]
            assert [t.priority for t in g1.tasks] == [t.priority for t in g2.tasks]

    def test_policies_and_kinds_preserved(self):
        sys_ = fig4_system()
        clone = system_from_dict(system_to_dict(sys_))
        assert clone.application.task("d1").is_fps
        assert clone.application.message("m1").is_dynamic

    def test_document_is_json_compatible(self):
        text = json.dumps(system_to_dict(fig3_system()))
        assert "m1" in text

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "system.json")
        save_system(fig3_system(), path)
        assert load_system(path).describe() == fig3_system().describe()


class TestConfigRoundTrip:
    def test_round_trip(self):
        cfg = basic_config(frame_ids={"m1": 1, "m2": 2, "m3": 1})
        clone = config_from_dict(config_to_dict(cfg))
        assert clone == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = basic_config(frame_ids={"x": 3})
        path = str(tmp_path / "config.json")
        save_config(cfg, path)
        assert load_config(path) == cfg


class TestResultRoundTrip:
    def _signature(self, result):
        best = result.best
        return (
            result.algorithm,
            result.evaluations,
            result.cache_hits,
            result.elapsed_seconds,
            result.stop_reason,
            result.trace,
            None
            if best is None
            else (
                best.config,
                best.feasible,
                best.schedulable,
                best.converged,
                best.cost,
                tuple(sorted(best.wcrt.items())),
                best.failure,
            ),
        )

    def test_full_result_round_trip(self):
        result = optimise_obc(fig4_system(), method="curvefit")
        clone = result_from_dict(result_to_dict(result))
        assert self._signature(clone) == self._signature(result)
        # the schedule table is deliberately not persisted
        assert clone.best.table is None

    def test_trace_with_estimates_and_infinities(self):
        # Synthesise a trace carrying both special encodings the schema
        # documents: interpolated (exact=False) points and the infinite
        # costs of infeasible candidates.
        import math

        from repro.core import OptimisationResult, SearchPoint

        result = OptimisationResult(
            algorithm="TEST",
            best=None,
            evaluations=1,
            elapsed_seconds=0.5,
            trace=(
                SearchPoint(2, 8, 10, math.inf, False, True),
                SearchPoint(2, 8, 20, -12.5, True, False),
            ),
            stop_reason="budget",
        )
        doc = result_to_dict(result)
        clone = result_from_dict(doc)
        assert clone.trace == result.trace
        assert math.isinf(clone.trace[0].cost)
        assert clone.trace[1].exact is False
        assert clone.stop_reason == "budget"
        assert json.dumps(doc)  # document is JSON-encodable (Infinity)

    def test_file_round_trip(self, tmp_path):
        result = optimise_bbc(fig3_system())
        path = str(tmp_path / "result.json")
        save_result(result, path)
        clone = load_result(path)
        assert self._signature(clone) == self._signature(result)

    def test_wrong_kind_rejected(self):
        doc = config_to_dict(basic_config())
        with pytest.raises(SerializationError, match="kind"):
            result_from_dict(doc)

    def test_wrong_result_schema_rejected(self):
        doc = result_to_dict(optimise_bbc(fig3_system()))
        doc["result_schema"] = 99
        with pytest.raises(SerializationError, match="schema"):
            result_from_dict(doc)

    def test_malformed_trace_point_rejected(self):
        doc = result_to_dict(optimise_bbc(fig3_system()))
        doc["trace"] = [[1, 2, 3]]
        with pytest.raises(SerializationError, match="trace point"):
            result_from_dict(doc)


class TestVersioning:
    def test_unknown_version_rejected(self):
        doc = system_to_dict(fig3_system())
        doc["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            system_from_dict(doc)

    def test_missing_version_rejected(self):
        doc = config_to_dict(basic_config())
        del doc["version"]
        with pytest.raises(SerializationError):
            config_from_dict(doc)

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            system_from_dict({"version": 1, "nodes": ["N1"]})
