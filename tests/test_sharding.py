"""Sharded benchmark partitioning (``repro.synth.sharding``)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.synth import paper_suite, paper_system, shard_plan


class TestShardPlan:
    def test_partition_is_exact_and_balanced(self):
        plan = shard_plan(node_counts=range(2, 8), count=25, num_shards=8)
        assert len(plan) == 8
        all_entries = [e for spec in plan for e in spec.entries]
        assert len(all_entries) == 6 * 25
        assert len(set(all_entries)) == 6 * 25
        sizes = [len(spec.entries) for spec in plan]
        assert max(sizes) - min(sizes) <= 1
        # Round-robin: every shard sees every node-count class.
        for spec in plan:
            assert {e.n_nodes for e in spec.entries} == set(range(2, 8))

    def test_deterministic_and_self_describing(self):
        a = shard_plan((2, 3, 4), count=5, num_shards=3, seed=99)
        b = shard_plan((4, 3, 2), count=5, num_shards=3, seed=99)
        assert a == b  # node counts are normalised
        assert a[0].suite_key() == ((2, 3, 4), 5, 99)
        assert all(spec.num_shards == 3 for spec in a)

    def test_more_shards_than_systems(self):
        plan = shard_plan((2,), count=2, num_shards=5)
        assert sum(len(s.entries) for s in plan) == 2
        assert sum(1 for s in plan if not s.entries) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            shard_plan((2, 3), count=0, num_shards=2)
        with pytest.raises(ValidationError):
            shard_plan((2, 3), count=2, num_shards=0)
        with pytest.raises(ValidationError):
            shard_plan((), count=2, num_shards=2)


#: Suite parameter space for the property tests: node-count sets (with
#: duplicates and arbitrary order, both of which the plan normalises),
#: system counts and shard counts -- including num_shards > len(entries).
plan_args = st.tuples(
    st.lists(st.integers(2, 40), min_size=1, max_size=8),
    st.integers(1, 30),
    st.integers(1, 12),
    st.integers(0, 10_000),
)


class TestShardPlanProperties:
    """The contracts every worker and the aggregator rely on, over the
    whole parameter space: the shards are an *exact partition* of the
    suite (nothing lost, nothing duplicated), the partition is balanced
    to within one system, and the plan is a pure function of the suite
    identity -- invariant under reordering (or duplicating) the
    node-count input."""

    @given(plan_args)
    @settings(max_examples=150, deadline=None)
    def test_shards_partition_the_suite_exactly(self, args):
        node_counts, count, num_shards, seed = args
        plan = shard_plan(node_counts, count, num_shards, seed=seed)
        assert len(plan) == num_shards
        classes = sorted(set(node_counts))
        expected = {(n, i) for n in classes for i in range(count)}
        scattered = [
            (e.n_nodes, e.index) for spec in plan for e in spec.entries
        ]
        assert len(scattered) == len(expected)  # no duplicates...
        assert set(scattered) == expected  # ...and no losses
        # Every entry knows which sweep it belongs to.
        assert all(
            spec.suite_key() == (tuple(classes), count, seed)
            for spec in plan
        )

    @given(plan_args)
    @settings(max_examples=150, deadline=None)
    def test_shards_are_balanced_within_one(self, args):
        node_counts, count, num_shards, seed = args
        plan = shard_plan(node_counts, count, num_shards, seed=seed)
        sizes = [len(spec.entries) for spec in plan]
        assert max(sizes) - min(sizes) <= 1
        # Round-robin also balances *classes*, not just totals: no
        # shard holds more than ceil(count / num_shards) systems of any
        # one node-count class (a contiguous split would concentrate
        # the slowest class on the last shards).
        cap = -(-count // num_shards)
        for spec in plan:
            per_class = {}
            for entry in spec.entries:
                per_class[entry.n_nodes] = per_class.get(entry.n_nodes, 0) + 1
            assert all(v <= cap for v in per_class.values())

    @given(plan_args, st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_plan_is_invariant_under_input_reordering(self, args, rng):
        node_counts, count, num_shards, seed = args
        shuffled = list(node_counts) + rng.sample(
            node_counts, k=min(3, len(node_counts))
        )
        rng.shuffle(shuffled)
        assert shard_plan(
            shuffled, count, num_shards, seed=seed
        ) == shard_plan(node_counts, count, num_shards, seed=seed)


class TestPaperSystemRegeneration:
    def test_paper_system_matches_suite_member(self):
        suite = paper_suite(3, count=4, seed=23)
        for i, system in enumerate(suite):
            regenerated = paper_system(3, i, seed=23)
            assert regenerated.describe() == system.describe()
            assert [t.name for t in regenerated.application.tasks()] == [
                t.name for t in system.application.tasks()
            ]
            assert [
                (t.wcet, t.node, t.priority)
                for t in regenerated.application.tasks()
            ] == [
                (t.wcet, t.node, t.priority) for t in system.application.tasks()
            ]

    def test_shard_systems_cover_their_entries(self):
        plan = shard_plan((2, 3), count=2, num_shards=2, seed=23)
        for spec in plan:
            regenerated = list(spec.systems())
            assert [e for e, _ in regenerated] == list(spec.entries)
            for entry, system in regenerated:
                assert len(system.nodes) == entry.n_nodes
