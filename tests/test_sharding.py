"""Sharded benchmark partitioning (``repro.synth.sharding``)."""

import pytest

from repro.errors import ValidationError
from repro.synth import paper_suite, paper_system, shard_plan


class TestShardPlan:
    def test_partition_is_exact_and_balanced(self):
        plan = shard_plan(node_counts=range(2, 8), count=25, num_shards=8)
        assert len(plan) == 8
        all_entries = [e for spec in plan for e in spec.entries]
        assert len(all_entries) == 6 * 25
        assert len(set(all_entries)) == 6 * 25
        sizes = [len(spec.entries) for spec in plan]
        assert max(sizes) - min(sizes) <= 1
        # Round-robin: every shard sees every node-count class.
        for spec in plan:
            assert {e.n_nodes for e in spec.entries} == set(range(2, 8))

    def test_deterministic_and_self_describing(self):
        a = shard_plan((2, 3, 4), count=5, num_shards=3, seed=99)
        b = shard_plan((4, 3, 2), count=5, num_shards=3, seed=99)
        assert a == b  # node counts are normalised
        assert a[0].suite_key() == ((2, 3, 4), 5, 99)
        assert all(spec.num_shards == 3 for spec in a)

    def test_more_shards_than_systems(self):
        plan = shard_plan((2,), count=2, num_shards=5)
        assert sum(len(s.entries) for s in plan) == 2
        assert sum(1 for s in plan if not s.entries) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            shard_plan((2, 3), count=0, num_shards=2)
        with pytest.raises(ValidationError):
            shard_plan((2, 3), count=2, num_shards=0)
        with pytest.raises(ValidationError):
            shard_plan((), count=2, num_shards=2)


class TestPaperSystemRegeneration:
    def test_paper_system_matches_suite_member(self):
        suite = paper_suite(3, count=4, seed=23)
        for i, system in enumerate(suite):
            regenerated = paper_system(3, i, seed=23)
            assert regenerated.describe() == system.describe()
            assert [t.name for t in regenerated.application.tasks()] == [
                t.name for t in system.application.tasks()
            ]
            assert [
                (t.wcet, t.node, t.priority)
                for t in regenerated.application.tasks()
            ] == [
                (t.wcet, t.node, t.priority) for t in system.application.tasks()
            ]

    def test_shard_systems_cover_their_entries(self):
        plan = shard_plan((2, 3), count=2, num_shards=2, seed=23)
        for spec in plan:
            regenerated = list(spec.systems())
            assert [e for e, _ in regenerated] == list(spec.entries)
            for entry, system in regenerated:
                assert len(system.nodes) == entry.n_nodes
