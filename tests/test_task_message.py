"""Unit tests for the Task and Message model objects."""

import pytest

from repro.errors import ValidationError
from repro.model import Message, MessageKind, SchedulingPolicy, Task


class TestTask:
    def test_defaults(self):
        t = Task("t", wcet=5, node="N1")
        assert t.policy is SchedulingPolicy.SCS
        assert t.is_scs and not t.is_fps
        assert t.release == 0
        assert t.deadline is None

    def test_fps_flag(self):
        t = Task("t", wcet=5, node="N1", policy=SchedulingPolicy.FPS)
        assert t.is_fps and not t.is_scs

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Task("", wcet=1, node="N1")

    def test_rejects_empty_node(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=1, node="")

    def test_rejects_zero_wcet(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=0, node="N1")

    def test_rejects_negative_release(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=1, node="N1", release=-1)

    def test_rejects_zero_deadline(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=1, node="N1", deadline=0)

    def test_rejects_bcet_above_wcet(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=2, node="N1", bcet=3)

    def test_rejects_non_policy(self):
        with pytest.raises(ValidationError):
            Task("t", wcet=1, node="N1", policy="SCS")

    def test_frozen(self):
        t = Task("t", wcet=1, node="N1")
        with pytest.raises(AttributeError):
            t.wcet = 2


class TestMessage:
    def test_defaults_dyn(self):
        m = Message("m", size=8, sender="a", receivers=("b",))
        assert m.kind is MessageKind.DYN
        assert m.is_dynamic and not m.is_static

    def test_st_kind(self):
        m = Message("m", size=8, sender="a", receivers=("b",), kind=MessageKind.ST)
        assert m.is_static

    def test_receivers_tuple_coercion(self):
        m = Message("m", size=8, sender="a", receivers=["b", "c"])
        assert m.receivers == ("b", "c")

    def test_rejects_string_receivers(self):
        with pytest.raises(ValidationError, match="tuple"):
            Message("m", size=8, sender="a", receivers="b")

    def test_rejects_no_receivers(self):
        with pytest.raises(ValidationError):
            Message("m", size=8, sender="a", receivers=())

    def test_rejects_sender_as_receiver(self):
        with pytest.raises(ValidationError):
            Message("m", size=8, sender="a", receivers=("a",))

    def test_rejects_zero_size(self):
        with pytest.raises(ValidationError):
            Message("m", size=0, sender="a", receivers=("b",))

    def test_rejects_empty_receiver_name(self):
        with pytest.raises(ValidationError):
            Message("m", size=1, sender="a", receivers=("",))

    def test_rejects_bad_kind(self):
        with pytest.raises(ValidationError):
            Message("m", size=1, sender="a", receivers=("b",), kind="ST")
