"""Unit tests for the interference-count primitive shared by the FPS and
DYN analyses (offset-aware ancestor reduction)."""

import pytest

from repro.analysis.fps import interference_count


class TestOrdinaryInterferers:
    def test_classic_jitter_free(self):
        # ceil(w / T)
        assert interference_count(10, 100, 0, False, 0) == 1
        assert interference_count(100, 100, 0, False, 0) == 1
        assert interference_count(101, 100, 0, False, 0) == 2

    def test_jitter_adds_activations(self):
        assert interference_count(10, 100, 95, False, 0) == 2
        assert interference_count(10, 100, 190, False, 0) == 2
        assert interference_count(10, 100, 191, False, 0) == 3

    def test_own_jitter_irrelevant_for_non_ancestors(self):
        a = interference_count(50, 100, 20, False, 0)
        b = interference_count(50, 100, 20, False, 999)
        assert a == b


class TestAncestorInterferers:
    def test_short_window_sees_no_ancestor(self):
        # The ancestor's next instance arrives a full period after the
        # graph release; a short window cannot reach it.
        assert interference_count(10, 100, 50, True, 0) == 0
        assert interference_count(10, 100, 50, True, 80) == 0

    def test_window_crossing_period_sees_one(self):
        assert interference_count(10, 100, 0, True, 95) == 1
        assert interference_count(101, 100, 0, True, 0) == 1

    def test_interferer_jitter_ignored_for_ancestors(self):
        a = interference_count(10, 100, 0, True, 10)
        b = interference_count(10, 100, 500, True, 10)
        assert a == b == 0

    def test_long_windows_accumulate(self):
        # w + J_own - T = 250 -> ceil(250/100) = 3
        assert interference_count(300, 100, 0, True, 50) == 3

    def test_boundary_exact_period(self):
        # w + J_own == T: the next instance arrives exactly at the end of
        # the (half-open) window -> no interference.
        assert interference_count(60, 100, 0, True, 40) == 0
        assert interference_count(61, 100, 0, True, 40) == 1

    def test_ancestor_count_never_exceeds_ordinary(self):
        for w in (1, 50, 150, 1000):
            for j_own in (0, 30, 120):
                anc = interference_count(w, 100, j_own, True, j_own)
                ordinary = interference_count(w, 100, j_own, False, j_own)
                assert anc <= ordinary
