"""Unit tests for the unified search runtime and the strategy registry.

The legacy-equivalence oracle (``test_legacy_equivalence.py``) pins the
five built-in strategies byte-identical to their pre-runtime
implementations; this module covers the runtime machinery itself --
driver budgets, selection rules, the proposal protocol, registry
dispatch and the evaluator's context-manager lifetime.
"""

import dataclasses

import pytest

from repro.core import optimise
from repro.core.ga import GAOptions
from repro.core.result import OptimisationResult
from repro.core.runtime import (
    CandidateBatch,
    SearchDriver,
    SearchStrategy,
    drive_with_evaluator,
)
from repro.core.sa import SAOptions
from repro.core.search import BusOptimisationOptions, Evaluator
from repro.core.strategies import (
    StrategyOptions,
    StrategySpec,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.errors import OptimisationError

from tests.util import basic_config, fig3_system, fig4_system


def _configs(n_list):
    return tuple(
        basic_config(static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=n)
        for n in n_list
    )


class _ScriptedStrategy(SearchStrategy):
    """Yields a fixed batch script; records what it received."""

    algorithm = "scripted"

    def __init__(self, batches, options=None, select_index=None):
        super().__init__(options)
        self.batches = batches
        self.received = []
        self.select_index = select_index
        self.closed = False

    def proposals(self, system):
        try:
            for batch in self.batches:
                results = yield batch
                self.received.append(results)
        except GeneratorExit:
            self.closed = True
            raise
        if self.select_index is not None:
            flat = [r for results in self.received for r in results]
            return flat[self.select_index]
        return None


class TestSearchDriver:
    def test_driver_runs_batches_and_selects_default_best(self):
        strategy = _ScriptedStrategy(
            [CandidateBatch(_configs([0, 5])), CandidateBatch(_configs([10]))]
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert isinstance(result, OptimisationResult)
        assert result.algorithm == "scripted"
        assert result.evaluations == 3
        assert len(result.trace) == 3
        assert [len(r) for r in strategy.received] == [2, 1]
        # default selection: lowest cost over everything evaluated
        assert result.best is not None
        assert result.cost == min(p.cost for p in result.trace)

    def test_explicit_selection_overrides_default(self):
        strategy = _ScriptedStrategy(
            [CandidateBatch(_configs([0, 5, 10]))], select_index=2
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert result.best is strategy.received[0][2]
        assert result.stop_reason is None

    def test_estimates_recorded_before_batch(self):
        cfg = _configs([5])[0]
        strategy = _ScriptedStrategy(
            [CandidateBatch(_configs([0]), estimates=((cfg, -3.0),))]
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert [p.exact for p in result.trace] == [False, True]
        assert result.trace[0].cost == -3.0
        assert result.evaluations == 1  # estimates are not exact analyses

    def test_evaluation_budget_closes_generator(self):
        strategy = _ScriptedStrategy(
            [CandidateBatch(_configs([n])) for n in (0, 5, 10, 15)],
            options=StrategyOptions(max_evaluations=2),
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert result.stop_reason == "budget"
        assert result.evaluations == 2
        assert strategy.closed
        # the default best over what *was* evaluated is still reported
        assert result.best is not None

    def test_wallclock_budget_zero_stops_before_first_batch(self):
        strategy = _ScriptedStrategy(
            [CandidateBatch(_configs([0]))],
            options=StrategyOptions(max_seconds=0.0),
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert result.stop_reason == "budget"
        assert result.evaluations == 0
        assert result.best is None

    def test_estimate_only_batch_gets_empty_results(self):
        cfg = _configs([5])[0]
        strategy = _ScriptedStrategy(
            [
                CandidateBatch(estimates=((cfg, 7.5),)),
                CandidateBatch(_configs([0])),
            ]
        )
        result = SearchDriver(fig3_system(), strategy).run()
        assert strategy.received[0] == []
        assert len(result.trace) == 2


class TestDriveWithEvaluator:
    def test_returns_generator_value_and_shares_evaluator(self):
        def gen():
            results = yield CandidateBatch(_configs([0, 5]))
            return results[0]

        with Evaluator(fig3_system(), BusOptimisationOptions()) as evaluator:
            picked = drive_with_evaluator(gen(), evaluator)
            assert picked is not None
            assert evaluator.evaluations == 2


class TestEvaluatorContextManager:
    def test_context_manager_closes_pool(self):
        options = BusOptimisationOptions(parallel_workers=2)
        with Evaluator(fig4_system(), options) as evaluator:
            evaluator.analyse_many(
                [
                    basic_config(n_minislots=n)
                    for n in (20, 25, 30)
                ]
            )
            pool = evaluator._executor
            assert pool is not None
        assert evaluator._executor is None

    def test_close_on_exception_path(self):
        options = BusOptimisationOptions(parallel_workers=2)
        with pytest.raises(RuntimeError):
            with Evaluator(fig4_system(), options) as evaluator:
                evaluator.analyse_many(
                    [basic_config(n_minislots=n) for n in (20, 25)]
                )
                raise RuntimeError("boom")
        assert evaluator._executor is None


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_strategies()) >= {
            "bbc",
            "obc-cf",
            "obc-ee",
            "sa",
            "ga",
        }

    def test_dispatch_by_name_matches_direct_call(self):
        from repro.core import optimise_bbc

        by_name = optimise(fig4_system(), "bbc")
        direct = optimise_bbc(fig4_system())
        assert by_name.trace == direct.trace
        assert by_name.cost == direct.cost

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptimisationError, match="unknown strategy"):
            optimise(fig3_system(), "magic")

    def test_wrong_options_type_rejected(self):
        with pytest.raises(OptimisationError, match="expects"):
            optimise(fig3_system(), "sa", GAOptions())

    def test_options_type_resolution(self):
        assert get_strategy("sa").options_type is SAOptions
        assert get_strategy("ga").options_type is GAOptions
        assert get_strategy("bbc").options_type is StrategyOptions

    def test_third_party_registration(self):
        class FirstFeasible(SearchStrategy):
            algorithm = "FIRST"

            def proposals(self, system):
                results = yield CandidateBatch(_configs([0]))
                return results[0]

        register_strategy(
            StrategySpec(
                name="first-feasible",
                summary="test strategy",
                options_type=StrategyOptions,
                runner=lambda system, options: SearchDriver(
                    system, FirstFeasible(options)
                ).run(),
            )
        )
        try:
            assert "first-feasible" in available_strategies()
            result = optimise(fig3_system(), "first-feasible")
            assert result.algorithm == "FIRST"
            assert result.evaluations == 1
        finally:
            from repro.core import strategies

            strategies._REGISTERED.pop("first-feasible", None)


class TestStrategyOptions:
    def test_with_bus_and_defaults(self):
        base = SAOptions(iterations=10)
        bus = BusOptimisationOptions(parallel_workers=2)
        assert base.bus is None
        assert base.bus_options() == BusOptimisationOptions()
        updated = base.with_bus(bus)
        assert updated.bus is bus
        assert updated.iterations == 10
        assert base.with_bus(None) is base

    def test_sa_ga_options_inherit_budgets(self):
        sa = SAOptions(max_evaluations=7)
        ga = GAOptions(max_seconds=1.5)
        assert sa.max_evaluations == 7
        assert ga.max_seconds == 1.5


class TestDriverBudgetsOnRealStrategies:
    def test_sa_evaluation_budget(self):
        result = optimise(
            fig4_system(),
            "sa",
            SAOptions(iterations=200, seed=3, max_evaluations=10),
        )
        assert result.stop_reason == "budget"
        # batch granularity: SA proposes one candidate at a time
        assert result.evaluations == 10

    def test_obc_ee_evaluation_budget(self):
        small = BusOptimisationOptions(
            ee_max_dyn_points=16, max_extra_static_slots=1, max_slot_size_steps=1
        )
        unbounded = optimise(
            fig4_system(), "obc-ee", StrategyOptions(bus=small)
        )
        bounded = optimise(
            fig4_system(),
            "obc-ee",
            StrategyOptions(bus=small, max_evaluations=1),
        )
        # the budget is checked at batch boundaries, so the first batch
        # may complete, but nothing beyond it is evaluated
        assert bounded.evaluations <= max(16, 1)
        assert bounded.evaluations <= unbounded.evaluations


class TestParallelBatchIdentity:
    """Serial == parallel for the batched strategies via the registry."""

    def _outcome(self, result):
        cfg = result.config
        return (
            result.cost,
            result.schedulable,
            result.evaluations,
            result.cache_hits,
            None if cfg is None else cfg.cache_key(),
            result.trace,
        )

    def test_ga_generation_batches(self):
        ga = GAOptions(population=6, generations=3, seed=11)
        serial = optimise(fig4_system(), "ga", ga)
        parallel = optimise(
            fig4_system(),
            "ga",
            dataclasses.replace(
                ga, bus=BusOptimisationOptions(parallel_workers=2)
            ),
        )
        assert self._outcome(serial) == self._outcome(parallel)

    def test_sa_restart_chains(self):
        sa = SAOptions(iterations=30, seed=7, restarts=2)
        serial = optimise(fig4_system(), "sa", sa)
        parallel = optimise(
            fig4_system(),
            "sa",
            dataclasses.replace(
                sa, bus=BusOptimisationOptions(parallel_workers=2)
            ),
        )
        assert self._outcome(serial) == self._outcome(parallel)

    def test_bbc_sweep_batch(self):
        serial = optimise(fig4_system(), "bbc")
        parallel = optimise(
            fig4_system(),
            "bbc",
            StrategyOptions(bus=BusOptimisationOptions(parallel_workers=2)),
        )
        assert self._outcome(serial) == self._outcome(parallel)

    def test_dead_pool_degrades_serially_with_actionable_warning(
        self, caplog
    ):
        """A pool that dies mid-batch (worker OOM-killed, unpicklable
        payload) must fall back to identical serial results, disable
        itself for the rest of the run, and say so in a warning the
        user can act on."""
        import logging

        from repro.core.bbc import basic_configuration

        system = fig4_system()
        configs = [
            basic_configuration(system, n, BusOptimisationOptions())
            for n in (10, 12)
        ]
        reference = Evaluator(system, BusOptimisationOptions())
        expected = [r.wcrt for r in reference.analyse_many(configs)]
        reference.close()

        class _DeadPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker died unexpectedly")

            def shutdown(self):
                pass

        evaluator = Evaluator(
            system, BusOptimisationOptions(parallel_workers=2)
        )
        evaluator._executor = _DeadPool()
        try:
            with caplog.at_level(logging.WARNING, logger="repro.core.search"):
                results = evaluator.analyse_many(configs)
        finally:
            evaluator.close()
        assert [r.wcrt for r in results] == expected
        assert evaluator._parallel_broken
        warning = "\n".join(record.getMessage() for record in caplog.records)
        assert "serially" in warning and "pool" in warning
        assert "RuntimeError" in warning  # names the underlying cause
