"""Documentation stays live: stale module pointers fail tier-1.

``benchmarks/check_docs.py`` verifies every backticked ``repro.*``
dotted name, backticked repo path and relative markdown link in the
documentation set (top-level README, docs/, benchmarks/README).  This
test wires it into the default pytest run, so renaming a module or a
public function without updating the architecture docs breaks the
build -- the docs are part of the API surface.
"""

import pytest

from benchmarks.check_docs import DOC_FILES, REPO_ROOT, check_all


pytestmark = pytest.mark.docs


def test_documentation_set_is_complete():
    missing = [name for name in DOC_FILES if not (REPO_ROOT / name).exists()]
    assert not missing, f"documentation files missing: {missing}"


def test_no_stale_pointers_in_docs():
    problems = check_all()
    assert not problems, "stale documentation pointers:\n" + "\n".join(problems)
