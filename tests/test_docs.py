"""Documentation stays live: stale module pointers fail tier-1.

``benchmarks/check_docs.py`` verifies every backticked ``repro.*``
dotted name, backticked repo path, backticked ``module:symbol`` pointer
and relative markdown link in the documentation set (top-level README,
docs/, benchmarks/README).  This test wires it into the default pytest
run, so renaming a module or a public function without updating the
architecture docs breaks the build -- the docs are part of the API
surface.
"""

import pytest

from benchmarks.check_docs import DOC_FILES, REPO_ROOT, check_all, check_file


pytestmark = pytest.mark.docs


def test_documentation_set_is_complete():
    missing = [name for name in DOC_FILES if not (REPO_ROOT / name).exists()]
    assert not missing, f"documentation files missing: {missing}"


def test_no_stale_pointers_in_docs():
    problems = check_all()
    assert not problems, "stale documentation pointers:\n" + "\n".join(problems)


class TestModuleSymbolPointers:
    """The ``module:symbol`` form is validated, not just the module."""

    def _problems(self, tmp_path, text):
        doc = tmp_path / "doc.md"
        doc.write_text(text, encoding="utf-8")
        return check_file(doc)

    def test_live_pointers_pass(self, tmp_path):
        text = (
            "Report via `benchmarks/_report.py:report` and "
            "`benchmarks/check_docs.py:check_file`; the kernel is "
            "`repro.analysis.fps:seeded_busy_window`, the surface "
            "`repro.analysis.availability:NodeAvailability.dominance_tables` "
            "and the constant `benchmarks/check_docs.py:DOC_FILES`.\n"
        )
        assert self._problems(tmp_path, text) == []

    def test_stale_symbol_is_caught(self, tmp_path):
        problems = self._problems(
            tmp_path, "see `benchmarks/_report.py:reprot_typo`\n"
        )
        assert len(problems) == 1
        assert "reprot_typo" in problems[0]

    def test_stale_dotted_symbol_is_caught(self, tmp_path):
        problems = self._problems(
            tmp_path, "see `repro.analysis.fps:sedeed_busy_window`\n"
        )
        assert len(problems) == 1
        assert "sedeed_busy_window" in problems[0]

    def test_stale_class_attribute_is_caught(self, tmp_path):
        good = self._problems(
            tmp_path,
            "see `benchmarks/check_docs.py:Testish`"
            "`benchmarks/bench_incremental_analysis.py:Pr3WarmReference.analyse`\n",
        )
        # Only the first pointer (missing class) is stale.
        assert len(good) == 1 and "Testish" in good[0]

    def test_missing_file_is_caught(self, tmp_path):
        problems = self._problems(tmp_path, "see `no/such/file.py:thing`\n")
        assert len(problems) == 1
        assert "does not exist" in problems[0]
