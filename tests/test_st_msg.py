"""Unit tests for static response-time extraction."""

from repro.analysis.schedule_table import ScheduleTable
from repro.analysis.st_msg import static_release_offsets, static_response_times
from repro.core.config import FlexRayConfig
from repro.model import Application, System, TaskGraph

from tests.util import scs_task, st_msg


def build_table():
    g = TaskGraph(
        name="g",
        period=20,
        deadline=20,
        tasks=(scs_task("a", wcet=2, node="N1"), scs_task("b", wcet=1, node="N2")),
        messages=(st_msg("m", 2, "a", "b"),),
    )
    app = Application("app", (g,))
    System(("N1", "N2"), app)
    cfg = FlexRayConfig(static_slots=("N1", "N2"), gd_static_slot=4, n_minislots=0)
    table = ScheduleTable(cfg, horizon=40)
    return app, cfg, table


class TestStaticResponseTimes:
    def test_single_instance(self):
        app, _, table = build_table()
        table.add_task("a#0", app.task("a"), 3)
        wcrt = static_response_times(app, table)
        assert wcrt["a"] == 5

    def test_max_over_instances_relative_to_period(self):
        app, _, table = build_table()
        table.add_task("a#0", app.task("a"), 3)  # R = 5
        table.add_task("a#1", app.task("a"), 29)  # base 20 -> R = 11
        wcrt = static_response_times(app, table)
        assert wcrt["a"] == 11

    def test_message_uses_arrival_time(self):
        app, cfg, table = build_table()
        entry = table.add_message("m#0", app.message("m"), cycle=1, slot=1)
        wcrt = static_response_times(app, table)
        assert wcrt["m"] == entry.finish  # instance 0: base 0

    def test_release_offsets_alias(self):
        app, _, table = build_table()
        table.add_task("a#0", app.task("a"), 3)
        assert static_release_offsets(app, table) == static_response_times(
            app, table
        )

    def test_empty_table(self):
        app, _, table = build_table()
        assert static_response_times(app, table) == {}
