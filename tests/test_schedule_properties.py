"""Property tests: schedule construction invariants on random systems."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.scheduler import build_schedule
from repro.core.config import FlexRayConfig
from repro.errors import SchedulingError
from repro.model import Application, System, TaskGraph

from tests.util import scs_task, st_msg


@st.composite
def tt_system_and_config(draw):
    """Random 2-node TT workload plus a random legal ST configuration."""
    n_chains = draw(st.integers(1, 3))
    period = draw(st.sampled_from([60, 120]))
    graphs = []
    for c in range(n_chains):
        wcets = draw(st.lists(st.integers(1, 6), min_size=2, max_size=3))
        tasks = []
        messages = []
        for i, w in enumerate(wcets):
            node = "N1" if (i + c) % 2 == 0 else "N2"
            tasks.append(scs_task(f"c{c}t{i}", wcet=w, node=node))
        for i in range(len(wcets) - 1):
            size = draw(st.integers(1, 4))
            messages.append(st_msg(f"c{c}m{i}", size, f"c{c}t{i}", f"c{c}t{i+1}"))
        graphs.append(
            TaskGraph(
                name=f"c{c}",
                period=period,
                deadline=period,
                tasks=tuple(tasks),
                messages=tuple(messages),
            )
        )
    system = System(("N1", "N2"), Application("prop", tuple(graphs)))
    slot = draw(st.integers(4, 10))
    extra = draw(st.integers(0, 2))
    slots = ("N1", "N2") + tuple(
        draw(st.sampled_from(["N1", "N2"])) for _ in range(extra)
    )
    config = FlexRayConfig(
        static_slots=slots, gd_static_slot=slot, n_minislots=0
    )
    return system, config


class TestScheduleInvariants:
    @given(tt_system_and_config())
    @settings(max_examples=60, deadline=None)
    def test_no_node_overlap_and_causality(self, system_and_config):
        system, config = system_and_config
        try:
            table = build_schedule(system, config)
        except SchedulingError:
            return  # an unschedulable combination is a legal outcome
        # (1) per-node SCS tasks never overlap
        for node in system.nodes:
            busy = table.busy_intervals(node)
            for (s1, e1), (s2, e2) in zip(busy, busy[1:]):
                assert e1 <= s2
        # (2) messages start at or after their sender's finish
        app = system.application
        for key, entry in table.messages.items():
            name, instance = key.rsplit("#", 1)
            sender = app.graph_of(name).task(entry.message.sender)
            sender_finish = table.finish_of(f"{sender.name}#{instance}")
            assert entry.slot_start >= sender_finish
        # (3) frames never exceed the slot payload
        per_frame = {}
        for entry in table.messages.values():
            k = (entry.cycle, entry.slot)
            per_frame[k] = per_frame.get(k, 0) + entry.ct
        assert all(v <= config.gd_static_slot for v in per_frame.values())
        # (4) slots only carry messages of their owner
        for entry in table.messages.values():
            owner = config.static_slots[entry.slot - 1]
            assert system.sender_node(entry.message) == owner
        # (5) receivers start after the message arrival
        for key, entry in table.messages.items():
            name, instance = key.rsplit("#", 1)
            for receiver in entry.message.receivers:
                r_start = table.tasks[f"{receiver}#{instance}"].start
                assert r_start >= entry.finish
