"""Tests for the offset-based jitter reduction in the holistic analysis.

Same-graph *ancestors* of an activity must not contribute release-jitter
inflated interference (their instance-k execution always precedes the
activity's busy window); unrelated activities and siblings keep their
jitter.  See ref. [10] of the paper (Palencia / Gonzalez Harbour).
"""

from repro.analysis import analyse_system
from repro.core.config import FlexRayConfig
from repro.model import Application, System, TaskGraph

from tests.util import dyn_msg, fps_task, single_graph_system


def chain_on_one_node(depth=3, wcet=10, period=400, deadline=400):
    """FPS chain t0 -> t1 -> ... all on N1, decreasing priority."""
    tasks = [
        fps_task(f"t{i}", wcet=wcet, node="N1", priority=i) for i in range(depth)
    ]
    precedences = tuple((f"t{i}", f"t{i + 1}") for i in range(depth - 1))
    return single_graph_system(
        tasks,
        nodes=("N1",),
        period=period,
        deadline=deadline,
        precedences=precedences,
    )


CFG = FlexRayConfig(static_slots=("N1",), gd_static_slot=2, n_minislots=0)


class TestAncestorJitterReduction:
    def test_chain_tail_not_jitter_inflated(self):
        # With the offset reduction the tail of a 3-deep chain sees each
        # ancestor exactly once per period: R(t2) = 10+10+10 = 30.
        res = analyse_system(chain_on_one_node(), CFG)
        assert res.wcrt["t0"] == 10
        assert res.wcrt["t1"] == 20
        assert res.wcrt["t2"] == 30

    def test_deep_chain_linear_growth(self):
        res = analyse_system(chain_on_one_node(depth=5), CFG)
        # Linear accumulation, not exponential jitter blow-up.
        assert res.wcrt["t4"] == 50

    def test_unrelated_interferer_keeps_jitter(self):
        # Graph A: chain a0 -> a1 on N2 then message to N1's a2.
        # Graph B: b (lowest priority on N1).  a2's jitter (inherited
        # from the message) must still inflate b's interference.
        ga = TaskGraph(
            name="ga",
            period=400,
            deadline=400,
            tasks=(
                fps_task("a0", wcet=40, node="N2", priority=1),
                fps_task("a2", wcet=10, node="N1", priority=1),
            ),
            messages=(dyn_msg("ma", 4, "a0", "a2"),),
        )
        gb = TaskGraph(
            name="gb",
            period=400,
            deadline=400,
            tasks=(fps_task("b", wcet=10, node="N1", priority=2),),
        )
        sys_ = System(("N1", "N2"), Application("app", (ga, gb)))
        cfg = FlexRayConfig(
            static_slots=("N1",),
            gd_static_slot=2,
            n_minislots=8,
            frame_ids={"ma": 1},
        )
        res = analyse_system(sys_, cfg)
        # b suffers from a2 (higher priority) whose jitter is R(ma) > 0.
        assert res.wcrt["b"] >= 10 + 10
        assert res.wcrt["a2"] > res.wcrt["ma"]

    def test_sibling_jitter_preserved(self):
        # Diamond: src -> (left, right) -> sink; left and right on the
        # same node.  right (lower priority) is delayed by left once,
        # and left's jitter (as a *sibling*, not ancestor) is kept.
        tasks = [
            fps_task("src", wcet=10, node="N1", priority=0),
            fps_task("left", wcet=10, node="N1", priority=1),
            fps_task("right", wcet=10, node="N1", priority=2),
        ]
        sys_ = single_graph_system(
            tasks,
            nodes=("N1",),
            period=400,
            deadline=400,
            precedences=(("src", "left"), ("src", "right")),
        )
        res = analyse_system(sys_, CFG)
        # right: jitter 10 (src) + own busy window (10 + left 10) = 30
        assert res.wcrt["right"] == 30
