"""Small-surface tests: trace events, error hierarchy, result records."""

import pytest

from repro.core import OptimisationResult, SearchPoint
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ModelError,
    OptimisationError,
    ReproError,
    SchedulingError,
    SerializationError,
    SimulationError,
    ValidationError,
)
from repro.flexray.events import EventKind, TraceEvent


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AnalysisError,
            ConfigurationError,
            ModelError,
            OptimisationError,
            SchedulingError,
            SerializationError,
            SimulationError,
            ValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_model_error(self):
        assert issubclass(ValidationError, ModelError)

    def test_scheduling_is_analysis_error(self):
        assert issubclass(SchedulingError, AnalysisError)


class TestTraceEvent:
    def test_str_contains_fields(self):
        e = TraceEvent(
            time=42,
            kind=EventKind.DYN_TX_START,
            activity="m1",
            instance=2,
            node="N1",
            detail="cycle 3",
        )
        text = str(e)
        assert "42" in text and "m1#2" in text and "@N1" in text
        assert "cycle 3" in text

    def test_str_without_activity(self):
        e = TraceEvent(time=0, kind=EventKind.CYCLE_START, activity="")
        assert "cycle_start" in str(e)

    def test_frozen(self):
        e = TraceEvent(time=0, kind=EventKind.RELEASE, activity="g")
        with pytest.raises(AttributeError):
            e.time = 1


class TestOptimisationResultRecord:
    def test_empty_result_cost_infinite(self):
        r = OptimisationResult(
            algorithm="X", best=None, evaluations=0, elapsed_seconds=0.0
        )
        assert not r.schedulable
        assert r.cost == float("inf")
        assert r.config is None
        assert "none" in r.describe()

    def test_search_point_record(self):
        p = SearchPoint(
            n_static_slots=2,
            gd_static_slot=8,
            n_minislots=13,
            cost=-5.0,
            schedulable=True,
        )
        assert p.exact
        assert p.schedulable
