"""Unit tests for FlexRayConfig (protocol limits, geometry, validation)."""

import pytest

from repro.core.config import FlexRayConfig
from repro.errors import ConfigurationError
from repro.flexray import params

from tests.util import fig3_system, fig4_system


def make_config(**kw):
    defaults = dict(
        static_slots=("N1", "N2"),
        gd_static_slot=8,
        n_minislots=13,
        frame_ids={},
    )
    defaults.update(kw)
    return FlexRayConfig(**defaults)


class TestGeometry:
    def test_segment_lengths(self):
        cfg = make_config()
        assert cfg.n_static_slots == 2
        assert cfg.st_bus == 16
        assert cfg.dyn_bus == 13
        assert cfg.gd_cycle == 29

    def test_minislot_scaling(self):
        cfg = make_config(gd_minislot=3)
        assert cfg.dyn_bus == 39

    def test_describe(self):
        assert "gdCycle=29" in make_config().describe()


class TestProtocolLimits:
    def test_rejects_too_many_static_slots(self):
        with pytest.raises(ConfigurationError, match="protocol limit"):
            make_config(static_slots=("N1",) * (params.MAX_STATIC_SLOTS + 1))

    def test_rejects_oversized_static_slot(self):
        with pytest.raises(ConfigurationError):
            make_config(gd_static_slot=params.MAX_STATIC_SLOT_MT + 1)

    def test_rejects_too_many_minislots(self):
        with pytest.raises(ConfigurationError):
            make_config(n_minislots=params.MAX_MINISLOTS + 1)

    def test_rejects_cycle_above_16ms(self):
        with pytest.raises(ConfigurationError, match="16 ms"):
            FlexRayConfig(
                static_slots=("N1",) * 30,
                gd_static_slot=600,
                n_minislots=0,
            )

    def test_rejects_empty_cycle(self):
        with pytest.raises(ConfigurationError):
            FlexRayConfig(static_slots=(), gd_static_slot=0, n_minislots=0)

    def test_pure_dynamic_cycle_allowed(self):
        cfg = FlexRayConfig(static_slots=(), gd_static_slot=0, n_minislots=10)
        assert cfg.st_bus == 0 and cfg.gd_cycle == 10

    def test_rejects_bad_frame_id(self):
        with pytest.raises(ConfigurationError, match="positive"):
            make_config(frame_ids={"m": 0})

    def test_rejects_frame_id_beyond_segment(self):
        with pytest.raises(ConfigurationError, match="cannot fit"):
            make_config(frame_ids={"m": 14})


class TestMessageMetrics:
    def test_ct_default_byte_per_mt(self):
        sys_ = fig3_system()
        m1 = sys_.application.message("m1")
        assert make_config().message_ct(m1) == 4

    def test_ct_with_overhead(self):
        sys_ = fig3_system()
        m1 = sys_.application.message("m1")
        cfg = make_config(frame_overhead_bytes=8)
        assert cfg.message_ct(m1) == 12

    def test_ct_at_physical_rate(self):
        sys_ = fig3_system()
        m1 = sys_.application.message("m1")  # 4 bytes = 32 bits
        cfg = make_config(bits_per_mt=10)
        assert cfg.message_ct(m1) == 4  # ceil(32/10)

    def test_minislots_needed(self):
        sys_ = fig4_system()
        m1 = sys_.application.message("m1")  # 9 MT
        assert make_config(gd_minislot=2).minislots_needed(m1) == 5

    def test_frame_id_lookup(self):
        cfg = make_config(frame_ids={"m1": 3})
        assert cfg.frame_id_of("m1") == 3
        with pytest.raises(ConfigurationError):
            cfg.frame_id_of("zz")


class TestSlotOwnership:
    def test_st_slots_of(self):
        cfg = make_config(static_slots=("N1", "N2", "N1"), gd_static_slot=4)
        assert cfg.st_slots_of("N1") == (1, 3)
        assert cfg.st_slots_of("N2") == (2,)
        assert cfg.st_slots_of("N9") == ()

    def test_dyn_slots_of(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 2, "m3": 3})
        assert cfg.dyn_slots_of("N1", sys_) == (1, 3)
        assert cfg.dyn_slots_of("N2", sys_) == (2,)

    def test_p_latest_tx(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 2, "m3": 3})
        # N1 largest frame: m1 = 9 MT = 9 minislots -> 13 - 9 + 1 = 5
        assert cfg.p_latest_tx("N1", sys_) == 5
        # N2 largest frame: m2 = 5 -> 13 - 5 + 1 = 9
        assert cfg.p_latest_tx("N2", sys_) == 9

    def test_p_latest_tx_none_without_dyn(self):
        sys_ = fig3_system()
        assert make_config().p_latest_tx("N1", sys_) is None


class TestValidateFor:
    def test_valid_configuration_passes(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 2, "m3": 3})
        cfg.validate_for(sys_)  # no raise

    def test_rejects_unknown_slot_owner(self):
        sys_ = fig4_system()
        cfg = make_config(static_slots=("N1", "N9"))
        with pytest.raises(ConfigurationError, match="not a node"):
            cfg.validate_for(sys_)

    def test_rejects_missing_st_slot_for_sender(self):
        sys_ = fig3_system()
        cfg = make_config(static_slots=("N1",))
        with pytest.raises(ConfigurationError, match="owns no"):
            cfg.validate_for(sys_)

    def test_rejects_slot_too_small_for_st_frame(self):
        sys_ = fig3_system()
        cfg = make_config(gd_static_slot=3)
        with pytest.raises(ConfigurationError, match="largest ST frame"):
            cfg.validate_for(sys_)

    def test_rejects_missing_frame_id(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 2})
        with pytest.raises(ConfigurationError, match="no FrameID"):
            cfg.validate_for(sys_)

    def test_rejects_cross_node_frame_id_sharing(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 1, "m3": 2})
        with pytest.raises(ConfigurationError, match="shared by nodes"):
            cfg.validate_for(sys_)

    def test_same_node_frame_id_sharing_allowed(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 1, "m2": 2, "m3": 1})
        cfg.validate_for(sys_)

    def test_rejects_frame_that_never_fits(self):
        sys_ = fig4_system()
        cfg = make_config(n_minislots=8, frame_ids={"m1": 1, "m2": 2, "m3": 3})
        # N1 largest frame 9 > 8 minislots
        with pytest.raises(ConfigurationError, match="does not fit"):
            cfg.validate_for(sys_)

    def test_rejects_frame_id_beyond_p_latest_tx(self):
        sys_ = fig4_system()
        cfg = make_config(frame_ids={"m1": 5, "m2": 2, "m3": 6})
        # pLatestTx(N1) = 5, m3 has fid 6
        with pytest.raises(ConfigurationError, match="pLatestTx"):
            cfg.validate_for(sys_)


class TestDerivation:
    def test_with_dyn_length(self):
        cfg = make_config().with_dyn_length(20)
        assert cfg.n_minislots == 20
        assert cfg.gd_static_slot == 8  # untouched

    def test_with_static(self):
        cfg = make_config().with_static(("N2", "N1", "N2"), 6)
        assert cfg.static_slots == ("N2", "N1", "N2")
        assert cfg.gd_static_slot == 6

    def test_with_frame_ids(self):
        cfg = make_config().with_frame_ids({"m": 2})
        assert cfg.frame_id_of("m") == 2

    def test_original_unchanged(self):
        cfg = make_config()
        cfg.with_dyn_length(20)
        assert cfg.n_minislots == 13
