"""Unit tests for the Newton interpolator and point spreading."""

import pytest

from repro.core.curvefit import NewtonInterpolator, spread_points
from repro.errors import AnalysisError


class TestNewtonInterpolator:
    def test_reproduces_nodes_exactly(self):
        xs = [1, 4, 9, 16]
        ys = [3, -2, 7, 0]
        ip = NewtonInterpolator(xs, ys)
        for x, y in zip(xs, ys):
            assert ip(x) == pytest.approx(y)

    def test_linear_data_interpolated_exactly(self):
        ip = NewtonInterpolator([0, 10], [5, 25])
        assert ip(5) == pytest.approx(15)
        assert ip(7) == pytest.approx(19)

    def test_quadratic_data(self):
        xs = [0, 1, 2, 3]
        ip = NewtonInterpolator(xs, [x * x for x in xs])
        assert ip(1.5) == pytest.approx(2.25)
        assert ip(10) == pytest.approx(100)  # exact polynomial extrapolates

    def test_incremental_add_matches_batch(self):
        xs = [0, 2, 5, 7]
        ys = [1, 9, 4, 4]
        batch = NewtonInterpolator(xs, ys)
        inc = NewtonInterpolator()
        for x, y in zip(xs, ys):
            inc.add_point(x, y)
        for x in [1, 3, 6, 8.5]:
            assert inc(x) == pytest.approx(batch(x))

    def test_single_point_is_constant(self):
        ip = NewtonInterpolator([5], [42])
        assert ip(0) == 42 and ip(100) == 42

    def test_rejects_duplicate_node(self):
        ip = NewtonInterpolator([1], [1])
        with pytest.raises(AnalysisError, match="duplicate"):
            ip.add_point(1, 2)

    def test_rejects_empty_evaluation(self):
        with pytest.raises(AnalysisError):
            NewtonInterpolator()(3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(AnalysisError):
            NewtonInterpolator([1, 2], [1])

    def test_len_and_xs(self):
        ip = NewtonInterpolator([1, 2], [5, 6])
        assert len(ip) == 2
        assert ip.xs == [1.0, 2.0]


class TestSpreadPoints:
    def test_five_points_cover_range(self):
        pts = spread_points(10, 110, 5)
        assert pts[0] == 10 and pts[-1] == 110
        assert len(pts) == 5
        assert pts == sorted(set(pts))

    def test_small_range_returns_all(self):
        assert spread_points(3, 6, 10) == [3, 4, 5, 6]

    def test_degenerate_range(self):
        assert spread_points(7, 7, 5) == [7]

    def test_single_point(self):
        assert spread_points(2, 9, 1) == [2]

    def test_rejects_empty_range(self):
        with pytest.raises(AnalysisError):
            spread_points(5, 4, 3)

    def test_rejects_zero_count(self):
        with pytest.raises(AnalysisError):
            spread_points(0, 10, 0)
