"""Quick perf-smoke exercise of the warm-analysis hot path.

This module covers the Python hot path: a miniature ST-heavy
DYN-length sweep through one warm :class:`AnalysisContext` -- the exact
code path the optimisers hammer (retimable schedule plan, certified
busy-window warm starts, dirty-tracked fix point) -- cross-checked
against fresh cold contexts, plus a two-strategy campaign on the
cruise-control case study through the full search runtime (registry
dispatch, search driver, checkpoint store).  The batched array
backend's smoke lives next to its contract tests
(``tests/test_backend.py``) under the same ``perf_smoke`` marker.
Everything is designed to finish in a few seconds, so the perf
plumbing stays covered by every tier-1 run.
"""

import time

import pytest

from repro.analysis import AnalysisContext
from repro.casestudy.cruise_control import cruise_controller
from repro.core.bbc import basic_configuration
from repro.core.campaign import campaign_matrix, run_campaign
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.synth import paper_suite


def _signature(result):
    return (
        result.feasible,
        result.schedulable,
        result.converged,
        result.failure,
        None if result.cost is None else result.cost.value,
        tuple(sorted(result.wcrt.items())),
    )


@pytest.mark.perf_smoke
def test_warm_sweep_fast_and_bit_identical():
    system = paper_suite(3, count=1, seed=23)[0]
    assert system.application.st_messages(), "smoke workload must be ST-heavy"
    options = BusOptimisationOptions()
    slot = min_static_slot(system, options)
    st_bus = len(system.st_sender_nodes()) * slot
    lo, hi = dyn_segment_bounds(system, st_bus, options)
    configs = [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, 24)
    ]

    context = AnalysisContext(system)
    t0 = time.perf_counter()
    warm = [context.analyse(c) for c in configs]
    warm_s = time.perf_counter() - t0

    # One schedule plan serves the whole sweep; with ST messages every
    # cycle length still gets its own (replayed) table.
    assert len(context._plan_cache) == 1
    assert len(context._schedule_cache) == len(
        {context.schedule_key(c) for c in configs}
    )

    cold = [AnalysisContext(system).analyse(c) for c in configs]
    assert [_signature(r) for r in warm] == [_signature(r) for r in cold]

    # Loose sanity bound only -- wall-clock asserts are flaky on shared
    # machines; the real perf claims live in benchmarks/BENCH_*.json.
    assert warm_s < 10.0


@pytest.mark.perf_smoke
def test_cruise_control_campaign_smoke(tmp_path):
    """A two-strategy campaign on the cruise-control case study must fit
    in the tier-1 budget: BBC plus a budget-trimmed OBC/CF, dispatched by
    registry name through the search driver, checkpointed, and resumed
    instantly on the second run."""
    system = cruise_controller()
    systems = {"cruise": system}
    bus = BusOptimisationOptions(
        max_dyn_points=16,
        initial_cf_points=3,
        cf_candidates=64,
        cf_max_points=10,
        max_extra_static_slots=1,
        max_slot_size_steps=2,
    )
    jobs = campaign_matrix(systems, ["bbc", "obc-cf"], bus=bus)

    t0 = time.perf_counter()
    cold = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
    cold_s = time.perf_counter() - t0

    assert set(cold.results) == {"cruise__bbc", "cruise__obc-cf"}
    assert len(cold.executed) == 2
    for job in jobs:
        result = cold.results[job.job_id]
        assert result.evaluations > 0
        assert result.trace
        assert result.best is not None  # the case study is feasible

    # Resuming answers every job from the checkpoint store, identically.
    resumed = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
    assert len(resumed.resumed) == 2 and not resumed.executed
    for job_id, result in cold.results.items():
        assert resumed.results[job_id].trace == result.trace
        assert resumed.results[job_id].cost == result.cost

    # Loose wall-clock sanity bound, same rationale as above.
    assert cold_s < 10.0


@pytest.mark.perf_smoke
def test_fault_sweep_smoke(tmp_path):
    """A miniature fault sweep must fit the tier-1 budget: a bbc
    baseline campaign that first *times out* (recorded, not raised),
    then runs and checkpoints, then resumes from the checkpoint -- and
    a two-rate fault sweep over the result whose k-error bound check
    reports zero violations."""
    from benchmarks.bench_fault_sweep import fault_sweep_rows

    system = paper_suite(2, count=1, seed=23)[0]
    systems = {"smoke": system}
    jobs = campaign_matrix(systems, ["bbc"])

    t0 = time.perf_counter()
    # A simulated job timeout: the campaign completes and records it.
    timed_out = run_campaign(
        systems,
        jobs,
        checkpoint_dir=str(tmp_path),
        job_timeout=1e-4,
        retry_backoff=0.0,
    )
    assert set(timed_out.failures) == {"smoke__bbc"}
    assert timed_out.failures["smoke__bbc"].kind == "timeout"

    # Without the timeout the job runs and checkpoints...
    ran = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
    assert ran.executed == ("smoke__bbc",)
    config = ran.results["smoke__bbc"].config
    assert config is not None

    # ...and the next campaign resumes instead of re-optimising.
    resumed = run_campaign(systems, jobs, checkpoint_dir=str(tmp_path))
    assert resumed.resumed == ("smoke__bbc",) and not resumed.executed

    # Two error rates through the sweep core: rate 0 is the clean
    # anchor, the faulty rate must keep the k-error bound sound.
    rows = fault_sweep_rows(system, config, rates=(0.0, 0.2), seeds=(1,))
    assert rows[0]["max_retransmissions"] == 0
    assert rows[0]["max_wcrt_inflation"] == 1.0
    assert all(row["bound_violations"] == 0 for row in rows)

    # Loose wall-clock sanity bound, same rationale as above.
    assert time.perf_counter() - t0 < 10.0
