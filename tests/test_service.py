"""Black-box tests of the JSON/HTTP analysis service (repro.service).

Everything here talks to the service the way a real client would: over
a socket, JSON in / JSON out, no reaching into server internals.  The
battery pins the three scaling mechanisms of the service layer:

* **Warm pool** -- threaded clients hammering one system fingerprint
  share a single warm :class:`~repro.core.search.Evaluator`, asserted
  through the per-response pool accounting (exactly one cold request
  pays the evaluations; every other one is a pool hit riding the
  shared result cache).
* **Admission control** -- a mixed-fingerprint storm over the
  concurrency cap gets 429s (counted against ``/health``), every
  client eventually succeeds (zero dropped successes), and the
  observed ``peak_active`` never exceeds the cap.
* **Durability** -- a server SIGKILLed mid-campaign resumes the
  campaign from its checkpoints on restart, and the final report is
  byte-identical (modulo wall-clock fields) to an uninterrupted run.

The kill/restart round trip doubles as the service ``perf_smoke``: the
whole start -> analyse -> campaign -> kill -> resume cycle must land
well under ten seconds.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis import analyse_system
from repro.analysis.holistic import AnalysisOptions
from repro.core.bbc import basic_configuration
from repro.core.campaign import campaign_matrix, run_campaign
from repro.core.sa import SAOptions
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system
from repro.io.serialization import (
    analysis_result_to_dict,
    config_to_dict,
    result_to_dict,
    system_to_dict,
)
from repro.service import ServiceConfig, create_server

from tests.util import (
    FIG4_FRAME_IDS,
    basic_config,
    campaign_systems,
    fig4_system,
    small_bus,
)

pytestmark = pytest.mark.service


# ----------------------------------------------------------------------
# client plumbing
# ----------------------------------------------------------------------
def _request(port, method, path, body=None, raw=None):
    url = f"http://127.0.0.1:{port}{path}"
    data = raw if raw is not None else (
        None if body is None else json.dumps(body).encode("utf-8")
    )
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(port, path, body=None, raw=None):
    return _request(port, "POST", path, body=body, raw=raw)


def _get(port, path):
    return _request(port, "GET", path)


def _poll_campaign(port, campaign_id, *, until="done", timeout=30.0):
    """Poll ``GET /campaigns/<id>`` until the campaign reaches *until*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = _get(port, f"/campaigns/{campaign_id}")
        assert status == 200, doc
        if doc["status"] == "failed":
            raise AssertionError(f"campaign failed: {doc.get('error')}")
        if doc["status"] == until:
            return doc
        time.sleep(0.01)
    raise AssertionError(f"campaign {campaign_id} not {until} in {timeout}s")


class _Service:
    """An in-process server on a free port, torn down on exit."""

    def __init__(self, tmp_path, **kw):
        kw.setdefault("state_dir", str(tmp_path / "state"))
        self.config = ServiceConfig(**kw)
        self.server = create_server(self.config)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


def _analyse_body(system=None, config=None, options=None):
    doc = {
        "kind": "analyse_request",
        "system": system_to_dict(system if system is not None else fig4_system()),
        "config": config_to_dict(
            config if config is not None
            else basic_config(frame_ids=FIG4_FRAME_IDS)
        ),
    }
    if options is not None:
        doc["options"] = options
    return doc


def _campaign_body(systems=None, strategies=None, budget=None):
    systems = systems if systems is not None else campaign_systems()
    doc = {
        "kind": "campaign_request",
        "systems": {sid: system_to_dict(s) for sid, s in systems.items()},
        "strategies": ["bbc"] if strategies is None else strategies,
    }
    if budget is not None:
        doc["budget"] = budget
    return doc


def _strip_clocks(doc):
    """Drop every wall-clock field, recursively -- the only part of a
    report that may differ between two runs of the same campaign."""
    if isinstance(doc, dict):
        return {
            k: _strip_clocks(v)
            for k, v in doc.items()
            if k != "elapsed_seconds"
        }
    if isinstance(doc, list):
        return [_strip_clocks(v) for v in doc]
    return doc


# ----------------------------------------------------------------------
# POST /analyse
# ----------------------------------------------------------------------
class TestAnalyseEndpoint:
    def test_round_trip_matches_direct_analysis(self, tmp_path):
        with _Service(tmp_path) as svc:
            status, doc = _post(svc.port, "/analyse", _analyse_body())
            assert status == 200
            assert doc["kind"] == "analysis"
            assert re.fullmatch(r"[0-9a-f]{16}", doc["fingerprint"])
            direct = analyse_system(
                fig4_system(), basic_config(frame_ids=FIG4_FRAME_IDS)
            )
            assert doc["result"] == analysis_result_to_dict(direct)
            assert doc["service"]["pool_hit"] is False
            assert doc["service"]["evaluations"] == 1

    def test_repeat_request_rides_warm_pool_and_shared_cache(self, tmp_path):
        with _Service(tmp_path) as svc:
            _, first = _post(svc.port, "/analyse", _analyse_body())
            _, second = _post(svc.port, "/analyse", _analyse_body())
            assert first["result"] == second["result"]
            assert second["service"]["pool_hit"] is True
            assert second["service"]["evaluations"] == 0
            assert second["service"]["cache_hits"] == 1

    def test_analysis_options_select_a_distinct_pool_entry(self, tmp_path):
        with _Service(tmp_path) as svc:
            _, clean = _post(svc.port, "/analyse", _analyse_body())
            _, faulty = _post(
                svc.port, "/analyse",
                _analyse_body(options={"fault_hypothesis": 2}),
            )
            # The k-error bound dominates the clean analysis...
            assert all(
                faulty["result"]["wcrt"][n] >= r
                for n, r in clean["result"]["wcrt"].items()
            )
            # ...and the options are part of the pool key.
            assert faulty["service"]["pool_hit"] is False
            _, health = _get(svc.port, "/health")
            assert health["pool"]["entries"] == 2

    def test_malformed_requests_get_400(self, tmp_path):
        with _Service(tmp_path) as svc:
            cases = [
                _post(svc.port, "/analyse", raw=b"{not json"),
                _post(svc.port, "/analyse", raw=b""),
                _post(svc.port, "/analyse", {"config": {}}),  # no system
                _post(svc.port, "/analyse", _analyse_body(
                    options={"backend": "python", "warp": 9})),
                _post(svc.port, "/analyse",
                      dict(_analyse_body(), service_version=99)),
                _post(svc.port, "/analyse",
                      dict(_analyse_body(), kind="campaign_request")),
            ]
            for status, doc in cases:
                assert status == 400, doc
                assert doc["kind"] == "error"
                assert doc["error"]["code"] == "bad-request"

    def test_unknown_routes_get_404(self, tmp_path):
        with _Service(tmp_path) as svc:
            assert _get(svc.port, "/nope")[0] == 404
            assert _post(svc.port, "/nope", {})[0] == 404
            status, doc = _get(svc.port, "/campaigns/deadbeefdeadbeef")
            assert status == 404
            assert doc["error"]["code"] == "not-found"


# ----------------------------------------------------------------------
# warm-pool concurrency (acceptance: >= 8 threaded clients, one pool entry)
# ----------------------------------------------------------------------
class TestWarmPoolConcurrency:
    def test_threaded_clients_share_one_warm_evaluator(self, tmp_path):
        n = 8
        with _Service(tmp_path, max_concurrent=n) as svc:
            body = _analyse_body()
            barrier = threading.Barrier(n)
            results = [None] * n

            def client(i):
                barrier.wait()
                results[i] = _post(svc.port, "/analyse", body)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

            assert all(r is not None and r[0] == 200 for r in results)
            docs = [doc for _, doc in results]
            # Same fingerprint, same result, for every client.
            assert len({doc["fingerprint"] for doc in docs}) == 1
            payloads = {json.dumps(doc["result"], sort_keys=True) for doc in docs}
            assert len(payloads) == 1
            # Exactly one client paid the cold evaluation; the other
            # seven rode the warm evaluator's shared result cache.
            cold = [d for d in docs if not d["service"]["pool_hit"]]
            warm = [d for d in docs if d["service"]["pool_hit"]]
            assert len(cold) == 1 and len(warm) == n - 1
            assert cold[0]["service"]["evaluations"] == 1
            assert all(d["service"]["evaluations"] == 0 for d in warm)
            assert all(d["service"]["cache_hits"] == 1 for d in warm)

            _, health = _get(svc.port, "/health")
            pool = health["pool"]
            assert pool["entries"] == 1
            assert pool["misses"] == 1
            assert pool["hits"] == n - 1
            (entry,) = pool["per_entry"].values()
            assert entry["leases"] == n
            assert entry["evaluations"] == 1
            assert entry["cache_hits"] == n - 1


# ----------------------------------------------------------------------
# admission control (acceptance: storms capped, zero dropped successes)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_storm_is_capped_with_zero_dropped_successes(self, tmp_path):
        # 12 clients, two fingerprints, cap 2.  The systems are big
        # enough that one analysis outlasts the interpreter's thread
        # switch interval, so handler threads genuinely overlap in the
        # admitted region; same-fingerprint requests additionally
        # serialize on their warm evaluator *inside* that region, so
        # admitted-but-waiting clients keep both slots occupied for the
        # whole drain and the rest of the storm is turned away with 429
        # until slots free up.
        n, cap = 12, 2
        with _Service(tmp_path, max_concurrent=cap) as svc:
            systems = [
                generate_system(
                    GeneratorConfig(
                        n_nodes=6, tasks_per_node=24, tasks_per_graph=4,
                        seed=seed,
                    )
                )
                for seed in (1, 2)
            ]
            bodies = [
                _analyse_body(
                    system=systems[i % 2],
                    # Distinct configs: every request does real work
                    # instead of short-circuiting on the result cache.
                    config=basic_configuration(
                        systems[i % 2], 160 + i // 2
                    ),
                )
                for i in range(n)
            ]
            barrier = threading.Barrier(n)
            outcomes = [None] * n

            def client(i):
                barrier.wait()
                retries = 0
                while True:
                    status, doc = _post(svc.port, "/analyse", bodies[i])
                    if status != 429:
                        outcomes[i] = (status, doc, retries)
                        return
                    assert doc["error"]["code"] == "over-capacity"
                    retries += 1
                    time.sleep(0.005)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)

            # Zero dropped successes: every client got its answer.
            assert all(o is not None and o[0] == 200 for o in outcomes)
            assert all("schedulable" in o[1]["result"] for o in outcomes)
            total_429 = sum(o[2] for o in outcomes)

            _, health = _get(svc.port, "/health")
            admission = health["admission"]
            assert admission["peak_active"] <= cap
            assert admission["admitted"] == n
            assert admission["rejected"] == total_429
            # A simultaneous 12-client storm against a cap of 2 cannot
            # fit: first attempts beyond the cap were turned away.
            assert total_429 >= 1
            assert health["pool"]["entries"] == 2

    def test_pool_evicts_least_recently_used_fingerprint(self, tmp_path):
        with _Service(tmp_path, pool_entries=2) as svc:
            systems = [fig4_system(period=200 + 20 * i) for i in range(4)]
            for system in systems:
                _post(svc.port, "/analyse", _analyse_body(system=system))
            _, health = _get(svc.port, "/health")
            assert health["pool"]["entries"] == 2
            assert health["pool"]["evictions"] == 2
            # The oldest fingerprint was evicted: analysing it again is
            # a cold start, not a pool hit.
            _, doc = _post(
                svc.port, "/analyse", _analyse_body(system=systems[0])
            )
            assert doc["service"]["pool_hit"] is False
            # The most recent one is still warm.
            _, doc = _post(
                svc.port, "/analyse", _analyse_body(system=systems[3])
            )
            assert doc["service"]["pool_hit"] is True


# ----------------------------------------------------------------------
# campaigns over the wire
# ----------------------------------------------------------------------
class TestCampaignEndpoints:
    def test_submit_poll_and_report_matches_library_run(self, tmp_path):
        strategies = ["bbc", {"name": "sa", "iterations": 5, "seed": 3}]
        with _Service(tmp_path, bus=small_bus()) as svc:
            status, accepted = _post(
                svc.port, "/campaigns", _campaign_body(strategies=strategies)
            )
            assert status == 202
            assert accepted["created"] is True
            campaign_id = accepted["campaign"]
            assert re.fullmatch(r"[0-9a-f]{16}", campaign_id)

            done = _poll_campaign(svc.port, campaign_id)
            assert done["jobs_total"] == 4
            assert done["jobs_done"] == 4
            report = done["report"]
            assert sorted(report["results"]) == [
                "dyn__bbc", "dyn__sa", "static__bbc", "static__sa",
            ]
            assert report["failures"] == {}
            for job in done["jobs"].values():
                assert set(job) >= {
                    "schedulable", "cost", "evaluations", "stop_reason",
                }

            # The wire results are exactly what the library produces.
            jobs = campaign_matrix(
                campaign_systems(),
                ["bbc", ("sa", SAOptions(iterations=5, seed=3))],
                bus=small_bus(),
            )
            direct = run_campaign(
                campaign_systems(),
                jobs,
                checkpoint_dir=str(tmp_path / "direct-ckpt"),
            )
            for job_id, result in direct.results.items():
                assert _strip_clocks(report["results"][job_id]) == \
                    _strip_clocks(result_to_dict(result))

            # Content-addressed dedup: the same spec joins, not re-runs.
            status, again = _post(
                svc.port, "/campaigns", _campaign_body(strategies=strategies)
            )
            assert status == 200
            assert again["created"] is False
            assert again["campaign"] == campaign_id

    def test_budget_maps_onto_strategy_options(self, tmp_path):
        with _Service(tmp_path, bus=small_bus()) as svc:
            _, accepted = _post(
                svc.port,
                "/campaigns",
                _campaign_body(
                    systems={"dyn": fig4_system()},
                    strategies=[{"name": "sa", "iterations": 400, "seed": 7}],
                    budget={"max_evaluations": 5},
                ),
            )
            done = _poll_campaign(svc.port, accepted["campaign"])
            job = done["jobs"]["dyn__sa"]
            assert job["stop_reason"] == "budget"
            assert job["evaluations"] == 5

    def test_campaign_requests_are_validated(self, tmp_path):
        with _Service(tmp_path) as svc:
            cases = [
                _campaign_body(strategies=["magic"]),
                _campaign_body(strategies=[{"name": "sa", "warp": 9}]),
                _campaign_body(strategies=[]),
                dict(_campaign_body(), systems={}),
                dict(_campaign_body(), budget={"max_cost": 1}),
            ]
            for body in cases:
                status, doc = _post(svc.port, "/campaigns", body)
                assert status == 400, doc
                assert doc["error"]["code"] == "bad-request"

    def test_new_campaigns_over_the_cap_get_429(self, tmp_path):
        with _Service(tmp_path, max_campaigns=0) as svc:
            status, doc = _post(svc.port, "/campaigns", _campaign_body())
            assert status == 429
            assert doc["error"]["code"] == "over-capacity"

    def test_finished_campaign_survives_restart(self, tmp_path):
        body = _campaign_body(strategies=["bbc"])
        with _Service(tmp_path, bus=small_bus()) as svc:
            _, accepted = _post(svc.port, "/campaigns", body)
            first = _poll_campaign(svc.port, accepted["campaign"])
        # A new server process (same state dir) serves the campaign
        # from its persisted terminal report.
        with _Service(tmp_path, bus=small_bus()) as svc:
            status, doc = _get(
                svc.port, f"/campaigns/{accepted['campaign']}"
            )
            assert status == 200
            assert doc["status"] == "done"
            assert doc["report"] == first["report"]
            # Resubmitting still dedups onto the recovered campaign.
            status, again = _post(svc.port, "/campaigns", body)
            assert (status, again["created"]) == (200, False)


class TestCampaignDelete:
    def test_unknown_campaign_404s(self, tmp_path):
        with _Service(tmp_path) as svc:
            status, doc = _request(svc.port, "DELETE", "/campaigns/deadbeef")
            assert status == 404
            assert doc["error"]["code"] == "not-found"
            # DELETE exists only for campaigns.
            status, _ = _request(svc.port, "DELETE", "/analyse")
            assert status == 404

    def test_running_campaign_409s_then_deletes_when_done(self, tmp_path):
        slow = ["bbc", {"name": "sa", "iterations": 12000, "seed": 11}]
        with _Service(tmp_path, bus=small_bus()) as svc:
            _, accepted = _post(
                svc.port,
                "/campaigns",
                _campaign_body(systems={"dyn": fig4_system()}, strategies=slow),
            )
            campaign_id = accepted["campaign"]
            status, doc = _request(
                svc.port, "DELETE", f"/campaigns/{campaign_id}"
            )
            assert status == 409
            assert doc["error"]["code"] == "conflict"

            _poll_campaign(svc.port, campaign_id)
            status, doc = _request(
                svc.port, "DELETE", f"/campaigns/{campaign_id}"
            )
            assert status == 200
            assert doc["kind"] == "campaign_deleted"
            assert doc["campaign"] == campaign_id
            assert doc["deleted"] is True
            # Gone from the API and from disk...
            status, _ = _get(svc.port, f"/campaigns/{campaign_id}")
            assert status == 404
            assert not (
                tmp_path / "state" / "campaigns" / campaign_id
            ).exists()
            # ...so the content-addressed id is free to be recreated.
            status, again = _post(
                svc.port,
                "/campaigns",
                _campaign_body(systems={"dyn": fig4_system()}, strategies=slow),
            )
            assert (status, again["created"]) == (202, True)
            assert again["campaign"] == campaign_id

    def test_fabric_backed_campaign_guards_its_directory(self, tmp_path):
        slow = ["bbc", {"name": "sa", "iterations": 12000, "seed": 11}]
        with _Service(tmp_path, bus=small_bus(), fabric=True) as svc:
            _, accepted = _post(
                svc.port,
                "/campaigns",
                _campaign_body(systems={"dyn": fig4_system()}, strategies=slow),
            )
            campaign_id = accepted["campaign"]
            status, doc = _request(
                svc.port, "DELETE", f"/campaigns/{campaign_id}"
            )
            assert status == 409
            assert "leases" in doc["error"]["message"]

            done = _poll_campaign(svc.port, campaign_id)
            # The campaign really ran through the fabric: its directory
            # holds a manifest and the published checkpoints.
            root = tmp_path / "state" / "campaigns" / campaign_id
            assert (root / "manifest.json").exists()
            assert done["jobs_done"] == 2
            status, doc = _request(
                svc.port, "DELETE", f"/campaigns/{campaign_id}"
            )
            assert (status, doc["deleted"]) == (200, True)
            assert not root.exists()


# ----------------------------------------------------------------------
# the full round trip, against real server processes
# (acceptance: kill mid-campaign -> restart -> resume, byte-identical)
# ----------------------------------------------------------------------
def _spawn_server(state_dir):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=root,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"server did not announce a port: {line!r}")
    return proc, int(match.group(1))


@pytest.mark.perf_smoke
class TestKillResumeRoundTrip:
    def test_kill_mid_campaign_then_restart_resumes_byte_identical(
        self, tmp_path
    ):
        started = time.monotonic()
        # bbc finishes (and checkpoints) in milliseconds; sa at 12000
        # iterations holds the campaign open for the kill window.
        body = _campaign_body(
            systems={"rt": fig4_system()},
            strategies=["bbc", {"name": "sa", "iterations": 12000,
                                "seed": 11}],
        )

        proc, port = _spawn_server(tmp_path / "state")
        try:
            # The serve round trip starts with a plain analyse call.
            status, doc = _post(port, "/analyse", _analyse_body())
            assert status == 200 and "schedulable" in doc["result"]

            _, accepted = _post(port, "/campaigns", body)
            campaign_id = accepted["campaign"]

            # Wait for the first job's checkpoint, then pull the plug
            # (SIGKILL: no atexit, no graceful shutdown).
            deadline = time.monotonic() + 15
            killed_in_flight = False
            while time.monotonic() < deadline:
                _, snap = _get(port, f"/campaigns/{campaign_id}")
                if snap["jobs_done"] >= 1:
                    killed_in_flight = snap["status"] == "running"
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("no job finished before the deadline")
        finally:
            proc.kill()
            proc.wait(timeout=10)

        # Restart on the same state dir: recovery re-launches the
        # campaign, the checkpoint store answers the finished job, and
        # the interrupted job re-runs deterministically.
        proc, port = _spawn_server(tmp_path / "state")
        try:
            resumed = _poll_campaign(port, campaign_id, timeout=30)
            assert _post(port, "/shutdown")[0] == 200
        finally:
            proc.kill()
            proc.wait(timeout=10)
        assert resumed["report"]["failures"] == {}
        if killed_in_flight:
            assert "rt__bbc" in resumed["report"]["resumed"]
            assert resumed["jobs"]["rt__bbc"]["resumed"] is True

        # The uninterrupted twin, on a fresh state dir.
        proc, port = _spawn_server(tmp_path / "fresh-state")
        try:
            _, accepted2 = _post(port, "/campaigns", body)
            assert accepted2["campaign"] == campaign_id  # content-addressed
            uninterrupted = _poll_campaign(port, campaign_id, timeout=30)
        finally:
            proc.kill()
            proc.wait(timeout=10)

        # Byte-identical results, modulo wall-clock fields.  (The
        # report's `resumed`/`executed` bookkeeping legitimately
        # differs: that is the evidence the restart took the resume
        # path rather than re-running everything.)
        assert json.dumps(
            _strip_clocks(resumed["report"]["results"]), sort_keys=True
        ) == json.dumps(
            _strip_clocks(uninterrupted["report"]["results"]), sort_keys=True
        )
        assert sorted(resumed["report"]["results"]) == ["rt__bbc", "rt__sa"]
        assert time.monotonic() - started < 10.0
