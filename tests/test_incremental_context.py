"""Cache correctness of the incremental analysis engine.

The engine (``repro.analysis.context.AnalysisContext``) must be a pure
performance layer: a warm context, a cold context and the parallel
evaluation pool all have to produce bit-identical results, and the
evaluator's LRU cache must change accounting only, never outcomes.
"""

from dataclasses import replace

from repro.analysis import AnalysisContext, analyse_system
from repro.core import GAOptions, SAOptions, optimise_ga, optimise_sa
from repro.core.bbc import basic_configuration
from repro.core.ga import _initial_population
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.synth import paper_suite

from tests.util import basic_config, fig3_system, fig4_system

import random


def _result_signature(result):
    """Everything an optimiser can observe about an analysis outcome."""
    return (
        result.feasible,
        result.schedulable,
        result.converged,
        result.failure,
        None if result.cost is None else (
            result.cost.value, result.cost.schedulable
        ),
        tuple(sorted(result.wcrt.items())),
    )


def _candidate_configs(system, per_system=6):
    """A spread of BBC-shaped configs across the legal DYN range."""
    options = BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    lengths = sweep_lengths(lo, hi, per_system) if hi >= lo and hi > 0 else [0]
    configs = []
    for n in lengths:
        try:
            configs.append(basic_configuration(system, n, options))
        except Exception:
            continue
    return configs


class TestWarmContextBitIdentical:
    def test_property_randomised_systems(self):
        """Warm-context results equal cold runs on randomised systems."""
        rng = random.Random(20070416)
        for n_nodes in (2, 3, 4):
            suite = paper_suite(n_nodes, count=2, seed=rng.randrange(10_000))
            for system in suite:
                context = AnalysisContext(system)
                for config in _candidate_configs(system):
                    cold = analyse_system(system, config)
                    warm = context.analyse(config)
                    again = context.analyse(config)
                    assert _result_signature(cold) == _result_signature(warm)
                    assert _result_signature(cold) == _result_signature(again)

    def test_shared_schedule_rebound_to_config(self):
        """Cache-served tables carry the analysed configuration."""
        system = fig4_system()  # no ST messages: schedule shared over sweep
        context = AnalysisContext(system)
        a = context.analyse(basic_configuration(system, 20))
        b = context.analyse(basic_configuration(system, 40))
        assert a.table is not None and b.table is not None
        assert a.table.config.n_minislots == 20
        assert b.table.config.n_minislots == 40
        assert a.table.tasks == b.table.tasks  # placements shared

    def test_context_for_wrong_system_is_ignored(self):
        other = AnalysisContext(fig3_system())
        system = fig4_system()
        config = basic_configuration(system, 20)
        direct = analyse_system(system, config)
        via_wrong = analyse_system(system, config, context=other)
        assert _result_signature(direct) == _result_signature(via_wrong)


class TestEvaluatorCache:
    def test_lru_bound_evicts_and_recounts(self):
        system = fig3_system()
        options = BusOptimisationOptions(max_cache_entries=2)
        ev = Evaluator(system, options)
        cfgs = [
            basic_config(
                static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=n
            )
            for n in (0, 5, 10)
        ]
        for cfg in cfgs:
            ev.analyse(cfg)
        assert ev.evaluations == 3
        # cfgs[0] was evicted (bound 2): re-analysing costs an evaluation.
        ev.analyse(cfgs[0])
        assert ev.evaluations == 4
        assert ev.cache_hits == 0
        # cfgs[2] is still cached: pure hit.
        ev.analyse(cfgs[2])
        assert ev.evaluations == 4
        assert ev.cache_hits == 1

    def test_cache_hits_not_counted_as_evaluations(self):
        system = fig3_system()
        ev = Evaluator(system, BusOptimisationOptions())
        cfg = basic_config(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=0
        )
        r1 = ev.analyse(cfg)
        r2 = ev.analyse(cfg)
        assert r1 is r2
        assert ev.evaluations == 1
        assert ev.cache_hits == 1
        assert len(ev.trace) == 1

    def test_analyse_many_matches_serial_semantics(self):
        system = fig3_system()
        cfgs = [
            basic_config(
                static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=n
            )
            for n in (0, 5, 0, 5, 10)  # duplicates inside the batch
        ]
        serial = Evaluator(system, BusOptimisationOptions())
        expected = [serial.analyse(c) for c in cfgs]
        batched = Evaluator(system, BusOptimisationOptions())
        got = batched.analyse_many(cfgs)
        assert [
            _result_signature(r) for r in got
        ] == [_result_signature(r) for r in expected]
        assert batched.evaluations == serial.evaluations == 3
        assert batched.cache_hits == serial.cache_hits == 2
        assert [p.n_minislots for p in batched.trace] == [
            p.n_minislots for p in serial.trace
        ]


class TestParallelDeterminism:
    def _outcome(self, result):
        cfg = result.config
        return (
            result.cost,
            result.schedulable,
            result.evaluations,
            result.cache_hits,
            None if cfg is None else cfg.cache_key(),
            result.trace,
        )

    def test_parallel_ga_equals_serial(self):
        system = fig4_system()
        serial = BusOptimisationOptions()
        parallel = replace(serial, parallel_workers=2)
        ga = GAOptions(population=6, generations=3, seed=11)
        a = optimise_ga(system, serial, ga)
        b = optimise_ga(system, parallel, ga)
        assert self._outcome(a) == self._outcome(b)

    def test_parallel_sa_restarts_equal_serial(self):
        system = fig4_system()
        serial = BusOptimisationOptions()
        parallel = replace(serial, parallel_workers=2)
        sa = SAOptions(iterations=40, seed=7, restarts=2)
        a = optimise_sa(system, serial, sa)
        b = optimise_sa(system, parallel, sa)
        assert self._outcome(a) == self._outcome(b)

    def test_single_restart_unchanged(self):
        system = fig4_system()
        sa = SAOptions(iterations=40, seed=7)
        a = optimise_sa(system, sa_options=sa)
        b = optimise_sa(system, sa_options=sa)
        assert self._outcome(a) == self._outcome(b)


class TestGAPopulationDedup:
    def test_initial_population_distinct(self):
        system = fig4_system()
        options = BusOptimisationOptions()
        rng = random.Random(3)
        population = _initial_population(system, options, rng, 10)
        keys = {cfg.cache_key() for cfg in population}
        assert len(population) == 10
        assert len(keys) == 10  # fig4 has a huge DYN range: all distinct

    def test_population_terminates_on_tiny_design_space(self):
        # fig3 has no DYN messages: many moves are no-ops, so the
        # bounded retry budget must still fill the population.
        system = fig3_system()
        options = BusOptimisationOptions()
        rng = random.Random(3)
        population = _initial_population(system, options, rng, 8)
        assert len(population) == 8


class TestStaticWcrtMemo:
    def test_context_static_wcrt_equals_public_function(self):
        """`AnalysisContext._static_wcrt` (job-base memoised) must stay
        locked to the public `static_response_times` it reimplements --
        checked across a sweep so the memo is exercised warm."""
        from repro.analysis import static_response_times

        system = paper_suite(3, count=1, seed=23)[0]
        options = BusOptimisationOptions()
        slot = min_static_slot(system, options)
        lo, hi = dyn_segment_bounds(
            system, len(system.st_sender_nodes()) * slot, options
        )
        context = AnalysisContext(system)
        for n in sweep_lengths(lo, hi, 8):
            config = basic_configuration(system, n, options)
            arts = context._schedule_artifacts(config)
            assert arts.table is not None
            assert context._static_wcrt(arts.table) == static_response_times(
                system.application, arts.table
            )


class TestConfigKeys:
    def test_static_key_is_prefix_of_cache_key(self):
        cfg = basic_config(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=7
        )
        assert cfg.cache_key()[: len(cfg.static_key())] == cfg.static_key()

    def test_static_key_ignores_dyn_length_and_frame_ids(self):
        a = basic_config(
            static_slots=("N1", "N2"), gd_static_slot=8, n_minislots=7
        )
        b = a.with_dyn_length(30)
        assert a.static_key() == b.static_key()
        assert a.cache_key() != b.cache_key()
