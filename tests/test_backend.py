"""The array backend contract: bit identity, verify mode, the extra.

``AnalysisOptions.backend="numpy"`` lowers each system's invariants
into packed arrays once and advances whole batches of busy-window fix
points in lockstep (:mod:`repro.analysis.backend`).  Its *entire*
contract is "same answers, faster": these tests pin bit identity with
the Python oracle at every observable level -- full analysis results
over fuzzed systems and every ``warm_start`` x ``dominance`` mode,
the ``"verify"`` cross-check counter, optimiser traces with their
evaluation and cache-hit accounting, and the pre-refactor legacy trace
fixtures byte-for-byte -- plus the packaging contract: numpy is the
optional ``repro[numpy]`` extra, selecting the backend without it is
an eager, actionable ``RuntimeError``, and these tests *skip* (not
fail) on a numpy-less interpreter.
"""

import json
import os
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import AnalysisContext
from repro.analysis.backend import numpy_or_none
from repro.analysis.holistic import (
    AnalysisOptions,
    DOMINANCE_MODES,
    WARM_START_MODES,
)
from repro.core import optimise_bbc, optimise_obc
from repro.core.bbc import basic_configuration
from repro.core.campaign import (
    _options_fingerprint,
    campaign_matrix,
    run_campaign,
)
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.core.strategies import StrategyOptions
from repro.errors import ConfigurationError
from repro.io.serialization import analysis_result_to_dict, result_to_dict
from repro.model import (
    Application,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
)

from tests.fixtures.legacy_cases import LEGACY_CASES
from tests.test_properties import small_system
from tests.util import fig3_system, fig4_system

requires_numpy = pytest.mark.skipif(
    numpy_or_none() is None,
    reason="numpy backend tests need the repro[numpy] extra",
)


def _sweep_configs(system, points, options=None):
    """A DYN-length sweep of ``points`` basic configurations."""
    options = options or BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    return [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, points)
    ]


def _result_docs(results):
    """Full serialized results (tables dropped) -- deep-compare safe."""
    return [analysis_result_to_dict(r) for r in results]


# ----------------------------------------------------------------------
# the repro[numpy] extra
# ----------------------------------------------------------------------
class TestNumpyExtra:
    def test_numpy_backend_without_numpy_is_actionable(self, monkeypatch):
        """Selecting the array backend on a numpy-less interpreter fails
        eagerly -- at context construction, where the backend was chosen
        -- with an error naming the ``repro[numpy]`` extra."""
        monkeypatch.setattr("repro.analysis.backend._numpy", None)
        for backend in ("numpy", "verify"):
            with pytest.raises(RuntimeError) as exc:
                AnalysisContext(
                    fig3_system(), AnalysisOptions(backend=backend)
                )
            assert "repro[numpy]" in str(exc.value)
            assert "pip install" in str(exc.value)

    def test_python_backend_needs_no_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.analysis.backend._numpy", None)
        system = fig3_system()
        context = AnalysisContext(system, AnalysisOptions(backend="python"))
        result = context.analyse(_sweep_configs(system, 1)[0])
        assert result.feasible

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisContext(fig3_system(), AnalysisOptions(backend="cuda"))


# ----------------------------------------------------------------------
# bit identity with the Python oracle
# ----------------------------------------------------------------------
@requires_numpy
class TestBitIdentity:
    @given(small_system(), st.integers(3, 9))
    @settings(max_examples=25, deadline=None)
    def test_numpy_matches_python_on_random_systems(self, system, points):
        """Fuzzed systems, full-result identity: every field the
        serializer covers (wcrt in insertion order included), plus the
        result-list order of the batch."""
        configs = _sweep_configs(system, points)
        python = AnalysisContext(system).analyse_batch(configs)
        numpy_ = AnalysisContext(
            system, AnalysisOptions(backend="numpy")
        ).analyse_batch(configs)
        assert _result_docs(numpy_) == _result_docs(python)

    @pytest.mark.parametrize("warm_start", WARM_START_MODES)
    @pytest.mark.parametrize("dominance", DOMINANCE_MODES)
    def test_numpy_matches_python_in_every_mode(self, warm_start, dominance):
        """Every warm_start x dominance combination answers identically
        across backends.  (Oracle/debug modes run the Python path inside
        the array backend by design -- this pins that the *contract*
        holds whatever the mode routes to.)"""
        system = fig4_system()
        configs = _sweep_configs(system, 6)
        results = {}
        for backend in ("python", "numpy"):
            options = AnalysisOptions(
                backend=backend, warm_start=warm_start, dominance=dominance
            )
            context = AnalysisContext(system, options)
            results[backend] = context.analyse_batch(configs)
            assert context.warm_start_divergences == 0
            assert context.dominance_divergences == 0
        assert _result_docs(results["numpy"]) == _result_docs(
            results["python"]
        )

    @given(small_system())
    @settings(max_examples=15, deadline=None)
    def test_verify_mode_counts_zero_divergences(self, system):
        """``backend="verify"`` runs both backends per analysis and
        counts mismatches -- contractually always zero."""
        configs = _sweep_configs(system, 5)
        context = AnalysisContext(system, AnalysisOptions(backend="verify"))
        verified = context.analyse_batch(configs)
        assert context.backend_divergences == 0
        python = AnalysisContext(system).analyse_batch(configs)
        assert _result_docs(verified) == _result_docs(python)


# ----------------------------------------------------------------------
# optimiser-level identity: traces, evaluations, cache hits
# ----------------------------------------------------------------------
def _numpy_bus(**kw) -> BusOptimisationOptions:
    return BusOptimisationOptions(
        analysis=AnalysisOptions(backend="numpy"), **kw
    )


def _small_numpy_bus(**kw) -> BusOptimisationOptions:
    """The legacy-case ``_small_bus`` budgets on the array backend."""
    return _numpy_bus(
        ee_max_dyn_points=48,
        cf_candidates=64,
        max_extra_static_slots=1,
        max_slot_size_steps=1,
        **kw,
    )


@requires_numpy
def test_optimiser_trace_and_cache_accounting_identical():
    """A full search run is byte-identical across backends: same trace
    (points and estimates, in order), same exact-evaluation count, same
    cache-hit count, same best configuration and cost."""
    system = fig4_system()
    python = result_to_dict(optimise_obc(system, method="curvefit"))
    numpy_ = result_to_dict(
        optimise_obc(system, _numpy_bus(), method="curvefit")
    )
    python["elapsed_seconds"] = numpy_["elapsed_seconds"] = 0.0
    assert numpy_ == python


def _legacy_fixture(case_id: str) -> dict:
    path = os.path.join(
        os.path.dirname(__file__), "fixtures", "legacy_traces",
        f"{case_id}.json",
    )
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


#: Legacy cases re-run on the array backend: every strategy that takes
#: plain ``BusOptimisationOptions`` (SA/GA ride the same evaluator, and
#: are covered at the pinned-options level by test_legacy_equivalence).
NUMPY_LEGACY_CASES = (
    ("bbc_fig3", lambda: optimise_bbc(fig3_system(), _numpy_bus())),
    ("bbc_fig4", lambda: optimise_bbc(fig4_system(), _numpy_bus())),
    (
        "obc_cf_fig4",
        lambda: optimise_obc(fig4_system(), _numpy_bus(), "curvefit"),
    ),
    (
        "obc_ee_paper3",
        lambda: _paper3_case(_small_numpy_bus(), "exhaustive"),
    ),
    (
        "obc_ee_paper3_chunked",
        lambda: _paper3_case(_small_numpy_bus(obc_chunk_size=3), "exhaustive"),
    ),
)


def _paper3_case(bus, method):
    from repro.synth import paper_suite

    return optimise_obc(paper_suite(3, count=1, seed=23)[0], bus, method)


@requires_numpy
@pytest.mark.parametrize(
    "case_id,run", NUMPY_LEGACY_CASES, ids=[c[0] for c in NUMPY_LEGACY_CASES]
)
def test_legacy_traces_identical_under_numpy_backend(case_id, run):
    """The pre-refactor oracle fixtures, generated on the pure-Python
    implementations, are reproduced byte-for-byte by the array backend."""
    expected = _legacy_fixture(case_id)
    got = result_to_dict(run())
    got["elapsed_seconds"] = 0.0
    expected.setdefault("stop_reason", None)
    assert got["trace"] == expected["trace"], (
        f"{case_id}: numpy-backend search trace diverged from the oracle"
    )
    assert got == expected


# ----------------------------------------------------------------------
# campaign resume across backends
# ----------------------------------------------------------------------
def test_backend_excluded_from_campaign_fingerprint():
    """The options fingerprint normalises the backend out, exactly like
    ``parallel_workers``: both knobs are pinned result-identical, so a
    checkpoint must survive a backend change."""
    base = StrategyOptions()
    digests = {
        _options_fingerprint(
            base.with_bus(
                BusOptimisationOptions(
                    analysis=AnalysisOptions(backend=backend)
                )
            )
        )
        for backend in ("python", "numpy", "verify")
    }
    digests.add(_options_fingerprint(base))
    assert len(digests) == 1
    # ...while result-affecting analysis knobs still invalidate.
    changed = base.with_bus(
        BusOptimisationOptions(
            analysis=AnalysisOptions(dyn_fill_strategy="exact")
        )
    )
    assert _options_fingerprint(changed) not in digests


@requires_numpy
def test_campaign_resumes_across_backends(tmp_path):
    """A campaign checkpointed under the Python backend resumes -- job
    for job, nothing re-run -- when re-issued on the numpy backend."""
    systems = {"fig4": fig4_system()}
    python_jobs = campaign_matrix(systems, ["bbc"])
    cold = run_campaign(systems, python_jobs, checkpoint_dir=str(tmp_path))
    assert len(cold.executed) == 1

    numpy_jobs = campaign_matrix(systems, ["bbc"], bus=_numpy_bus())
    resumed = run_campaign(systems, numpy_jobs, checkpoint_dir=str(tmp_path))
    assert len(resumed.resumed) == 1 and not resumed.executed
    assert (
        result_to_dict(resumed.results["fig4__bbc"])
        == result_to_dict(cold.results["fig4__bbc"])
    )


# ----------------------------------------------------------------------
# perf smoke (tier-1): identity plus a lenient speed floor
# ----------------------------------------------------------------------
def _dyn_only_smoke_system() -> System:
    """A 3-node, DYN-only application: the whole length sweep shares one
    schedule key, so the array backend runs it as a single lockstep
    group -- the shape the benchmarks pin at >=2x (see
    ``benchmarks/results/BENCH_incremental_analysis.json``)."""
    def chain(prefix, length, period):
        tasks, msgs = [], []
        for i in range(length):
            tasks.append(
                Task(
                    f"{prefix}{i}",
                    wcet=7 + i,
                    node=f"N{(i % 3) + 1}",
                    policy=SchedulingPolicy.FPS,
                    priority=i,
                )
            )
        for i in range(length - 1):
            msgs.append(
                Message(
                    f"{prefix}m{i}",
                    size=4 + i,
                    sender=f"{prefix}{i}",
                    receivers=(f"{prefix}{i + 1}",),
                    kind=MessageKind.DYN,
                    priority=i,
                )
            )
        return TaskGraph(
            name=prefix, period=period, deadline=period,
            tasks=tuple(tasks), messages=tuple(msgs),
        )

    graphs = tuple(
        chain(f"g{k}_", 4, period)
        for k, period in enumerate((200, 400, 400, 800))
    )
    return System(("N1", "N2", "N3"), Application("smoke", graphs))


@requires_numpy
@pytest.mark.perf_smoke
def test_numpy_backend_smoke_identical_and_not_slower():
    """<10s tier-1 smoke of the batched array sweep: bit identity on a
    96-point DYN-only sweep, and the numpy batch comfortably beats the
    warm Python loop.  The floor here is deliberately loose (1.2x on a
    shape the bench pins at >=2x) -- wall-clock asserts on shared
    machines must not flake; the real perf claim lives in
    ``BENCH_incremental_analysis.json``."""
    system = _dyn_only_smoke_system()
    assert not tuple(system.application.st_messages())
    configs = _sweep_configs(
        system, 96, BusOptimisationOptions(ee_max_dyn_points=96)
    )

    python_ctx = AnalysisContext(system)
    t0 = time.perf_counter()
    python_results = python_ctx.analyse_batch(configs)
    python_s = time.perf_counter() - t0

    numpy_ctx = AnalysisContext(system, AnalysisOptions(backend="numpy"))
    t0 = time.perf_counter()
    numpy_results = numpy_ctx.analyse_batch(configs)
    numpy_s = time.perf_counter() - t0

    assert _result_docs(numpy_results) == _result_docs(python_results)
    assert numpy_s < 10.0
    assert python_s / numpy_s >= 1.2, (
        f"array backend smoke ratio {python_s / numpy_s:.2f}x "
        f"(python {python_s:.3f}s vs numpy {numpy_s:.3f}s)"
    )
