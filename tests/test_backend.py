"""The accelerated backend contract: bit identity, verify mode, extras.

``AnalysisOptions.backend="numpy"`` lowers each system's invariants
into packed arrays once and advances whole batches of busy-window fix
points in lockstep; ``backend="native"`` runs the same lowered plans
inside the compiled ``repro._native`` C extension
(:mod:`repro.analysis.backend`).  Their *entire* contract is "same
answers, faster": these tests pin bit identity with the Python oracle
at every observable level -- full analysis results over fuzzed systems
(including fault hypotheses ``k in {0, 1, 2}``) and every
``warm_start`` x ``dominance`` mode, the ``"verify"`` cross-check
counter, optimiser traces with their evaluation and cache-hit
accounting, and the pre-refactor legacy trace fixtures byte-for-byte
-- plus the packaging contract: each accelerator is an optional extra
(``repro[numpy]`` / ``repro[native]``), selecting a backend without
its extra is an eager, actionable ``RuntimeError``, and these tests
*skip* (not fail) on an interpreter missing the extra (native tests
carry the ``native`` pytest marker for CI selection).
"""

import json
import os
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import AnalysisContext
from repro.analysis.backend import native_or_none, numpy_or_none
from repro.analysis.holistic import (
    AnalysisOptions,
    DOMINANCE_MODES,
    WARM_START_MODES,
)
from repro.core import optimise_bbc, optimise_obc
from repro.core.bbc import basic_configuration
from repro.core.campaign import (
    _options_fingerprint,
    campaign_matrix,
    run_campaign,
)
from repro.core.search import (
    BusOptimisationOptions,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.core.strategies import StrategyOptions
from repro.errors import ConfigurationError
from repro.io.serialization import analysis_result_to_dict, result_to_dict
from repro.model import (
    Application,
    Message,
    MessageKind,
    SchedulingPolicy,
    System,
    Task,
    TaskGraph,
)

from tests.fixtures.legacy_cases import LEGACY_CASES
from tests.test_properties import small_system
from tests.util import fig3_system, fig4_system

requires_numpy = pytest.mark.skipif(
    numpy_or_none() is None,
    reason="numpy backend tests need the repro[numpy] extra",
)

requires_native = pytest.mark.skipif(
    native_or_none() is None or numpy_or_none() is None,
    reason="native backend tests need the compiled repro[native] extra",
)


def _sweep_configs(system, points, options=None):
    """A DYN-length sweep of ``points`` basic configurations."""
    options = options or BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    return [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, points)
    ]


def _result_docs(results):
    """Full serialized results (tables dropped) -- deep-compare safe."""
    return [analysis_result_to_dict(r) for r in results]


# ----------------------------------------------------------------------
# the repro[numpy] extra
# ----------------------------------------------------------------------
class TestNumpyExtra:
    def test_numpy_backend_without_numpy_is_actionable(self, monkeypatch):
        """Selecting the array backend on a numpy-less interpreter fails
        eagerly -- at context construction, where the backend was chosen
        -- with an error naming the ``repro[numpy]`` extra."""
        monkeypatch.setattr("repro.analysis.backend._numpy", None)
        for backend in ("numpy", "verify"):
            with pytest.raises(RuntimeError) as exc:
                AnalysisContext(
                    fig3_system(), AnalysisOptions(backend=backend)
                )
            assert "repro[numpy]" in str(exc.value)
            assert "pip install" in str(exc.value)

    def test_python_backend_needs_no_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.analysis.backend._numpy", None)
        system = fig3_system()
        context = AnalysisContext(system, AnalysisOptions(backend="python"))
        result = context.analyse(_sweep_configs(system, 1)[0])
        assert result.feasible

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisContext(fig3_system(), AnalysisOptions(backend="cuda"))


# ----------------------------------------------------------------------
# the repro[native] extra
# ----------------------------------------------------------------------
class TestNativeExtra:
    def test_native_backend_without_extension_is_actionable(
        self, monkeypatch
    ):
        """Selecting the compiled backend on a build that never produced
        the extension fails eagerly -- at context construction -- with
        an error naming the ``repro[native]`` extra."""
        monkeypatch.setattr("repro.analysis.backend._native_module", None)
        with pytest.raises(RuntimeError) as exc:
            AnalysisContext(fig3_system(), AnalysisOptions(backend="native"))
        assert "repro[native]" in str(exc.value)
        assert "pip install" in str(exc.value)

    @requires_native
    def test_native_backend_without_numpy_is_actionable(self, monkeypatch):
        """The native shim stages plans and buffers via numpy, so the
        extension alone is not enough: a numpy-less interpreter gets the
        numpy extra's error, still eagerly."""
        monkeypatch.setattr("repro.analysis.backend._numpy", None)
        with pytest.raises(RuntimeError) as exc:
            AnalysisContext(fig3_system(), AnalysisOptions(backend="native"))
        assert "repro[numpy]" in str(exc.value)


# ----------------------------------------------------------------------
# bit identity with the Python oracle
# ----------------------------------------------------------------------
@requires_numpy
class TestBitIdentity:
    @given(small_system(), st.integers(3, 9), st.sampled_from((0, 1, 2)))
    @settings(max_examples=25, deadline=None)
    def test_numpy_matches_python_on_random_systems(
        self, system, points, fault_k
    ):
        """Fuzzed systems, full-result identity: every field the
        serializer covers (wcrt in insertion order included), plus the
        result-list order of the batch -- under every fault hypothesis
        ``k in {0, 1, 2}``, which the array backend now computes
        natively instead of falling back."""
        configs = _sweep_configs(system, points)
        python = AnalysisContext(
            system, AnalysisOptions(fault_hypothesis=fault_k)
        ).analyse_batch(configs)
        numpy_ = AnalysisContext(
            system,
            AnalysisOptions(backend="numpy", fault_hypothesis=fault_k),
        ).analyse_batch(configs)
        assert _result_docs(numpy_) == _result_docs(python)

    @pytest.mark.parametrize("warm_start", WARM_START_MODES)
    @pytest.mark.parametrize("dominance", DOMINANCE_MODES)
    def test_numpy_matches_python_in_every_mode(self, warm_start, dominance):
        """Every warm_start x dominance combination answers identically
        across backends.  (Oracle/debug modes run the Python path inside
        the array backend by design -- this pins that the *contract*
        holds whatever the mode routes to.)"""
        system = fig4_system()
        configs = _sweep_configs(system, 6)
        results = {}
        for backend in ("python", "numpy"):
            options = AnalysisOptions(
                backend=backend, warm_start=warm_start, dominance=dominance
            )
            context = AnalysisContext(system, options)
            results[backend] = context.analyse_batch(configs)
            assert context.warm_start_divergences == 0
            assert context.dominance_divergences == 0
        assert _result_docs(results["numpy"]) == _result_docs(
            results["python"]
        )

    @given(small_system())
    @settings(max_examples=15, deadline=None)
    def test_verify_mode_counts_zero_divergences(self, system):
        """``backend="verify"`` runs both backends per analysis and
        counts mismatches -- contractually always zero."""
        configs = _sweep_configs(system, 5)
        context = AnalysisContext(system, AnalysisOptions(backend="verify"))
        verified = context.analyse_batch(configs)
        assert context.backend_divergences == 0
        python = AnalysisContext(system).analyse_batch(configs)
        assert _result_docs(verified) == _result_docs(python)


@requires_native
@pytest.mark.native
class TestNativeBitIdentity:
    """The compiled backend under the numpy battery's microscope.

    Same oracle, same observables: fuzzed systems (with fault
    hypotheses), every mode combination, and the verify counter -- which
    on a native-enabled build cross-checks python vs numpy *and* python
    vs native per analysis.
    """

    @given(small_system(), st.integers(3, 9), st.sampled_from((0, 1, 2)))
    @settings(max_examples=25, deadline=None)
    def test_native_matches_python_on_random_systems(
        self, system, points, fault_k
    ):
        configs = _sweep_configs(system, points)
        python = AnalysisContext(
            system, AnalysisOptions(fault_hypothesis=fault_k)
        ).analyse_batch(configs)
        native = AnalysisContext(
            system,
            AnalysisOptions(backend="native", fault_hypothesis=fault_k),
        ).analyse_batch(configs)
        assert _result_docs(native) == _result_docs(python)

    @pytest.mark.parametrize("warm_start", WARM_START_MODES)
    @pytest.mark.parametrize("dominance", DOMINANCE_MODES)
    def test_native_matches_python_in_every_mode(self, warm_start, dominance):
        """Oracle/debug modes route the native backend onto the Python
        path by design; certified modes run the C kernels -- either way
        the answers are identical and the divergence counters stay 0."""
        system = fig4_system()
        configs = _sweep_configs(system, 6)
        results = {}
        for backend in ("python", "native"):
            options = AnalysisOptions(
                backend=backend, warm_start=warm_start, dominance=dominance
            )
            context = AnalysisContext(system, options)
            results[backend] = context.analyse_batch(configs)
            assert context.warm_start_divergences == 0
            assert context.dominance_divergences == 0
        assert _result_docs(results["native"]) == _result_docs(
            results["python"]
        )

    def test_verify_mode_cross_checks_native_with_zero_divergences(self):
        """On a native-enabled build ``backend="verify"`` compares the
        Python oracle against *both* accelerated backends per analysis;
        the counter is contractually zero."""
        system = fig4_system()
        configs = _sweep_configs(system, 8)
        context = AnalysisContext(system, AnalysisOptions(backend="verify"))
        verified = context.analyse_batch(configs)
        assert context.backend_divergences == 0
        python = AnalysisContext(system).analyse_batch(configs)
        assert _result_docs(verified) == _result_docs(python)


# ----------------------------------------------------------------------
# optimiser-level identity: traces, evaluations, cache hits
# ----------------------------------------------------------------------
def _numpy_bus(**kw) -> BusOptimisationOptions:
    return BusOptimisationOptions(
        analysis=AnalysisOptions(backend="numpy"), **kw
    )


def _native_bus(**kw) -> BusOptimisationOptions:
    return BusOptimisationOptions(
        analysis=AnalysisOptions(backend="native"), **kw
    )


@requires_numpy
def test_optimiser_trace_and_cache_accounting_identical():
    """A full search run is byte-identical across backends: same trace
    (points and estimates, in order), same exact-evaluation count, same
    cache-hit count, same best configuration and cost."""
    system = fig4_system()
    python = result_to_dict(optimise_obc(system, method="curvefit"))
    numpy_ = result_to_dict(
        optimise_obc(system, _numpy_bus(), method="curvefit")
    )
    python["elapsed_seconds"] = numpy_["elapsed_seconds"] = 0.0
    assert numpy_ == python


def _legacy_fixture(case_id: str) -> dict:
    path = os.path.join(
        os.path.dirname(__file__), "fixtures", "legacy_traces",
        f"{case_id}.json",
    )
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _legacy_backend_cases(backend):
    """Legacy cases re-run on an accelerated backend: every strategy
    that takes plain ``BusOptimisationOptions`` (SA/GA ride the same
    evaluator, and are covered at the pinned-options level by
    test_legacy_equivalence)."""

    def bus(**kw):
        return BusOptimisationOptions(
            analysis=AnalysisOptions(backend=backend), **kw
        )

    def small_bus(**kw):
        # The legacy-case ``_small_bus`` budgets on this backend.
        return bus(
            ee_max_dyn_points=48,
            cf_candidates=64,
            max_extra_static_slots=1,
            max_slot_size_steps=1,
            **kw,
        )

    return (
        ("bbc_fig3", lambda: optimise_bbc(fig3_system(), bus())),
        ("bbc_fig4", lambda: optimise_bbc(fig4_system(), bus())),
        (
            "obc_cf_fig4",
            lambda: optimise_obc(fig4_system(), bus(), "curvefit"),
        ),
        (
            "obc_ee_paper3",
            lambda: _paper3_case(small_bus(), "exhaustive"),
        ),
        (
            "obc_ee_paper3_chunked",
            lambda: _paper3_case(small_bus(obc_chunk_size=3), "exhaustive"),
        ),
    )


NUMPY_LEGACY_CASES = _legacy_backend_cases("numpy")
NATIVE_LEGACY_CASES = _legacy_backend_cases("native")


def _paper3_case(bus, method):
    from repro.synth import paper_suite

    return optimise_obc(paper_suite(3, count=1, seed=23)[0], bus, method)


@requires_numpy
@pytest.mark.parametrize(
    "case_id,run", NUMPY_LEGACY_CASES, ids=[c[0] for c in NUMPY_LEGACY_CASES]
)
def test_legacy_traces_identical_under_numpy_backend(case_id, run):
    """The pre-refactor oracle fixtures, generated on the pure-Python
    implementations, are reproduced byte-for-byte by the array backend."""
    expected = _legacy_fixture(case_id)
    got = result_to_dict(run())
    got["elapsed_seconds"] = 0.0
    expected.setdefault("stop_reason", None)
    assert got["trace"] == expected["trace"], (
        f"{case_id}: numpy-backend search trace diverged from the oracle"
    )
    assert got == expected


@requires_native
@pytest.mark.native
@pytest.mark.parametrize(
    "case_id,run",
    NATIVE_LEGACY_CASES,
    ids=[c[0] for c in NATIVE_LEGACY_CASES],
)
def test_legacy_traces_identical_under_native_backend(case_id, run):
    """The same pre-refactor oracle fixtures, byte-for-byte on the
    compiled backend -- trace order, evaluation counts, cache hits."""
    expected = _legacy_fixture(case_id)
    got = result_to_dict(run())
    got["elapsed_seconds"] = 0.0
    expected.setdefault("stop_reason", None)
    assert got["trace"] == expected["trace"], (
        f"{case_id}: native-backend search trace diverged from the oracle"
    )
    assert got == expected


# ----------------------------------------------------------------------
# campaign resume across backends
# ----------------------------------------------------------------------
def test_backend_excluded_from_campaign_fingerprint():
    """The options fingerprint normalises the backend out, exactly like
    ``parallel_workers``: both knobs are pinned result-identical, so a
    checkpoint must survive a backend change."""
    base = StrategyOptions()
    digests = {
        _options_fingerprint(
            base.with_bus(
                BusOptimisationOptions(
                    analysis=AnalysisOptions(backend=backend)
                )
            )
        )
        for backend in ("python", "numpy", "native", "verify")
    }
    digests.add(_options_fingerprint(base))
    assert len(digests) == 1
    # ...while result-affecting analysis knobs still invalidate.
    changed = base.with_bus(
        BusOptimisationOptions(
            analysis=AnalysisOptions(dyn_fill_strategy="exact")
        )
    )
    assert _options_fingerprint(changed) not in digests


@requires_numpy
def test_campaign_resumes_across_backends(tmp_path):
    """A campaign checkpointed under the Python backend resumes -- job
    for job, nothing re-run -- when re-issued on the numpy backend."""
    systems = {"fig4": fig4_system()}
    python_jobs = campaign_matrix(systems, ["bbc"])
    cold = run_campaign(systems, python_jobs, checkpoint_dir=str(tmp_path))
    assert len(cold.executed) == 1

    numpy_jobs = campaign_matrix(systems, ["bbc"], bus=_numpy_bus())
    resumed = run_campaign(systems, numpy_jobs, checkpoint_dir=str(tmp_path))
    assert len(resumed.resumed) == 1 and not resumed.executed
    assert (
        result_to_dict(resumed.results["fig4__bbc"])
        == result_to_dict(cold.results["fig4__bbc"])
    )


@requires_native
@pytest.mark.native
def test_campaign_resumes_across_backends_including_native(tmp_path):
    """A checkpoint written under the Python backend resumes untouched
    when re-issued on the compiled backend -- the fingerprint treats
    ``"native"`` exactly like the other result-identical modes."""
    systems = {"fig4": fig4_system()}
    cold = run_campaign(
        systems, campaign_matrix(systems, ["bbc"]),
        checkpoint_dir=str(tmp_path),
    )
    assert len(cold.executed) == 1

    native_jobs = campaign_matrix(systems, ["bbc"], bus=_native_bus())
    resumed = run_campaign(
        systems, native_jobs, checkpoint_dir=str(tmp_path)
    )
    assert len(resumed.resumed) == 1 and not resumed.executed
    assert (
        result_to_dict(resumed.results["fig4__bbc"])
        == result_to_dict(cold.results["fig4__bbc"])
    )


# ----------------------------------------------------------------------
# perf smoke (tier-1): identity plus a lenient speed floor
# ----------------------------------------------------------------------
def _dyn_only_smoke_system() -> System:
    """A 3-node, DYN-only application: the whole length sweep shares one
    schedule key, so the array backend runs it as a single lockstep
    group -- the shape the benchmarks pin at >=2x (see
    ``benchmarks/results/BENCH_incremental_analysis.json``)."""
    def chain(prefix, length, period):
        tasks, msgs = [], []
        for i in range(length):
            tasks.append(
                Task(
                    f"{prefix}{i}",
                    wcet=7 + i,
                    node=f"N{(i % 3) + 1}",
                    policy=SchedulingPolicy.FPS,
                    priority=i,
                )
            )
        for i in range(length - 1):
            msgs.append(
                Message(
                    f"{prefix}m{i}",
                    size=4 + i,
                    sender=f"{prefix}{i}",
                    receivers=(f"{prefix}{i + 1}",),
                    kind=MessageKind.DYN,
                    priority=i,
                )
            )
        return TaskGraph(
            name=prefix, period=period, deadline=period,
            tasks=tuple(tasks), messages=tuple(msgs),
        )

    graphs = tuple(
        chain(f"g{k}_", 4, period)
        for k, period in enumerate((200, 400, 400, 800))
    )
    return System(("N1", "N2", "N3"), Application("smoke", graphs))


@requires_numpy
@pytest.mark.perf_smoke
def test_numpy_backend_smoke_identical_and_not_slower():
    """<10s tier-1 smoke of the batched array sweep: bit identity on a
    96-point DYN-only sweep, and the numpy batch comfortably beats the
    warm Python loop.  The floor here is deliberately loose (1.2x on a
    shape the bench pins at >=2x) -- wall-clock asserts on shared
    machines must not flake; the real perf claim lives in
    ``BENCH_incremental_analysis.json``."""
    system = _dyn_only_smoke_system()
    assert not tuple(system.application.st_messages())
    configs = _sweep_configs(
        system, 96, BusOptimisationOptions(ee_max_dyn_points=96)
    )

    python_ctx = AnalysisContext(system)
    t0 = time.perf_counter()
    python_results = python_ctx.analyse_batch(configs)
    python_s = time.perf_counter() - t0

    numpy_ctx = AnalysisContext(system, AnalysisOptions(backend="numpy"))
    t0 = time.perf_counter()
    numpy_results = numpy_ctx.analyse_batch(configs)
    numpy_s = time.perf_counter() - t0

    assert _result_docs(numpy_results) == _result_docs(python_results)
    assert numpy_s < 10.0
    assert python_s / numpy_s >= 1.2, (
        f"array backend smoke ratio {python_s / numpy_s:.2f}x "
        f"(python {python_s:.3f}s vs numpy {numpy_s:.3f}s)"
    )


@requires_native
@pytest.mark.native
@pytest.mark.perf_smoke
def test_native_backend_smoke_identical_and_not_slower():
    """<10s tier-1 smoke of the compiled sweep: bit identity on the
    same 96-point DYN-only sweep, same deliberately loose speed floor
    as the numpy smoke (the real claims -- >=2x over warm Python on
    ST-heavy sweeps, >= numpy on pure-DYN -- live in
    ``BENCH_incremental_analysis.json``)."""
    system = _dyn_only_smoke_system()
    configs = _sweep_configs(
        system, 96, BusOptimisationOptions(ee_max_dyn_points=96)
    )

    python_ctx = AnalysisContext(system)
    t0 = time.perf_counter()
    python_results = python_ctx.analyse_batch(configs)
    python_s = time.perf_counter() - t0

    native_ctx = AnalysisContext(system, AnalysisOptions(backend="native"))
    t0 = time.perf_counter()
    native_results = native_ctx.analyse_batch(configs)
    native_s = time.perf_counter() - t0

    assert _result_docs(native_results) == _result_docs(python_results)
    assert native_s < 10.0
    assert python_s / native_s >= 1.2, (
        f"native backend smoke ratio {python_s / native_s:.2f}x "
        f"(python {python_s:.3f}s vs native {native_s:.3f}s)"
    )
