"""Channel fault models, retransmission simulation, k-error bound.

Three layers under test:

1. the fault models themselves (:mod:`repro.flexray.faults`):
   validation, window normalisation, deterministic resolution;
2. the fault-injecting simulator: zero-fault identity (a rate-0 plan is
   byte-identical to a clean run -- property-tested over configuration
   shapes), retransmission mechanics for ST and DYN frames;
3. the k-error analysis bound
   (:attr:`~repro.analysis.holistic.AnalysisOptions.fault_hypothesis`):
   validation, ``k=0`` identity, and the fuzz referee -- for every
   faulty run the bound at k = observed retransmissions must cover
   every simulated response time, with an explicit divergence counter
   asserted to be 0.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import analyse_system
from repro.analysis.holistic import AnalysisOptions
from repro.errors import ConfigurationError, ModelError
from repro.flexray.events import EventKind
from repro.flexray.faults import (
    NO_FAULTS,
    BlackoutFaults,
    FaultPlan,
    GilbertElliottFaults,
    IidFaults,
    resolve_faults,
)
from repro.flexray.simulator import SimulationOptions, simulate

from tests.util import (
    FIG4_FRAME_IDS,
    basic_config,
    bound_scenario_systems,
    fig3_system,
    fig4_system,
    fuzz_faults,
)


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
class TestFaultModels:
    def test_rate_validation(self):
        with pytest.raises(ModelError, match="probability"):
            FaultPlan(rate=1.5)
        with pytest.raises(ModelError, match="probability"):
            FaultPlan(burst_rate=-0.1)
        with pytest.raises(ModelError, match="probability"):
            IidFaults(rate=2.0)
        with pytest.raises(ModelError, match="good_to_bad"):
            GilbertElliottFaults(good_to_bad=0.0, bad_to_good=0.5)

    def test_window_validation_and_merge(self):
        with pytest.raises(ModelError, match="start < end"):
            FaultPlan(blackouts=((5, 5),))
        plan = FaultPlan(blackouts=((30, 40), (0, 10), (8, 20)))
        assert plan.blackouts == ((0, 20), (30, 40))
        assert plan.rate_at(5) == 1.0
        assert plan.rate_at(20) == 0.0
        assert plan.rate_at(35) == 1.0

    def test_active_flag(self):
        assert not NO_FAULTS.active
        assert not FaultPlan(burst_rate=0.5).active  # no windows
        assert not FaultPlan(burst_windows=((0, 5),)).active  # rate 0
        assert FaultPlan(rate=0.01).active
        assert FaultPlan(burst_rate=0.5, burst_windows=((0, 5),)).active
        assert FaultPlan(blackouts=((0, 5),)).active

    def test_corrupts_is_deterministic_and_rate_driven(self):
        plan = FaultPlan(seed=7, rate=0.5)
        draws = [plan.corrupts("m1", i, 0, 0) for i in range(200)]
        assert draws == [plan.corrupts("m1", i, 0, 0) for i in range(200)]
        # Both outcomes occur, in roughly even proportion.
        assert 40 < sum(draws) < 160
        # Blackouts corrupt everything; rate 0 corrupts nothing.
        assert FaultPlan(blackouts=((0, 10),)).corrupts("m1", 0, 0, 5)
        assert not NO_FAULTS.corrupts("m1", 0, 0, 5)

    def test_gilbert_elliott_resolution_is_deterministic(self):
        model = GilbertElliottFaults(
            good_to_bad=0.3, bad_to_good=0.4, bad_rate=0.9, seed=11
        )
        plan = model.resolve(max_time=10_000, cycle_length=100)
        assert plan == model.resolve(max_time=10_000, cycle_length=100)
        assert plan.burst_rate == 0.9
        assert plan.rate == 0.0
        assert plan.burst_windows  # chain visits the bad state
        for start, end in plan.burst_windows:
            assert 0 <= start < end <= 10_100
            assert start % 100 == 0 and end % 100 == 0
        with pytest.raises(ModelError, match="cycle_length"):
            model.resolve(max_time=100, cycle_length=0)

    def test_resolve_faults_dispatch(self):
        assert resolve_faults(None, 100, 10) is NO_FAULTS
        plan = FaultPlan(rate=0.2)
        assert resolve_faults(plan, 100, 10) is plan
        resolved = resolve_faults(BlackoutFaults(((5, 9),)), 100, 10)
        assert resolved.blackouts == ((5, 9),)
        with pytest.raises(ModelError, match="FaultModel"):
            resolve_faults(0.5, 100, 10)


# ----------------------------------------------------------------------
# zero-fault identity (satellite: property-tested)
# ----------------------------------------------------------------------
def _run(system, config, faults):
    return simulate(system, config, SimulationOptions(faults=faults))


def _assert_identical(a, b):
    assert a.trace == b.trace
    assert a.response_times == b.response_times
    assert a.observed_wcrt == b.observed_wcrt
    assert a.deadline_misses == b.deadline_misses
    assert a.unfinished == b.unfinished
    assert a.horizon == b.horizon
    assert dict(b.retransmissions) == {}


class TestZeroFaultIdentity:
    @given(
        minislots=st.integers(min_value=13, max_value=40),
        slot=st.integers(min_value=8, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_rate_zero_is_byte_identical_dyn(self, minislots, slot, seed):
        system = fig4_system()
        config = basic_config(
            gd_static_slot=slot,
            n_minislots=minislots,
            frame_ids=FIG4_FRAME_IDS,
        )
        base = _run(system, config, None)
        _assert_identical(base, _run(system, config, IidFaults(0.0, seed=seed)))
        _assert_identical(base, _run(system, config, FaultPlan(seed=seed)))

    @given(slot=st.integers(min_value=8, max_value=14))
    @settings(max_examples=10, deadline=None)
    def test_rate_zero_is_byte_identical_static(self, slot):
        system = fig3_system()
        config = basic_config(gd_static_slot=slot)
        base = _run(system, config, None)
        _assert_identical(base, _run(system, config, IidFaults(0.0)))


# ----------------------------------------------------------------------
# retransmission mechanics
# ----------------------------------------------------------------------
class TestRetransmission:
    def test_dyn_frame_retransmits_after_blackout(self):
        system = fig4_system()
        config = basic_config(frame_ids=FIG4_FRAME_IDS)
        clean = _run(system, config, None)
        faulty = _run(
            system, config, BlackoutFaults(((0, 2 * config.gd_cycle),))
        )
        assert faulty.total_retransmissions > 0
        corrupted = [
            e for e in faulty.trace if e.kind is EventKind.FRAME_CORRUPTED
        ]
        assert corrupted
        # Retransmission costs bus time: no message finishes earlier,
        # and at least one finishes strictly later.
        later = 0
        for name in ("m1", "m2", "m3"):
            assert faulty.observed_wcrt[name] >= clean.observed_wcrt[name]
            later += faulty.observed_wcrt[name] > clean.observed_wcrt[name]
        assert later > 0
        # The retry attempt is visible in the trace detail.
        assert any(
            "retry" in e.detail
            for e in faulty.trace
            if e.kind is EventKind.DYN_TX_START
        )

    def test_st_frame_retries_next_cycle(self):
        system = fig3_system()
        config = basic_config()
        clean = _run(system, config, None)
        faulty = _run(system, config, BlackoutFaults(((0, config.gd_cycle),)))
        assert faulty.total_retransmissions > 0
        # Every ST frame of cycle 0 was corrupted and went out one full
        # cycle later on its next static slot.
        assert any(
            "retry" in e.detail
            for e in faulty.trace
            if e.kind is EventKind.ST_FRAME
        )
        assert faulty.retransmissions
        for key, count in faulty.retransmissions.items():
            # The blackout covers exactly cycle 0, so each corrupted
            # frame is retried once, one cycle later.
            assert count == 1
            assert (
                faulty.response_times[key]
                == clean.response_times[key] + config.gd_cycle
            )

    def test_retransmission_counts_are_per_instance(self):
        system = fig4_system()
        config = basic_config(frame_ids=FIG4_FRAME_IDS)
        result = _run(
            system, config, BlackoutFaults(((0, config.gd_cycle),))
        )
        for (name, instance), count in result.retransmissions.items():
            assert count >= 1
            assert instance >= 0
            assert name in ("m1", "m2", "m3")
        assert result.total_retransmissions == sum(
            result.retransmissions.values()
        )


# ----------------------------------------------------------------------
# k-error analysis bound
# ----------------------------------------------------------------------
class TestFaultHypothesis:
    def test_validation(self):
        system = fig3_system()
        config = basic_config()
        for bad in (True, -1, 1.5, "2"):
            with pytest.raises(ConfigurationError, match="fault_hypothesis"):
                analyse_system(
                    system, config, AnalysisOptions(fault_hypothesis=bad)
                )

    def test_k0_is_identical_to_clean_analysis(self):
        for system, config in bound_scenario_systems():
            clean = analyse_system(system, config)
            k0 = analyse_system(
                system, config, AnalysisOptions(fault_hypothesis=0)
            )
            assert k0.wcrt == clean.wcrt
            assert k0.schedulable == clean.schedulable

    def test_bound_grows_monotonically_in_k(self):
        system = fig4_system()
        config = basic_config(frame_ids=FIG4_FRAME_IDS)
        previous = None
        for k in range(4):
            bound = analyse_system(
                system, config, AnalysisOptions(fault_hypothesis=k)
            )
            if previous is not None:
                for name, value in previous.items():
                    assert bound.wcrt[name] >= value
            previous = bound.wcrt

    def test_fuzz_bound_covers_every_faulty_run(self):
        """The soundness referee: 0 violations over the whole fuzz grid."""
        violations = 0
        checked = 0
        for system, config in bound_scenario_systems():
            for faults in fuzz_faults(config):
                result = simulate(
                    system,
                    config,
                    SimulationOptions(record_trace=False, faults=faults),
                )
                k = result.total_retransmissions
                bound = analyse_system(
                    system, config, AnalysisOptions(fault_hypothesis=k)
                )
                for (name, _), r in result.response_times.items():
                    checked += 1
                    if r > bound.wcrt[name]:
                        violations += 1
        assert checked > 100
        assert violations == 0

    def test_numpy_backend_computes_faults_natively(self, caplog):
        """fault_hypothesis no longer forces the python path on numpy.

        The array kernels charge the static ``k * gd_cycle`` slips and
        the constant per-error DYN cycles inside the lowered plans, so
        a fault batch runs vectorized (no fallback log) and stays
        bit-identical to the python oracle.
        """
        pytest.importorskip("numpy")
        import logging

        system = fig4_system()
        config = basic_config(frame_ids=FIG4_FRAME_IDS)
        for k in (0, 1, 2):
            options = AnalysisOptions(backend="numpy", fault_hypothesis=k)
            with caplog.at_level(
                logging.INFO, logger="repro.analysis.context"
            ):
                from repro.analysis.context import AnalysisContext

                context = AnalysisContext(system, options)
                via_numpy = context.analyse_batch([config])[0]
            python = analyse_system(
                system, config, AnalysisOptions(fault_hypothesis=k)
            )
            assert via_numpy.wcrt == python.wcrt
            assert via_numpy.schedulable == python.schedulable
            assert not any(
                "falling back" in record.message for record in caplog.records
            )

