"""Packaging metadata (kept in ``setup.py`` -- no pyproject in this repo).

The library itself is pure Python; the vectorized analysis backend
(``AnalysisOptions.backend="numpy"``) needs numpy, which is deliberately
an *optional* extra: ``pip install repro[numpy]``.  Without it the
package imports and analyses normally on the Python backend, and
selecting the numpy backend raises a ``RuntimeError`` naming the extra
(see :func:`repro.analysis.backend.require_numpy`).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Bus Access Optimisation for FlexRay-based "
        "Distributed Embedded Systems' (DATE 2007): holistic timing "
        "analysis and bus configuration optimisers"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],
    entry_points={
        # `repro ...` == `python -m repro ...`; both go through
        # repro.cli:main (tested by tests/test_cli.py).
        "console_scripts": ["repro=repro.cli:main"],
    },
    extras_require={
        # The batched array backend (AnalysisOptions.backend="numpy").
        "numpy": ["numpy>=1.22"],
    },
)
