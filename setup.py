"""Packaging metadata (kept in ``setup.py`` -- no pyproject in this repo).

The library itself is pure Python; the accelerated analysis backends
are deliberately *optional* extras:

* ``pip install repro[numpy]`` -- the vectorized array backend
  (``AnalysisOptions.backend="numpy"``);
* ``pip install repro[native]`` -- the compiled fix-point kernels
  (``AnalysisOptions.backend="native"``), built from
  ``src/repro/_native/nativemodule.c`` when a C toolchain is present.

The extension is marked ``optional``: on a machine without a C
compiler the build degrades gracefully -- the wheel installs without
``repro._native``, the package imports and analyses normally on the
Python backend, native tests skip, and selecting an unavailable backend
raises an actionable ``RuntimeError`` naming its extra (see
:mod:`repro.analysis.backend`).
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Bus Access Optimisation for FlexRay-based "
        "Distributed Embedded Systems' (DATE 2007): holistic timing "
        "analysis and bus configuration optimisers"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],
    entry_points={
        # `repro ...` == `python -m repro ...`; both go through
        # repro.cli:main (tested by tests/test_cli.py).
        "console_scripts": ["repro=repro.cli:main"],
    },
    ext_modules=[
        Extension(
            "repro._native",
            sources=["src/repro/_native/nativemodule.c"],
            optional=True,  # no toolchain -> no extension, never a failure
        ),
    ],
    extras_require={
        # The batched array backend (AnalysisOptions.backend="numpy").
        "numpy": ["numpy>=1.22"],
        # The compiled kernel backend (AnalysisOptions.backend="native");
        # its dispatch shim stages plans and result buffers via numpy.
        "native": ["numpy>=1.22"],
    },
)
