"""Shim for legacy (non-PEP-517) editable installs on older setuptools."""

from setuptools import setup

setup()
