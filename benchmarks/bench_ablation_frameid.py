"""Ablation: criticality-driven FrameID assignment (Fig. 5, line 1).

The BBC guidelines say DYN messages should receive *unique* FrameIDs
ordered by criticality CP_m = D_m - LP_m (Eq. (4)).  This ablation
replaces that policy with (a) an arbitrary name-ordered assignment and
(b) the deliberately inverted ordering, and measures the cost function
across a small suite under otherwise identical BBC structures.

Finding (recorded in EXPERIMENTS.md): under this re-derived analysis
the ordering policy is a second-order effect -- every message inherits
its graph deadline, so CP_m differences are small and the Eq. (5) sum
is dominated by CPU-side terms.  The pinned property is therefore that
the criticality ordering is never *significantly* worse than any
alternative (within 5 %), while the BBC keeps its unique-FrameID rule
(whose value shows directly in the Fig. 4 bench: shared FrameIDs cost a
whole extra bus cycle).
"""

from repro.analysis import analyse_system
from repro.core import assign_frame_ids, basic_configuration
from repro.core.frameid import message_criticalities
from repro.core.search import BusOptimisationOptions, dyn_segment_bounds
from repro.synth import paper_suite

from benchmarks._report import env_int, report


def frame_id_policies(system):
    """criticality / arbitrary / inverted FrameID assignments."""
    by_criticality = assign_frame_ids(system)
    names = sorted(by_criticality)
    arbitrary = {name: fid for fid, name in enumerate(names, start=1)}
    crit = message_criticalities(system)
    inverted_order = sorted(crit, key=lambda n: (-crit[n], n))
    inverted = {name: fid for fid, name in enumerate(inverted_order, start=1)}
    return {
        "criticality (Eq. 4)": by_criticality,
        "arbitrary (by name)": arbitrary,
        "inverted criticality": inverted,
    }


def evaluate(system, frame_ids):
    options = BusOptimisationOptions()
    st_nodes = system.st_sender_nodes()
    from repro.core.search import min_static_slot

    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    n = (lo + hi) // 2 if hi >= lo else max(lo, 1)
    config = basic_configuration(system, n, options).with_frame_ids(frame_ids)
    return analyse_system(system, config).cost_value


def run_ablation():
    from repro.synth import GeneratorConfig

    count = env_int("REPRO_ABLATION_COUNT", 4)
    # Moderate bus load: on deeply overloaded systems the f1 sum is
    # dominated by CPU-side misses and the FrameID ordering is noise.
    base = GeneratorConfig(bus_utilisation=(0.10, 0.35))
    systems = paper_suite(3, count=count, base=base, seed=991)
    table = {}
    for i, system in enumerate(systems):
        for policy, frame_ids in frame_id_policies(system).items():
            table.setdefault(policy, []).append(evaluate(system, frame_ids))
    return table


def test_frameid_assignment_ablation(benchmark):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = ["ABLATION: FrameID assignment policy vs cost function (Eq. 5)"]
    means = {}
    for policy, costs in table.items():
        finite = [c for c in costs if c != float("inf")]
        mean = sum(finite) / len(finite) if finite else float("inf")
        means[policy] = mean
        pretty = ", ".join(f"{c:.0f}" for c in costs)
        lines.append(f"  {policy:<22} mean={mean:>12.0f}  costs=[{pretty}]")
    lines.append(
        "finding: ordering policy is second-order (<5%) for these workloads; "
        "unique FrameIDs (vs sharing) is the first-order lever (see FIG4)"
    )
    report("ablation_frameid", lines)

    best_alternative = min(
        means["arbitrary (by name)"], means["inverted criticality"]
    )
    assert means["criticality (Eq. 4)"] <= 1.05 * best_alternative
