"""FAULT SWEEP -- miss rate and WCRT inflation under channel faults.

For one synthetic system the sweep first finds a baseline bus
configuration the paper's way -- a (system x {bbc, obc-cf}) *campaign*
(:mod:`repro.core.campaign`), keeping the cheapest schedulable result --
then re-simulates that configuration under an i.i.d. fault grid
(:func:`repro.synth.suite.fault_grid`): every corrupted frame is
detected at slot end and retransmitted, so errors cost bus time instead
of data loss.

Per error rate the sweep records

* the deadline-miss rate over all simulated activity instances,
* the observed retransmission counts,
* the WCRT inflation of the faulty run against the clean simulation, and
* the *k-error analysis bound* check: analysing with
  ``fault_hypothesis = k`` (k = the run's observed retransmission count)
  must upper-bound every simulated response time of that run.  The
  ``bound_violations`` column is asserted to be 0 -- this is the
  fuzz-style soundness referee of the certified k-error bound.

Scale knobs: ``REPRO_BENCH_FULL=1`` sweeps more rates and seeds;
``REPRO_FAULT_SEEDS=<n>`` overrides the seeds per rate.  Numbers land in
``benchmarks/results/BENCH_fault_sweep.json``.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.bench_fault_sweep
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis import analyse_system
from repro.analysis.holistic import AnalysisOptions
from repro.core.campaign import campaign_matrix, run_campaign
from repro.flexray.simulator import SimulationOptions, simulate
from repro.synth.suite import fault_grid, paper_system

from benchmarks._report import env_int, full_scale, report, report_json

QUICK_RATES = (0.0, 0.02, 0.05, 0.1)
FULL_RATES = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3)

#: Baseline-configuration strategies, raced as one campaign.
BASELINE_STRATEGIES = ("bbc", "obc-cf")


def baseline_config(system, checkpoint_dir: Optional[str] = None):
    """The sweep's bus configuration: best schedulable campaign result.

    Runs the {bbc, obc-cf} strategy axis over *system* through
    :func:`repro.core.campaign.run_campaign` (checkpointable, so a
    resumed sweep skips the optimisers) and returns the cheapest
    schedulable configuration, falling back to the cheapest feasible
    one when nothing is schedulable.
    """
    systems = {"sweep": system}
    jobs = campaign_matrix(systems, list(BASELINE_STRATEGIES))
    report_ = run_campaign(systems, jobs, checkpoint_dir=checkpoint_dir)
    best = None
    for name in BASELINE_STRATEGIES:
        result = report_.result_for("sweep", name)
        if result.config is None:
            continue
        key = (not result.schedulable, result.cost)
        if best is None or key < best[0]:
            best = (key, result.config)
    if best is None:
        raise RuntimeError("no baseline strategy produced a configuration")
    return best[1]


def fault_sweep_rows(
    system,
    config,
    rates: Iterable[float],
    seeds: Iterable[int],
) -> List[Dict]:
    """One row per error rate: miss rate, retransmissions, inflation,
    and the k-error bound check (``bound_violations`` must stay 0).

    This is the importable core -- the tier-1 smoke test drives it with
    a small system and two rates; the benchmark entry point wraps it
    with the campaign baseline and the JSON report.
    """
    seeds = tuple(seeds)
    clean = simulate(system, config, SimulationOptions(record_trace=False))
    # The synthetic suites are deliberately hard: even the best campaign
    # configuration may miss deadlines on a clean channel.  The curves
    # therefore report the *excess* misses attributable to faults on
    # top of the structural clean-channel misses.
    clean_misses = len(clean.deadline_misses)
    rows = []
    for rate in rates:
        misses = []
        retrans = []
        inflation = 1.0
        violations = 0
        instances = 0
        for plan in fault_grid([rate], seeds):
            result = simulate(
                system,
                config,
                SimulationOptions(record_trace=False, faults=plan),
            )
            k = result.total_retransmissions
            bound = analyse_system(
                system, config, AnalysisOptions(fault_hypothesis=k)
            )
            for (name, _), r in result.response_times.items():
                if r > bound.wcrt[name]:
                    violations += 1
            for name, r in result.observed_wcrt.items():
                base = clean.observed_wcrt.get(name, 0)
                if base > 0:
                    ratio = r / base
                    if ratio > inflation:
                        inflation = ratio
            misses.append(len(result.deadline_misses))
            retrans.append(k)
            instances += len(result.response_times)
        rows.append(
            {
                "rate": rate,
                "seeds": len(seeds),
                "miss_rate": round(sum(misses) / max(1, instances), 5),
                "mean_misses": round(sum(misses) / len(seeds), 2),
                "mean_extra_misses": round(
                    sum(m - clean_misses for m in misses) / len(seeds), 2
                ),
                "mean_retransmissions": round(sum(retrans) / len(seeds), 2),
                "max_retransmissions": max(retrans),
                "max_wcrt_inflation": round(inflation, 4),
                "bound_violations": violations,
            }
        )
    return rows


def run_sweep(checkpoint_dir: Optional[str] = None):
    """The full benchmark body; returns (rows, config)."""
    full = full_scale()
    system = paper_system(4 if full else 3, 0)
    rates = FULL_RATES if full else QUICK_RATES
    n_seeds = env_int("REPRO_FAULT_SEEDS", 5 if full else 3)
    config = baseline_config(system, checkpoint_dir=checkpoint_dir)
    rows = fault_sweep_rows(system, config, rates, range(1, n_seeds + 1))
    return rows, config, system


def _lines(rows, config, system) -> List[str]:
    lines = [
        "FAULT SWEEP: retransmission cost of channel errors "
        f"on {system.describe()}",
        f"baseline: {config.describe()}",
        f"{'rate':>6} | {'miss rate':>9} | {'extra miss':>10} | "
        f"{'mean rtx':>8} | {'max rtx':>7} | {'max WCRT infl':>13} | "
        f"{'bound viol':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['rate']:>6.2f} | {row['miss_rate']:>9.4f} | "
            f"{row['mean_extra_misses']:>10.1f} | "
            f"{row['mean_retransmissions']:>8.1f} | "
            f"{row['max_retransmissions']:>7} | "
            f"{row['max_wcrt_inflation']:>13.3f} | "
            f"{row['bound_violations']:>10}"
        )
    lines.append(
        "expected shape: miss rate and inflation grow with the error rate; "
        "bound violations stay 0 (k-error bound is a certified upper bound)"
    )
    return lines


def test_fault_sweep(benchmark):
    rows, config, system = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    report("fault_sweep", _lines(rows, config, system))
    report_json("BENCH_fault_sweep", {"rows": rows})

    # Rate 0 is the clean channel: nothing retransmitted, nothing missed
    # beyond the clean run, inflation exactly 1.
    assert rows[0]["rate"] == 0.0
    assert rows[0]["max_retransmissions"] == 0
    assert rows[0]["max_wcrt_inflation"] == 1.0
    # The k-error analysis bound covers every faulty run.
    assert all(row["bound_violations"] == 0 for row in rows)
    # Faults cost bus time: some rate of the sweep actually retransmits.
    assert any(row["max_retransmissions"] > 0 for row in rows[1:])


def main() -> None:
    rows, config, system = run_sweep()
    report("fault_sweep", _lines(rows, config, system))
    report_json("BENCH_fault_sweep", {"rows": rows})


if __name__ == "__main__":
    main()
