"""CC -- the cruise-controller case study table (Section 7).

Paper: "Configuring the system using the BBC approach took less than 5
seconds but resulted in an unschedulable system.  Using the OBCCF
approach took 137 seconds, while the OBCEE required 29 minutes.  The
cost function obtained by OBCCF was 1.2% larger [than] OBCEE.  In both
cases the selected bus configuration resulted in a schedulable system."

Pinned shape: BBC cheapest but unschedulable; both OBC variants
schedulable; OBC/CF needs far fewer exact analyses than OBC/EE and its
cost is within a few percent.
"""

import time

from repro.casestudy import cruise_controller
from repro.core import SAOptions, optimise_bbc, optimise_obc, optimise_sa
from repro.core.search import BusOptimisationOptions

from benchmarks._report import full_scale, report


def bench_options() -> BusOptimisationOptions:
    if full_scale():
        return BusOptimisationOptions()
    # Default static-segment exploration (the case study needs the wider
    # slot search); only the EE length-sweep resolution is reduced.
    return BusOptimisationOptions(ee_max_dyn_points=256)


def run_case_study():
    system = cruise_controller()
    options = bench_options()
    rows = []
    for label, runner in (
        ("BBC", lambda: optimise_bbc(system, options)),
        ("OBC/CF", lambda: optimise_obc(system, options, "curvefit")),
        ("OBC/EE", lambda: optimise_obc(system, options, "exhaustive")),
        ("SA", lambda: optimise_sa(system, options, SAOptions(iterations=200))),
    ):
        t0 = time.perf_counter()
        result = runner()
        rows.append((label, result, time.perf_counter() - t0))
    return system, rows


def test_cruise_controller(benchmark):
    system, rows = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    lines = [
        "CC: cruise controller (54 tasks / 26 messages / 4 graphs / 5 nodes)",
        system.describe(),
        f"{'algorithm':<8} {'schedulable':<12} {'cost':>14} {'analyses':>9} {'time [s]':>9}",
    ]
    results = {}
    for label, result, elapsed in rows:
        results[label] = result
        lines.append(
            f"{label:<8} {str(result.schedulable):<12} {result.cost:>14.1f} "
            f"{result.evaluations:>9} {elapsed:>9.2f}"
        )
    cf, ee = results["OBC/CF"], results["OBC/EE"]
    if cf.schedulable and ee.schedulable and ee.cost != 0:
        gap = (cf.cost - ee.cost) / abs(ee.cost) * 100.0
        lines.append(f"OBC/CF cost gap vs OBC/EE: {gap:+.2f}% (paper: +1.2%)")
    lines.append(
        "paper shape: BBC fast but unschedulable; both OBC variants "
        "schedulable; CF needs far fewer analyses than EE"
    )
    report("cruise_controller", lines)

    # Paper-pinned outcomes.
    assert not results["BBC"].schedulable, "BBC must fail on the case study"
    assert cf.schedulable, "OBC/CF must schedule the case study"
    assert ee.schedulable, "OBC/EE must schedule the case study"
    assert cf.evaluations * 3 < ee.evaluations
