"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and emits
its rows both to stdout and to ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capture and can be referenced from
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them under benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"\n===== {name} =====")
    print(text)
    return path


def report_json(name: str, payload) -> str:
    """Persist machine-readable benchmark numbers as results/<name>.json.

    Used for the ``BENCH_*.json`` perf-trajectory files: one JSON object
    per benchmark, stable keys, so numbers can be diffed across PRs.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n===== {name}.json =====")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return path


def env_int(name: str, default: int) -> int:
    """Integer environment override for experiment scaling."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def full_scale() -> bool:
    """True when REPRO_BENCH_FULL=1 requests paper-scale experiments."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"
