"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and emits
its rows both to stdout and to ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capture and can be referenced from
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them under benchmarks/results/."""
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"\n===== {name} =====")
    print(text)
    return path


def env_int(name: str, default: int) -> int:
    """Integer environment override for experiment scaling."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def full_scale() -> bool:
    """True when REPRO_BENCH_FULL=1 requests paper-scale experiments."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"
