"""Aggregator of the sharded Fig. 9 sweep.

Merges the per-shard JSON files written by ``benchmarks.fig9_shard``
into the paper-comparable Fig. 9 quality/runtime tables plus a
machine-readable ``BENCH_fig9_sharded.json``.  Refuses to mix shards of
different sweeps (suite parameters are embedded in every shard file)
and, unless ``--allow-partial`` is given, demands the complete shard
set.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.fig9_aggregate \
        [--in-dir benchmarks/results/fig9_shards] [--allow-partial]

or, for a sweep run through the distributed fabric
(``fig9_shard --fabric DIR``)::

    PYTHONPATH=src python -m benchmarks.fig9_aggregate --fabric DIR \
        [--allow-partial]

which merges the fabric's published checkpoints directly (suite
identity comes from the fabric manifest's ``meta``).
"""

from __future__ import annotations

import argparse
import glob
import json
import os

from repro.core.campaign import job_id_for
from repro.core.fabric import fabric_collect, load_fabric
from repro.synth.sharding import shard_plan

from benchmarks._report import report, report_json
from benchmarks.fig9_common import (
    ALGORITHMS,
    STRATEGY_NAMES,
    json_payload,
    quality_lines,
    result_cell,
    runtime_lines,
)
from benchmarks.fig9_shard import DEFAULT_OUT_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--in-dir", default=DEFAULT_OUT_DIR)
    parser.add_argument("--fabric", metavar="DIR", default=None,
                        help="aggregate a fabric-run sweep from DIR "
                             "instead of shard_*.json files")
    parser.add_argument("--allow-partial", action="store_true",
                        help="aggregate even when shards (or fabric "
                             "jobs) are missing")
    return parser


def load_shards(in_dir: str):
    paths = sorted(glob.glob(os.path.join(in_dir, "shard_*.json")))
    if not paths:
        raise SystemExit(f"no shard_*.json files under {in_dir!r}")
    shards = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            shards.append((path, json.load(fh)))
    return shards


def merge(shards, allow_partial: bool):
    suite = shards[0][1]["suite"]
    num_shards = shards[0][1]["num_shards"]
    seen = {}
    for path, payload in shards:
        if payload["suite"] != suite or payload["num_shards"] != num_shards:
            raise SystemExit(
                f"{path}: shard belongs to a different sweep "
                f"({payload['suite']} / {payload['num_shards']} shards, "
                f"expected {suite} / {num_shards})"
            )
        if payload["shard"] in seen:
            raise SystemExit(f"{path}: duplicate shard {payload['shard']}")
        seen[payload["shard"]] = payload
    missing = sorted(set(range(num_shards)) - set(seen))
    if missing and not allow_partial:
        raise SystemExit(
            f"missing shards {missing} of {num_shards}; rerun them or pass "
            "--allow-partial"
        )
    rows = [
        row
        for shard in sorted(seen)
        for row in seen[shard]["rows"]
    ]
    rows.sort(key=lambda r: (r["n_nodes"], r["index"]))
    failed_jobs = {
        f"shard {k}: {job_id}": detail
        for k in sorted(seen)
        for job_id, detail in seen[k].get("failed_jobs", {}).items()
    }
    meta = {
        "suite": suite,
        "num_shards": num_shards,
        "shards_present": sorted(seen),
        "shard_seconds": {
            str(k): seen[k]["elapsed_seconds"] for k in sorted(seen)
        },
        "failed_jobs": failed_jobs,
    }
    return rows, meta


def merge_fabric(root: str, allow_partial: bool):
    """Rows + meta straight from a fabric directory's checkpoints."""
    spec = load_fabric(root)
    suite = spec.meta.get("suite")
    if not suite:
        raise SystemExit(
            f"{root!r} carries no Fig. 9 suite identity in its manifest "
            f"meta; was it submitted by fig9_shard --fabric?"
        )
    merged = fabric_collect(root, require_complete=not allow_partial)
    plan = shard_plan(
        node_counts=suite["node_counts"],
        count=suite["count"],
        num_shards=1,
        seed=suite["seed"],
    )
    rows = []
    for entry in plan[0].entries:
        row = {"n_nodes": entry.n_nodes, "index": entry.index}
        for name in ALGORITHMS:
            job_id = job_id_for(entry.system_id, STRATEGY_NAMES[name])
            result = merged.results.get(job_id)
            row[name] = result_cell(result) if result is not None else None
        rows.append(row)
    rows.sort(key=lambda r: (r["n_nodes"], r["index"]))
    meta = {
        "suite": suite,
        "fabric": spec.fabric_id,
        "jobs_done": len(merged.results),
        "failed_jobs": {
            job_id: failure.describe()
            for job_id, failure in merged.failures.items()
        },
    }
    return rows, meta


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.fabric:
        rows, meta = merge_fabric(args.fabric, args.allow_partial)
    else:
        shards = load_shards(args.in_dir)
        rows, meta = merge(shards, args.allow_partial)
    suite = meta["suite"]
    subtitle = (
        f"{suite['count']} systems/class, nodes {suite['node_counts']}, "
        f"seed {suite['seed']}, "
        + (
            f"fabric {meta['fabric']}"
            if args.fabric
            else f"{len(meta['shards_present'])}/"
                 f"{meta['num_shards']} shards"
        )
    )
    report(
        "fig9_sharded_quality",
        quality_lines(
            rows,
            "FIG9 sharded (left): average % cost deviation vs SA -- "
            + subtitle,
        ),
    )
    report(
        "fig9_sharded_runtime",
        runtime_lines(
            rows,
            "FIG9 sharded (right): computation time [s] and exact analyses -- "
            + subtitle,
        ),
    )
    if meta["failed_jobs"]:
        print(f"{len(meta['failed_jobs'])} job(s) failed across shards:")
        for where, detail in meta["failed_jobs"].items():
            print(f"  [{where}] {detail}")
        print("failed cells are excluded from every aggregate above")
    payload = json_payload(rows)
    payload["sharding"] = meta
    report_json("BENCH_fig9_sharded", payload)


if __name__ == "__main__":
    main()
