"""FIG3 -- Optimisation of the ST segment (paper Fig. 3).

Two nodes; N1 sends m1 (4 MT), N2 sends m2 (3 MT) and m3 (2 MT), all in
the static segment.  Three configurations illustrate the three levers:

  a) two minimal slots               -> m3 waits for N2's slot next cycle,
  b) a second slot for N2            -> m3 rides slot 3 in the same cycle,
  c) two slots large enough to pack  -> m2+m3 share one frame.

The paper's schematic reports R(m3) = 16 / 12 / 10; the derivation of
those exact values is not recoverable from the figure, so this bench
pins the *mechanisms*: both optimisations must beat (a), and the
response times must match the analytic schedule exactly (deterministic
static segment).
"""

from repro.analysis import analyse_system
from repro.core.config import FlexRayConfig
from repro.flexray.simulator import simulate

from benchmarks._report import report
from tests.util import fig3_system

SCENARIOS = (
    ("a: 2 slots x 4 MT (minimal)", ("N1", "N2"), 4),
    ("b: 3 slots x 4 MT (extra slot for N2)", ("N1", "N2", "N2"), 4),
    ("c: 2 slots x 8 MT (frame packing)", ("N1", "N2"), 8),
)

PAPER_R3 = {"a": 16, "b": 12, "c": 10}


def run_scenarios():
    system = fig3_system()
    rows = []
    for label, slots, size in SCENARIOS:
        config = FlexRayConfig(
            static_slots=slots, gd_static_slot=size, n_minislots=0
        )
        analysed = analyse_system(system, config)
        simulated = simulate(system, config, table=analysed.table)
        rows.append((label, config, analysed, simulated))
    return rows


def test_fig3_static_segment(benchmark):
    rows = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)

    lines = [
        "FIG3: response time of m3 under three static-segment structures",
        f"{'scenario':<42} {'gdCycle':>8} {'R(m3) analysed':>15} {'R(m3) simulated':>16} {'paper':>6}",
    ]
    measured = {}
    for label, config, analysed, simulated in rows:
        key = label[0]
        measured[key] = analysed.wcrt["m3"]
        lines.append(
            f"{label:<42} {config.gd_cycle:>8} {analysed.wcrt['m3']:>15} "
            f"{simulated.observed_wcrt['m3']:>16} {PAPER_R3[key]:>6}"
        )
    lines.append(
        "paper shape: both optimisations (b: more slots, c: larger slots) "
        "beat the minimal configuration (a)"
    )
    report("fig3_static_segment", lines)

    # Mechanism assertions (the paper's qualitative claims).
    assert measured["b"] < measured["a"], "extra slot must speed up m3"
    assert measured["c"] < measured["a"], "frame packing must speed up m3"
    # Determinism: simulation equals analysis for static-only systems.
    for _, __, analysed, simulated in rows:
        assert simulated.observed_wcrt["m3"] == analysed.wcrt["m3"]
