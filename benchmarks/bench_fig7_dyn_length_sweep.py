"""FIG7 -- Influence of the DYN segment length on message response times.

The paper fixes the static segment of a 45-task system (10 ST + 20 DYN
messages) and sweeps the dynamic segment length: response times are
high for very short segments (lower-FrameID traffic fills many bus
cycles), fall to a minimum, then rise again as the bus cycle itself --
and hence every wasted cycle -- grows.  This regularity is the
foundation of the OBC/CF curve-fitting heuristic.

Here the same-shaped system comes from the Section 7 generator (45
tasks, 10 ST / 21 DYN messages); the bench records the response-time
curve of the highest-FrameID (most-interfered) dynamic messages and
asserts the U-shape: both ends of the sweep are worse than the interior
minimum.
"""

import time

from repro.analysis import AnalysisContext
from repro.core.bbc import basic_configuration
from repro.core.search import BusOptimisationOptions, dyn_segment_bounds, sweep_lengths
from repro.synth import GeneratorConfig, generate_system

from benchmarks._report import env_int, report, report_json

#: Generator seed chosen so the workload matches the paper's Fig. 7
#: system shape (45 tasks, 10 static / ~20 dynamic messages).
FIG7_SEED = 46


def build_system():
    return generate_system(
        GeneratorConfig(
            n_nodes=3, tasks_per_node=15, tt_graph_share=0.34, seed=FIG7_SEED
        )
    )


def run_sweep(points: int):
    system = build_system()
    options = BusOptimisationOptions()
    template = basic_configuration(system, n_minislots=1_000, options=options)
    lo, hi = dyn_segment_bounds(system, template.st_bus, options)
    lengths = sweep_lengths(lo, hi, points)

    # Track the dynamic messages with the largest FrameIDs: they see the
    # most lf/ms interference, i.e. the curves plotted in the paper.
    fids = sorted(template.frame_ids.items(), key=lambda kv: -kv[1])
    tracked = [name for name, _ in fids[:5]]

    curves = {name: [] for name in tracked}
    costs = []
    context = AnalysisContext(system)  # the warm path every optimiser uses
    t0 = time.perf_counter()
    for n in lengths:
        result = context.analyse(template.with_dyn_length(n))
        costs.append(result.cost_value)
        for name in tracked:
            curves[name].append(result.wcrt[name])
    elapsed = time.perf_counter() - t0
    return system, lengths, tracked, curves, costs, elapsed


def test_fig7_dyn_length_sweep(benchmark):
    points = env_int("REPRO_FIG7_POINTS", 20)
    system, lengths, tracked, curves, costs, elapsed = benchmark.pedantic(
        run_sweep, args=(points,), rounds=1, iterations=1
    )

    lines = [
        "FIG7: message response times vs DYN segment length (minislots)",
        system.describe(),
        "columns: DYN length | " + " | ".join(tracked),
    ]
    for i, n in enumerate(lengths):
        row = " | ".join(f"{curves[name][i]:>8}" for name in tracked)
        lines.append(f"{n:>8} | {row}")
    lines.append(
        "paper shape: U-curve -- short segments inflate BusCycles_m, "
        "long segments inflate gdCycle"
    )
    report("fig7_dyn_length_sweep", lines)
    finite = [c for c in costs if c != float("inf")]
    report_json(
        "BENCH_fig7_dyn_length_sweep",
        {
            "workload": {
                "seed": FIG7_SEED,
                "sweep_points": len(lengths),
                "dyn_range": [lengths[0], lengths[-1]],
            },
            "seconds": round(elapsed, 4),
            "analyses_per_second": round(len(lengths) / elapsed, 2),
            "best_cost": round(min(finite), 4) if finite else None,
            "best_length": (
                lengths[costs.index(min(finite))] if finite else None
            ),
        },
    )

    # The U-shape, on the aggregate cost and on the tracked messages:
    # both extremes must be worse than the best interior point.
    interior = costs[1:-1]
    assert min(interior) < costs[0], "short-end must be worse than interior"
    assert min(interior) < costs[-1], "long-end must be worse than interior"
    u_shaped = 0
    for name in tracked:
        values = curves[name]
        if min(values[1:-1]) < values[0] and min(values[1:-1]) < values[-1]:
            u_shaped += 1
    assert u_shaped >= 3, f"only {u_shaped}/5 tracked messages show the U-shape"
