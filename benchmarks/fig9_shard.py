"""Shard worker of the paper-scale Fig. 9 sweep.

Runs one shard of the 25-systems-per-class benchmark (see
:mod:`repro.synth.sharding`): regenerates exactly its own slice of the
suite and drives the four optimisers over it as one *campaign*
(:mod:`repro.core.campaign`) -- every job dispatches by registry name,
candidate evaluations batch through ``Evaluator.analyse_many`` (so
``--workers`` fans each system's sweeps out over a process pool), and
``--checkpoint`` persists every finished job's full result JSON so an
interrupted shard resumes where it stopped instead of re-optimising.
Afterwards one self-describing JSON file is written for the aggregator.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.fig9_shard \
        --shard 0 --num-shards 8 [--count 25] [--min-nodes 2] \
        [--max-nodes 7] [--seed 23] [--workers N] [--full] \
        [--checkpoint] [--out-dir benchmarks/results/fig9_shards]

Launch one process per shard (on one host or many); shards are fully
independent.  Afterwards merge with ``benchmarks.fig9_aggregate``.

Fabric mode (no hand-partitioning, crash-tolerant)::

    PYTHONPATH=src python -m benchmarks.fig9_shard --fabric DIR \
        [--count 25] [--max-nodes 7] [--seed 23] [--full] [--workers N]

submits the *whole* suite to a distributed fabric directory
(:mod:`repro.core.fabric`) and then works it.  Run the same command in
as many processes (or hosts sharing DIR) as you like -- submission is
content-addressed and idempotent, jobs are leased one at a time, and a
killed worker's jobs are taken over automatically.  Merge with
``benchmarks.fig9_aggregate --fabric DIR``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.campaign import CampaignOptions, campaign_matrix, job_id_for, run_campaign
from repro.core.fabric import fabric_status, fabric_submit, fabric_work
from repro.synth.sharding import shard_plan

from benchmarks._report import RESULTS_DIR
from benchmarks.fig9_common import (
    ALGORITHMS,
    STRATEGY_NAMES,
    bench_options,
    fig9_strategies,
    result_cell,
    sa_options,
)

DEFAULT_OUT_DIR = os.path.join(RESULTS_DIR, "fig9_shards")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shard", type=int, default=None,
                        help="shard index in [0, num-shards)")
    parser.add_argument("--num-shards", type=int, default=None)
    parser.add_argument("--fabric", metavar="DIR", default=None,
                        help="run as a fabric worker instead of a "
                             "hand-partitioned shard: submit the whole "
                             "suite to DIR (idempotent) and drain jobs "
                             "from it; replaces --shard/--num-shards")
    parser.add_argument("--count", type=int, default=25,
                        help="systems per node-count class (paper: 25)")
    parser.add_argument("--min-nodes", type=int, default=2)
    parser.add_argument("--max-nodes", type=int, default=7,
                        help="largest node-count class (paper: 7)")
    parser.add_argument("--seed", type=int, default=23,
                        help="suite seed (must match across shards)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel evaluation processes per optimiser run")
    parser.add_argument("--full", action="store_true",
                        help="paper-exact optimiser budgets (hours per shard)")
    parser.add_argument("--checkpoint", action="store_true",
                        help="persist per-job results under the out dir and "
                             "resume an interrupted shard from them")
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR)
    return parser


def suite_meta(args) -> dict:
    """The sweep identity embedded in shard files / fabric manifests."""
    return {
        "node_counts": list(range(args.min_nodes, args.max_nodes + 1)),
        "count": args.count,
        "seed": args.seed,
        "full": bool(args.full),
    }


def run_fabric_worker(args) -> None:
    """Submit the whole suite to a fabric directory, then work it."""
    plan = shard_plan(
        node_counts=range(args.min_nodes, args.max_nodes + 1),
        count=args.count,
        num_shards=1,
        seed=args.seed,
    )
    (spec,) = plan
    systems = {
        entry.system_id: system for entry, system in spec.systems()
    }
    fabric = fabric_submit(
        args.fabric,
        systems,
        fig9_strategies(sa_options(args.full)),
        bus=bench_options(args.full, parallel_workers=args.workers),
        options=CampaignOptions(max_retries=1),
        meta={"suite": suite_meta(args)},
    )
    print(
        f"[fabric {fabric.fabric_id}] {len(fabric.jobs)} jobs under "
        f"{args.fabric}; working (start more workers with the same "
        f"command, merge with fig9_aggregate --fabric)",
        flush=True,
    )
    report = fabric_work(args.fabric, log=print)
    status = fabric_status(args.fabric)
    print(
        f"[fabric {fabric.fabric_id}] this worker: "
        f"{len(report.completed)} completed, {len(report.failed)} failed, "
        f"{len(report.reaped)} takeovers -- {status.describe()}",
        flush=True,
    )


def run_shard(args) -> str:
    if args.shard is None or args.num_shards is None:
        raise SystemExit("--shard/--num-shards are required without --fabric")
    if not (0 <= args.shard < args.num_shards):
        raise SystemExit(
            f"--shard {args.shard} outside [0, {args.num_shards})"
        )
    plan = shard_plan(
        node_counts=range(args.min_nodes, args.max_nodes + 1),
        count=args.count,
        num_shards=args.num_shards,
        seed=args.seed,
    )
    spec = plan[args.shard]
    options = bench_options(args.full, parallel_workers=args.workers)
    sa_opts = sa_options(args.full)

    entries = []
    systems = {}
    for entry, system in spec.systems():
        entries.append(entry)
        systems[entry.system_id] = system
    jobs = campaign_matrix(systems, fig9_strategies(sa_opts), bus=options)

    checkpoint_dir = None
    if args.checkpoint:
        checkpoint_dir = os.path.join(
            args.out_dir, f"checkpoints_shard_{spec.shard}"
        )

    t0 = time.perf_counter()
    done = {"jobs": 0}

    def progress(job, result, resumed) -> None:
        done["jobs"] += 1
        state = "resumed" if resumed else "ran"
        print(
            f"[shard {spec.shard}/{spec.num_shards}] "
            f"{done['jobs']}/{len(jobs)} jobs ({state} {job.job_id}, "
            f"{time.perf_counter() - t0:.1f}s elapsed)",
            flush=True,
        )

    report = run_campaign(
        systems, jobs, checkpoint_dir=checkpoint_dir, progress=progress
    )

    rows = []
    for entry in entries:
        row = {"n_nodes": entry.n_nodes, "index": entry.index}
        for name in ALGORITHMS:
            job_id = job_id_for(entry.system_id, STRATEGY_NAMES[name])
            if job_id in report.failures:
                # A failed job costs its cell, never the shard: the
                # aggregator sees the null and reports the job id.
                row[name] = None
                continue
            row[name] = result_cell(
                report.result_for(entry.system_id, STRATEGY_NAMES[name])
            )
        rows.append(row)

    for failure in report.failures.values():
        print(f"[shard {spec.shard}] FAILED {failure.describe()}", flush=True)

    payload = {
        "suite": suite_meta(args),
        "shard": spec.shard,
        "num_shards": spec.num_shards,
        "rows": rows,
        "failed_jobs": {
            job_id: failure.describe()
            for job_id, failure in report.failures.items()
        },
        "resumed_jobs": len(report.resumed),
        "elapsed_seconds": round(time.perf_counter() - t0, 2),
    }
    os.makedirs(args.out_dir, exist_ok=True)
    path = os.path.join(args.out_dir, f"shard_{spec.shard}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"[shard {spec.shard}] wrote {path}")
    return path


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.fabric:
        run_fabric_worker(args)
    else:
        run_shard(args)


if __name__ == "__main__":
    main()
