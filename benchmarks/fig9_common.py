"""Shared machinery of the Fig. 9 experiment (single-process and sharded).

One benchmark *row* is the outcome of running all four bus-access
optimisers (BBC, OBC/CF, OBC/EE, SA) over one generated system; the
in-process benchmark (``bench_fig9_optimisers.py``), the shard worker
(``fig9_shard.py``) and the aggregator (``fig9_aggregate.py``) all share
the row schema, the option presets and the table/JSON formatting defined
here, so a sharded paper-scale run and the quick pytest run produce
comparable artifacts.

Rows are plain JSON-serialisable dicts; unschedulable runs carry
``cost = Infinity`` (Python's ``json`` reads/writes it natively).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List

from repro.core import SAOptions, optimise_bbc, optimise_obc, optimise_sa
from repro.core.search import BusOptimisationOptions

ALGORITHMS = ("BBC", "OBC/CF", "OBC/EE", "SA")


def bench_options(
    full: bool = False, parallel_workers: int = None
) -> BusOptimisationOptions:
    """Optimiser preset: paper-exact when *full*, laptop-sized otherwise."""
    if full:
        return BusOptimisationOptions(parallel_workers=parallel_workers)
    return BusOptimisationOptions(
        max_dyn_points=32,
        ee_max_dyn_points=192,
        cf_candidates=128,
        max_extra_static_slots=1,
        max_slot_size_steps=2,
        parallel_workers=parallel_workers,
    )


def sa_options(full: bool = False) -> SAOptions:
    """SA baseline budget: several-hour-grade when *full*."""
    return SAOptions(iterations=3000 if full else 220, seed=7)


def run_system(
    system,
    options: BusOptimisationOptions,
    sa_opts: SAOptions,
) -> Dict[str, dict]:
    """One row body: all four optimisers on *system*, timed."""
    row: Dict[str, dict] = {}
    for name, runner in (
        ("BBC", lambda s: optimise_bbc(s, options)),
        ("OBC/CF", lambda s: optimise_obc(s, options, "curvefit")),
        ("OBC/EE", lambda s: optimise_obc(s, options, "exhaustive")),
        ("SA", lambda s: optimise_sa(s, options, sa_opts)),
    ):
        t0 = time.perf_counter()
        result = runner(system)
        row[name] = {
            "cost": result.cost,
            "schedulable": result.schedulable,
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "seconds": time.perf_counter() - t0,
        }
    return row


def deviation(entry: dict, algorithm: str):
    """% deviation of the algorithm's cost vs the SA baseline cost."""
    sa_cost = entry["SA"]["cost"]
    cost = entry[algorithm]["cost"]
    if math.isinf(sa_cost) or math.isinf(cost) or sa_cost == 0:
        return None
    return (cost - sa_cost) / abs(sa_cost) * 100.0


def mean(values: Iterable):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else float("nan")


def node_classes(rows: List[dict]) -> List[int]:
    return sorted({r["n_nodes"] for r in rows})


def quality_lines(rows: List[dict], title: str) -> List[str]:
    """The Fig. 9 left panel: % cost deviation vs SA + schedulable count."""
    lines = [
        title,
        f"{'nodes':>5} | " + " | ".join(f"{a:>20}" for a in ALGORITHMS),
    ]
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        cells = []
        for a in ALGORITHMS:
            dev = mean([deviation(r, a) for r in group])
            sched = sum(r[a]["schedulable"] for r in group)
            cells.append(f"{dev:>8.1f}%  {sched}/{len(group)} sched")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in cells))
    lines.append(
        "paper shape: BBC degrades with size; OBC/CF within ~0.5% of OBC/EE; "
        "both within ~5% of SA"
    )
    return lines


def runtime_lines(rows: List[dict], title: str) -> List[str]:
    """The Fig. 9 right panel: computation time and exact analyses."""
    lines = [
        title,
        f"{'nodes':>5} | "
        + " | ".join(f"{a + ' s / evals':>20}" for a in ALGORITHMS),
    ]
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        cells = []
        for a in ALGORITHMS:
            secs = mean([r[a]["seconds"] for r in group])
            evals = mean([r[a]["evaluations"] for r in group])
            cells.append(f"{secs:>9.2f} / {evals:>7.0f}")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in cells))
    lines.append(
        "paper shape: BBC almost free; OBC/CF orders of magnitude below OBC/EE"
    )
    return lines


def json_payload(rows: List[dict]) -> dict:
    """Machine-readable per-class aggregates for the BENCH_*.json trail."""
    classes = {}
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        per_alg = {}
        for a in ALGORITHMS:
            dev = mean([deviation(r, a) for r in group])
            per_alg[a] = {
                "mean_deviation_pct": None if math.isnan(dev) else round(dev, 3),
                "schedulable": sum(r[a]["schedulable"] for r in group),
                "mean_seconds": round(mean([r[a]["seconds"] for r in group]), 4),
                "mean_evaluations": round(
                    mean([r[a]["evaluations"] for r in group]), 1
                ),
            }
        classes[str(n)] = {"systems": len(group), "algorithms": per_alg}
    return {
        "rows": len(rows),
        "classes": classes,
        "total_seconds": round(
            sum(r[a]["seconds"] for r in rows for a in ALGORITHMS), 2
        ),
        "total_evaluations": sum(
            r[a]["evaluations"] for r in rows for a in ALGORITHMS
        ),
    }
