"""Shared machinery of the Fig. 9 experiment (single-process and sharded).

One benchmark *row* is the outcome of running all four bus-access
optimisers (BBC, OBC/CF, OBC/EE, SA) over one generated system; the
in-process benchmark (``bench_fig9_optimisers.py``), the shard worker
(``fig9_shard.py``) and the aggregator (``fig9_aggregate.py``) all share
the row schema, the option presets and the table/JSON formatting defined
here, so a sharded paper-scale run and the quick pytest run produce
comparable artifacts.

The optimisers are dispatched by registry name through the campaign
layer (:mod:`repro.core.campaign`): one system is a one-row campaign,
a shard is a many-row campaign with (optionally) a checkpoint directory
making interrupted paper-scale runs resumable.

Rows are plain JSON-serialisable dicts; unschedulable runs carry
``cost = Infinity`` (Python's ``json`` reads/writes it natively).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.core.campaign import campaign_matrix, run_campaign
from repro.core.sa import SAOptions
from repro.core.search import BusOptimisationOptions

#: Row keys (the paper's labels) -> registry strategy names.
ALGORITHMS = ("BBC", "OBC/CF", "OBC/EE", "SA")
STRATEGY_NAMES = {
    "BBC": "bbc",
    "OBC/CF": "obc-cf",
    "OBC/EE": "obc-ee",
    "SA": "sa",
}


def bench_options(
    full: bool = False, parallel_workers: int = None
) -> BusOptimisationOptions:
    """Optimiser preset: paper-exact when *full*, laptop-sized otherwise."""
    if full:
        return BusOptimisationOptions(parallel_workers=parallel_workers)
    return BusOptimisationOptions(
        max_dyn_points=32,
        ee_max_dyn_points=192,
        cf_candidates=128,
        max_extra_static_slots=1,
        max_slot_size_steps=2,
        parallel_workers=parallel_workers,
    )


def sa_options(full: bool = False) -> SAOptions:
    """SA baseline budget: several-hour-grade when *full*."""
    return SAOptions(iterations=3000 if full else 220, seed=7)


def fig9_strategies(sa_opts: SAOptions):
    """The Fig. 9 strategy axis of a campaign matrix."""
    return [
        STRATEGY_NAMES["BBC"],
        STRATEGY_NAMES["OBC/CF"],
        STRATEGY_NAMES["OBC/EE"],
        (STRATEGY_NAMES["SA"], sa_opts),
    ]


def result_cell(result) -> dict:
    """One algorithm's cell of a benchmark row."""
    return {
        "cost": result.cost,
        "schedulable": result.schedulable,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "seconds": result.elapsed_seconds,
    }


def run_system(
    system,
    options: BusOptimisationOptions,
    sa_opts: SAOptions,
    checkpoint_dir: Optional[str] = None,
    system_id: Optional[str] = None,
) -> Dict[str, dict]:
    """One row body: the four-optimiser campaign on *system*.

    Checkpointing requires an explicit ``system_id``: the id is the
    checkpoint-file stem, so a defaulted id shared by several systems
    would make their checkpoints collide.
    """
    if checkpoint_dir is not None and system_id is None:
        raise ValueError(
            "run_system: checkpoint_dir requires an explicit system_id "
            "(checkpoints are keyed by it)"
        )
    system_id = system_id or "system"
    systems = {system_id: system}
    jobs = campaign_matrix(systems, fig9_strategies(sa_opts), bus=options)
    report = run_campaign(systems, jobs, checkpoint_dir=checkpoint_dir)
    return {
        name: result_cell(report.result_for(system_id, STRATEGY_NAMES[name]))
        for name in ALGORITHMS
    }


def deviation(entry: dict, algorithm: str):
    """% deviation of the algorithm's cost vs the SA baseline cost.

    ``None`` cells (jobs the campaign recorded as failed) contribute no
    deviation, like unschedulable runs.
    """
    if entry["SA"] is None or entry[algorithm] is None:
        return None
    sa_cost = entry["SA"]["cost"]
    cost = entry[algorithm]["cost"]
    if math.isinf(sa_cost) or math.isinf(cost) or sa_cost == 0:
        return None
    return (cost - sa_cost) / abs(sa_cost) * 100.0


def cells(group: List[dict], algorithm: str) -> List[dict]:
    """The algorithm's non-failed cells of a row group."""
    return [r[algorithm] for r in group if r[algorithm] is not None]


def mean(values: Iterable):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else float("nan")


def node_classes(rows: List[dict]) -> List[int]:
    return sorted({r["n_nodes"] for r in rows})


def quality_lines(rows: List[dict], title: str) -> List[str]:
    """The Fig. 9 left panel: % cost deviation vs SA + schedulable count."""
    lines = [
        title,
        f"{'nodes':>5} | " + " | ".join(f"{a:>20}" for a in ALGORITHMS),
    ]
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        row_cells = []
        for a in ALGORITHMS:
            dev = mean([deviation(r, a) for r in group])
            sched = sum(c["schedulable"] for c in cells(group, a))
            row_cells.append(f"{dev:>8.1f}%  {sched}/{len(group)} sched")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in row_cells))
    lines.append(
        "paper shape: BBC degrades with size; OBC/CF within ~0.5% of OBC/EE; "
        "both within ~5% of SA"
    )
    return lines


def runtime_lines(rows: List[dict], title: str) -> List[str]:
    """The Fig. 9 right panel: computation time and exact analyses."""
    lines = [
        title,
        f"{'nodes':>5} | "
        + " | ".join(f"{a + ' s / evals':>20}" for a in ALGORITHMS),
    ]
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        row_cells = []
        for a in ALGORITHMS:
            secs = mean([c["seconds"] for c in cells(group, a)])
            evals = mean([c["evaluations"] for c in cells(group, a)])
            row_cells.append(f"{secs:>9.2f} / {evals:>7.0f}")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in row_cells))
    lines.append(
        "paper shape: BBC almost free; OBC/CF orders of magnitude below OBC/EE"
    )
    return lines


def json_payload(rows: List[dict]) -> dict:
    """Machine-readable per-class aggregates for the BENCH_*.json trail."""
    classes = {}
    for n in node_classes(rows):
        group = [r for r in rows if r["n_nodes"] == n]
        per_alg = {}
        for a in ALGORITHMS:
            dev = mean([deviation(r, a) for r in group])
            alg_cells = cells(group, a)
            secs = mean([c["seconds"] for c in alg_cells])
            evals = mean([c["evaluations"] for c in alg_cells])
            per_alg[a] = {
                "mean_deviation_pct": None if math.isnan(dev) else round(dev, 3),
                "schedulable": sum(c["schedulable"] for c in alg_cells),
                "mean_seconds": None if math.isnan(secs) else round(secs, 4),
                "mean_evaluations": (
                    None if math.isnan(evals) else round(evals, 1)
                ),
            }
        classes[str(n)] = {"systems": len(group), "algorithms": per_alg}
    all_cells = [
        r[a] for r in rows for a in ALGORITHMS if r[a] is not None
    ]
    return {
        "rows": len(rows),
        "classes": classes,
        "total_seconds": round(sum(c["seconds"] for c in all_cells), 2),
        "total_evaluations": sum(c["evaluations"] for c in all_cells),
    }
