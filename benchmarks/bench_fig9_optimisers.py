"""FIG9 -- Evaluation of the bus optimisation algorithms (paper Fig. 9).

For each system-size class the paper reports (left panel) the average
percentage deviation of the cost function obtained by BBC / OBC-CF /
OBC-EE relative to the near-optimal SA baseline, and (right panel) the
computation time of each algorithm.  Expected shape:

* BBC runs in almost zero time but stops finding schedulable
  configurations as systems grow (>3 nodes in the paper);
* OBC/CF and OBC/EE stay within a few percent of SA;
* OBC/CF is within <1 % of OBC/EE at a fraction (orders of magnitude
  fewer analyses) of its cost.

Scaled down by default (2 systems per class, classes 2-5 nodes, budgeted
SA); set REPRO_BENCH_FULL=1 / REPRO_FIG9_COUNT / REPRO_FIG9_MAXNODES for
paper-scale runs (the paper used 25 systems per class on 2-7 nodes and
several-hour SA runs).
"""

import math
import time

from repro.core import SAOptions, optimise_bbc, optimise_obc, optimise_sa
from repro.core.search import BusOptimisationOptions
from repro.synth import paper_suite

from benchmarks._report import env_int, full_scale, report

ALGORITHMS = ("BBC", "OBC/CF", "OBC/EE", "SA")

_cache = {}


def bench_options() -> BusOptimisationOptions:
    if full_scale():
        return BusOptimisationOptions()
    return BusOptimisationOptions(
        max_dyn_points=32,
        ee_max_dyn_points=192,
        cf_candidates=128,
        max_extra_static_slots=1,
        max_slot_size_steps=2,
    )


def sa_options() -> SAOptions:
    iterations = 3000 if full_scale() else 220
    return SAOptions(iterations=iterations, seed=7)


def run_suite():
    """Run all four optimisers over every suite; cached across tests."""
    if "rows" in _cache:
        return _cache["rows"]
    count = env_int("REPRO_FIG9_COUNT", 25 if full_scale() else 3)
    max_nodes = env_int("REPRO_FIG9_MAXNODES", 7 if full_scale() else 5)
    seed = env_int("REPRO_FIG9_SEED", 23)
    options = bench_options()
    rows = []
    for n_nodes in range(2, max_nodes + 1):
        suite = paper_suite(n_nodes, count=count, seed=seed)
        for idx, system in enumerate(suite):
            entry = {"n_nodes": n_nodes, "index": idx}
            for name, runner in (
                ("BBC", lambda s: optimise_bbc(s, options)),
                ("OBC/CF", lambda s: optimise_obc(s, options, "curvefit")),
                ("OBC/EE", lambda s: optimise_obc(s, options, "exhaustive")),
                ("SA", lambda s: optimise_sa(s, options, sa_options())),
            ):
                t0 = time.perf_counter()
                result = runner(system)
                entry[name] = {
                    "cost": result.cost,
                    "schedulable": result.schedulable,
                    "evaluations": result.evaluations,
                    "seconds": time.perf_counter() - t0,
                }
            rows.append(entry)
    _cache["rows"] = rows
    return rows


def _deviation(entry, algorithm):
    """% deviation of the algorithm's cost vs the SA baseline cost."""
    sa_cost = entry["SA"]["cost"]
    cost = entry[algorithm]["cost"]
    if math.isinf(sa_cost) or math.isinf(cost) or sa_cost == 0:
        return None
    return (cost - sa_cost) / abs(sa_cost) * 100.0


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else float("nan")


def test_fig9_quality(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    node_counts = sorted({r["n_nodes"] for r in rows})

    lines = [
        "FIG9 (left): average % cost deviation vs SA, and schedulable fraction",
        f"{'nodes':>5} | " + " | ".join(f"{a:>20}" for a in ALGORITHMS),
    ]
    for n in node_counts:
        group = [r for r in rows if r["n_nodes"] == n]
        cells = []
        for a in ALGORITHMS:
            dev = _mean([_deviation(r, a) for r in group])
            sched = sum(r[a]["schedulable"] for r in group)
            cells.append(f"{dev:>8.1f}%  {sched}/{len(group)} sched")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in cells))
    lines.append(
        "paper shape: BBC degrades with size; OBC/CF within ~0.5% of OBC/EE; "
        "both within ~5% of SA"
    )
    report("fig9_quality", lines)

    # OBC variants must never schedule fewer systems than BBC.
    for n in node_counts:
        group = [r for r in rows if r["n_nodes"] == n]
        bbc = sum(r["BBC"]["schedulable"] for r in group)
        cf = sum(r["OBC/CF"]["schedulable"] for r in group)
        ee = sum(r["OBC/EE"]["schedulable"] for r in group)
        assert cf >= bbc and ee >= bbc


def test_fig9_runtime(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    node_counts = sorted({r["n_nodes"] for r in rows})

    lines = [
        "FIG9 (right): computation time [s] and exact analyses per algorithm",
        f"{'nodes':>5} | "
        + " | ".join(f"{a + ' s / evals':>20}" for a in ALGORITHMS),
    ]
    for n in node_counts:
        group = [r for r in rows if r["n_nodes"] == n]
        cells = []
        for a in ALGORITHMS:
            secs = _mean([r[a]["seconds"] for r in group])
            evals = _mean([r[a]["evaluations"] for r in group])
            cells.append(f"{secs:>9.2f} / {evals:>7.0f}")
        lines.append(f"{n:>5} | " + " | ".join(f"{c:>20}" for c in cells))
    lines.append("paper shape: BBC almost free; OBC/CF orders of magnitude below OBC/EE")
    report("fig9_runtime", lines)

    total = {
        a: sum(r[a]["evaluations"] for r in rows) for a in ALGORITHMS
    }
    # The curve-fitting heuristic must do far fewer exact analyses than
    # exhaustive exploration -- the paper's headline efficiency claim.
    assert total["OBC/CF"] * 3 < total["OBC/EE"]
    assert total["BBC"] <= total["OBC/EE"]
