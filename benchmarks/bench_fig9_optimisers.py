"""FIG9 -- Evaluation of the bus optimisation algorithms (paper Fig. 9).

For each system-size class the paper reports (left panel) the average
percentage deviation of the cost function obtained by BBC / OBC-CF /
OBC-EE relative to the near-optimal SA baseline, and (right panel) the
computation time of each algorithm.  Expected shape:

* BBC runs in almost zero time but stops finding schedulable
  configurations as systems grow (>3 nodes in the paper);
* OBC/CF and OBC/EE stay within a few percent of SA;
* OBC/CF is within <1 % of OBC/EE at a fraction (orders of magnitude
  fewer analyses) of its cost.

Scaled down by default (3 systems per class, classes 2-5 nodes, budgeted
SA); set REPRO_BENCH_FULL=1 / REPRO_FIG9_COUNT / REPRO_FIG9_MAXNODES for
paper-scale runs (the paper used 25 systems per class on 2-7 nodes and
several-hour SA runs).  For the full 25-systems-per-class sweep prefer
the sharded runner (``fig9_shard.py`` / ``fig9_aggregate.py``), which
partitions the same row computation over independent worker processes.
"""

from repro.synth import paper_suite

from benchmarks._report import env_int, full_scale, report, report_json
from benchmarks.fig9_common import (
    ALGORITHMS,
    bench_options,
    json_payload,
    quality_lines,
    run_system,
    runtime_lines,
    sa_options,
)

_cache = {}


def run_suite():
    """Run all four optimisers over every suite; cached across tests."""
    if "rows" in _cache:
        return _cache["rows"]
    count = env_int("REPRO_FIG9_COUNT", 25 if full_scale() else 3)
    max_nodes = env_int("REPRO_FIG9_MAXNODES", 7 if full_scale() else 5)
    seed = env_int("REPRO_FIG9_SEED", 23)
    options = bench_options(full_scale())
    sa_opts = sa_options(full_scale())
    rows = []
    for n_nodes in range(2, max_nodes + 1):
        suite = paper_suite(n_nodes, count=count, seed=seed)
        for idx, system in enumerate(suite):
            entry = {"n_nodes": n_nodes, "index": idx}
            entry.update(run_system(system, options, sa_opts))
            rows.append(entry)
    _cache["rows"] = rows
    return rows


def test_fig9_quality(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    node_counts = sorted({r["n_nodes"] for r in rows})

    report(
        "fig9_quality",
        quality_lines(
            rows,
            "FIG9 (left): average % cost deviation vs SA, "
            "and schedulable fraction",
        ),
    )

    # OBC variants must never schedule fewer systems than BBC.
    for n in node_counts:
        group = [r for r in rows if r["n_nodes"] == n]
        bbc = sum(r["BBC"]["schedulable"] for r in group)
        cf = sum(r["OBC/CF"]["schedulable"] for r in group)
        ee = sum(r["OBC/EE"]["schedulable"] for r in group)
        assert cf >= bbc and ee >= bbc


def test_fig9_runtime(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    report(
        "fig9_runtime",
        runtime_lines(
            rows,
            "FIG9 (right): computation time [s] and exact analyses "
            "per algorithm",
        ),
    )
    report_json("BENCH_fig9_optimisers", json_payload(rows))

    total = {
        a: sum(r[a]["evaluations"] for r in rows) for a in ALGORITHMS
    }
    # The curve-fitting heuristic must do far fewer exact analyses than
    # exhaustive exploration -- the paper's headline efficiency claim.
    assert total["OBC/CF"] * 3 < total["OBC/EE"]
    assert total["BBC"] <= total["OBC/EE"]
