"""FIG4 -- Optimisation of the DYN segment (paper Fig. 4).

Two nodes exchange three dynamic messages: N1 sends m1 (9 MT) and m3
(3 MT), N2 sends m2 (5 MT); priority(m1) > priority(m3).  Three
configurations, simulated on the FTDMA bus model:

  a) m1/m3 share FrameID 1           (paper Table A)  -> R2 = 37
  b) unique FrameIDs                 (paper Table B)  -> R2 = 35
  c) unique FrameIDs + longer DYN segment            -> R2 = 21

The paper's absolute numbers depend on unpublished message sizes; the
pinned property is the strict improvement a > b > c for R(m2) and the
protocol mechanics visible in the trace (m2 blocked by pLatestTx in the
first cycle for a/b, first-cycle delivery in c).
"""

from repro.analysis import analyse_system
from repro.core.config import FlexRayConfig
from repro.flexray.events import EventKind
from repro.flexray.simulator import simulate

from benchmarks._report import report
from tests.util import fig4_system

SCENARIOS = (
    ("a: shared FrameID (m1,m3 -> 1), 13 minislots", {"m1": 1, "m2": 2, "m3": 1}, 13),
    ("b: unique FrameIDs, 13 minislots", {"m1": 1, "m2": 2, "m3": 3}, 13),
    ("c: unique FrameIDs, 20 minislots", {"m1": 1, "m2": 2, "m3": 3}, 20),
)

PAPER_R2 = {"a": 37, "b": 35, "c": 21}


def run_scenarios():
    system = fig4_system()
    rows = []
    for label, frame_ids, minislots in SCENARIOS:
        config = FlexRayConfig(
            static_slots=("N1", "N2"),
            gd_static_slot=8,
            n_minislots=minislots,
            frame_ids=frame_ids,
        )
        analysed = analyse_system(system, config)
        simulated = simulate(system, config, table=analysed.table)
        rows.append((label, config, analysed, simulated))
    return rows


def test_fig4_dynamic_segment(benchmark):
    rows = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)

    lines = [
        "FIG4: response time of m2 under three DYN-segment configurations",
        f"{'scenario':<46} {'gdCycle':>8} {'R(m2) sim':>10} {'R(m2) bound':>12} {'paper':>6}",
    ]
    sim_r2 = {}
    for label, config, analysed, simulated in rows:
        key = label[0]
        sim_r2[key] = simulated.observed_wcrt["m2"]
        lines.append(
            f"{label:<46} {config.gd_cycle:>8} {sim_r2[key]:>10} "
            f"{analysed.wcrt['m2']:>12} {PAPER_R2[key]:>6}"
        )
    lines.append("paper shape: R2(a) > R2(b) > R2(c); c delivers m2 in cycle 0")
    report("fig4_dynamic_segment", lines)

    # Paper's ordering of the three scenarios for the victim message m2.
    assert sim_r2["a"] > sim_r2["b"] > sim_r2["c"]
    # Scenario c delivers m2 within the first bus cycle.
    _, config_c, __, sim_c = rows[2]
    tx = {
        e.activity: e.time
        for e in sim_c.trace
        if e.kind is EventKind.DYN_TX_START
    }
    assert tx["m2"] < config_c.gd_cycle
    # Simulation never exceeds the analytic worst case.
    for _, __, analysed, simulated in rows:
        for name, r in simulated.observed_wcrt.items():
            assert r <= analysed.wcrt[name]
