"""BENCH -- incremental analysis engine (shared AnalysisContext).

Measures the three invariance tiers of the incremental analysis engine
on the OBC/EE DYN-length sweep of the Fig. 9 workload -- the paper's
hottest loop (up to 1024 exact analyses per static-segment variant):

* ``seed``     -- the seed repo's behaviour: every candidate recomputes
  ancestor closures, priorities, the schedule table, availability
  patterns and the per-iteration interference sets from scratch (a
  faithful reimplementation kept here as the reference baseline; it
  doubles as a correctness oracle).
* ``pr1_warm`` -- the PR 1 incremental engine: one shared context
  (invariants + signature memo + prebound rows) but a from-scratch
  schedule per cycle length, gap-walking ``advance`` and cold-started
  busy-window recurrences -- pinned here so later speedups in the
  library cannot silently flatter the comparison.
* ``pr2_warm`` -- the PR 2 engine, pinned: retimable schedule plan,
  bisecting ``advance``, certified inner warm starts, dirty tracking.
* ``pr3_warm`` -- the PR 3 engine, pinned: ``pr2_warm`` plus the
  incremental per-instant bound and the third-generation hoists, but
  no pattern-level dominance tables.
* ``cold``     -- the current engine with a fresh ``AnalysisContext``
  per candidate (per-system invariants rebuilt each time).
* ``warm``     -- one shared ``AnalysisContext`` across the sweep (the
  configuration every optimiser now uses through ``Evaluator``).
* ``parallel`` -- warm context + the opt-in process pool
  (``BusOptimisationOptions.parallel_workers``).  Reported but not
  asserted: wall-clock gains require >1 CPU, while determinism is
  asserted everywhere.

A second, **pure-DYN** scenario (TT graphs collapsed onto single nodes,
so the whole sweep shares one schedule-cache entry) measures the
pattern-level dominance tables against the pinned PR 3 path -- the
workload where their per-pattern construction amortises across every
candidate (see ``run_pure_dyn``).  The same scenario times the
``numpy_batch`` generation: one ``AnalysisContext`` with
``AnalysisOptions(backend="numpy")`` evaluating the whole sweep through
``analyse_batch`` as a single lockstep array fix point, asserted
bit-identical to the Python oracle and >= 2x faster than the warm
Python path.

When the compiled ``repro._native`` extension is built, a
``native_batch`` generation rides both scenarios
(``AnalysisOptions(backend="native")``): on the pure-DYN sweep it must
at least match the numpy kernels; on the **ST-heavy** Fig. 9 sweep --
where every cycle length is a distinct schedule, so the grouped
backends see singleton lanes and the array kernels' per-op dispatch is
all overhead -- it must beat the warm Python path >= 2x (see
``run_st_heavy_backends``).  Without the extension the native
generation and its assertions are skipped with a note.

Emits ``benchmarks/results/BENCH_incremental_analysis.json``.  The quick
smoke mode (default) finishes in well under 30 s; set
``REPRO_BENCH_FULL=1`` for a paper-scale sweep.
"""

from __future__ import annotations

import os
import time

from repro.analysis import (
    AnalysisContext,
    AnalysisOptions,
    AnalysisResult,
    NodeAvailability,
    analyse_system,
    analysis_cap,
    build_schedule,
    hp_tasks,
    static_response_times,
    wrap_busy_intervals,
)
from repro.analysis.backend import native_or_none
from repro.analysis.context import ancestor_sets
from repro.core.bbc import basic_configuration
from repro.core.cost import cost_function
from repro.core.search import (
    BusOptimisationOptions,
    Evaluator,
    dyn_segment_bounds,
    min_static_slot,
    sweep_lengths,
)
from repro.errors import ConfigurationError, SchedulingError
from repro.synth import paper_suite

from benchmarks._report import env_int, full_scale, report, report_json


# ----------------------------------------------------------------------
# Reference: the seed repo's per-candidate recompute-everything loop,
# with the seed's *inner* loops pinned verbatim (availability gaps
# recomputed per advance, interference sets re-derived per fix-point
# call, per-iteration period/minislot lookups) so the baseline keeps the
# seed's cost profile even as the library's shared code gets faster.
# ----------------------------------------------------------------------
from repro.analysis import WcrtResult, interference_count, interference_sets
from repro.analysis.fill import max_filled_cycles
from repro.analysis.fps import MAX_FIXPOINT_ITERATIONS


class _SeedAvailability(NodeAvailability):
    """NodeAvailability with the seed's ``advance`` (gaps per call)."""

    def _gaps(self):
        gaps = []
        prev = 0
        for s, e in self.busy:
            if s > prev:
                gaps.append((prev, s))
            prev = e
        if prev < self.period:
            gaps.append((prev, self.period))
        return gaps

    def advance(self, t0, demand):
        if demand == 0:
            return t0
        if self.slack_per_period == 0:
            return None
        remaining = demand
        whole = (remaining - 1) // self.slack_per_period
        t = t0 + whole * self.period
        remaining -= whole * self.slack_per_period
        while remaining > 0:
            base = (t // self.period) * self.period
            x = t - base
            for s, e in self._gaps():
                lo = max(s, x)
                if lo >= e:
                    continue
                room = e - lo
                if room >= remaining:
                    return base + lo + remaining
                remaining -= room
            t = base + self.period
        return t


def _seed_busy_window_at(
    task, interferers, availability, jitters, period_of, cap, t0,
    own_jitter, ancestors,
):
    demand = task.wcet
    window = 0
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        end = availability.advance(t0, demand)
        if end is None:
            return cap, False
        window = end - t0
        if window >= cap:
            return cap, False
        new_demand = task.wcet
        for j in interferers:
            count = interference_count(
                window, period_of(j.name), jitters.get(j.name, 0),
                j.name in ancestors, own_jitter,
            )
            new_demand += count * j.wcet
        if new_demand == demand:
            return window, True
        demand = new_demand
    return window, False


def _seed_fps_task_busy_window(
    task, interferers, availability, jitters, period_of, cap,
    own_jitter=0, ancestors=frozenset(),
):
    candidates = [0] + availability.busy_starts()
    worst = 0
    converged = True
    for t0 in candidates:
        window, ok = _seed_busy_window_at(
            task, interferers, availability, jitters, period_of, cap, t0,
            own_jitter, ancestors,
        )
        if window >= cap:
            return WcrtResult(value=cap, converged=False)
        worst = max(worst, window)
        converged = converged and ok
    return WcrtResult(value=worst, converged=converged)


def _seed_dyn_message_busy_window(
    message, config, system, jitters, period_of, cap, own_jitter,
    ancestors, fill_strategy,
):
    f = config.frame_id_of(message.name)
    node = system.sender_node(message)
    p_latest = config.p_latest_tx(node, system)
    if f > p_latest or p_latest < 1:
        return WcrtResult(value=cap, converged=False)
    sets = interference_sets(message, config, system)
    ms_len = config.gd_minislot
    lam = p_latest - 1
    theta = lam - f + 2
    sigma_m = config.gd_cycle - config.st_bus - (f - 1) * config.gd_minislot
    t = config.message_ct(message)
    w = 0
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        hp_cycles = 0
        for j in sets.hp:
            hp_cycles += interference_count(
                t, period_of(j.name), jitters.get(j.name, 0),
                j.name in ancestors, own_jitter,
            )
        lf_items = []
        for j in sets.lf:
            n = interference_count(
                t, period_of(j.name), jitters.get(j.name, 0),
                j.name in ancestors, own_jitter,
            )
            lf_items.extend([config.minislots_needed(j) - 1] * n)
        lf_cycles = max_filled_cycles(lf_items, theta, fill_strategy)
        leftover = max(0, sum(lf_items) - lf_cycles * theta)
        final_consumed = min(lam, sets.lower_slots + leftover)
        w_final = config.st_bus + final_consumed * ms_len
        w = sigma_m + (hp_cycles + lf_cycles) * config.gd_cycle + w_final
        if w >= cap:
            return WcrtResult(value=cap, converged=False)
        if w <= t:
            return WcrtResult(value=w, converged=True)
        t = w
    return WcrtResult(value=w, converged=False)


def _seed_dyn_message_wcrt(
    message, config, system, jitters, period_of, cap, ancestors,
    fill_strategy,
):
    own_jitter = jitters.get(message.name, 0)
    window = _seed_dyn_message_busy_window(
        message, config, system, jitters, period_of, cap, own_jitter,
        ancestors, fill_strategy,
    )
    value = min(cap, own_jitter + window.value + config.message_ct(message))
    return WcrtResult(value=value, converged=window.converged)


def seed_reference_analyse(system, config, options=None) -> AnalysisResult:
    """The holistic analysis exactly as the seed repo structured it.

    Every quantity is derived per call and the fix point re-derives the
    interference sets on every iteration -- the cost profile the
    incremental engine eliminates.  Kept as the benchmark baseline *and*
    as an independent oracle: the engine's results must stay
    bit-identical to this loop.
    """
    options = options or AnalysisOptions()
    app = system.application
    try:
        config.validate_for(system)
    except ConfigurationError:
        return analyse_system(system, config, options)
    try:
        table = build_schedule(system, config, options.schedule)
    except SchedulingError:
        return analyse_system(system, config, options)

    cap = analysis_cap(system, config, options.cap_factor)
    static_wcrt = static_response_times(app, table)
    availability = {
        node: _SeedAvailability(
            wrap_busy_intervals(table.busy_intervals(node), table.horizon),
            table.horizon,
        )
        for node in system.nodes
    }
    fps_by_node = {
        node: sorted(
            (t for t in system.tasks_on(node) if t.is_fps),
            key=lambda t: (t.priority, t.name),
        )
        for node in system.nodes
    }
    period_of = app.period_of
    ancestors = ancestor_sets(app)

    wcrt = dict(static_wcrt)
    jitters = {}
    converged = True
    for _ in range(options.max_holistic_iterations):
        changed = False
        for m in app.dyn_messages():
            g = app.graph_of(m.name)
            sender = g.task(m.sender)
            j_m = wcrt.get(sender.name, 0)
            if jitters.get(m.name, 0) != j_m:
                jitters[m.name] = j_m
                changed = True
            result = _seed_dyn_message_wcrt(
                m, config, system, jitters, period_of, cap,
                ancestors=ancestors.get(m.name, frozenset()),
                fill_strategy=options.dyn_fill_strategy,
            )
            converged = converged and result.converged
            if wcrt.get(m.name) != result.value:
                wcrt[m.name] = result.value
                changed = True
        for node in system.nodes:
            fps = fps_by_node[node]
            for task in fps:
                g = app.graph_of(task.name)
                j_i = task.release
                for pred in g.predecessors(task.name):
                    j_i = max(j_i, wcrt.get(pred, 0))
                if jitters.get(task.name, 0) != j_i:
                    jitters[task.name] = j_i
                    changed = True
                window = _seed_fps_task_busy_window(
                    task,
                    hp_tasks(task, fps),
                    availability[node],
                    jitters,
                    period_of,
                    cap,
                    own_jitter=j_i,
                    ancestors=ancestors.get(task.name, frozenset()),
                )
                converged = converged and window.converged
                r_i = min(cap, j_i + window.value)
                if wcrt.get(task.name) != r_i:
                    wcrt[task.name] = r_i
                    changed = True
        if not changed:
            break
    else:
        converged = False

    cost = cost_function(app, wcrt)
    return AnalysisResult(
        config=config,
        feasible=True,
        schedulable=cost.schedulable and converged,
        converged=converged,
        cost=cost,
        wcrt=wcrt,
        table=table,
    )


# ----------------------------------------------------------------------
# Reference: the PR 1 warm path, pinned.  One shared context (per-system
# invariants, prebound interference rows, fix-point signature memo) but:
# a from-scratch schedule build per cycle length, availability patterns
# with the gap-walking ``advance``, per-instance lf multiset
# materialisation, and cold-started busy-window recurrences.
# ----------------------------------------------------------------------
from repro.analysis.fill import fill_bound
from repro.core.cost import cost_function as _cost_function


class _Pr1Availability(NodeAvailability):
    """NodeAvailability with PR 1's ``advance`` (precomputed gap walk)."""

    def advance(self, t0, demand):
        if demand == 0:
            return t0
        if not self.busy:
            return t0 + demand
        slack = self.slack_per_period
        if slack == 0:
            return None
        period = self.period
        gaps = self._gap_list
        remaining = demand
        whole = (remaining - 1) // slack
        t = t0 + whole * period
        remaining -= whole * slack
        while remaining > 0:
            base = (t // period) * period
            x = t - base
            for s, e in gaps:
                lo = s if s > x else x
                if lo >= e:
                    continue
                room = e - lo
                if room >= remaining:
                    return base + lo + remaining
                remaining -= room
            t = base + period
        return t


def _pr1_fps_busy_window(wcet, info, availability, jitters, cap, own_jitter):
    """PR 1 ``fps.prepped_busy_window``: cold start per critical instant."""
    worst = 0
    converged = True
    jitters_get = jitters.get
    advance = availability.advance
    for t0 in availability.critical_instants():
        demand = wcet
        window = 0
        ok = False
        for _ in range(MAX_FIXPOINT_ITERATIONS):
            end = advance(t0, demand)
            if end is None:
                return cap, False
            window = end - t0
            if window >= cap:
                return cap, False
            new_demand = wcet
            for name, period, is_ancestor, c_j in info:
                if is_ancestor:
                    slack = window + own_jitter - period
                    count = -(-slack // period) if slack > 0 else 0
                else:
                    count = -(-(window + jitters_get(name, 0)) // period)
                new_demand += count * c_j
            if new_demand == demand:
                ok = True
                break
            demand = new_demand
        if window > worst:
            worst = window
        converged = converged and ok
    return worst, converged


def _pr1_dyn_busy_window(
    hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct, gd_cycle,
    st_bus, ms_len, jitters, cap, own_jitter, fill_strategy,
):
    """PR 1 ``dyn.prepped_busy_window``: cold start, materialised lf items."""
    jitters_get = jitters.get
    t = ct
    w = 0
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        hp_cycles = 0
        for name, period, is_ancestor in hp_info:
            if is_ancestor:
                slack = t + own_jitter - period
                if slack > 0:
                    hp_cycles += -(-slack // period)
            else:
                hp_cycles += -(-(t + jitters_get(name, 0)) // period)
        lf_items = []
        for name, period, is_ancestor, adjusted in lf_info:
            if is_ancestor:
                slack = t + own_jitter - period
                n = -(-slack // period) if slack > 0 else 0
            else:
                n = -(-(t + jitters_get(name, 0)) // period)
            if n:
                lf_items.extend([adjusted] * n)
        lf_cycles = (
            fill_bound(lf_items, theta)
            if fill_strategy == "bound"
            else max_filled_cycles(lf_items, theta, fill_strategy)
        )
        leftover = max(0, sum(lf_items) - lf_cycles * theta)
        final_consumed = min(lam, lower_slots + leftover)
        w_final = st_bus + final_consumed * ms_len
        w = sigma_m + (hp_cycles + lf_cycles) * gd_cycle + w_final
        if w >= cap:
            return cap, False
        if w <= t:
            return w, True
        t = w
    return w, False


class Pr1WarmReference:
    """The PR 1 incremental engine's warm path, frozen for comparison.

    Reuses the live context's tier-(a)/(c) precomputation (identical in
    PR 1) but pins PR 1's per-candidate costs: ``build_schedule`` per
    cycle length, ``_Pr1Availability``, per-call validation and the
    cold-started busy-window kernels above.
    """

    def __init__(self, system):
        from repro.analysis import AnalysisOptions

        self.system = system
        self.options = AnalysisOptions()
        self.inner = AnalysisContext(system, self.options)
        self._priorities = None
        self._schedule_cache = {}

    def _artifacts(self, config):
        key = self.inner.schedule_key(config)
        entry = self._schedule_cache.get(key)
        if entry is not None:
            return entry
        if self._priorities is None:
            from repro.analysis.priorities import critical_path_priorities

            self._priorities = critical_path_priorities(
                self.system.application, config
            )
        try:
            table = build_schedule(
                self.system, config, self.options.schedule,
                priorities=self._priorities,
            )
        except SchedulingError as exc:
            entry = (None, f"static scheduling failed: {exc}", None, None)
        else:
            static_wcrt = static_response_times(self.system.application, table)
            availability = {
                node: _Pr1Availability(
                    wrap_busy_intervals(
                        table.busy_intervals(node), table.horizon
                    ),
                    table.horizon,
                )
                for node in self.system.nodes
            }
            entry = (table, None, static_wcrt, availability)
        self._schedule_cache[key] = entry
        return entry

    def analyse(self, config):
        from repro.analysis.holistic import _infeasible

        inner = self.inner
        options = self.options
        try:
            config.validate_for(self.system)
        except ConfigurationError as exc:
            return _infeasible(config, f"configuration invalid: {exc}")
        table, failure, static_wcrt, availability = self._artifacts(config)
        if failure is not None:
            return _infeasible(config, failure)

        cap = analysis_cap(self.system, config, options.cap_factor)
        fill_strategy = options.dyn_fill_strategy
        dyn_views = inner._dyn_views(config)
        fps_plans = inner.fps_plans
        nodes = self.system.nodes

        wcrt = dict(static_wcrt)
        jitters = {}
        wcrt_get = wcrt.get
        jitters_get = jitters.get
        last_sig = {}
        last_out = {}
        converged = True
        for _ in range(options.max_holistic_iterations):
            changed = False
            for view in dyn_views:
                name = view.name
                j_m = wcrt_get(view.sender, 0)
                if jitters_get(name, 0) != j_m:
                    jitters[name] = j_m
                    changed = True
                sig = (j_m, tuple(
                    [jitters_get(n, 0) for n in view.input_names]
                ))
                if last_sig.get(name) == sig:
                    value, ok = last_out[name]
                else:
                    if view.sendable:
                        w, ok = _pr1_dyn_busy_window(
                            view.hp_info, view.lf_info, view.lower_slots,
                            view.lam, view.theta, view.sigma, view.ct,
                            view.gd_cycle, view.st_bus, view.ms_len,
                            jitters, cap, j_m, fill_strategy,
                        )
                        value = j_m + w + view.ct
                        if value > cap:
                            value = cap
                    else:
                        value, ok = cap, False
                    last_sig[name] = sig
                    last_out[name] = (value, ok)
                converged = converged and ok
                if wcrt_get(name) != value:
                    wcrt[name] = value
                    changed = True
            for node in nodes:
                node_availability = availability[node]
                for plan in fps_plans[node]:
                    name = plan.name
                    j_i = plan.release
                    for pred in plan.predecessors:
                        v = wcrt_get(pred, 0)
                        if v > j_i:
                            j_i = v
                    if jitters_get(name, 0) != j_i:
                        jitters[name] = j_i
                        changed = True
                    sig = (j_i, tuple(
                        [jitters_get(n, 0) for n in plan.input_names]
                    ))
                    if last_sig.get(name) == sig:
                        window_value, ok = last_out[name]
                    else:
                        window_value, ok = _pr1_fps_busy_window(
                            plan.wcet, plan.interferers, node_availability,
                            jitters, cap, j_i,
                        )
                        last_sig[name] = sig
                        last_out[name] = (window_value, ok)
                    converged = converged and ok
                    r_i = j_i + window_value
                    if r_i > cap:
                        r_i = cap
                    if wcrt_get(name) != r_i:
                        wcrt[name] = r_i
                        changed = True
            if not changed:
                break
        else:
            converged = False

        cost = _cost_function(self.system.application, wcrt)
        return AnalysisResult(
            config=config,
            feasible=True,
            schedulable=cost.schedulable and converged,
            converged=converged,
            cost=cost,
            wcrt=wcrt,
            table=table,
        )


# ----------------------------------------------------------------------
# Reference: the PR 2 warm path, pinned.  Everything PR 1 had, plus the
# retimable schedule plan (replay per cycle length), the bisecting
# ``advance``, exact dirty tracking and the certified *inner* busy
# -window warm starts -- but: no FPS instant pruning (every critical
# instant runs its full recurrence, with per-iteration interferer name
# lookups), per-job slot-ownership scans in the ST replay, a full
# ``validate_for`` per configuration (no monotone floor), and the
# pre-certified outer mode dispatch.  The third-generation kernel is
# measured against this.
# ----------------------------------------------------------------------
from bisect import bisect_left as _bisect_left

from repro.analysis.fill import FILL_STRATEGIES as _FILL_STRATEGIES
from repro.analysis.fill import max_filled_cycles_aggregated
from repro.analysis.scheduler import _schedule_task
from repro.errors import AnalysisError
from repro.model.task import Task as _Task


def _pr2_fps_busy_window_at(
    wcet, info, availability, jitters, cap, t0, own_jitter, seed=None
):
    """PR 2 ``fps._busy_window_at``: per-iteration interferer lookups."""
    seeded = seed is not None and seed > wcet
    demand = seed if seeded else wcet
    window = 0
    advance = availability.advance
    jitters_get = jitters.get
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        end = advance(t0, demand)
        if end is None:
            return cap, False, demand
        window = end - t0
        if window >= cap:
            return cap, False, demand
        new_demand = wcet
        for name, period, is_ancestor, c_j in info:
            if is_ancestor:
                slack = window + own_jitter - period
                count = -(-slack // period) if slack > 0 else 0
            else:
                count = -(-(window + jitters_get(name, 0)) // period)
            new_demand += count * c_j
        if new_demand == demand:
            return window, True, demand
        if seeded and new_demand < demand:
            return _pr2_fps_busy_window_at(
                wcet, info, availability, jitters, cap, t0, own_jitter
            )
        demand = new_demand
    if seeded:
        return _pr2_fps_busy_window_at(
            wcet, info, availability, jitters, cap, t0, own_jitter
        )
    return window, False, demand


def _pr2_fps_seeded_busy_window(
    wcet, info, availability, jitters, cap, own_jitter, seeds=None
):
    """PR 2 ``fps.seeded_busy_window``: certified seeds, no pruning."""
    (instants, before, slack, period, gap_ends, through, _order, _dom) = (
        availability.instant_advance_tables()
    )
    n_instants = len(instants)
    demands = [None] * n_instants
    worst = 0
    converged = True
    n_seeds = len(seeds) if seeds is not None else 0
    jitters_get = jitters.get
    fast = gap_ends is not None and slack > 0 and wcet > 0
    for idx in range(n_instants):
        t0 = instants[idx]
        seed = seeds[idx] if idx < n_seeds else None
        result = None
        if fast:
            seeded = seed is not None and seed > wcet
            demand = seed if seeded else wcet
            window = 0
            offset = before[idx]
            for _ in range(MAX_FIXPOINT_ITERATIONS):
                whole, rem = divmod(offset + demand - 1, slack)
                k = _bisect_left(through, rem + 1)
                window = (
                    whole * period + gap_ends[k] - (through[k] - rem - 1) - t0
                )
                if window >= cap:
                    result = (cap, False, demand)
                    break
                new_demand = wcet
                for name, p, is_ancestor, c_j in info:
                    if is_ancestor:
                        s = window + own_jitter - p
                        count = -(-s // p) if s > 0 else 0
                    else:
                        count = -(-(window + jitters_get(name, 0)) // p)
                    new_demand += count * c_j
                if new_demand == demand:
                    result = (window, True, demand)
                    break
                if seeded and new_demand < demand:
                    result = _pr2_fps_busy_window_at(
                        wcet, info, availability, jitters, cap, t0, own_jitter
                    )
                    break
                demand = new_demand
            if result is None:
                result = (
                    _pr2_fps_busy_window_at(
                        wcet, info, availability, jitters, cap, t0, own_jitter
                    )
                    if seeded
                    else (window, False, demand)
                )
        else:
            result = _pr2_fps_busy_window_at(
                wcet, info, availability, jitters, cap, t0, own_jitter, seed
            )
        window, ok, demand = result
        demands[idx] = demand
        if window >= cap:
            return cap, False, demands
        if window > worst:
            worst = window
        converged = converged and ok
    return worst, converged, demands


def _pr2_dyn_seeded_busy_window(
    hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct, gd_cycle,
    st_bus, ms_len, jitters, cap, own_jitter, fill_strategy, seed=None,
):
    """PR 2 ``dyn.seeded_busy_window``, pinned verbatim."""
    if fill_strategy not in _FILL_STRATEGIES:
        raise AnalysisError(
            f"unknown fill strategy {fill_strategy!r}; "
            f"choose from {_FILL_STRATEGIES}"
        )
    jitters_get = jitters.get
    seeded = seed is not None and seed > ct
    t = seed if seeded else ct
    w = 0
    bound_only = fill_strategy == "bound"
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        hp_cycles = 0
        for name, period, is_ancestor in hp_info:
            if is_ancestor:
                slack = t + own_jitter - period
                if slack > 0:
                    hp_cycles += -(-slack // period)
            else:
                hp_cycles += -(-(t + jitters_get(name, 0)) // period)
        lf_total = 0
        lf_useful = 0
        lf_pairs = [] if not bound_only else None
        for name, period, is_ancestor, adjusted in lf_info:
            if is_ancestor:
                slack = t + own_jitter - period
                n = -(-slack // period) if slack > 0 else 0
            else:
                n = -(-(t + jitters_get(name, 0)) // period)
            if n:
                if adjusted > 0:
                    lf_total += adjusted * n
                    lf_useful += n
                if lf_pairs is not None:
                    lf_pairs.append((adjusted, n))
        if bound_only:
            lf_cycles = (
                lf_useful if lf_useful < lf_total // theta
                else lf_total // theta
            )
        else:
            lf_cycles = max_filled_cycles_aggregated(
                lf_pairs, theta, fill_strategy
            )
        leftover = lf_total - lf_cycles * theta
        if leftover < 0:
            leftover = 0
        final_consumed = min(lam, lower_slots + leftover)
        w_final = st_bus + final_consumed * ms_len
        w = sigma_m + (hp_cycles + lf_cycles) * gd_cycle + w_final
        if w >= cap:
            return cap, False, t
        if w <= t:
            if seeded and w < t:
                return _pr2_dyn_seeded_busy_window(
                    hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct,
                    gd_cycle, st_bus, ms_len, jitters, cap, own_jitter,
                    fill_strategy,
                )
            return w, True, w
        t = w
    if seeded:
        return _pr2_dyn_seeded_busy_window(
            hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct,
            gd_cycle, st_bus, ms_len, jitters, cap, own_jitter,
            fill_strategy,
        )
    return w, False, w


def _pr2_schedule_st_message(table, system, config, job, ready, options,
                             horizon):
    """PR 2 ST placement: slot ownership re-scanned per message job."""
    message = job.activity
    node = system.sender_node(message)
    slots = config.st_slots_of(node)
    if not slots:
        raise SchedulingError(
            f"node {node!r} sends ST message {message.name!r} but owns no "
            "static slot"
        )
    ct = config.message_ct(message)
    gd_cycle = config.gd_cycle
    gd_static_slot = config.gd_static_slot
    frame_used = table.frame_used
    limit = options.horizon_factor * horizon + gd_cycle
    cycle = max(0, ready // gd_cycle)
    cycle_base = cycle * gd_cycle
    while cycle_base < limit:
        for slot in slots:
            slot_start = cycle_base + (slot - 1) * gd_static_slot
            if slot_start < ready:
                continue
            if frame_used(cycle, slot) + ct <= gd_static_slot:
                table.add_message(job.key, message, cycle, slot)
                return
        cycle += 1
        cycle_base += gd_cycle
    raise SchedulingError(
        f"no static slot instance before {limit} MT can carry message "
        f"{job.key!r} (ready at {ready}, C_m={ct})"
    )


def _pr2_replay(plan, config):
    """PR 2 ``SchedulePlan.replay``: no per-replay lookup hoisting."""
    from repro.analysis.schedule_table import ScheduleTable

    options = plan.options
    system = plan.system
    horizon = plan.horizon
    table = ScheduleTable(config, horizon)
    finish_of = table.finish_of
    for rec in plan.order:
        job = rec.job
        asap = job.release
        for pred_key in rec.pred_keys:
            finish = finish_of(pred_key)
            if finish > asap:
                asap = finish
        if rec.ext_preds:
            raise SchedulingError(
                f"SCS activity {job.name!r} depends on event-triggered "
                f"activity {rec.ext_preds[0]!r}; pass wcrt_estimates to "
                "schedule it"
            )
        if isinstance(job.activity, _Task):
            _schedule_task(table, system, job, asap, options)
        else:
            _pr2_schedule_st_message(
                table, system, config, job, asap, options, horizon
            )
    return table


class Pr2WarmReference:
    """The PR 2 incremental engine's warm path, frozen for comparison.

    Reuses the live context's tier-(a)/(c) precomputation (identical in
    PR 2) but pins PR 2's per-candidate costs: the unpruned FPS
    maximisation, per-iteration interferer lookups, per-job ST slot
    scans in the replay, and a full semantic validation per distinct
    configuration.
    """

    def __init__(self, system):
        self.system = system
        self.options = AnalysisOptions()
        self.inner = AnalysisContext(system, self.options)
        self._schedule_cache = {}

    def _artifacts(self, config):
        key = self.inner.schedule_key(config)
        entry = self._schedule_cache.get(key)
        if entry is not None:
            return entry
        try:
            table = _pr2_replay(self.inner._plan(config), config)
        except SchedulingError as exc:
            entry = (None, f"static scheduling failed: {exc}", None, None)
        else:
            static_wcrt = static_response_times(self.system.application, table)
            availability = {
                node: NodeAvailability(
                    wrap_busy_intervals(
                        table.busy_intervals(node), table.horizon
                    ),
                    table.horizon,
                )
                for node in self.system.nodes
            }
            entry = (table, None, static_wcrt, availability)
        self._schedule_cache[key] = entry
        return entry

    def analyse(self, config):
        from repro.analysis.holistic import _infeasible

        inner = self.inner
        options = self.options
        try:
            config.validate_for(self.system)
        except ConfigurationError as exc:
            return _infeasible(config, f"configuration invalid: {exc}")
        table, failure, static_wcrt, availability = self._artifacts(config)
        if failure is not None:
            return _infeasible(config, failure)

        cap_base = inner._cap_base
        gd_cycle = config.gd_cycle
        cap = options.cap_factor * (
            cap_base if cap_base > gd_cycle else gd_cycle
        )
        fill_strategy = options.dyn_fill_strategy
        dyn_views = inner._dyn_views(config)
        fps_plans = inner.fps_plans
        nodes = self.system.nodes

        wcrt = dict(static_wcrt)
        jitters = {}
        inner_seeds = {}
        wcrt_get = wcrt.get
        jitters_get = jitters.get
        seeds_get = inner_seeds.get
        dependents = inner._dependents(config)
        deps_get = dependents.get
        dirty = set()
        dirty_add = dirty.add
        last_own = {}
        last_out = {}
        converged = True
        for _ in range(options.max_holistic_iterations):
            changed = False
            for view in dyn_views:
                name = view.name
                j_m = wcrt_get(view.sender, 0)
                if jitters_get(name, 0) != j_m:
                    jitters[name] = j_m
                    changed = True
                    for dep in deps_get(name, ()):
                        dirty_add(dep)
                if name not in dirty and last_own.get(name) == j_m:
                    value, ok = last_out[name]
                else:
                    if view.sendable:
                        w, ok, final = _pr2_dyn_seeded_busy_window(
                            view.hp_info, view.lf_info, view.lower_slots,
                            view.lam, view.theta, view.sigma, view.ct,
                            view.gd_cycle, view.st_bus, view.ms_len,
                            jitters, cap, j_m, fill_strategy,
                            seeds_get(name),
                        )
                        inner_seeds[name] = final
                        value = j_m + w + view.ct
                        if value > cap:
                            value = cap
                    else:
                        value, ok = cap, False
                    dirty.discard(name)
                    last_own[name] = j_m
                    last_out[name] = (value, ok)
                converged = converged and ok
                if wcrt_get(name) != value:
                    wcrt[name] = value
                    changed = True
            for node in nodes:
                node_availability = availability[node]
                for plan in fps_plans[node]:
                    name = plan.name
                    j_i = plan.release
                    for pred in plan.predecessors:
                        v = wcrt_get(pred, 0)
                        if v > j_i:
                            j_i = v
                    if jitters_get(name, 0) != j_i:
                        jitters[name] = j_i
                        changed = True
                        for dep in deps_get(name, ()):
                            dirty_add(dep)
                    if name not in dirty and last_own.get(name) == j_i:
                        window_value, ok = last_out[name]
                    else:
                        window_value, ok, demands = _pr2_fps_seeded_busy_window(
                            plan.wcet, plan.interferers, node_availability,
                            jitters, cap, j_i, seeds_get(name),
                        )
                        inner_seeds[name] = demands
                        dirty.discard(name)
                        last_own[name] = j_i
                        last_out[name] = (window_value, ok)
                    converged = converged and ok
                    r_i = j_i + window_value
                    if r_i > cap:
                        r_i = cap
                    if wcrt_get(name) != r_i:
                        wcrt[name] = r_i
                        changed = True
            if not changed:
                break
        else:
            converged = False

        cost = _cost_function(self.system.application, wcrt)
        return AnalysisResult(
            config=config,
            feasible=True,
            schedulable=cost.schedulable and converged,
            converged=converged,
            cost=cost,
            wcrt=wcrt,
            table=table,
        )


# ----------------------------------------------------------------------
# Reference: the PR 3 warm path, pinned.  Everything PR 2 had, plus the
# incremental per-instant bound, hoisted interferer rows, the
# own-jitter-insensitive window memo, per-replay lookup hoisting and the
# monotone validation floor -- but **no pattern-level dominance**: every
# maximisation re-checks every critical instant (one table-driven
# ``advance`` per instant once the bound is active) instead of eliding
# pattern-dominated instants once per availability.  The dominance
# cache layer is measured against this.
# ----------------------------------------------------------------------


def _pr3_busy_window_at(wcet, rows, availability, cap, t0, seed=None):
    """PR 3 ``fps._busy_window_at``, pinned verbatim."""
    seeded = seed is not None and seed > wcet
    demand = seed if seeded else wcet
    window = 0
    advance = availability.advance
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        end = advance(t0, demand)
        if end is None:
            return cap, False, demand
        window = end - t0
        if window >= cap:
            return cap, False, demand
        new_demand = wcet
        for p, c_j, jit in rows:
            s = window + jit
            if s > 0:
                new_demand += -(-s // p) * c_j
        if new_demand == demand:
            return window, True, demand
        if seeded and new_demand < demand:
            return _pr3_busy_window_at(wcet, rows, availability, cap, t0)
        demand = new_demand
    if seeded:
        return _pr3_busy_window_at(wcet, rows, availability, cap, t0)
    return window, False, demand


def _pr3_fps_seeded_busy_window(
    wcet, info, availability, jitters, cap, own_jitter, seeds=None
):
    """PR 3 ``fps.seeded_busy_window``: per-instant bound, no dominance."""
    from repro.analysis.fps import interferer_rows

    (instants, before, slack, period, gap_ends, through, eval_order, _dom) = (
        availability.instant_advance_tables()
    )
    n_instants = len(instants)
    demands = [None] * n_instants
    worst = 0
    converged = True
    n_seeds = len(seeds) if seeds is not None else 0
    rows = interferer_rows(info, jitters, own_jitter)
    fast = gap_ends is not None and slack > 0 and wcet > 0
    bound_demand = -1
    bound_activations = 0
    for idx in eval_order:
        t0 = instants[idx]
        seed = seeds[idx] if idx < n_seeds else None
        if worst > 0:
            if bound_demand < 0:
                bound_demand = wcet
                bound_activations = 0
                for p, c_j, jit in rows:
                    s = worst + jit
                    if s > 0:
                        count = -(-s // p)
                        bound_demand += count * c_j
                        bound_activations += count
            if bound_activations + 2 <= MAX_FIXPOINT_ITERATIONS:
                if fast:
                    whole, rem = divmod(before[idx] + bound_demand - 1, slack)
                    k = _bisect_left(through, rem + 1)
                    w_bound = (
                        whole * period + gap_ends[k] - (through[k] - rem - 1)
                        - t0
                    )
                else:
                    end = availability.advance(t0, bound_demand)
                    w_bound = cap if end is None else end - t0
                if w_bound <= worst:
                    continue
        result = None
        if fast:
            seeded = seed is not None and seed > wcet
            demand = seed if seeded else wcet
            window = 0
            offset = before[idx]
            for _ in range(MAX_FIXPOINT_ITERATIONS):
                whole, rem = divmod(offset + demand - 1, slack)
                k = _bisect_left(through, rem + 1)
                window = (
                    whole * period + gap_ends[k] - (through[k] - rem - 1) - t0
                )
                if window >= cap:
                    result = (cap, False, demand)
                    break
                new_demand = wcet
                for p, c_j, jit in rows:
                    s = window + jit
                    if s > 0:
                        new_demand += -(-s // p) * c_j
                if new_demand == demand:
                    result = (window, True, demand)
                    break
                if seeded and new_demand < demand:
                    result = _pr3_busy_window_at(
                        wcet, rows, availability, cap, t0
                    )
                    break
                demand = new_demand
            if result is None:
                result = (
                    _pr3_busy_window_at(wcet, rows, availability, cap, t0)
                    if seeded
                    else (window, False, demand)
                )
        else:
            result = _pr3_busy_window_at(
                wcet, rows, availability, cap, t0, seed
            )
        window, ok, demand = result
        demands[idx] = demand
        if window >= cap:
            return cap, False, demands
        if window > worst:
            worst = window
            bound_demand = -1
        converged = converged and ok
    return worst, converged, demands


class Pr3WarmReference:
    """The PR 3 incremental engine's warm path, frozen for comparison.

    Reuses the live context's validation memo, schedule cache and
    per-configuration structure (identical in PR 3) but pins PR 3's FPS
    maximisation: the incremental per-instant bound re-derived inside
    every call, with no pattern-level dominance tables.  The DYN kernel
    is the live ``repro.analysis.dyn.seeded_busy_window`` -- this PR
    left it untouched; re-pin it here if a later PR changes it.
    """

    def __init__(self, system):
        from repro.analysis.context import AnalysisContext as _Ctx

        self.system = system
        self.options = AnalysisOptions()
        self.inner = _Ctx(system, self.options)

    def analyse(self, config):
        from repro.analysis.dyn import seeded_busy_window as _dyn_seeded
        from repro.analysis.holistic import _infeasible
        from repro.core.cost import cost_function as _cost

        inner = self.inner
        options = self.options
        failure = inner._validate(config)
        if failure is not None:
            return _infeasible(config, failure)
        arts = inner._schedule_artifacts(config)
        if arts.failure is not None:
            return _infeasible(config, arts.failure)
        table = (
            arts.table
            if arts.table.config is config
            else arts.table.retime_for(config)
        )

        cap_base = inner._cap_base
        gd_cycle = config.gd_cycle
        cap = options.cap_factor * (
            cap_base if cap_base > gd_cycle else gd_cycle
        )
        fill_strategy = options.dyn_fill_strategy
        dyn_views = inner._dyn_views(config)
        availability = arts.availability
        fps_plans = inner.fps_plans

        wcrt = dict(arts.static_wcrt)
        jitters = {}
        inner_seeds = {}
        wcrt_get = wcrt.get
        jitters_get = jitters.get
        seeds_get = inner_seeds.get
        dependents = inner._dependents(config)
        deps_get = dependents.get
        dirty = set()
        dirty_add = dirty.add
        last_own = {}
        last_out = {}
        fps_items = [
            (plan, availability[node])
            for node in self.system.nodes
            for plan in fps_plans[node]
        ]
        converged = True
        for _ in range(options.max_holistic_iterations):
            changed = False
            for view in dyn_views:
                name = view.name
                j_m = wcrt_get(view.sender, 0)
                if jitters_get(name, 0) != j_m:
                    jitters[name] = j_m
                    changed = True
                    for dep in deps_get(name, ()):
                        dirty_add(dep)
                cached = (
                    last_out.get(name)
                    if name not in dirty
                    and (not view.own_sensitive or last_own.get(name) == j_m)
                    else None
                )
                if cached is not None:
                    w, ok = cached
                else:
                    if view.sendable:
                        w, ok, final = _dyn_seeded(
                            view.hp_info, view.lf_info, view.lower_slots,
                            view.lam, view.theta, view.sigma, view.ct,
                            view.gd_cycle, view.st_bus, view.ms_len,
                            jitters, cap, j_m, fill_strategy,
                            seeds_get(name),
                        )
                        inner_seeds[name] = final
                    else:
                        w, ok = None, False
                    dirty.discard(name)
                    last_own[name] = j_m
                    last_out[name] = (w, ok)
                if w is None:
                    value = cap
                else:
                    value = j_m + w + view.ct
                    if value > cap:
                        value = cap
                converged = converged and ok
                if wcrt_get(name) != value:
                    wcrt[name] = value
                    changed = True
            for plan, node_availability in fps_items:
                name = plan.name
                j_i = plan.release
                for pred in plan.predecessors:
                    v = wcrt_get(pred, 0)
                    if v > j_i:
                        j_i = v
                if jitters_get(name, 0) != j_i:
                    jitters[name] = j_i
                    changed = True
                    for dep in deps_get(name, ()):
                        dirty_add(dep)
                cached = (
                    last_out.get(name)
                    if name not in dirty
                    and (not plan.own_sensitive or last_own.get(name) == j_i)
                    else None
                )
                if cached is not None:
                    window_value, ok = cached
                else:
                    window_value, ok, demands = _pr3_fps_seeded_busy_window(
                        plan.wcet, plan.interferers, node_availability,
                        jitters, cap, j_i, seeds_get(name),
                    )
                    inner_seeds[name] = demands
                    dirty.discard(name)
                    last_own[name] = j_i
                    last_out[name] = (window_value, ok)
                converged = converged and ok
                r_i = j_i + window_value
                if r_i > cap:
                    r_i = cap
                if wcrt_get(name) != r_i:
                    wcrt[name] = r_i
                    changed = True
            if not changed:
                break
        else:
            converged = False

        cost = _cost(self.system.application, wcrt)
        return AnalysisResult(
            config=config,
            feasible=True,
            schedulable=cost.schedulable and converged,
            converged=converged,
            cost=cost,
            wcrt=wcrt,
            table=table,
        )


# ----------------------------------------------------------------------
# Workload: the OBC/EE DYN-length sweep on a Fig. 9 system.
# ----------------------------------------------------------------------
_cache = {}


def _sweep_configs():
    n_nodes = env_int("REPRO_BENCH_INC_NODES", 4)
    points = env_int(
        "REPRO_BENCH_INC_POINTS", 192 if full_scale() else 64
    )
    system = paper_suite(n_nodes, count=1, seed=23)[0]
    options = BusOptimisationOptions(ee_max_dyn_points=points)
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    configs = [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, points)
    ]
    return system, options, configs


def _pure_dyn_system(n_nodes: int, seed: int):
    """A Fig. 9 system with its TT graphs collapsed onto single nodes.

    Every time-triggered graph keeps its SCS tasks (so the nodes retain
    rich static busy patterns -- the raw material of the dominance
    tables) but is remapped onto the node that already hosts most of its
    tasks, turning its ST messages into same-node precedences.  The
    resulting application sends **only DYN messages**, so the schedule
    key drops ``gd_cycle`` and the whole DYN-length sweep shares one
    schedule-cache entry -- the workload where a per-availability
    construction amortises across every candidate.
    """
    import dataclasses
    from collections import Counter

    from repro.model.application import Application
    from repro.model.graph import TaskGraph
    from repro.model.system import System

    base = paper_suite(n_nodes, count=1, seed=seed)[0]
    graphs = []
    for g in base.application.graphs:
        if not any(m.is_static for m in g.messages):
            graphs.append(g)
            continue
        counts = Counter(t.node for t in g.tasks)
        target = max(sorted(counts), key=lambda n: counts[n])
        tasks = tuple(dataclasses.replace(t, node=target) for t in g.tasks)
        precedences = tuple(g.precedences) + tuple(
            (m.sender, r) for m in g.messages for r in m.receivers
        )
        graphs.append(
            TaskGraph(
                name=g.name,
                period=g.period,
                deadline=g.deadline,
                tasks=tasks,
                messages=(),
                precedences=precedences,
            )
        )
    app = Application(base.application.name + "_pure_dyn", tuple(graphs))
    return System(base.nodes, app)


def _pure_dyn_configs():
    n_nodes = env_int("REPRO_BENCH_DOM_NODES", 4)
    # 256 points (up from 96): wide batches are where the array backend's
    # lockstep evaluation amortises, and the longer per-mode samples keep
    # the asserted ratios out of scheduler-noise territory on busy hosts.
    points = env_int(
        "REPRO_BENCH_DOM_POINTS", 512 if full_scale() else 256
    )
    system = _pure_dyn_system(n_nodes, seed=23)
    assert not tuple(system.application.st_messages()), "scenario must be pure-DYN"
    options = BusOptimisationOptions(ee_max_dyn_points=points)
    st_nodes = system.st_sender_nodes()
    slot = min_static_slot(system, options) if st_nodes else 0
    lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
    configs = [
        basic_configuration(system, n, options)
        for n in sweep_lengths(lo, hi, points)
    ]
    return system, configs


def _dominance_stats(context: AnalysisContext) -> tuple:
    """(maximal, dominated) instant counts across the context's cached
    availability patterns (dominance tables that were actually built)."""
    maximal = dominated = 0
    for entry in context._schedule_cache.values():
        if entry.availability is None:
            continue
        for availability in entry.availability.values():
            dom = availability.instant_advance_tables().dominance
            if dom is not None:
                maximal += len(dom.maximal_order)
                dominated += len(dom.dominated_order)
    return maximal, dominated


def run_pure_dyn():
    """Time the dominance kernel against the pinned PR 3 path on the
    pure-DYN sweep; cached across test functions."""
    if "pure_dyn" in _cache:
        return _cache["pure_dyn"]
    system, configs = _pure_dyn_configs()

    warm_ctx_holder = []

    def _make_warm():
        ctx = AnalysisContext(system)  # default: dominance="on"
        warm_ctx_holder.append(ctx)
        return ctx.analyse

    def _make_batch(backend):
        def make():
            ctx = AnalysisContext(system, AnalysisOptions(backend=backend))

            def run(cfgs):
                return ctx.analyse_batch(cfgs)

            run.batched = True
            return run

        return make

    # Eight interleaved rounds (up from the default six): the numpy
    # generation's asserted floor is a 2x ratio between two sub-100ms
    # sweeps, which needs a little more best-of convergence than the
    # few-percent pinned-reference ratios.
    makes = {
        "pr3_warm": lambda: Pr3WarmReference(system).analyse,
        "warm": _make_warm,
        "numpy_batch": _make_batch("numpy"),
    }
    if native_or_none() is not None:
        makes["native_batch"] = _make_batch("native")
    timed = _time_interleaved(makes, configs, repeats=8)
    pr3_s, pr3_results = timed["pr3_warm"]
    warm_s, warm_results = timed["warm"]
    numpy_s, numpy_results = timed["numpy_batch"]
    native_s, native_results = timed.get("native_batch", (None, None))

    # Correctness: the dominance path against the dominance-off oracle,
    # and the "verify" cross-checks (dominance and backend) counting
    # divergences in-line.
    off_ctx = AnalysisContext(system, AnalysisOptions(dominance="off"))
    off_results = [off_ctx.analyse(c) for c in configs]
    verify_ctx = AnalysisContext(system, AnalysisOptions(dominance="verify"))
    for c in configs:
        verify_ctx.analyse(c)
    backend_verify_ctx = AnalysisContext(
        system, AnalysisOptions(backend="verify")
    )
    backend_verify_ctx.analyse_batch(configs)

    out = {
        "system": system,
        "configs": configs,
        "seconds": {
            "pr3_warm": pr3_s,
            "warm": warm_s,
            "numpy_batch": numpy_s,
            "native_batch": native_s,
        },
        "results": {
            "pr3_warm": pr3_results,
            "warm": warm_results,
            "numpy_batch": numpy_results,
            "native_batch": native_results,
            "off": off_results,
        },
        "divergences": verify_ctx.dominance_divergences,
        "backend_divergences": backend_verify_ctx.backend_divergences,
        "dominance_stats": _dominance_stats(warm_ctx_holder[0]),
    }
    _cache["pure_dyn"] = out
    return out


def _signature(result: AnalysisResult) -> tuple:
    return (
        result.feasible,
        result.schedulable,
        result.converged,
        result.failure,
        None if result.cost is None else result.cost.value,
        tuple(sorted(result.wcrt.items())),
    )


def _time_best(make_analyse, configs, repeats=3):
    """Best-of-*repeats* sweep time; returns (seconds, first run's results).

    ``make_analyse`` builds a fresh analyser per repeat (warm state must
    not leak across repeats).  The speedup *ratios* asserted below
    compare modes that each take well under a second, so a single timing
    sample is at the mercy of scheduler noise; best-of-3 keeps the
    comparison honest without inflating the bench's runtime.
    """
    best_s = None
    results = None
    for _ in range(max(1, repeats)):
        analyse = make_analyse()
        t0 = time.perf_counter()
        out = [analyse(c) for c in configs]
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s = elapsed
        if results is None:
            results = out
    return best_s, results


def _time_interleaved(makes, configs, repeats=6):
    """Best-of-*repeats* per mode, with the modes interleaved per round.

    Timing the modes back-to-back in blocks lets slow host drift (CPU
    governor ramps, co-tenant load) land entirely on whichever mode owns
    the slow window, which is exactly what a few-percent ratio assertion
    cannot afford.  Interleaving samples every mode in every epoch, so
    the per-mode best is taken over comparable conditions.  Noise on a
    shared host only ever *inflates* a sample, so the best-of floor
    converges to the true cost as rounds accumulate -- six rounds keep
    the few-percent ratios stable on a loaded 1-CPU container.  Returns
    ``{mode: (seconds, first run's results)}``.

    A make may return a callable with a truthy ``batched`` attribute;
    it is then handed the whole config list in one call (the array
    backend's sweep protocol) instead of being mapped per config, so
    its timing includes the one-off lowering, exactly as a campaign
    pays it.
    """
    best = {key: None for key in makes}
    results = {key: None for key in makes}
    for _ in range(max(1, repeats)):
        for key, make_analyse in makes.items():
            analyse = make_analyse()
            t0 = time.perf_counter()
            if getattr(analyse, "batched", False):
                out = analyse(configs)
            else:
                out = [analyse(c) for c in configs]
            elapsed = time.perf_counter() - t0
            if best[key] is None or elapsed < best[key]:
                best[key] = elapsed
            if results[key] is None:
                results[key] = out
    return {key: (best[key], results[key]) for key in makes}


def run_modes():
    """Time all modes over the sweep; cached across test functions."""
    if "modes" in _cache:
        return _cache["modes"]
    system, options, configs = _sweep_configs()

    # Untimed warm-up pass: the first sweep of a fresh process runs with
    # a cold allocator/branch-predictor (and, on busy hosts, a ramping
    # CPU governor), which would systematically penalise whichever mode
    # happens to be timed first.  The speedup *ratios* asserted below
    # compare modes separated by a few percent, so burn the drift here.
    warmup = AnalysisContext(system)
    for c in configs:
        warmup.analyse(c)

    t0 = time.perf_counter()
    seed_results = [seed_reference_analyse(system, c) for c in configs]
    seed_s = time.perf_counter() - t0

    timed = _time_interleaved(
        {
            "pr1_warm": lambda: Pr1WarmReference(system).analyse,
            "pr2_warm": lambda: Pr2WarmReference(system).analyse,
            "pr3_warm": lambda: Pr3WarmReference(system).analyse,
            "cold": lambda: (lambda c: analyse_system(system, c)),
            "warm": lambda: AnalysisContext(system).analyse,
        },
        configs,
    )
    pr1_s, pr1_results = timed["pr1_warm"]
    pr2_s, pr2_results = timed["pr2_warm"]
    pr3_s, pr3_results = timed["pr3_warm"]
    cold_s, cold_results = timed["cold"]
    warm_s, warm_results = timed["warm"]

    workers = env_int("REPRO_BENCH_INC_WORKERS", min(8, os.cpu_count() or 1))
    import dataclasses

    par_options = dataclasses.replace(options, parallel_workers=workers)
    evaluator = Evaluator(system, par_options)
    t0 = time.perf_counter()
    par_results = evaluator.analyse_many(configs)
    par_s = time.perf_counter() - t0
    evaluator.close()

    modes = {
        "system": system,
        "configs": configs,
        "workers": workers,
        "evaluator": evaluator,
        "results": {
            "seed": (seed_s, seed_results),
            "pr1_warm": (pr1_s, pr1_results),
            "pr2_warm": (pr2_s, pr2_results),
            "pr3_warm": (pr3_s, pr3_results),
            "cold": (cold_s, cold_results),
            "warm": (warm_s, warm_results),
            "parallel": (par_s, par_results),
        },
    }
    _cache["modes"] = modes
    return modes


def test_incremental_analysis_identical_and_fast():
    modes = run_modes()
    results = modes["results"]
    n = len(modes["configs"])

    # Correctness first: every mode bit-identical to the seed reference.
    seed_sigs = [_signature(r) for r in results["seed"][1]]
    for mode in ("pr1_warm", "pr2_warm", "pr3_warm", "cold", "warm",
                 "parallel"):
        sigs = [_signature(r) for r in results[mode][1]]
        assert sigs == seed_sigs, f"{mode} diverged from the seed reference"

    seed_s = results["seed"][0]
    pr1_s = results["pr1_warm"][0]
    pr2_s = results["pr2_warm"][0]
    pr3_s = results["pr3_warm"][0]
    warm_s = results["warm"][0]
    cold_s = results["cold"][0]
    par_s = results["parallel"][0]
    pure_dyn = run_pure_dyn()
    pd_n = len(pure_dyn["configs"])
    pd_pr3_s = pure_dyn["seconds"]["pr3_warm"]
    pd_warm_s = pure_dyn["seconds"]["warm"]
    pd_numpy_s = pure_dyn["seconds"]["numpy_batch"]
    pd_native_s = pure_dyn["seconds"]["native_batch"]
    pd_maximal, pd_dominated = pure_dyn["dominance_stats"]
    have_native = native_or_none() is not None
    if have_native:
        st_heavy = run_st_heavy_backends()
        sh_n = len(st_heavy["configs"])
        sh_warm_s = st_heavy["seconds"]["warm"]
        sh_numpy_s = st_heavy["seconds"]["numpy_batch"]
        sh_native_s = st_heavy["seconds"]["native_batch"]
    payload = {
        "workload": {
            "sweep_points": n,
            "n_nodes": env_int("REPRO_BENCH_INC_NODES", 4),
            "parallel_workers": modes["workers"],
            "cpu_count": os.cpu_count(),
        },
        "seconds": {
            "seed_behaviour": round(seed_s, 4),
            "pr1_warm": round(pr1_s, 4),
            "pr2_warm": round(pr2_s, 4),
            "pr3_warm": round(pr3_s, 4),
            "cold_context": round(cold_s, 4),
            "warm_context": round(warm_s, 4),
            "parallel": round(par_s, 4),
        },
        "analyses_per_second": {
            "seed_behaviour": round(n / seed_s, 2),
            "pr1_warm": round(n / pr1_s, 2),
            "pr2_warm": round(n / pr2_s, 2),
            "pr3_warm": round(n / pr3_s, 2),
            "cold_context": round(n / cold_s, 2),
            "warm_context": round(n / warm_s, 2),
            "parallel": round(n / par_s, 2),
        },
        "speedup_vs_seed": {
            "pr1_warm": round(seed_s / pr1_s, 2),
            "pr2_warm": round(seed_s / pr2_s, 2),
            "pr3_warm": round(seed_s / pr3_s, 2),
            "cold_context": round(seed_s / cold_s, 2),
            "warm_context": round(seed_s / warm_s, 2),
            "parallel": round(seed_s / par_s, 2),
        },
        "warm_vs_pr1_warm": round(pr1_s / warm_s, 2),
        "warm_vs_pr2_warm": round(pr2_s / warm_s, 2),
        "warm_vs_pr3_warm": round(pr3_s / warm_s, 2),
        # The dominance scenario: a pure-DYN sweep (no ST messages, one
        # shared schedule-cache entry) where the pattern-level tables
        # amortise across every candidate.
        "pure_dyn": {
            "sweep_points": pd_n,
            "seconds": {
                "pr3_warm": round(pd_pr3_s, 4),
                "warm_context": round(pd_warm_s, 4),
                "numpy_batch": round(pd_numpy_s, 4),
                "native_batch": (
                    round(pd_native_s, 4) if have_native else None
                ),
            },
            "warm_vs_pr3_warm": round(pd_pr3_s / pd_warm_s, 2),
            "numpy_batch_vs_warm": round(pd_warm_s / pd_numpy_s, 2),
            "native_batch_vs_warm": (
                round(pd_warm_s / pd_native_s, 2) if have_native else None
            ),
            "native_batch_vs_numpy": (
                round(pd_numpy_s / pd_native_s, 2) if have_native else None
            ),
            "dominated_instants": pd_dominated,
            "maximal_instants": pd_maximal,
            "dominance_verify_divergences": pure_dyn["divergences"],
            "backend_verify_divergences": pure_dyn["backend_divergences"],
        },
        # The native backend's headline shape: singleton-lane groups on
        # the ST-heavy sweep (every cycle length a distinct schedule).
        "st_heavy_backends": (
            {
                "sweep_points": sh_n,
                "seconds": {
                    "warm_context": round(sh_warm_s, 4),
                    "numpy_batch": round(sh_numpy_s, 4),
                    "native_batch": round(sh_native_s, 4),
                },
                "numpy_batch_vs_warm": round(sh_warm_s / sh_numpy_s, 2),
                "native_batch_vs_warm": round(sh_warm_s / sh_native_s, 2),
            }
            if have_native
            else None
        ),
    }
    report_json("BENCH_incremental_analysis", payload)
    report(
        "bench_incremental_analysis",
        [
            "Incremental analysis engine: OBC/EE DYN-length sweep "
            f"({n} points, 1 system)",
            f"{'mode':>14} | {'seconds':>8} | {'analyses/s':>10} | {'vs seed':>8}",
        ]
        + [
            f"{mode:>14} | {payload['seconds'][key]:>8.2f} | "
            f"{payload['analyses_per_second'][key]:>10.1f} | "
            f"{payload['speedup_vs_seed'].get(key, 1.0):>7.2f}x"
            for mode, key in (
                ("seed", "seed_behaviour"),
                ("pr1_warm", "pr1_warm"),
                ("pr2_warm", "pr2_warm"),
                ("pr3_warm", "pr3_warm"),
                ("cold", "cold_context"),
                ("warm", "warm_context"),
                ("parallel", "parallel"),
            )
        ]
        + [
            "warm shares one AnalysisContext across the sweep; parallel adds "
            f"{modes['workers']} workers on {os.cpu_count()} CPU(s)",
            f"warm vs PR 1 warm path: {pr1_s / warm_s:.2f}x "
            "(retimable schedule plan + certified fix-point warm starts)",
            f"warm vs PR 2 warm path: {pr2_s / warm_s:.2f}x "
            "(FPS instant pruning + hoisted interferer rows + monotone "
            "validation floor)",
            f"warm vs PR 3 warm path: {pr3_s / warm_s:.2f}x on this "
            "ST-heavy sweep (fresh schedule per cycle length)",
            f"pure-DYN sweep ({pd_n} points, one shared schedule): warm vs "
            f"PR 3 warm path {pd_pr3_s / pd_warm_s:.2f}x -- pattern-level "
            f"dominance elides {pd_dominated}/{pd_maximal + pd_dominated} "
            "instants once per availability",
            f"numpy batched backend on the pure-DYN sweep: "
            f"{pd_warm_s / pd_numpy_s:.2f}x vs the warm Python path "
            "(one vectorized fix point, all candidates in lockstep)",
        ]
        + (
            [
                f"native compiled backend: {pd_warm_s / pd_native_s:.2f}x "
                f"vs warm Python on the pure-DYN sweep "
                f"({pd_numpy_s / pd_native_s:.2f}x vs numpy); "
                f"{sh_warm_s / sh_native_s:.2f}x vs warm Python on the "
                f"ST-heavy singleton-lane sweep ({sh_n} points)",
            ]
            if have_native
            else ["native compiled backend: repro._native not built, skipped"]
        ),
    )

    # The headline claim: a warm context beats the seed behaviour >= 3x.
    assert seed_s / warm_s >= 3.0, (
        f"warm context only {seed_s / warm_s:.2f}x faster than seed behaviour"
    )
    # PR 2's claim: the retimable schedule plan + certified busy-window
    # warm starts beat the pinned PR 1 warm path >= 2x on this ST-heavy
    # DYN sweep (11 ST messages: every cycle length is a distinct
    # schedule, so PR 1 rebuilt each from scratch).
    assert pr1_s / warm_s >= 2.0, (
        f"warm context only {pr1_s / warm_s:.2f}x faster than the PR 1 warm path"
    )
    # PR 3's claim: the third-generation kernel (incremental per-instant
    # bound, hoisted interferer rows, per-replay lookup hoisting,
    # monotone validation floor) beats the pinned PR 2 warm path
    # >= 1.3x on the same sweep.
    assert pr2_s / warm_s >= 1.3, (
        f"warm context only {pr2_s / warm_s:.2f}x faster than the PR 2 warm path"
    )
    # PR 4's no-regression claim: lazily-built dominance tables must not
    # cost anything measurable on this ST-heavy sweep, where every cycle
    # length gets a fresh schedule (and hence fresh availability
    # patterns whose construction is barely amortised).
    assert pr3_s / warm_s >= 0.97, (
        f"dominance tables regressed the ST-heavy sweep: warm is "
        f"{pr3_s / warm_s:.2f}x of the PR 3 warm path"
    )


def test_dominance_amortises_on_pure_dyn_sweep():
    """PR 4's claim: on a pure-DYN sweep (one shared schedule, so one
    dominance construction for the whole sweep) the dominance kernel
    beats the pinned PR 3 warm path >= 1.1x, bit-identically."""
    pure_dyn = run_pure_dyn()
    off_sigs = [_signature(r) for r in pure_dyn["results"]["off"]]
    for mode in ("pr3_warm", "warm"):
        sigs = [_signature(r) for r in pure_dyn["results"][mode]]
        assert sigs == off_sigs, f"{mode} diverged from the dominance-off oracle"
    assert pure_dyn["divergences"] == 0, (
        "dominance='verify' caught divergences on the pure-DYN sweep"
    )
    maximal, dominated = pure_dyn["dominance_stats"]
    assert dominated > 0, "scenario exercises no dominated instants"
    pr3_s = pure_dyn["seconds"]["pr3_warm"]
    warm_s = pure_dyn["seconds"]["warm"]
    assert pr3_s / warm_s >= 1.1, (
        f"dominance kernel only {pr3_s / warm_s:.2f}x faster than the "
        "PR 3 warm path on the pure-DYN sweep"
    )


def test_array_backend_identical_and_fast():
    """The array backend's claim: the batched numpy sweep is
    bit-identical to the Python oracle (signatures, wcrt dicts including
    insertion order, costs) and >= 2x faster than the warm Python path
    -- the PR 4-generation engine -- on the pure-DYN sweep, with the
    in-line ``backend='verify'`` cross-check reporting zero
    divergences."""
    pure_dyn = run_pure_dyn()
    off_sigs = [_signature(r) for r in pure_dyn["results"]["off"]]
    numpy_results = pure_dyn["results"]["numpy_batch"]
    assert [_signature(r) for r in numpy_results] == off_sigs, (
        "numpy backend diverged from the Python oracle"
    )
    for py_r, np_r in zip(pure_dyn["results"]["warm"], numpy_results):
        assert py_r.wcrt == np_r.wcrt, "wcrt values diverged"
        assert list(py_r.wcrt) == list(np_r.wcrt), (
            "wcrt insertion order diverged"
        )
        assert py_r.cost == np_r.cost, "cost breakdowns diverged"
    assert pure_dyn["backend_divergences"] == 0, (
        "backend='verify' caught divergences on the pure-DYN sweep"
    )
    warm_s = pure_dyn["seconds"]["warm"]
    numpy_s = pure_dyn["seconds"]["numpy_batch"]
    assert warm_s / numpy_s >= 2.0, (
        f"numpy batched sweep only {warm_s / numpy_s:.2f}x faster than "
        "the warm Python path on the pure-DYN sweep"
    )


def run_st_heavy_backends():
    """Time warm Python vs the batched backends on the ST-heavy sweep.

    The Fig. 9 OBC/EE sweep sends 11 ST messages, so every cycle length
    is a distinct schedule key: the grouped backends see **singleton
    lanes**, the shape where the array kernels' per-op dispatch is pure
    overhead while the compiled backend still runs each lane's whole
    holistic fix point in C.  Cached across test functions.
    """
    if "st_heavy" in _cache:
        return _cache["st_heavy"]
    system, options, configs = _sweep_configs()

    # Same untimed warm-up rationale as ``run_modes``.
    warmup = AnalysisContext(system)
    for c in configs:
        warmup.analyse(c)

    def _make_batch(backend):
        def make():
            ctx = AnalysisContext(system, AnalysisOptions(backend=backend))

            def run(cfgs):
                return ctx.analyse_batch(cfgs)

            run.batched = True
            return run

        return make

    makes = {
        "warm": lambda: AnalysisContext(system).analyse,
        "numpy_batch": _make_batch("numpy"),
    }
    if native_or_none() is not None:
        makes["native_batch"] = _make_batch("native")
    timed = _time_interleaved(makes, configs, repeats=8)
    out = {
        "system": system,
        "configs": configs,
        "seconds": {key: timed[key][0] for key in makes},
        "results": {key: timed[key][1] for key in makes},
    }
    _cache["st_heavy"] = out
    return out


def test_native_backend_identical_and_fast():
    """The compiled backend's claims: bit identity on both sweep shapes,
    >= 2x over the warm Python path on the ST-heavy singleton-lane
    sweep, and at least parity with the numpy kernels on the wide
    pure-DYN batch (where lockstep vectorization is at its best)."""
    if native_or_none() is None:
        print(
            "bench_incremental_analysis: repro._native not built; "
            "native backend claims skipped"
        )
        return
    st_heavy = run_st_heavy_backends()
    warm_sigs = [_signature(r) for r in st_heavy["results"]["warm"]]
    for mode in ("numpy_batch", "native_batch"):
        sigs = [_signature(r) for r in st_heavy["results"][mode]]
        assert sigs == warm_sigs, (
            f"{mode} diverged from the warm Python path on the ST-heavy sweep"
        )

    pure_dyn = run_pure_dyn()
    off_sigs = [_signature(r) for r in pure_dyn["results"]["off"]]
    native_results = pure_dyn["results"]["native_batch"]
    assert [_signature(r) for r in native_results] == off_sigs, (
        "native backend diverged from the Python oracle"
    )
    for py_r, nat_r in zip(pure_dyn["results"]["warm"], native_results):
        assert py_r.wcrt == nat_r.wcrt, "wcrt values diverged"
        assert list(py_r.wcrt) == list(nat_r.wcrt), (
            "wcrt insertion order diverged"
        )
        assert py_r.cost == nat_r.cost, "cost breakdowns diverged"
    assert pure_dyn["backend_divergences"] == 0, (
        "backend='verify' caught divergences with the native backend in "
        "the loop"
    )

    st_warm_s = st_heavy["seconds"]["warm"]
    st_native_s = st_heavy["seconds"]["native_batch"]
    assert st_warm_s / st_native_s >= 2.0, (
        f"native backend only {st_warm_s / st_native_s:.2f}x faster than "
        "the warm Python path on the ST-heavy singleton-lane sweep"
    )
    pd_numpy_s = pure_dyn["seconds"]["numpy_batch"]
    pd_native_s = pure_dyn["seconds"]["native_batch"]
    assert pd_numpy_s / pd_native_s >= 1.0, (
        f"native backend fell behind the numpy kernels on the pure-DYN "
        f"sweep ({pd_numpy_s / pd_native_s:.2f}x)"
    )


def test_optimisers_identical_serial_vs_parallel():
    """Fixed-seed optimiser outcomes are byte-identical with the pool on."""
    import dataclasses

    from repro.core import (
        GAOptions,
        SAOptions,
        optimise_bbc,
        optimise_ga,
        optimise_obc,
        optimise_sa,
    )

    system = paper_suite(3, count=1, seed=23)[0]
    serial = BusOptimisationOptions(
        max_dyn_points=16,
        ee_max_dyn_points=48,
        cf_candidates=64,
        max_extra_static_slots=1,
        max_slot_size_steps=1,
    )
    parallel = dataclasses.replace(serial, parallel_workers=2)

    def outcome(result):
        cfg = result.config
        return (
            result.cost,
            result.schedulable,
            result.evaluations,
            result.cache_hits,
            None if cfg is None else cfg.cache_key(),
            result.trace,
        )

    runners = (
        ("BBC", lambda o: optimise_bbc(system, o)),
        ("OBC/EE", lambda o: optimise_obc(system, o, "exhaustive")),
        ("OBC/CF", lambda o: optimise_obc(system, o, "curvefit")),
        ("SA", lambda o: optimise_sa(
            system, o, SAOptions(iterations=60, seed=9, restarts=2))),
        ("GA", lambda o: optimise_ga(
            system, o, GAOptions(population=6, generations=3, seed=5))),
    )
    for name, run in runners:
        assert outcome(run(serial)) == outcome(run(parallel)), (
            f"{name}: parallel run diverged from serial at fixed seed"
        )


if __name__ == "__main__":
    test_incremental_analysis_identical_and_fast()
    test_dominance_amortises_on_pure_dyn_sweep()
    test_array_backend_identical_and_fast()
    test_native_backend_identical_and_fast()
    test_optimisers_identical_serial_vs_parallel()
    print("bench_incremental_analysis: all checks passed")
