"""Lightweight documentation checker (wired into tier-1 via tests/test_docs.py).

The architecture documents under ``docs/`` point into the codebase with
backticked dotted names (```repro.analysis.fps.seeded_busy_window```),
backticked repo paths (```src/repro/analysis/context.py```),
backticked ``module:symbol`` pointers (```benchmarks/_report.py:report```
or ```repro.analysis.fps:seeded_busy_window```) and relative markdown
links.  Stale pointers are the classic way architecture docs rot, so
this checker verifies, for every documentation file:

* every backticked ``repro.*`` dotted name imports (module) or resolves
  (module attribute, class attribute one level deep);
* every backticked token that looks like a repo path exists;
* every backticked ``module:symbol`` pointer resolves its symbol --
  dotted modules through import + ``getattr``, ``*.py`` paths through a
  (side-effect-free) AST scan for the named top-level function, class,
  assignment or ``Class.attribute``;
* every relative markdown link resolves, and a ``#anchor`` fragment
  matches a heading slug of the target document.

Run directly (``python benchmarks/check_docs.py``) for a report, or let
``tests/test_docs.py`` fail tier-1 on the first stale pointer.
"""

from __future__ import annotations

import ast
import importlib
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files under the checker's contract.
DOC_FILES = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/ANALYSIS.md",
    "benchmarks/README.md",
)

_DOTTED = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
_PATHISH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.(?:py|md|json|ini|txt))`")
#: ``module:symbol`` pointers: the module half is either a ``*.py`` repo
#: path or a dotted module name; the symbol half is a dotted attribute
#: chain (``function``, ``Class``, ``Class.method``).
_MOD_SYMBOL = re.compile(
    r"`([A-Za-z0-9_./-]+\.py|[A-Za-z_][\w.]*):"
    r"([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`"
)
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _check_dotted(name: str) -> str:
    """Empty string when *name* resolves; the failure reason otherwise."""
    parts = name.split(".")
    # Longest importable module prefix, then attribute-chain the rest.
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError as exc:
            return f"resolved module {module_name!r} but {exc}"
        return ""
    return "no importable module prefix"


def _ast_symbols(source_path: Path) -> dict:
    """Top-level names defined by a Python file, without importing it.

    Maps each top-level function/class/assignment name to the set of
    one-level attribute names it defines (methods and class-body
    assignments for classes, empty otherwise) -- enough to resolve
    ``symbol`` and ``Class.attribute`` pointers into scripts that are
    not importable as modules (or whose import would run a benchmark).
    """
    tree = ast.parse(source_path.read_text(encoding="utf-8"))
    symbols: dict = {}

    def _targets(node):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    yield t.id
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            yield node.target.id

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols[node.name] = set()
        elif isinstance(node, ast.ClassDef):
            members = set()
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    members.add(sub.name)
                else:
                    members.update(_targets(sub))
            symbols[node.name] = members
        else:
            for name in _targets(node):
                symbols[name] = set()
    return symbols


def _check_mod_symbol(module: str, symbol: str, doc_dir: Path) -> str:
    """Empty string when ``module:symbol`` resolves; the reason otherwise.

    ``module`` is a ``*.py`` path (relative to the repo root, to
    ``src/``, or to the document's directory; resolved by AST scan) or a
    dotted module name (resolved by import + attribute chain).
    """
    if module.endswith(".py"):
        for base in (REPO_ROOT, REPO_ROOT / "src", doc_dir):
            candidate = base / module
            if candidate.exists():
                break
        else:
            return f"file {module!r} does not exist"
        try:
            symbols = _ast_symbols(candidate)
        except SyntaxError as exc:  # pragma: no cover - repo code parses
            return f"cannot parse {module!r}: {exc}"
        top, _, attr = symbol.partition(".")
        if top not in symbols:
            return f"{module!r} defines no top-level {top!r}"
        if attr and attr not in symbols[top]:
            return f"{module}:{top} has no attribute {attr!r}"
        return ""
    return _check_dotted(f"{module}.{symbol}")


def check_file(path: Path) -> List[str]:
    """Problems found in one documentation file (empty = clean)."""
    problems: List[str] = []
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    text = path.read_text(encoding="utf-8")

    for match in _MOD_SYMBOL.finditer(text):
        reason = _check_mod_symbol(match.group(1), match.group(2), path.parent)
        if reason:
            problems.append(
                f"{rel}: stale symbol pointer "
                f"`{match.group(1)}:{match.group(2)}` ({reason})"
            )

    for match in _DOTTED.finditer(text):
        reason = _check_dotted(match.group(1))
        if reason:
            problems.append(f"{rel}: stale code pointer `{match.group(1)}` ({reason})")

    for match in _PATHISH.finditer(text):
        target = match.group(1)
        if target.startswith("repro/"):
            target = "src/" + target
        if not (REPO_ROOT / target).exists():
            problems.append(f"{rel}: backticked path `{match.group(1)}` does not exist")

    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        dest = (path.parent / base).resolve() if base else path
        if base and not dest.exists():
            problems.append(f"{rel}: broken link ({target})")
            continue
        if anchor and dest.suffix == ".md":
            slugs = {_slug(h) for h in _HEADING.findall(dest.read_text(encoding="utf-8"))}
            if anchor not in slugs:
                problems.append(f"{rel}: missing anchor ({target})")
    return problems


def check_all() -> List[str]:
    """Problems across every documentation file under the contract."""
    problems: List[str] = []
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            problems.append(f"{name}: documentation file missing")
            continue
        problems.extend(check_file(path))
    return problems


def main() -> int:
    problems = check_all()
    for problem in problems:
        print(problem)
    print(f"check_docs: {len(problems)} problem(s) across {len(DOC_FILES)} file(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
