"""Ablation: FPS-aware SCS placement (Fig. 2 line 11 / ref. [13]).

The paper's ``schedule_TT_task`` places each SCS task so the worst-case
response times of FPS activities grow least.  This ablation compares
the default earliest-fit placement against the FPS-aware spread
placement under identical BBC bus structures and reports the aggregate
FPS response times.

Expected: FPS-aware placement never increases the summed FPS response
times and typically reduces them (it breaks up the long SCS busy blocks
that ASAP packing creates at each period start).
"""

from repro.analysis import AnalysisOptions, ScheduleOptions, analyse_system
from repro.core import basic_configuration
from repro.core.search import BusOptimisationOptions, dyn_segment_bounds, min_static_slot
from repro.synth import paper_suite

from benchmarks._report import env_int, report


def fps_response_sum(system, config, fps_aware: bool):
    options = AnalysisOptions(
        schedule=ScheduleOptions(fps_aware=fps_aware, fps_candidates=4)
    )
    result = analyse_system(system, config, options)
    if not result.feasible:
        return None
    app = system.application
    return sum(
        result.wcrt[t.name] for t in app.tasks() if t.is_fps
    )


def run_ablation():
    count = env_int("REPRO_ABLATION_COUNT", 3)
    systems = paper_suite(3, count=count, seed=771)
    options = BusOptimisationOptions()
    rows = []
    for i, system in enumerate(systems):
        st_nodes = system.st_sender_nodes()
        slot = min_static_slot(system, options) if st_nodes else 0
        lo, hi = dyn_segment_bounds(system, len(st_nodes) * slot, options)
        config = basic_configuration(system, (lo + hi) // 2, options)
        asap = fps_response_sum(system, config, fps_aware=False)
        aware = fps_response_sum(system, config, fps_aware=True)
        rows.append((i, asap, aware))
    return rows


def test_fps_aware_placement_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [
        "ABLATION: SCS placement policy vs summed FPS response times",
        f"{'system':>6} {'earliest-fit':>14} {'fps-aware':>12} {'change':>9}",
    ]
    improved = 0
    comparable = 0
    for i, asap, aware in rows:
        if asap is None or aware is None:
            lines.append(f"{i:>6} {'infeasible':>14}")
            continue
        change = (aware - asap) / asap * 100.0 if asap else 0.0
        lines.append(f"{i:>6} {asap:>14} {aware:>12} {change:>8.1f}%")
        comparable += 1
        if aware <= asap:
            improved += 1
    lines.append(
        "expectation: fps-aware placement does not increase FPS response "
        "times on most systems"
    )
    report("ablation_placement", lines)

    assert comparable > 0
    assert improved >= comparable / 2
