/* repro._native -- compiled fix-point kernels (backend="native").
 *
 * Per-lane scalar transcription of AnalysisContext._fix_point and the
 * two busy-window recurrences (repro/analysis/dyn.py Eq. (3),
 * repro/analysis/fps.py staircase maximisation with the per-instant
 * pruning bound).  One lane = one candidate configuration; each lane
 * runs its entire holistic Gauss-Seidel iteration in C with no per-step
 * Python dispatch, which is exactly the case the numpy kernels cannot
 * accelerate (singleton-lane groups of ST-heavy sweeps).
 *
 * Bit-identity contract: every arithmetic step mirrors the Python
 * kernels statement for statement --
 *   - cdiv() equals Python's -(-a // b) for every a and b > 0
 *     (C division truncates toward zero, so the a <= 0 branch is
 *     already a ceiling);
 *   - genuine floor divisions (lf_total // theta, the staircase
 *     divmod) only ever see non-negative numerators, where C division
 *     is a floor;
 *   - certified warm-start seeds use -1 as the "no seed" sentinel
 *     (safe: thresholds compare seed > ct / seed > wcet with
 *     ct, wcet >= 0);
 *   - uncertified seeds (descending step or iteration-limit exit)
 *     restart the recurrence cold in place, matching the Python
 *     kernels' replay semantics;
 *   - the caller (analysis/backend/native.py) proves in unbounded
 *     Python arithmetic that no int64 intermediate can overflow
 *     before dispatching a batch here, and delegates any unsafe group
 *     to the numpy kernels instead.
 *
 * The module deliberately uses only the buffer protocol (no numpy
 * headers), so it builds against a bare CPython.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

#define NATIVE_MAGIC 0x4e41544956LL /* "NATIV" */
#define MAX_FIXPOINT_ITERATIONS 512
#define CAPSULE_NAME "repro._native.plan"

/* ceil(a / b) for b > 0, equal to Python's -(-a // b) for every a:
 * a > 0 is the classic (a - 1) / b + 1; a <= 0 truncates toward zero,
 * which IS the ceiling for non-positive numerators. */
static inline i64
cdiv(i64 a, i64 b)
{
    return a > 0 ? (a - 1) / b + 1 : a / b;
}

/* First index k with arr[k] > x -- Python's bisect_left(arr, x + 1).
 * The staircase guarantees x = rem < slack = arr[n - 1]; the clamp is
 * pure out-of-bounds defence. */
static inline i64
bisect_gt(const i64 *arr, i64 n, i64 x)
{
    i64 lo = 0, hi = n;
    while (lo < hi) {
        i64 mid = (lo + hi) >> 1;
        if (arr[mid] > x)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo < n ? lo : n - 1;
}

typedef struct {
    i64 n_instants;
    i64 slack;
    i64 period;
    i64 n_gaps;
    const i64 *instants;
    const i64 *before;
    const i64 *gap_ends;
    const i64 *through;
    const i64 *eval_order;
} Avail;

typedef struct {
    i64 kind; /* 0 = dyn, 1 = fps */
    i64 row;
    i64 own_sensitive;
    i64 n_deps;
    const i64 *deps; /* activity positions */
    /* dyn */
    i64 sender_row;
    i64 ct;
    i64 lower_slots;
    i64 frame_id;
    i64 largest;
    i64 max_adjusted;
    i64 n_hp;       /* rows of (period, is_ancestor, jitter_row) */
    i64 n_lf;       /* rows of (period, is_ancestor, jitter_row, adj) */
    const i64 *hp;
    const i64 *lf;
    /* fps */
    i64 release;
    i64 wcet;
    i64 n_preds;
    i64 n_int;      /* rows of (period, wcet, is_ancestor, jitter_row) */
    const i64 *preds;
    const i64 *rows;
    const Avail *av;
    /* seed bookkeeping: offset into the per-run seed pool */
    i64 seed_off;
    i64 seed_len;
} Act;

typedef struct {
    i64 n_rows;
    i64 n_acts;
    i64 n_avs;
    i64 n_fault;
    const i64 *w0;
    const i64 *fault_rows;
    Avail *avs;
    Act *acts;
    i64 seed_total;
    i64 max_instants;
    i64 *data; /* owned copy of the blob the pointers above index into */
} Plan;

/* Per-activity mutable state of one lane's fix point. */
typedef struct {
    i64 has;
    i64 dirty;
    i64 w_written;
    i64 last_own;
    i64 last_w;
    i64 last_ok;
    /* per-lane derived DYN scalars (_dyn_views arithmetic) */
    i64 lam;
    i64 theta;
    i64 sigma;
    i64 sendable;
    i64 extra;
} AState;

static void
plan_free(Plan *plan)
{
    if (!plan)
        return;
    free(plan->avs);
    free(plan->acts);
    free(plan->data);
    free(plan);
}

static void
plan_destructor(PyObject *capsule)
{
    plan_free((Plan *)PyCapsule_GetPointer(capsule, CAPSULE_NAME));
}

/* ------------------------------------------------------------------ */
/* blob parsing                                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    const i64 *p;
    Py_ssize_t n; /* remaining words */
} Cur;

static int
take(Cur *c, i64 k, const i64 **out)
{
    if (k < 0 || c->n < k)
        return -1;
    *out = c->p;
    c->p += k;
    c->n -= k;
    return 0;
}

static int
take1(Cur *c, i64 *out)
{
    const i64 *p;
    if (take(c, 1, &p))
        return -1;
    *out = *p;
    return 0;
}

static PyObject *
bad_blob(void)
{
    PyErr_SetString(PyExc_ValueError, "malformed native plan blob");
    return NULL;
}

static PyObject *
native_build_plan(PyObject *self, PyObject *args)
{
    Py_buffer blob;
    if (!PyArg_ParseTuple(args, "y*", &blob))
        return NULL;
    if (blob.len % 8 != 0) {
        PyBuffer_Release(&blob);
        return bad_blob();
    }
    Plan *plan = (Plan *)calloc(1, sizeof(Plan));
    if (!plan) {
        PyBuffer_Release(&blob);
        return PyErr_NoMemory();
    }
    plan->data = (i64 *)malloc(blob.len ? (size_t)blob.len : 8);
    if (!plan->data) {
        PyBuffer_Release(&blob);
        plan_free(plan);
        return PyErr_NoMemory();
    }
    memcpy(plan->data, blob.buf, (size_t)blob.len);
    Cur c = {plan->data, blob.len / 8};
    PyBuffer_Release(&blob);

    i64 magic;
    if (take1(&c, &magic) || magic != NATIVE_MAGIC ||
        take1(&c, &plan->n_rows) || take1(&c, &plan->n_acts) ||
        take1(&c, &plan->n_avs) || take1(&c, &plan->n_fault) ||
        plan->n_rows < 0 || plan->n_acts < 0 || plan->n_avs < 0 ||
        plan->n_fault < 0)
        goto fail;
    if (take(&c, plan->n_rows, &plan->w0) ||
        take(&c, plan->n_fault, &plan->fault_rows))
        goto fail;
    for (i64 k = 0; k < plan->n_fault; k++)
        if (plan->fault_rows[k] < 0 || plan->fault_rows[k] >= plan->n_rows)
            goto fail;

    plan->avs = (Avail *)calloc(plan->n_avs ? plan->n_avs : 1, sizeof(Avail));
    plan->acts = (Act *)calloc(plan->n_acts ? plan->n_acts : 1, sizeof(Act));
    if (!plan->avs || !plan->acts) {
        plan_free(plan);
        return PyErr_NoMemory();
    }
    for (i64 v = 0; v < plan->n_avs; v++) {
        Avail *av = &plan->avs[v];
        if (take1(&c, &av->n_instants) || take1(&c, &av->slack) ||
            take1(&c, &av->period) || take1(&c, &av->n_gaps) ||
            av->n_instants < 0 || av->slack < 1 || av->n_gaps < 1)
            goto fail;
        if (take(&c, av->n_instants, &av->instants) ||
            take(&c, av->n_instants, &av->before) ||
            take(&c, av->n_gaps, &av->gap_ends) ||
            take(&c, av->n_gaps, &av->through) ||
            take(&c, av->n_instants, &av->eval_order))
            goto fail;
        for (i64 k = 0; k < av->n_instants; k++)
            if (av->eval_order[k] < 0 || av->eval_order[k] >= av->n_instants)
                goto fail;
        if (av->through[av->n_gaps - 1] != av->slack)
            goto fail;
    }
    for (i64 a = 0; a < plan->n_acts; a++) {
        Act *act = &plan->acts[a];
        if (take1(&c, &act->kind) || take1(&c, &act->row) ||
            take1(&c, &act->own_sensitive) || take1(&c, &act->n_deps) ||
            (act->kind != 0 && act->kind != 1) ||
            act->row < 0 || act->row >= plan->n_rows)
            goto fail;
        if (take(&c, act->n_deps, &act->deps))
            goto fail;
        for (i64 k = 0; k < act->n_deps; k++)
            if (act->deps[k] < 0 || act->deps[k] >= plan->n_acts)
                goto fail;
        if (act->kind == 0) {
            if (take1(&c, &act->sender_row) || take1(&c, &act->ct) ||
                take1(&c, &act->lower_slots) || take1(&c, &act->frame_id) ||
                take1(&c, &act->largest) || take1(&c, &act->max_adjusted) ||
                take1(&c, &act->n_hp) || take1(&c, &act->n_lf) ||
                act->sender_row < 0 || act->sender_row >= plan->n_rows)
                goto fail;
            if (take(&c, 3 * act->n_hp, &act->hp) ||
                take(&c, 4 * act->n_lf, &act->lf))
                goto fail;
            for (i64 k = 0; k < act->n_hp; k++)
                if (act->hp[3 * k] < 1 || act->hp[3 * k + 2] < 0 ||
                    act->hp[3 * k + 2] >= plan->n_rows)
                    goto fail;
            for (i64 k = 0; k < act->n_lf; k++)
                if (act->lf[4 * k] < 1 || act->lf[4 * k + 2] < 0 ||
                    act->lf[4 * k + 2] >= plan->n_rows)
                    goto fail;
            act->seed_off = plan->seed_total;
            act->seed_len = 1;
        } else {
            i64 av_index;
            if (take1(&c, &act->release) || take1(&c, &act->wcet) ||
                take1(&c, &av_index) || take1(&c, &act->n_preds) ||
                take1(&c, &act->n_int) ||
                av_index < 0 || av_index >= plan->n_avs)
                goto fail;
            act->av = &plan->avs[av_index];
            if (take(&c, act->n_preds, &act->preds) ||
                take(&c, 4 * act->n_int, &act->rows))
                goto fail;
            for (i64 k = 0; k < act->n_preds; k++)
                if (act->preds[k] < 0 || act->preds[k] >= plan->n_rows)
                    goto fail;
            for (i64 k = 0; k < act->n_int; k++)
                if (act->rows[4 * k] < 1 || act->rows[4 * k + 3] < 0 ||
                    act->rows[4 * k + 3] >= plan->n_rows)
                    goto fail;
            act->seed_off = plan->seed_total;
            act->seed_len = act->av->n_instants;
            if (act->av->n_instants > plan->max_instants)
                plan->max_instants = act->av->n_instants;
        }
        plan->seed_total += act->seed_len;
    }
    if (c.n != 0)
        goto fail;
    PyObject *capsule = PyCapsule_New(plan, CAPSULE_NAME, plan_destructor);
    if (!capsule)
        plan_free(plan);
    return capsule;
fail:
    plan_free(plan);
    return bad_blob();
}

/* ------------------------------------------------------------------ */
/* the DYN Eq. (3) recurrence (dyn.seeded_busy_window, "bound" fill)   */
/* ------------------------------------------------------------------ */

static void
eval_dyn(const Act *act, AState *s, const i64 *J, i64 own_j, i64 cap,
         i64 gd, i64 stb, i64 ms_len, i64 *seed_slot)
{
    i64 seed = seed_slot[0];
    i64 ct = act->ct;
    int seeded = seed > ct; /* -1 sentinel lands below every ct >= 0 */
    i64 t = seeded ? seed : ct;
    i64 w = 0;
    i64 lam = s->lam, theta = s->theta, sigma = s->sigma, extra = s->extra;
    i64 lower = act->lower_slots;
    i64 iter = 0;
    for (;;) {
        if (iter >= MAX_FIXPOINT_ITERATIONS) {
            if (seeded) { /* uncertified seed: replay cold */
                seeded = 0;
                t = ct;
                iter = 0;
                continue;
            }
            s->last_w = w;
            s->last_ok = 0;
            seed_slot[0] = w;
            return;
        }
        iter++;
        i64 hp_cycles = 0;
        for (i64 i = 0; i < act->n_hp; i++) {
            const i64 *r = act->hp + 3 * i;
            if (r[1]) { /* ancestor: offset-gated count */
                i64 slack = t + own_j - r[0];
                if (slack > 0)
                    hp_cycles += cdiv(slack, r[0]);
            } else {
                hp_cycles += cdiv(t + J[r[2]], r[0]);
            }
        }
        i64 lf_total = 0, lf_useful = 0;
        for (i64 i = 0; i < act->n_lf; i++) {
            const i64 *r = act->lf + 4 * i;
            i64 n;
            if (r[1]) {
                i64 slack = t + own_j - r[0];
                n = slack > 0 ? cdiv(slack, r[0]) : 0;
            } else {
                n = cdiv(t + J[r[2]], r[0]);
            }
            if (n > 0) { /* plan rows all carry adjusted > 0 */
                lf_total += r[3] * n;
                lf_useful += n;
            }
        }
        i64 lf_q = lf_total / theta; /* theta >= 1 on sendable lanes */
        i64 lf_cycles = lf_useful < lf_q ? lf_useful : lf_q;
        i64 leftover = lf_total - lf_cycles * theta;
        if (leftover < 0)
            leftover = 0;
        i64 fc = lower + leftover;
        if (fc > lam)
            fc = lam;
        w = sigma + (hp_cycles + lf_cycles + extra) * gd + stb + fc * ms_len;
        if (w >= cap) {
            s->last_w = cap;
            s->last_ok = 0;
            seed_slot[0] = t; /* pre-update window, as in Python */
            return;
        }
        if (w <= t) {
            if (seeded && w < t) { /* seed overshot: replay cold */
                seeded = 0;
                t = ct;
                iter = 0;
                continue;
            }
            s->last_w = w;
            s->last_ok = 1;
            seed_slot[0] = w;
            return;
        }
        t = w;
    }
}

/* ------------------------------------------------------------------ */
/* the FPS staircase maximisation (fps.seeded_busy_window,             */
/* prune=True / dominance=False -- value- and flag-exact vs both)      */
/* ------------------------------------------------------------------ */

static void
eval_fps(const Act *act, AState *s, const i64 *J, i64 own_j, i64 cap,
         i64 *seed_arr, i64 *new_seeds)
{
    const Avail *av = act->av;
    i64 n_instants = av->n_instants;
    i64 wcet = act->wcet;
    i64 slack = av->slack, period = av->period, n_gaps = av->n_gaps;
    const i64 *through = av->through, *gap_ends = av->gap_ends;
    i64 worst = 0;
    i64 conv_acc = 1;
    i64 bound_demand = -1, bound_activations = 0;
    for (i64 i = 0; i < n_instants; i++)
        new_seeds[i] = -1; /* pruned/unreached instants keep no seed */
    for (i64 oi = 0; oi < n_instants; oi++) {
        i64 idx = av->eval_order[oi];
        i64 t0 = av->instants[idx];
        i64 offset = av->before[idx];
        i64 seed = seed_arr[idx];
        if (worst > 0) {
            if (bound_demand < 0) {
                /* one shared interference evaluation at the worst
                 * window, reused until the worst grows */
                bound_demand = wcet;
                bound_activations = 0;
                for (i64 r = 0; r < act->n_int; r++) {
                    const i64 *row = act->rows + 4 * r;
                    i64 jit = row[2] ? own_j - row[0] : J[row[3]];
                    i64 sv = worst + jit;
                    if (sv > 0) {
                        i64 count = cdiv(sv, row[0]);
                        bound_demand += count * row[1];
                        bound_activations += count;
                    }
                }
            }
            if (bound_activations + 2 <= MAX_FIXPOINT_ITERATIONS) {
                i64 aa = offset + bound_demand - 1;
                i64 whole = aa / slack, rem = aa % slack;
                i64 k = bisect_gt(through, n_gaps, rem);
                i64 w_bound = whole * period + gap_ends[k]
                              - (through[k] - rem - 1) - t0;
                if (w_bound <= worst)
                    continue; /* instant provably cannot beat worst */
            }
        }
        int seeded = seed > wcet; /* -1 sentinel: never seeded */
        i64 demand = seeded ? seed : wcet;
        i64 window = 0;
        i64 iter = 0;
        i64 w_res, d_res, ok_res;
        for (;;) {
            if (iter >= MAX_FIXPOINT_ITERATIONS) {
                if (seeded) { /* uncertified seed: replay cold */
                    seeded = 0;
                    demand = wcet;
                    iter = 0;
                    continue;
                }
                w_res = window;
                ok_res = 0;
                d_res = demand;
                break;
            }
            iter++;
            i64 aa = offset + demand - 1;
            i64 whole = aa / slack, rem = aa % slack;
            i64 k = bisect_gt(through, n_gaps, rem);
            window = whole * period + gap_ends[k] - (through[k] - rem - 1)
                     - t0;
            if (window >= cap) {
                w_res = cap;
                ok_res = 0;
                d_res = demand;
                break;
            }
            i64 new_demand = wcet;
            for (i64 r = 0; r < act->n_int; r++) {
                const i64 *row = act->rows + 4 * r;
                i64 jit = row[2] ? own_j - row[0] : J[row[3]];
                i64 sv = window + jit;
                if (sv > 0)
                    new_demand += cdiv(sv, row[0]) * row[1];
            }
            if (new_demand == demand) {
                w_res = window;
                ok_res = 1;
                d_res = demand;
                break;
            }
            if (seeded && new_demand < demand) { /* seed overshot */
                seeded = 0;
                demand = wcet;
                iter = 0;
                continue;
            }
            demand = new_demand;
        }
        new_seeds[idx] = d_res;
        if (w_res >= cap) { /* whole maximisation returns capped */
            memcpy(seed_arr, new_seeds, (size_t)n_instants * sizeof(i64));
            s->last_w = cap;
            s->last_ok = 0;
            return;
        }
        if (w_res > worst) {
            worst = w_res;
            bound_demand = -1;
        }
        conv_acc = conv_acc && ok_res;
    }
    memcpy(seed_arr, new_seeds, (size_t)n_instants * sizeof(i64));
    s->last_w = worst;
    s->last_ok = conv_acc;
}

/* ------------------------------------------------------------------ */
/* the holistic Gauss-Seidel fix point, one lane at a time             */
/* ------------------------------------------------------------------ */

static void
run_lanes(const Plan *plan, const i64 *caps, const i64 *n_ms_v,
          const i64 *gd_v, const i64 *stb_v, i64 ms_len, i64 fault_k,
          i64 max_iters, i64 L, i64 *W, i64 *conv, i64 *J, i64 *seeds,
          i64 *new_seeds, AState *st)
{
    i64 n_rows = plan->n_rows;
    i64 n_acts = plan->n_acts;
    for (i64 lane = 0; lane < L; lane++) {
        i64 cap = caps[lane], n_ms = n_ms_v[lane];
        i64 gd = gd_v[lane], stb = stb_v[lane];
        i64 *Wl = W + lane * n_rows;
        for (i64 r = 0; r < n_rows; r++)
            Wl[r] = plan->w0[r];
        if (fault_k) {
            /* _fix_point's static k-error bump, before the first pass */
            i64 bump = fault_k * gd;
            for (i64 k = 0; k < plan->n_fault; k++) {
                i64 r = plan->fault_rows[k];
                i64 inflated = Wl[r] + bump;
                Wl[r] = inflated < cap ? inflated : cap;
            }
        }
        memset(J, 0, (size_t)n_rows * sizeof(i64));
        for (i64 a = 0; a < n_acts; a++) {
            const Act *act = &plan->acts[a];
            AState *as = &st[a];
            as->has = as->dirty = as->w_written = 0;
            as->last_own = as->last_w = as->last_ok = 0;
            if (act->kind == 0) {
                /* _dyn_views per-lane scalar derivations */
                i64 f = act->frame_id;
                i64 p_latest = n_ms - act->largest + 1;
                as->lam = p_latest - 1;
                as->theta = as->lam - f + 2;
                as->sendable = f <= p_latest;
                as->sigma = gd - stb - (f - 1) * ms_len;
                as->extra = 0;
                if (fault_k && as->sendable) {
                    i64 per_error =
                        act->max_adjusted <= 0
                            ? 1
                            : 2 + act->max_adjusted / as->theta;
                    as->extra = fault_k * per_error;
                }
            }
            i64 *sd = seeds + act->seed_off;
            for (i64 k = 0; k < act->seed_len; k++)
                sd[k] = -1;
        }
        i64 conv_flag = 1, finished = 0;
        for (i64 it = 0; it < max_iters; it++) {
            i64 changed = 0;
            for (i64 a = 0; a < n_acts; a++) {
                const Act *act = &plan->acts[a];
                AState *as = &st[a];
                i64 j;
                if (act->kind == 0) {
                    j = Wl[act->sender_row];
                } else {
                    j = act->release;
                    for (i64 k = 0; k < act->n_preds; k++) {
                        i64 v = Wl[act->preds[k]];
                        if (v > j)
                            j = v;
                    }
                }
                if (J[act->row] != j) {
                    J[act->row] = j;
                    changed = 1;
                    for (i64 k = 0; k < act->n_deps; k++)
                        st[act->deps[k]].dirty = 1;
                }
                if (!as->has || as->dirty ||
                    (act->own_sensitive && as->last_own != j)) {
                    if (act->kind == 0) {
                        if (as->sendable)
                            eval_dyn(act, as, J, j, cap, gd, stb, ms_len,
                                     seeds + act->seed_off);
                        else { /* never sendable: certain miss */
                            as->last_w = 0;
                            as->last_ok = 0;
                        }
                    } else {
                        eval_fps(act, as, J, j, cap, seeds + act->seed_off,
                                 new_seeds);
                    }
                    as->dirty = 0;
                    as->last_own = j;
                    as->has = 1;
                }
                conv_flag = conv_flag && as->last_ok;
                i64 value;
                if (act->kind == 0) {
                    if (as->sendable) {
                        value = j + as->last_w + act->ct;
                        if (value > cap)
                            value = cap;
                    } else {
                        value = cap;
                    }
                } else {
                    value = j + as->last_w;
                    if (value > cap)
                        value = cap;
                }
                /* first insertion into wcrt is always a change */
                if (!as->w_written || Wl[act->row] != value) {
                    Wl[act->row] = value;
                    as->w_written = 1;
                    changed = 1;
                }
            }
            if (!changed) {
                finished = 1;
                break;
            }
        }
        if (!finished) /* the Python for-else: exhaustion */
            conv_flag = 0;
        conv[lane] = conv_flag;
    }
}

static PyObject *
native_run_batch(PyObject *self, PyObject *args)
{
    PyObject *capsule;
    Py_buffer caps_b, nms_b, gd_b, stb_b, W_b, conv_b;
    long long ms_len, fault_k, max_iters;
    if (!PyArg_ParseTuple(args, "Oy*y*y*y*LLLw*w*", &capsule, &caps_b,
                          &nms_b, &gd_b, &stb_b, &ms_len, &fault_k,
                          &max_iters, &W_b, &conv_b))
        return NULL;
    PyObject *result = NULL;
    i64 *J = NULL, *seeds = NULL, *new_seeds = NULL;
    AState *st = NULL;
    Plan *plan = (Plan *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
    if (!plan)
        goto done;
    i64 L = (i64)(caps_b.len / 8);
    if (caps_b.len % 8 || nms_b.len != caps_b.len ||
        gd_b.len != caps_b.len || stb_b.len != caps_b.len ||
        conv_b.len != caps_b.len ||
        W_b.len != (Py_ssize_t)(L * plan->n_rows * 8)) {
        PyErr_SetString(PyExc_ValueError,
                        "run_batch buffer sizes disagree with the plan");
        goto done;
    }
    J = (i64 *)malloc((size_t)(plan->n_rows ? plan->n_rows : 1) * 8);
    seeds = (i64 *)malloc((size_t)(plan->seed_total ? plan->seed_total : 1)
                          * 8);
    new_seeds = (i64 *)malloc(
        (size_t)(plan->max_instants ? plan->max_instants : 1) * 8);
    st = (AState *)malloc((size_t)(plan->n_acts ? plan->n_acts : 1)
                          * sizeof(AState));
    if (!J || !seeds || !new_seeds || !st) {
        PyErr_NoMemory();
        goto done;
    }
    Py_BEGIN_ALLOW_THREADS
    run_lanes(plan, (const i64 *)caps_b.buf, (const i64 *)nms_b.buf,
              (const i64 *)gd_b.buf, (const i64 *)stb_b.buf, (i64)ms_len,
              (i64)fault_k, (i64)max_iters, L, (i64 *)W_b.buf,
              (i64 *)conv_b.buf, J, seeds, new_seeds, st);
    Py_END_ALLOW_THREADS
    result = Py_None;
    Py_INCREF(result);
done:
    free(J);
    free(seeds);
    free(new_seeds);
    free(st);
    PyBuffer_Release(&caps_b);
    PyBuffer_Release(&nms_b);
    PyBuffer_Release(&gd_b);
    PyBuffer_Release(&stb_b);
    PyBuffer_Release(&W_b);
    PyBuffer_Release(&conv_b);
    return result;
}

static PyMethodDef native_methods[] = {
    {"build_plan", native_build_plan, METH_VARARGS,
     "build_plan(blob: bytes) -> capsule\n\n"
     "Parse a packed int64 group-plan blob (see "
     "repro.analysis.backend.native) into the C plan the kernels run."},
    {"run_batch", native_run_batch, METH_VARARGS,
     "run_batch(plan, caps, n_minislots, gd_cycle, st_bus, ms_len, "
     "fault_k, max_holistic_iterations, W, conv) -> None\n\n"
     "Advance every lane's full holistic fix point; W is the (L, n_rows) "
     "int64 response-time buffer (filled in place), conv the per-lane "
     "convergence flags."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native",
    "Compiled fix-point kernels of AnalysisOptions.backend=\"native\".",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}
