"""Global static scheduling algorithm (Fig. 2 of the paper).

List scheduling over the SCS tasks and ST messages of the application:
a ready list holds every job whose predecessors are all scheduled; the
modified critical-path metric selects the next job; tasks are placed in
the earliest slack of their node, messages in the earliest static slot
instance of their sender's node with room left in the frame.

With ``fps_aware=True`` the placement of each SCS task additionally
evaluates a few candidate start times and keeps the one that disturbs
the FPS tasks of that node the least (Fig. 2, line 11) -- a node-local
approximation of the paper's holistic re-analysis, chosen so the OBC
design-space loops stay affordable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import FlexRayConfig
from repro.errors import SchedulingError
from repro.model.jobs import Job, expand_jobs
from repro.model.message import Message
from repro.model.system import System
from repro.model.task import Task
from repro.analysis.priorities import critical_path_priorities
from repro.analysis.schedule_table import ScheduleTable


@dataclass(frozen=True)
class ScheduleOptions:
    """Tunables of the static scheduler.

    Attributes
    ----------
    fps_aware:
        Evaluate several candidate start times per SCS task and keep the
        one minimising the node-local FPS response times (slower, closer
        to the paper's Fig. 2 line 11).
    fps_candidates:
        Number of candidate gaps examined when ``fps_aware``.
    horizon_factor:
        ST messages may be placed in slots up to
        ``horizon_factor * hyperperiod`` before scheduling fails; spilling
        past the hyper-period models a late slot in the following
        application cycle (it normally also means a deadline miss, which
        the cost function will report).
    """

    fps_aware: bool = False
    fps_candidates: int = 4
    horizon_factor: int = 4


def build_schedule(
    system: System,
    config: FlexRayConfig,
    options: ScheduleOptions = None,
    wcrt_estimates: Optional[Mapping[str, int]] = None,
    priorities: Optional[Mapping[str, int]] = None,
) -> ScheduleTable:
    """Build the static schedule table for *system* under *config*.

    ``wcrt_estimates`` supplies worst-case response times (relative to the
    graph release) of FPS tasks / DYN messages that SCS activities depend
    on; without an estimate such a dependency raises
    :class:`SchedulingError` (the paper's benchmark systems keep
    time-triggered and event-triggered graphs separate, so the situation
    only arises in mixed graphs).

    ``priorities`` optionally supplies precomputed critical-path
    priorities; they only depend on the bus speed parameters, so the
    incremental analysis engine computes them once per parameter set
    instead of once per candidate configuration.

    Implemented as ``SchedulePlan(system, options, priorities).replay
    (config, wcrt_estimates)``: the plan holds everything that does not
    depend on the candidate configuration's cycle geometry, so repeated
    analyses (a DYN-length sweep) construct it once and replay it per
    candidate.  A one-shot build and a replayed plan produce
    byte-identical tables by construction.
    """
    if priorities is None:
        priorities = critical_path_priorities(system.application, config)
    plan = SchedulePlan(system, options, priorities)
    return plan.replay(config, wcrt_estimates)


class _PlanJob:
    """Per-job record of a :class:`SchedulePlan`.

    ``pred_keys`` are the predecessor job keys placed in the table;
    ``ext_preds`` the names of event-triggered predecessors that need
    ``wcrt_estimates``; ``base`` the instance's period offset those
    estimates are relative to.
    """

    __slots__ = ("job", "pred_keys", "ext_preds", "base")

    def __init__(self, job, pred_keys, ext_preds, base):
        self.job = job
        self.pred_keys = pred_keys
        self.ext_preds = ext_preds
        self.base = base


class SchedulePlan:
    """Configuration-independent half of the global scheduling algorithm.

    The list scheduler of Fig. 2 pops jobs off a ready list ordered by
    the static key ``(-priority, release, name, instance)``; readiness is
    purely structural (a job becomes ready when its predecessors are
    *scheduled*, not at a point in time), so the pop **order** is fully
    determined by the task graphs and the critical-path priorities --
    never by where previous jobs were placed.  Everything that is
    invariant across candidate configurations sharing the bus-speed
    parameters lives here: the expanded job instances, the dependency
    keys and the scheduling order.  :meth:`replay` then performs only
    the placement arithmetic for one concrete configuration, producing a
    table byte-identical to a from-scratch :func:`build_schedule`.

    This is what makes the schedule representation *retimable* at the
    cache level: the incremental analysis engine caches one plan per
    bus-speed parameter set (``FlexRayConfig.static_key()`` alone, no
    cycle length) and derives each cycle length's table by replay,
    instead of re-running job expansion, priority assignment and ready
    -list ordering per candidate.
    """

    def __init__(
        self,
        system: System,
        options: Optional[ScheduleOptions],
        priorities: Mapping[str, int],
    ):
        self.system = system
        self.options = options or ScheduleOptions()
        app = system.application
        self.horizon = app.hyperperiod

        jobs = expand_jobs(app, scs_only=True, horizon=self.horizon)
        job_by_key: Dict[str, Job] = {j.key: j for j in jobs}

        # --- dependency bookkeeping (structural, config-free) ---------
        pending: Dict[str, int] = {}
        successors: Dict[str, List[str]] = {}
        preds: Dict[str, Tuple[List[str], List[str]]] = {}
        for j in jobs:
            pred_keys: List[str] = []
            ext_preds: List[str] = []
            for pred in j.graph.predecessors(j.name):
                pred_key = f"{pred}#{j.instance}"
                if pred_key in job_by_key:
                    pred_keys.append(pred_key)
                    successors.setdefault(pred_key, []).append(j.key)
                else:
                    ext_preds.append(pred)
            pending[j.key] = len(pred_keys)
            preds[j.key] = (pred_keys, ext_preds)

        # --- the list-scheduling order --------------------------------
        ready: List[tuple] = []
        for j in jobs:
            if pending[j.key] == 0:
                heapq.heappush(ready, _entry(j, priorities))
        order: List[_PlanJob] = []
        while ready:
            job = heapq.heappop(ready)[-1]
            pred_keys, ext_preds = preds[job.key]
            order.append(
                _PlanJob(
                    job=job,
                    pred_keys=tuple(pred_keys),
                    ext_preds=tuple(ext_preds),
                    base=job.instance * job.graph.period,
                )
            )
            for succ_key in successors.get(job.key, ()):  # TT_ready_list
                pending[succ_key] -= 1
                if pending[succ_key] == 0:
                    heapq.heappush(ready, _entry(job_by_key[succ_key], priorities))
        if len(order) != len(jobs):  # pragma: no cover - DAG guarantees progress
            placed = {rec.job.key for rec in order}
            missing = sorted(k for k in job_by_key if k not in placed)
            raise SchedulingError(f"jobs never became ready: {missing[:5]}")
        self.order: Tuple[_PlanJob, ...] = tuple(order)

    def replay(
        self,
        config: FlexRayConfig,
        wcrt_estimates: Optional[Mapping[str, int]] = None,
    ) -> ScheduleTable:
        """Place every job of the plan under *config*'s cycle geometry."""
        options = self.options
        system = self.system
        horizon = self.horizon
        table = ScheduleTable(config, horizon)
        finish_of = table.finish_of
        # Per-replay lookups: slot ownership and transmission times are
        # scanned per ST job otherwise (the replay places one job per
        # slot instance search, so these add up over a DYN sweep).
        st_slots: Dict[str, Tuple[int, ...]] = {}
        for rec in self.order:
            job = rec.job
            asap = job.release
            for pred_key in rec.pred_keys:
                finish = finish_of(pred_key)
                if finish is None:  # pragma: no cover - order invariant
                    raise SchedulingError(
                        f"predecessor {pred_key!r} of {job.key!r} not scheduled yet"
                    )
                if finish > asap:
                    asap = finish
            for pred in rec.ext_preds:
                if wcrt_estimates is None or pred not in wcrt_estimates:
                    raise SchedulingError(
                        f"SCS activity {job.name!r} depends on event-triggered "
                        f"activity {pred!r}; pass wcrt_estimates to schedule it"
                    )
                est = rec.base + wcrt_estimates[pred]
                if est > asap:
                    asap = est
            if isinstance(job.activity, Task):
                _schedule_task(table, system, job, asap, options)
            else:
                node = system.sender_node(job.activity)
                slots = st_slots.get(node)
                if slots is None:
                    slots = config.st_slots_of(node)
                    st_slots[node] = slots
                _schedule_st_message(
                    table, config, job, asap, options, horizon, node, slots
                )
        return table


def _entry(job: Job, priorities: Mapping[str, int]) -> tuple:
    return (-priorities[job.name], job.release, job.name, job.instance, job)


def _schedule_task(
    table: ScheduleTable,
    system: System,
    job: Job,
    asap: int,
    options: ScheduleOptions,
) -> None:
    task: Task = job.activity
    if not options.fps_aware:
        start = table.first_fit(task.node, asap, task.wcet)
        table.add_task(job.key, task, start)
        return
    best_start, best_score = None, None
    for start in _placement_candidates(table, job, asap, options):
        score = _fps_disturbance(table, system, task, start)
        # prefer lower disturbance; tie-break on earlier start
        if best_score is None or (score, start) < (best_score, best_start):
            best_start, best_score = start, score
    table.add_task(job.key, task, best_start)


def _placement_candidates(
    table: ScheduleTable, job: Job, asap: int, options: ScheduleOptions
) -> list:
    """Candidate start times for an SCS task (Fig. 2 line 11).

    The earliest feasible start plus starts spread across the job's slack
    window up to its deadline: packing every SCS task back-to-back at the
    period start creates long busy blocks that starve FPS tasks, so the
    FPS-aware placement must be offered genuinely *later* alternatives,
    not just the next gap.
    """
    task: Task = job.activity
    k = max(1, options.fps_candidates)
    latest = max(asap, job.abs_deadline - task.wcet)
    raw = {asap}
    if k > 1 and latest > asap:
        for j in range(1, k):
            raw.add(asap + round(j * (latest - asap) / (k - 1)))
    starts = {table.first_fit(task.node, t, task.wcet) for t in raw}
    return sorted(starts)


def _fps_disturbance(
    table: ScheduleTable, system: System, task: Task, start: int
) -> float:
    """Node-local proxy for the worst-case response-time increase of the
    FPS tasks on ``task.node`` if ``task`` starts at *start*.

    Sum of FPS response times computed against the candidate busy pattern
    (infinite when some FPS task would no longer terminate).
    """
    from repro.analysis.fps import node_local_fps_cost  # local import: no cycle

    busy = table.busy_intervals(task.node)
    busy.append((start, start + task.wcet))
    return node_local_fps_cost(system, task.node, busy, table.horizon)


def _schedule_st_message(
    table: ScheduleTable,
    config: FlexRayConfig,
    job: Job,
    ready: int,
    options: ScheduleOptions,
    horizon: int,
    node: str,
    slots: Tuple[int, ...],
) -> None:
    message: Message = job.activity
    if not slots:
        raise SchedulingError(
            f"node {node!r} sends ST message {message.name!r} but owns no static slot"
        )
    ct = config.message_ct(message)
    gd_cycle = config.gd_cycle
    gd_static_slot = config.gd_static_slot
    frame_used = table.frame_used
    limit = options.horizon_factor * horizon + gd_cycle
    cycle = max(0, ready // gd_cycle)
    cycle_base = cycle * gd_cycle
    while cycle_base < limit:
        for slot in slots:
            slot_start = cycle_base + (slot - 1) * gd_static_slot
            if slot_start < ready:
                continue
            if frame_used(cycle, slot) + ct <= gd_static_slot:
                table.add_message(job.key, message, cycle, slot)
                return
        cycle += 1
        cycle_base += gd_cycle
    raise SchedulingError(
        f"no static slot instance before {limit} MT can carry message "
        f"{job.key!r} (ready at {ready}, C_m={ct})"
    )
