"""Holistic schedulability analysis (Section 5 of the paper).

Given a system and a candidate bus configuration:

1. build the static schedule table (SCS tasks + ST messages),
2. iterate to a global fix point: DYN message response times feed the
   release jitters of their receiver FPS tasks, whose response times feed
   the jitters of the DYN messages they send, and so on (classic holistic
   analysis; jitters grow monotonically, so the iteration converges or is
   truncated at a cap),
3. evaluate the schedulability-degree cost function Eq. (5).

The result carries a response time for *every* activity, a cost
breakdown, and a ``feasible`` flag that is False when the configuration
cannot even be constructed (e.g. a frame does not fit its segment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.availability import NodeAvailability, wrap_busy_intervals
from repro.analysis.dyn import dyn_message_wcrt
from repro.analysis.fps import fps_task_busy_window, hp_tasks
from repro.analysis.schedule_table import ScheduleTable
from repro.analysis.scheduler import ScheduleOptions, build_schedule
from repro.analysis.st_msg import static_response_times
from repro.core.config import FlexRayConfig
from repro.core.cost import CostBreakdown, cost_function
from repro.errors import ConfigurationError, SchedulingError
from repro.model.system import System
from repro.model.task import Task


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunables of the holistic analysis."""

    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    max_holistic_iterations: int = 64
    cap_factor: int = 8
    #: Filled-cycle computation for DYN messages: "bound" (polynomial)
    #: or "exact" (bin-covering search; tighter, slower).
    dyn_fill_strategy: str = "bound"


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of analysing one (system, configuration) pair."""

    config: FlexRayConfig
    feasible: bool
    schedulable: bool
    converged: bool
    cost: Optional[CostBreakdown]
    wcrt: Dict[str, int]
    table: Optional[ScheduleTable]
    failure: Optional[str] = None

    @property
    def cost_value(self) -> float:
        """Cost for optimisers: Eq. (5) when feasible, +inf otherwise."""
        if not self.feasible or self.cost is None:
            return math.inf
        return self.cost.value


def analysis_cap(system: System, config: FlexRayConfig, cap_factor: int) -> int:
    """Truncation bound for divergent recurrences.

    Larger than any deadline, so a truncated response time always counts
    as a (finite) deadline miss in the cost function.
    """
    app = system.application
    max_deadline = max(
        max(g.deadline for g in app.graphs),
        max(
            (t.deadline for t in app.tasks() if t.deadline is not None),
            default=0,
        ),
        max(
            (m.deadline for m in app.messages() if m.deadline is not None),
            default=0,
        ),
    )
    return cap_factor * max(app.hyperperiod, config.gd_cycle, max_deadline)


def analyse_system(
    system: System,
    config: FlexRayConfig,
    options: AnalysisOptions = None,
) -> AnalysisResult:
    """Run the full scheduling + holistic schedulability analysis."""
    options = options or AnalysisOptions()
    app = system.application

    try:
        config.validate_for(system)
    except ConfigurationError as exc:
        return _infeasible(config, f"configuration invalid: {exc}")

    try:
        table = build_schedule(system, config, options.schedule)
    except SchedulingError as exc:
        return _infeasible(config, f"static scheduling failed: {exc}")

    cap = analysis_cap(system, config, options.cap_factor)
    static_wcrt = static_response_times(app, table)

    availability: Dict[str, NodeAvailability] = {
        node: NodeAvailability(
            wrap_busy_intervals(table.busy_intervals(node), table.horizon),
            table.horizon,
        )
        for node in system.nodes
    }
    fps_by_node: Dict[str, list] = {
        node: sorted(
            (t for t in system.tasks_on(node) if t.is_fps),
            key=lambda t: (t.priority, t.name),
        )
        for node in system.nodes
    }
    period_of = app.period_of
    ancestors = _ancestor_sets(app)

    # --- holistic fix point ------------------------------------------
    wcrt: Dict[str, int] = dict(static_wcrt)
    jitters: Dict[str, int] = {}
    converged = True
    for _ in range(options.max_holistic_iterations):
        changed = False

        # DYN messages: jitter inherited from the sender task.
        for m in app.dyn_messages():
            g = app.graph_of(m.name)
            sender: Task = g.task(m.sender)
            j_m = wcrt.get(sender.name, 0)
            if jitters.get(m.name, 0) != j_m:
                jitters[m.name] = j_m
                changed = True
            result = dyn_message_wcrt(
                m, config, system, jitters, period_of, cap,
                ancestors=ancestors.get(m.name, frozenset()),
                fill_strategy=options.dyn_fill_strategy,
            )
            converged = converged and result.converged
            if wcrt.get(m.name) != result.value:
                wcrt[m.name] = result.value
                changed = True

        # FPS tasks: jitter = worst finish of any predecessor.
        for node in system.nodes:
            fps = fps_by_node[node]
            for task in fps:
                g = app.graph_of(task.name)
                j_i = task.release
                for pred in g.predecessors(task.name):
                    j_i = max(j_i, wcrt.get(pred, 0))
                if jitters.get(task.name, 0) != j_i:
                    jitters[task.name] = j_i
                    changed = True
                window = fps_task_busy_window(
                    task,
                    hp_tasks(task, fps),
                    availability[node],
                    jitters,
                    period_of,
                    cap,
                    own_jitter=j_i,
                    ancestors=ancestors.get(task.name, frozenset()),
                )
                converged = converged and window.converged
                r_i = min(cap, j_i + window.value)
                if wcrt.get(task.name) != r_i:
                    wcrt[task.name] = r_i
                    changed = True

        if not changed:
            break
    else:
        converged = False

    cost = cost_function(app, wcrt)
    return AnalysisResult(
        config=config,
        feasible=True,
        schedulable=cost.schedulable and converged,
        converged=converged,
        cost=cost,
        wcrt=wcrt,
        table=table,
    )


def _ancestor_sets(app) -> Dict[str, frozenset]:
    """Transitive predecessors of every activity within its graph."""
    out: Dict[str, frozenset] = {}
    for g in app.graphs:
        closure: Dict[str, set] = {}
        for name in g.topological_order():
            anc = set()
            for pred in g.predecessors(name):
                anc.add(pred)
                anc |= closure[pred]
            closure[name] = anc
        for name, anc in closure.items():
            out[name] = frozenset(anc)
    return out


def _infeasible(config: FlexRayConfig, reason: str) -> AnalysisResult:
    return AnalysisResult(
        config=config,
        feasible=False,
        schedulable=False,
        converged=False,
        cost=None,
        wcrt={},
        table=None,
        failure=reason,
    )
