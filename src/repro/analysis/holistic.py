"""Holistic schedulability analysis (Section 5 of the paper).

Given a system and a candidate bus configuration:

1. build the static schedule table (SCS tasks + ST messages),
2. iterate to a global fix point: DYN message response times feed the
   release jitters of their receiver FPS tasks, whose response times feed
   the jitters of the DYN messages they send, and so on (classic holistic
   analysis; jitters grow monotonically, so the iteration converges or is
   truncated at a cap),
3. evaluate the schedulability-degree cost function Eq. (5).

The result carries a response time for *every* activity, a cost
breakdown, and a ``feasible`` flag that is False when the configuration
cannot even be constructed (e.g. a frame does not fit its segment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.schedule_table import ScheduleTable
from repro.analysis.scheduler import ScheduleOptions
from repro.core.config import FlexRayConfig
from repro.core.cost import CostBreakdown
from repro.model.system import System


#: Legal values of :attr:`AnalysisOptions.warm_start`.
WARM_START_MODES = ("certified", "off", "seed", "verify")

#: Legal values of :attr:`AnalysisOptions.dominance`.
DOMINANCE_MODES = ("on", "off", "verify")

#: Legal values of :attr:`AnalysisOptions.backend`, re-exported from the
#: backend registry (:data:`repro.analysis.backend.BACKEND_REGISTRY`) so
#: a new backend appears in exactly one place.
from repro.analysis.backend import BACKEND_MODES  # noqa: E402


@dataclass(frozen=True)
class AnalysisOptions:
    """Tunables of the holistic analysis.

    The defaults are what every optimiser in :mod:`repro.core` uses;
    all deviations below are opt-in and documented with their
    determinism guarantee.
    """

    #: Static-scheduler knobs (FPS-aware placement, horizon factor);
    #: see :class:`~repro.analysis.scheduler.ScheduleOptions`.
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    #: Outer Kleene iteration limit; exceeding it flags the result as
    #: non-converged (``converged=False``), never raises.
    max_holistic_iterations: int = 64
    #: The divergence cap is ``cap_factor * max(hyperperiod, deadlines,
    #: gd_cycle)`` -- larger than any deadline, so a truncated response
    #: time still counts as a finite deadline miss in the cost function.
    cap_factor: int = 8
    #: Filled-cycle computation for DYN messages: "bound" (polynomial)
    #: or "exact" (bin-covering search; tighter, slower).
    dyn_fill_strategy: str = "bound"
    #: Warm starting of the holistic fix point:
    #:
    #: * ``"certified"`` (default) -- the third-generation fast path.
    #:   The *outer* Kleene iteration is seeded from the configuration's
    #:   own static-only state (the bottom element of the lattice, hence
    #:   a provable lower bound of the least fixed point), the *inner*
    #:   busy-window recurrences warm-start from certified lower-bound
    #:   seeds (:func:`repro.analysis.fps.seeded_busy_window`,
    #:   :func:`repro.analysis.dyn.seeded_busy_window`), and the FPS
    #:   maximisation prunes critical instants through the incremental
    #:   per-instant bound.  Every ingredient is provably bit-identical
    #:   to the cold reference trajectory, which is why this mode is
    #:   default-on (and regression-locked to ``"off"`` over the full
    #:   bench sweep, adversarial points included).
    #: * ``"off"`` -- the fully cold oracle: no inner seeds, no instant
    #:   pruning, no outer state.  Slowest; exists as the reference
    #:   semantics the certified path is checked against.
    #: * ``"seed"`` -- seed the outer iteration from the previous
    #:   *neighbouring configuration's* solution.  Fast, but the outer
    #:   fix point is **not** start-independent: a seed above the least
    #:   fixed point can converge to a strictly larger one (measured:
    #:   2/64 points of the bench sweep), so results may differ from a
    #:   cold run.  Opt-in only; never used by the library's own
    #:   optimisers.
    #: * ``"verify"`` -- debug mode: run the certified fast path *and*
    #:   the cold oracle, count divergences on the owning
    #:   :class:`~repro.analysis.context.AnalysisContext` (provably
    #:   always 0), and return the cold result.
    warm_start: str = "certified"
    #: Pattern-level dominance elision of FPS critical instants
    #: (the engine's newest cache layer; see ``docs/ANALYSIS.md``):
    #:
    #: * ``"on"`` (default) -- the FPS maximisation iterates only the
    #:   availability pattern's *maximal* instants; dominated instants
    #:   are elided against a cached per-pattern witness table
    #:   (:meth:`repro.analysis.availability.NodeAvailability.dominance_tables`,
    #:   built lazily on first maximisation).  Provably bit-identical to
    #:   ``"off"``: elision is value- and cap-exact by pointwise
    #:   dominance of the window maps, and the convergence flag is
    #:   certified by the same activation-count guard as the
    #:   per-instant bound (with an automatic no-dominance replay in
    #:   the near-cap regime where the guard cannot certify it).
    #: * ``"off"`` -- every critical instant is evaluated (modulo the
    #:   per-instant bound, which ``warm_start`` controls); the oracle
    #:   the dominance path is fuzzed and regression-locked against.
    #: * ``"verify"`` -- debug mode: run every FPS maximisation both
    #:   ways, count divergences on the owning
    #:   :class:`~repro.analysis.context.AnalysisContext`
    #:   (``dominance_divergences``, provably always 0), and return the
    #:   full-maximisation result.
    #:
    #: ``warm_start="off"`` (the fully cold oracle) disables dominance
    #: along with every other certified accelerator, whatever this
    #: field says.
    dominance: str = "on"
    #: Evaluation backend of the holistic fix point:
    #:
    #: * ``"python"`` (default) -- the pure-Python kernels; the
    #:   reference semantics every other backend is checked against.
    #: * ``"numpy"`` -- the array backend
    #:   (:mod:`repro.analysis.backend`): the per-system invariants are
    #:   lowered into packed int64 arrays once per (schedule, frame
    #:   structure) group and whole candidate batches advance their
    #:   busy-window fix points in lockstep under convergence masks.
    #:   Results are bit-identical to ``"python"`` by contract: exact
    #:   integer dtypes throughout, a per-activity overflow guard that
    #:   falls back to the Python kernels whenever an intermediate
    #:   could leave int64, and Python fallbacks for the oracle/debug
    #:   modes (``warm_start != "certified"``, ``dominance="verify"``,
    #:   ``dyn_fill_strategy="exact"``) whose whole point is staying on
    #:   the reference path.  Selecting it without numpy installed
    #:   raises a :class:`RuntimeError` naming the ``repro[numpy]``
    #:   extra.
    #: * ``"native"`` -- the compiled backend: the same lowered plans
    #:   are packed into a flat blob and each candidate's *entire*
    #:   holistic fix point runs in tight scalar C loops inside the
    #:   ``repro._native`` extension (built by the ``repro[native]``
    #:   extra), with no per-step dispatch at all -- including the
    #:   singleton-lane groups the array kernels stand down on.  Same
    #:   bit-identity contract and the same Python fallbacks for the
    #:   oracle/debug modes; overflow-flagged or structurally unsafe
    #:   groups delegate to the numpy kernels.  Selecting it without
    #:   the compiled module raises a :class:`RuntimeError` naming the
    #:   ``repro[native]`` extra.
    #: * ``"verify"`` -- debug mode: run every analysis on the Python
    #:   oracle plus every available accelerated backend, count
    #:   divergences on the owning
    #:   :class:`~repro.analysis.context.AnalysisContext`
    #:   (``backend_divergences``, contractually always 0) and return
    #:   the Python result.
    backend: str = "python"
    #: k-error fault hypothesis: ``None`` (default) analyses the clean
    #: channel; an integer ``k >= 0`` charges up to *k* corrupted
    #: transmissions (each paid as retransmission delay) into the
    #: response-time bounds -- static activities (ST messages, and SCS
    #: tasks downstream of any message) absorb up to ``k`` whole-cycle
    #: slips, and the DYN busy-window recurrences absorb ``k`` extra
    #: frame instances at the worst per-error cycle cost.  The result is
    #: a *pessimistic* upper bound on any run with at most k channel
    #: errors (fuzz-verified against the fault-injecting simulator).
    #: ``k=0`` is bit-identical to ``None``.  All backends implement the
    #: hypothesis natively: the accelerated kernels charge the static
    #: ``k * gd_cycle`` slips and the constant per-error DYN extra
    #: cycles inside the lowered plans, bit-identically to the Python
    #: kernels.
    fault_hypothesis: Optional[int] = None


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of analysing one (system, configuration) pair."""

    config: FlexRayConfig
    feasible: bool
    schedulable: bool
    converged: bool
    cost: Optional[CostBreakdown]
    wcrt: Dict[str, int]
    table: Optional[ScheduleTable]
    failure: Optional[str] = None

    @property
    def cost_value(self) -> float:
        """Cost for optimisers: Eq. (5) when feasible, +inf otherwise."""
        if not self.feasible or self.cost is None:
            return math.inf
        return self.cost.value


def analysis_cap_base(app) -> int:
    """Configuration-independent part of :func:`analysis_cap`.

    ``max(hyperperiod, any deadline)`` of the application; the
    incremental analysis engine computes it once per system and combines
    it with the per-configuration ``gd_cycle``.
    """
    return max(
        app.hyperperiod,
        max(g.deadline for g in app.graphs),
        max(
            (t.deadline for t in app.tasks() if t.deadline is not None),
            default=0,
        ),
        max(
            (m.deadline for m in app.messages() if m.deadline is not None),
            default=0,
        ),
    )


def analysis_cap(system: System, config: FlexRayConfig, cap_factor: int) -> int:
    """Truncation bound for divergent recurrences.

    Larger than any deadline, so a truncated response time always counts
    as a (finite) deadline miss in the cost function.
    """
    return cap_factor * max(
        analysis_cap_base(system.application), config.gd_cycle
    )


def analyse_system(
    system: System,
    config: FlexRayConfig,
    options: AnalysisOptions = None,
    context: "AnalysisContext" = None,
) -> AnalysisResult:
    """Run the full scheduling + holistic schedulability analysis.

    ``context`` optionally supplies a warm
    :class:`~repro.analysis.context.AnalysisContext` so repeated
    analyses of one system share the per-system invariants and the
    per-static-segment schedule artifacts; results are bit-identical
    with or without one.  A context built for a different system or
    different options is ignored and a transient one is used instead.
    """
    from repro.analysis.context import AnalysisContext

    options = options or AnalysisOptions()
    if (
        context is None
        or context.system is not system
        or context.options != options
    ):
        context = AnalysisContext(system, options)
    return context.analyse(config)


def _ancestor_sets(app) -> Dict[str, frozenset]:
    """Transitive predecessors of every activity within its graph.

    Kept as an alias of :func:`repro.analysis.context.ancestor_sets`,
    which the incremental analysis engine computes once per system.
    """
    from repro.analysis.context import ancestor_sets

    return ancestor_sets(app)


def _infeasible(config: FlexRayConfig, reason: str) -> AnalysisResult:
    return AnalysisResult(
        config=config,
        feasible=False,
        schedulable=False,
        converged=False,
        cost=None,
        wcrt={},
        table=None,
        failure=reason,
    )
