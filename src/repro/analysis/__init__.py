"""Timing analysis: static scheduling, FPS/DYN response times, holistic loop.

Public entry points
-------------------
:func:`analyse_system`
    One-off scheduling + holistic analysis of a (system, configuration)
    pair; builds a transient :class:`AnalysisContext` unless one is
    passed in.
:class:`AnalysisContext`
    The incremental analysis engine: construct once per system, call
    ``analyse`` per candidate configuration.  Results are bit-identical
    to :func:`analyse_system` with no context -- the context only makes
    repeated analyses (DYN-length sweeps, optimiser neighbourhoods)
    incremental.  See ``docs/ARCHITECTURE.md`` for its cache layers.
:class:`AnalysisOptions`
    Analysis tunables; the ``warm_start`` field selects the fix-point
    trajectory (``"certified"`` default, ``"off"`` oracle, ``"seed"``
    legacy neighbour seeding, ``"verify"`` cross-check) and the
    ``backend`` field the evaluation backend (``"python"`` reference,
    ``"numpy"`` lockstep array kernels, ``"verify"`` cross-check) --
    every mode's determinism guarantee is documented on the field.

The busy-window kernels (:func:`fps_task_busy_window`,
:func:`dyn_message_busy_window`), the static scheduler
(:func:`build_schedule`, :class:`SchedulePlan`) and the availability
primitive (:class:`NodeAvailability`, whose lazily-built
:class:`DominanceTables` let the FPS maximisation elide pattern-level
dominated critical instants) are exported for direct use in tests,
benchmarks and tooling; the math behind them is derived in
``docs/ANALYSIS.md``.
"""

from repro.analysis.availability import (
    DominanceTables,
    InstantTables,
    NodeAvailability,
    merge_intervals,
    wrap_busy_intervals,
)
from repro.analysis.context import AnalysisContext, ancestor_sets
from repro.analysis.dyn import (
    DynInterference,
    dyn_message_busy_window,
    dyn_message_wcrt,
    interference_sets,
    sigma,
)
from repro.analysis.fill import fill_bound, max_filled_cycles
from repro.analysis.fps import (
    WcrtResult,
    fps_task_busy_window,
    hp_tasks,
    interference_count,
)
from repro.analysis.holistic import (
    AnalysisOptions,
    AnalysisResult,
    BACKEND_MODES,
    analyse_system,
    analysis_cap,
)
from repro.analysis.priorities import critical_path_priorities, message_costs
from repro.analysis.schedule_table import (
    ScheduledMessage,
    ScheduledTask,
    ScheduleTable,
)
from repro.analysis.scheduler import SchedulePlan, ScheduleOptions, build_schedule
from repro.analysis.sensitivity import (
    BusLoad,
    SlackEntry,
    bottlenecks,
    bus_load,
    slack_report,
)
from repro.analysis.st_msg import static_release_offsets, static_response_times

__all__ = [
    "AnalysisContext",
    "AnalysisOptions",
    "AnalysisResult",
    "ancestor_sets",
    "BACKEND_MODES",
    "BusLoad",
    "SlackEntry",
    "DominanceTables",
    "DynInterference",
    "InstantTables",
    "NodeAvailability",
    "SchedulePlan",
    "ScheduleOptions",
    "ScheduleTable",
    "ScheduledMessage",
    "ScheduledTask",
    "WcrtResult",
    "analyse_system",
    "analysis_cap",
    "bottlenecks",
    "build_schedule",
    "bus_load",
    "critical_path_priorities",
    "dyn_message_busy_window",
    "dyn_message_wcrt",
    "fill_bound",
    "fps_task_busy_window",
    "hp_tasks",
    "interference_count",
    "interference_sets",
    "max_filled_cycles",
    "merge_intervals",
    "message_costs",
    "sigma",
    "slack_report",
    "static_release_offsets",
    "static_response_times",
    "wrap_busy_intervals",
]
