"""Timing analysis: static scheduling, FPS/DYN response times, holistic loop."""

from repro.analysis.availability import (
    NodeAvailability,
    merge_intervals,
    wrap_busy_intervals,
)
from repro.analysis.context import AnalysisContext, ancestor_sets
from repro.analysis.dyn import (
    DynInterference,
    dyn_message_busy_window,
    dyn_message_wcrt,
    interference_sets,
    sigma,
)
from repro.analysis.fill import fill_bound, max_filled_cycles
from repro.analysis.fps import (
    WcrtResult,
    fps_task_busy_window,
    hp_tasks,
    interference_count,
)
from repro.analysis.holistic import (
    AnalysisOptions,
    AnalysisResult,
    analyse_system,
    analysis_cap,
)
from repro.analysis.priorities import critical_path_priorities, message_costs
from repro.analysis.schedule_table import (
    ScheduledMessage,
    ScheduledTask,
    ScheduleTable,
)
from repro.analysis.scheduler import SchedulePlan, ScheduleOptions, build_schedule
from repro.analysis.sensitivity import (
    BusLoad,
    SlackEntry,
    bottlenecks,
    bus_load,
    slack_report,
)
from repro.analysis.st_msg import static_release_offsets, static_response_times

__all__ = [
    "AnalysisContext",
    "AnalysisOptions",
    "AnalysisResult",
    "ancestor_sets",
    "BusLoad",
    "SlackEntry",
    "DynInterference",
    "NodeAvailability",
    "SchedulePlan",
    "ScheduleOptions",
    "ScheduleTable",
    "ScheduledMessage",
    "ScheduledTask",
    "WcrtResult",
    "analyse_system",
    "analysis_cap",
    "bottlenecks",
    "build_schedule",
    "bus_load",
    "critical_path_priorities",
    "dyn_message_busy_window",
    "dyn_message_wcrt",
    "fill_bound",
    "fps_task_busy_window",
    "hp_tasks",
    "interference_count",
    "interference_sets",
    "max_filled_cycles",
    "merge_intervals",
    "message_costs",
    "sigma",
    "slack_report",
    "static_release_offsets",
    "static_response_times",
    "wrap_busy_intervals",
]
