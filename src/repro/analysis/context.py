"""Incremental analysis engine: the shared :class:`AnalysisContext`.

The bus-access optimisers of Section 6 call the holistic analysis
thousands of times per run.  The pipeline mixes quantities of three very
different lifetimes, and recomputing all of them per candidate (as the
naive ``analyse_system`` loop does) dominates the optimisation time:

(a) **per-system invariants** -- ancestor closures, predecessor lists,
    period tables, ST/DYN message partitions, sorted FPS task lists and
    their higher-priority interferer rows.  Computed once per
    :class:`AnalysisContext`.

(b) **per-static-segment artifacts** -- the built
    :class:`~repro.analysis.schedule_table.ScheduleTable`, the static
    response times and the per-node
    :class:`~repro.analysis.availability.NodeAvailability` patterns.
    These depend on the static segment structure, the bus speed
    parameters and -- *only when the application sends ST messages* --
    on the cycle length ``gd_cycle`` (ST slot instances recur every
    cycle, so a different DYN length shifts them).  The cache key
    reflects exactly that dependency set, so configurations differing
    only in their FrameID assignment always share one schedule, and
    purely event-triggered applications additionally share it across
    the whole DYN-length sweep.

(c) **per-configuration interference structure** -- hp/lf membership,
    interferer periods, ancestor flags, adjusted frame sizes and
    ``sigma``/``pLatestTx`` scalars of every DYN message.  The holistic
    fix point used to rebuild these on every iteration; they are now
    resolved once per (FrameID assignment, bus parameters) and reduced
    to prebound tuples the inner loops iterate directly.

On top of the tiers, the fix point memoises each activity's last input
signature (its own jitter plus the jitters of its interferers) and skips
the busy-window recurrence when nothing changed -- the final "no change"
sweep of the holistic iteration then costs signature comparisons instead
of full recomputation.  All caches are LRU-bounded and every shortcut is
a pure-function memoisation, so results are bit-identical to a cold run.
"""

from __future__ import annotations

import logging
from collections import OrderedDict, namedtuple
from typing import Dict, List, Tuple

from repro.analysis.availability import NodeAvailability, wrap_busy_intervals
from repro.analysis.dyn import seeded_busy_window as _dyn_busy_window
from repro.analysis.fps import hp_tasks, seeded_busy_window as _fps_busy_window
from repro.analysis.priorities import critical_path_priorities
from repro.analysis.scheduler import SchedulePlan
from repro.core.config import FlexRayConfig
from repro.core.cost import cost_function
from repro.errors import ConfigurationError, SchedulingError
from repro.model.system import System
from repro.model.times import ceil_div

logger = logging.getLogger(__name__)

#: Per-static-segment artifacts (tier b).  ``failure`` carries the
#: scheduling error message when the segment cannot be scheduled at all.
_ScheduleArtifacts = namedtuple(
    "_ScheduleArtifacts", "table failure static_wcrt availability"
)

#: Prebound FPS task row (tier a): interferers as (name, period,
#: is_ancestor, wcet) tuples, predecessors for the jitter update, the
#: interferer names whose jitters form the memo signature, and
#: ``own_sensitive`` -- whether the busy window depends on the task's
#: own jitter at all (it enters the recurrence only through the
#: ancestor interference reduction, so without ancestor rows the window
#: is a pure function of the interferers' jitters and an own-jitter
#: change alone never forces a re-evaluation).
_FpsPlan = namedtuple(
    "_FpsPlan",
    "name release wcet interferers predecessors input_names own_sensitive",
)


class _DynView:
    """Per-(config, message) data of one DYN message (tier c).

    ``own_sensitive`` mirrors :data:`_FpsPlan`: the queuing-delay
    recurrence reads the message's own jitter only through the ancestor
    interference reduction, so without ancestor rows the busy window is
    a pure function of the interferers' jitters and an own-jitter change
    alone never forces a re-evaluation (the response time
    ``J_m + w + C_m`` is re-derived from the cached window instead).
    """

    __slots__ = (
        "name", "sender", "input_names", "hp_info", "lf_info", "lower_slots",
        "sendable", "lam", "theta", "sigma", "ct", "gd_cycle", "st_bus",
        "ms_len", "own_sensitive", "fault_cycles",
    )

    def __init__(self, name, sender, input_names, hp_info, lf_info,
                 lower_slots, sendable, lam, theta, sigma, ct, gd_cycle,
                 st_bus, ms_len, fault_cycles=0):
        self.name = name
        self.sender = sender
        self.input_names = input_names
        self.hp_info = hp_info
        self.lf_info = lf_info
        self.lower_slots = lower_slots
        self.sendable = sendable
        self.lam = lam
        self.theta = theta
        self.sigma = sigma
        self.ct = ct
        self.gd_cycle = gd_cycle
        self.st_bus = st_bus
        self.ms_len = ms_len
        self.fault_cycles = fault_cycles
        self.own_sensitive = any(r[2] for r in hp_info) or any(
            r[2] for r in lf_info
        )


def _lru_insert(cache: OrderedDict, key, value, bound) -> None:
    """Insert under an LRU bound; ``None`` = unbounded, ``0`` = no retention."""
    cache[key] = value
    if bound is not None:
        limit = max(bound, 0)
        while len(cache) > limit:
            cache.popitem(last=False)


class AnalysisContext:
    """Shared state of repeated holistic analyses of one system.

    Construct once per (system, options) pair and call :meth:`analyse`
    per candidate configuration; results are bit-identical to
    ``analyse_system(system, config, options)`` with no context.  The
    optimiser :class:`~repro.core.search.Evaluator` owns one context per
    run, which is what makes DYN-length sweeps and SA/GA neighbourhoods
    incremental instead of from-scratch.
    """

    def __init__(
        self,
        system: System,
        options=None,
        max_schedule_entries: int = 64,
        max_structure_entries: int = 64,
        max_validation_entries: int = 4096,
    ):
        from repro.analysis.holistic import (
            AnalysisOptions,
            BACKEND_MODES,
            DOMINANCE_MODES,
            WARM_START_MODES,
            analysis_cap_base,
        )

        self.system = system
        self.options = options or AnalysisOptions()
        if self.options.warm_start not in WARM_START_MODES:
            raise ConfigurationError(
                f"unknown warm_start mode {self.options.warm_start!r}; "
                f"choose from {WARM_START_MODES}"
            )
        if self.options.dominance not in DOMINANCE_MODES:
            raise ConfigurationError(
                f"unknown dominance mode {self.options.dominance!r}; "
                f"choose from {DOMINANCE_MODES}"
            )
        if self.options.backend not in BACKEND_MODES:
            from repro.analysis.backend import describe_backends

            raise ConfigurationError(
                f"unknown backend {self.options.backend!r}; "
                f"choose from {describe_backends()}"
            )
        # Fail at the one place the backend was chosen, not deep inside
        # an analysis -- the registry knows each backend's optional
        # extra (numpy -> repro[numpy], native -> repro[native]).
        from repro.analysis.backend import require_backend

        require_backend(self.options.backend)
        fault_k = self.options.fault_hypothesis
        if fault_k is not None and (
            isinstance(fault_k, bool)
            or not isinstance(fault_k, int)
            or fault_k < 0
        ):
            raise ConfigurationError(
                f"fault_hypothesis={fault_k!r} must be None or a "
                "non-negative integer (the number of channel errors "
                "charged into the bounds)"
            )
        #: k of the k-error fault hypothesis (0 = clean channel).
        self._fault_k = fault_k or 0
        self.max_schedule_entries = max_schedule_entries
        self.max_structure_entries = max_structure_entries
        self.max_validation_entries = max_validation_entries
        #: Divergences caught by the ``warm_start="verify"`` debug mode:
        #: sweep points where the certified fast path produced a
        #: different result than the canonical cold oracle (provably
        #: impossible -- the counter exists to let tests and debug runs
        #: assert exactly that).
        self.warm_start_divergences = 0
        #: Divergences caught by the ``dominance="verify"`` debug mode:
        #: FPS maximisations where the dominance-elided instant set
        #: produced a different (value, converged) pair than the full
        #: maximisation (provably impossible -- same contract as
        #: :attr:`warm_start_divergences`).
        self.dominance_divergences = 0
        #: Divergences caught by the ``backend="verify"`` debug mode:
        #: analyses where an accelerated backend (the numpy array
        #: kernels, and the compiled native kernels when the extension
        #: is importable) produced a different result than the Python
        #: oracle (contractually always 0 -- the counter exists so
        #: tests and debug sweeps can assert exactly that).
        self.backend_divergences = 0
        #: Last converged solution, seeding the legacy neighbour outer
        #: warm start (``warm_start="seed"`` only).
        self._warm_state = None
        app = system.application
        self.app = app

        # --- tier (a): per-system invariants --------------------------
        self.hyperperiod = app.hyperperiod
        self.period: Dict[str, int] = {}
        for g in app.graphs:
            for t in g.tasks:
                self.period[t.name] = g.period
            for m in g.messages:
                self.period[m.name] = g.period
        self.ancestors = ancestor_sets(app)
        self.st_messages = tuple(app.st_messages())
        self.dyn_messages = tuple(app.dyn_messages())
        #: Static-side activities the k-error hypothesis inflates: every
        #: ST message (its own frame can be corrupted and its sender can
        #: slip), and every SCS task with a message among its ancestors
        #: (a corrupted input slips the TT job by whole cycles).  SCS
        #: tasks with a message-free ancestor closure cannot be delayed
        #: by channel errors at all.
        message_names = frozenset(m.name for m in app.messages())
        self._fault_static_names = frozenset(
            m.name for m in self.st_messages
        ) | frozenset(
            t.name
            for g in app.graphs
            for t in g.tasks
            if t.is_scs and self.ancestors.get(t.name, frozenset()) & message_names
        )
        self.sender_node = {
            m.name: system.sender_node(m) for m in app.messages()
        }
        self.sender_task = {
            m.name: app.graph_of(m.name).task(m.sender).name
            for m in self.dyn_messages
        }
        self.fps_by_node = {
            node: sorted(
                (t for t in system.tasks_on(node) if t.is_fps),
                key=lambda t: (t.priority, t.name),
            )
            for node in system.nodes
        }
        self.fps_plans: Dict[str, Tuple[_FpsPlan, ...]] = {}
        for node in system.nodes:
            fps = self.fps_by_node[node]
            plans = []
            for task in fps:
                anc = self.ancestors.get(task.name, frozenset())
                info = tuple(
                    (j.name, self.period[j.name], j.name in anc, j.wcet)
                    for j in hp_tasks(task, fps)
                )
                g = app.graph_of(task.name)
                plans.append(
                    _FpsPlan(
                        name=task.name,
                        release=task.release,
                        wcet=task.wcet,
                        interferers=info,
                        predecessors=tuple(g.predecessors(task.name)),
                        input_names=tuple(r[0] for r in info),
                        own_sensitive=any(r[2] for r in info),
                    )
                )
            self.fps_plans[node] = tuple(plans)
        self._cap_base = analysis_cap_base(app)
        #: The schedule depends on gd_cycle iff ST slot instances exist.
        self._st_dependent = bool(self.st_messages)
        self._period_lookup = self.period.__getitem__
        #: Lazy ``job_key -> (activity name, instance * period)`` memo:
        #: the static response times re-derive both per table otherwise
        #: (the job keys of a system are invariant across the sweep).
        self._job_base: Dict[str, tuple] = {}

        # --- caches for tiers (b) and (c) -----------------------------
        self._schedule_cache: OrderedDict = OrderedDict()
        self._structure_cache: OrderedDict = OrderedDict()
        self._ct_cache: OrderedDict = OrderedDict()
        self._priorities_cache: OrderedDict = OrderedDict()
        #: Retimable schedule plans (job expansion + list-scheduling
        #: order), keyed by the bus-speed parameters alone -- the whole
        #: DYN sweep, every FrameID assignment and every static-segment
        #: variant of one bus speed share a single plan.
        self._plan_cache: OrderedDict = OrderedDict()
        #: Semantic-validation memo: ``validate_for`` is a pure function
        #: of (system, configuration), so each distinct configuration is
        #: validated once.
        self._valid_cache: OrderedDict = OrderedDict()
        #: Lowered array plans of the accelerated backends, keyed by
        #: (schedule key, DYN structure key); rides the same LRU bound
        #: as the schedule cache whose artifacts it packs.
        self._backend_plans: OrderedDict = OrderedDict()
        #: Structure-key-invariant activity lowerings shared by those
        #: plans (``StructureTemplate``), keyed by (structure key,
        #: static-name order).  On an ST-heavy sweep every cycle length
        #: is a fresh schedule key -- a fresh singleton ``GroupPlan`` --
        #: but one template serves them all.
        self._backend_structures: OrderedDict = OrderedDict()
        #: Monotone validation floor: per (everything except the DYN
        #: length), the smallest ``n_minislots`` that validated clean.
        #: Growing the dynamic segment only relaxes ``validate_for``'s
        #: checks (``pLatestTx`` rises, FrameID fits get easier, the
        #: static checks do not involve it), so any configuration at or
        #: above the floor is valid without re-scanning the system.
        self._valid_floor: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # cached derivations
    # ------------------------------------------------------------------
    def _ct_tables(self, config: FlexRayConfig) -> tuple:
        """(ct per message, minislots per DYN message, largest frame of
        the sender node per DYN message)."""
        key = (config.bits_per_mt, config.frame_overhead_bytes,
               config.gd_minislot)
        entry = self._ct_cache.get(key)
        if entry is None:
            bits = config.bits_per_mt
            overhead = config.frame_overhead_bytes
            ms = config.gd_minislot
            cts = {
                m.name: ceil_div((m.size + overhead) * 8, bits)
                for m in self.app.messages()
            }
            minislots = {
                m.name: ceil_div(cts[m.name], ms) for m in self.dyn_messages
            }
            largest: Dict[str, int] = {}
            for m in self.dyn_messages:
                node = self.sender_node[m.name]
                if minislots[m.name] > largest.get(node, 0):
                    largest[node] = minislots[m.name]
            #: Resolved per message: the sender node's largest DYN frame
            #: (``_dyn_views`` reads it per view per analyse call).
            largest_of_sender = {
                m.name: largest[self.sender_node[m.name]]
                for m in self.dyn_messages
            }
            entry = (cts, minislots, largest_of_sender)
            _lru_insert(self._ct_cache, key, entry, self.max_structure_entries)
        return entry

    def _priorities(self, config: FlexRayConfig) -> Dict[str, int]:
        """Critical-path priorities; they depend only on the bus speed."""
        key = (config.bits_per_mt, config.frame_overhead_bytes)
        prio = self._priorities_cache.get(key)
        if prio is None:
            prio = critical_path_priorities(self.app, config)
            _lru_insert(
                self._priorities_cache, key, prio, self.max_structure_entries
            )
        return prio

    def _plan(self, config: FlexRayConfig) -> SchedulePlan:
        """Retimable schedule plan for *config*'s bus-speed parameters.

        The plan (job expansion, dependency keys, list-scheduling order)
        is invariant across the cycle geometry, so its cache key is the
        bus speed alone: one plan serves every candidate of a DYN-length
        sweep, and each candidate's table is a cheap placement replay.
        """
        key = (config.bits_per_mt, config.frame_overhead_bytes)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = SchedulePlan(
                self.system, self.options.schedule, self._priorities(config)
            )
            _lru_insert(self._plan_cache, key, plan, self.max_structure_entries)
        return plan

    def _validate(self, config: FlexRayConfig):
        """Memoised ``config.validate_for(system)``: the failure message,
        or ``None`` when the configuration is legal.

        Two layers: an exact per-configuration memo, and the monotone
        validation floor -- a DYN-length sweep full-validates its first
        legal point and clears every longer sibling in O(1).
        """
        key = config.cache_key()
        failure = self._valid_cache.get(key, False)
        if failure is not False:
            return failure
        # The floor key is everything except the DYN length, derived
        # from the configuration directly (not by slicing ``cache_key``,
        # whose layout belongs to ``repro.core.config``).
        n = config.n_minislots
        floor_key = (
            config.static_key(),
            tuple(sorted(config.frame_ids.items())),
        )
        floor = self._valid_floor.get(floor_key)
        if floor is not None and n >= floor:
            failure = None
        else:
            try:
                config.validate_for(self.system)
            except ConfigurationError as exc:
                failure = f"configuration invalid: {exc}"
            else:
                failure = None
                if floor is None or n < floor:
                    self._valid_floor[floor_key] = n
        _lru_insert(
            self._valid_cache, key, failure, self.max_validation_entries
        )
        return failure

    def _static_wcrt(self, table) -> Dict[str, int]:
        """Static response times of *table*, with job bases memoised.

        Identical to
        :func:`repro.analysis.st_msg.static_response_times`, but the
        ``job_key -> (name, instance * period)`` decomposition is cached
        on the context -- the job keys of a system never change across
        the sweep, only the placements do.
        """
        bases = self._job_base
        period = self.period
        wcrt: Dict[str, int] = {}
        wcrt_get = wcrt.get
        for entries in (table.tasks, table.messages):
            for key, entry in entries.items():
                nb = bases.get(key)
                if nb is None:
                    name, instance = key.rsplit("#", 1)
                    nb = (name, int(instance) * period[name])
                    bases[key] = nb
                name, base = nb
                v = entry.finish - base
                cur = wcrt_get(name, 0)
                wcrt[name] = v if v > cur else cur
        return wcrt

    def _schedule_artifacts(self, config: FlexRayConfig) -> _ScheduleArtifacts:
        """Tier (b): replay-or-fetch the static schedule and its derivates."""
        key = self.schedule_key(config)
        entry = self._schedule_cache.get(key)
        if entry is not None:
            self._schedule_cache.move_to_end(key)
            return entry
        try:
            table = self._plan(config).replay(config)
        except SchedulingError as exc:
            entry = _ScheduleArtifacts(
                table=None,
                failure=f"static scheduling failed: {exc}",
                static_wcrt=None,
                availability=None,
            )
        else:
            static_wcrt = self._static_wcrt(table)
            availability = {
                node: NodeAvailability(
                    wrap_busy_intervals(
                        table.busy_intervals(node), table.horizon
                    ),
                    table.horizon,
                )
                for node in self.system.nodes
            }
            entry = _ScheduleArtifacts(
                table=table,
                failure=None,
                static_wcrt=static_wcrt,
                availability=availability,
            )
        _lru_insert(self._schedule_cache, key, entry, self.max_schedule_entries)
        return entry

    def structure_key(self, config: FlexRayConfig) -> tuple:
        """Identity of *config*'s DYN interference structure (tier c).

        FrameID assignment plus the bus-speed parameters: two
        configurations sharing this key have identical hp/lf rows,
        transmission times and reverse interference maps (they can still
        differ in cycle geometry, i.e. the per-view scalars).
        """
        return (
            tuple(sorted(config.frame_ids.items())),
            config.bits_per_mt,
            config.frame_overhead_bytes,
            config.gd_minislot,
        )

    def _dyn_structure(self, config: FlexRayConfig) -> Dict[str, tuple]:
        """Tier (c): hp/lf rows per DYN message for a FrameID assignment."""
        key = self.structure_key(config)
        structure = self._structure_cache.get(key)
        if structure is not None:
            self._structure_cache.move_to_end(key)
            return structure
        _, minislots, _ = self._ct_tables(config)
        frame_ids = config.frame_ids
        period = self.period
        structure = {}
        for m in self.dyn_messages:
            f = frame_ids[m.name]
            node = self.sender_node[m.name]
            anc = self.ancestors.get(m.name, frozenset())
            hp_rows: List[tuple] = []
            lf_rows: List[tuple] = []
            input_names: List[str] = []
            for other in self.dyn_messages:
                if other.name == m.name:
                    continue
                other_f = frame_ids[other.name]
                if other_f < f:
                    lf_rows.append(
                        (other.name, period[other.name], other.name in anc,
                         minislots[other.name] - 1)
                    )
                    input_names.append(other.name)
                elif (
                    other_f == f
                    and self.sender_node[other.name] == node
                    and (other.priority, other.name)
                    <= (m.priority, m.name)
                ):
                    hp_rows.append(
                        (other.name, period[other.name], other.name in anc)
                    )
                    input_names.append(other.name)
            structure[m.name] = (
                f, tuple(hp_rows), tuple(lf_rows), f - 1, tuple(input_names)
            )
        _lru_insert(
            self._structure_cache, key, structure, self.max_structure_entries
        )
        return structure

    def _dependents(self, config: FlexRayConfig) -> Dict[str, tuple]:
        """Reverse interference map: who must be re-evaluated when an
        activity's jitter changes.

        Derived from the same per-configuration structure as
        :meth:`_dyn_structure` (an activity's busy-window inputs are its
        own jitter plus its interferers' jitters); the fix point uses it
        for exact change tracking instead of rebuilding input-signature
        tuples every pass.
        """
        key = ("deps",) + self.structure_key(config)
        deps = self._structure_cache.get(key)
        if deps is not None:
            self._structure_cache.move_to_end(key)
            return deps
        structure = self._dyn_structure(config)
        out: Dict[str, List[str]] = {}
        for m in self.dyn_messages:
            for inp in structure[m.name][4]:
                out.setdefault(inp, []).append(m.name)
        for node in self.system.nodes:
            for plan in self.fps_plans[node]:
                for inp in plan.input_names:
                    out.setdefault(inp, []).append(plan.name)
        deps = {name: tuple(v) for name, v in out.items()}
        _lru_insert(
            self._structure_cache, key, deps, self.max_structure_entries
        )
        return deps

    def _structure_template(self, config: FlexRayConfig, static_names):
        """The backends' structure-invariant activity lowering, cached.

        Keyed by the structure key plus the static-name insertion order
        (the template's row layout leads with it; in practice the order
        is schedule-key-invariant -- it follows the replay plan -- but
        keying on it keeps the reuse provably sound).
        """
        from repro.analysis.backend.arrays import StructureTemplate

        key = (self.structure_key(config), static_names)
        template = self._backend_structures.get(key)
        if template is None:
            template = StructureTemplate(self, config)
            _lru_insert(
                self._backend_structures,
                key,
                template,
                self.max_structure_entries,
            )
        else:
            self._backend_structures.move_to_end(key)
        return template

    def _dyn_views(self, config: FlexRayConfig) -> List[_DynView]:
        """Per-configuration DYN message views (tier c + scalars)."""
        structure = self._dyn_structure(config)
        cts, _, largest_of_sender = self._ct_tables(config)
        n_minislots = config.n_minislots
        gd_cycle = config.gd_cycle
        st_bus = config.st_bus
        ms_len = config.gd_minislot
        fault_k = self._fault_k
        views = []
        for m in self.dyn_messages:
            f, hp_info, lf_info, lower_slots, input_names = structure[m.name]
            p_latest = n_minislots - largest_of_sender[m.name] + 1
            lam = p_latest - 1
            theta = lam - f + 2
            sendable = f <= p_latest
            fault_cycles = 0
            if fault_k and sendable:
                # Worst per-error cycle cost charged into Eq. (3): a
                # corrupted own/hp frame occupies slot f for one extra
                # cycle; a corrupted lf frame re-injects one instance of
                # (at worst) the largest adjusted size, adding at most
                # ``a // theta`` filled cycles plus one cycle each for
                # the instance-count bound and the final-cycle leftover.
                max_adjusted = max((row[3] for row in lf_info), default=0)
                per_error = 1 if max_adjusted <= 0 else 2 + max_adjusted // theta
                fault_cycles = fault_k * per_error
            views.append(
                _DynView(
                    name=m.name,
                    sender=self.sender_task[m.name],
                    input_names=input_names,
                    hp_info=hp_info,
                    lf_info=lf_info,
                    lower_slots=lower_slots,
                    sendable=sendable,
                    lam=lam,
                    theta=theta,
                    sigma=gd_cycle - st_bus - (f - 1) * ms_len,
                    ct=cts[m.name],
                    gd_cycle=gd_cycle,
                    st_bus=st_bus,
                    ms_len=ms_len,
                    fault_cycles=fault_cycles,
                )
            )
        return views

    def schedule_key(self, config: FlexRayConfig) -> tuple:
        """Identity of everything *config*'s schedule table depends on.

        ``static_key()`` plus -- only when the application sends ST
        messages -- the cycle length.  Configurations sharing this key
        produce byte-identical schedules.  (ST slot *placements* are not
        cycle-length-invariant -- a later cycle starts at a different
        absolute time, shifting message readiness chains -- so the
        per-table key must keep ``gd_cycle``; what collapses to
        ``static_key()`` alone is the :class:`SchedulePlan` the table is
        replayed from, see :meth:`_plan`.)
        """
        return config.static_key() + (
            (config.gd_cycle,) if self._st_dependent else ()
        )

    def has_schedule_for(self, config: FlexRayConfig) -> bool:
        """True when the tier-(b) cache already holds *config*'s schedule.

        Lets the parallel evaluation pool decide per candidate whether
        the worker should ship the (heavy) schedule table back or the
        parent can cheaply re-attach it from its own cache.
        """
        return self.schedule_key(config) in self._schedule_cache

    def schedule_table_for(self, config: FlexRayConfig):
        """Schedule table of *config*, served from the tier-(b) cache.

        Deterministic rebuild-or-fetch: the parallel evaluation pool
        ships analysis results without their tables (the table is by far
        the heaviest part of the pickle) and re-attaches them here;
        ``None`` when the static segment cannot be scheduled.
        """
        arts = self._schedule_artifacts(config)
        if arts.table is None:
            return None
        return (
            arts.table
            if arts.table.config is config
            else arts.table.retime_for(config)
        )

    # ------------------------------------------------------------------
    # the analysis itself
    # ------------------------------------------------------------------
    def analyse(self, config: FlexRayConfig):
        """Full scheduling + holistic analysis of one configuration.

        Bit-identical to :func:`repro.analysis.holistic.analyse_system`
        run without a context; see the module docstring for what is
        shared between calls.  ``options.warm_start`` selects the fix
        point trajectory: the certified fast path (default), the fully
        cold oracle, the legacy neighbour seeding, or the verify
        cross-check; ``options.backend`` selects the evaluation backend
        (see :class:`~repro.analysis.holistic.AnalysisOptions`).
        """
        if self.options.backend != "python":
            return self.analyse_batch([config])[0]
        return self._analyse_python(config)

    def analyse_batch(self, configs) -> list:
        """Analyse a list of configurations under ``options.backend``.

        The batch entry point of :meth:`Evaluator.analyse_many
        <repro.core.search.Evaluator>`: with ``backend="python"`` it is
        exactly the per-candidate loop; with ``backend="numpy"`` the
        feasible candidates are grouped by (schedule key, DYN structure
        key) and each group's busy-window fix points advance in lockstep
        (:func:`repro.analysis.backend.kernels.run_group`);
        ``backend="verify"`` runs both, counts mismatches in
        :attr:`backend_divergences` and returns the Python results.
        Result lists are ordered like *configs* and bit-identical across
        backends.
        """
        backend = self.options.backend
        if backend == "python":
            return [self._analyse_python(c) for c in configs]
        if backend == "numpy":
            return self._analyse_array_batch(configs)
        if backend == "native":
            return self._analyse_native_batch(configs)
        # "verify": the Python oracle versus every available accelerated
        # backend, mismatches counted per (analysis, backend) pair.
        from repro.analysis.backend import native_or_none

        python_results = [self._analyse_python(c) for c in configs]
        accelerated = [self._analyse_array_batch(configs)]
        if native_or_none() is not None:
            accelerated.append(self._analyse_native_batch(configs))
        for fast_results in accelerated:
            for fast_result, python_result in zip(
                fast_results, python_results
            ):
                if self._result_signature(
                    fast_result
                ) != self._result_signature(python_result):
                    self.backend_divergences += 1
        return python_results

    @staticmethod
    def _result_signature(result) -> tuple:
        """Everything the bit-identity contract covers, as a plain tuple."""
        return (
            result.feasible,
            result.schedulable,
            result.converged,
            result.failure,
            result.cost,
            tuple(result.wcrt.items()),
        )

    def _backend_gated(self) -> bool:
        """True when a batch must run the Python path per candidate.

        Oracle/debug modes (``warm_start != "certified"``,
        ``dominance="verify"``, ``dyn_fill_strategy="exact"``) exist to
        exercise the reference semantics, so the accelerated backends
        stand down for them entirely.
        """
        options = self.options
        return (
            options.warm_start != "certified"
            or options.dominance == "verify"
            or options.dyn_fill_strategy != "bound"
        )

    def _analyse_array_batch(self, configs) -> list:
        """The numpy path of :meth:`analyse_batch` (ordered like input)."""
        from repro.analysis.backend import numpy_or_none

        if numpy_or_none() is None or self._backend_gated():
            return [self._analyse_python(c) for c in configs]
        from repro.analysis.backend.kernels import run_group

        return self._analyse_grouped_batch(configs, run_group)

    def _analyse_native_batch(self, configs) -> list:
        """The compiled-kernel path of :meth:`analyse_batch`.

        Same grouping and gating as the numpy path; each group runs
        through :func:`repro.analysis.backend.native.run_group_native`,
        which delegates structurally unsafe or overflow-flagged groups
        back to the numpy kernels (whose per-activity Python fallbacks
        close the exactness loop).
        """
        from repro.analysis.backend import native_or_none, numpy_or_none

        if (
            native_or_none() is None
            or numpy_or_none() is None
            or self._backend_gated()
        ):
            return [self._analyse_python(c) for c in configs]
        from repro.analysis.backend.native import run_group_native

        return self._analyse_grouped_batch(configs, run_group_native)

    def _analyse_grouped_batch(self, configs, run_fn) -> list:
        """Group feasible candidates and run each group on *run_fn*.

        Shared by the numpy and native backends: candidates are grouped
        by (schedule key, DYN structure key), the per-group
        :class:`~repro.analysis.backend.arrays.GroupPlan` lowering is
        cached on the context (both backends consume the same plans),
        and infeasible candidates short-circuit exactly like the Python
        path.
        """
        from repro.analysis.backend.arrays import GroupPlan
        from repro.analysis.holistic import _infeasible

        results = [None] * len(configs)
        groups: "OrderedDict[tuple, list]" = OrderedDict()
        for i, config in enumerate(configs):
            failure = self._validate(config)
            if failure is not None:
                results[i] = _infeasible(config, failure)
                continue
            arts = self._schedule_artifacts(config)
            if arts.failure is not None:
                results[i] = _infeasible(config, arts.failure)
                continue
            key = (self.schedule_key(config), self.structure_key(config))
            groups.setdefault(key, []).append(i)
        for key, indices in groups.items():
            plan = self._backend_plans.get(key)
            if plan is None:
                plan = GroupPlan(self, configs[indices[0]])
                _lru_insert(
                    self._backend_plans, key, plan, self.max_schedule_entries
                )
            else:
                self._backend_plans.move_to_end(key)
            for i, result in zip(
                indices, run_fn(self, plan, [configs[i] for i in indices])
            ):
                results[i] = result
        return results

    def _analyse_python(self, config: FlexRayConfig):
        """The pure-Python analysis (reference semantics of every backend)."""
        from repro.analysis.holistic import AnalysisResult, _infeasible

        options = self.options
        failure = self._validate(config)
        if failure is not None:
            return _infeasible(config, failure)

        arts = self._schedule_artifacts(config)
        if arts.failure is not None:
            return _infeasible(config, arts.failure)
        table = (
            arts.table
            if arts.table.config is config
            else arts.table.retime_for(config)
        )

        cap_base = self._cap_base
        gd_cycle = config.gd_cycle
        cap = options.cap_factor * (cap_base if cap_base > gd_cycle else gd_cycle)
        dyn_views = self._dyn_views(config)

        # --- holistic fix point ---------------------------------------
        mode = options.warm_start
        if mode == "certified":
            # The default: the certified trajectory, no sweep-key
            # bookkeeping on the hot path.
            wcrt, converged = self._fix_point(config, arts, dyn_views, cap)
        elif mode == "off":
            # The fully cold oracle the certified path is checked
            # against: no inner seeds, no instant pruning.
            wcrt, converged = self._fix_point(
                config, arts, dyn_views, cap, certified=False
            )
        elif mode == "verify":
            # Certified fast path cross-checked against the cold oracle.
            fast_wcrt, fast_converged = self._fix_point(
                config, arts, dyn_views, cap
            )
            wcrt, converged = self._fix_point(
                config, arts, dyn_views, cap, certified=False
            )
            if (fast_wcrt, fast_converged) != (wcrt, converged):
                self.warm_start_divergences += 1
        else:  # "seed": legacy neighbour seeding, opt-in and uncertified
            sweep_key = self._sweep_key(config)
            prev = self._warm_state
            seed_wcrt = (
                prev[1]
                if prev is not None and prev[0] == sweep_key and prev[2]
                else None
            )
            wcrt, converged = self._fix_point(
                config, arts, dyn_views, cap, seed_wcrt=seed_wcrt
            )
            self._warm_state = (sweep_key, wcrt, converged)

        cost = cost_function(self.app, wcrt)
        return AnalysisResult(
            config=config,
            feasible=True,
            schedulable=cost.schedulable and converged,
            converged=converged,
            cost=cost,
            wcrt=wcrt,
            table=table,
        )

    def _sweep_key(self, config: FlexRayConfig) -> tuple:
        """Identity of a sweep family: everything but the DYN length.

        Two configurations sharing this key differ only in
        ``n_minislots`` -- the neighbourhood relation the outer
        warm-start modes accept seeds across.
        """
        return config.static_key() + (tuple(sorted(config.frame_ids.items())),)

    def _fix_point(
        self,
        config: FlexRayConfig,
        arts: _ScheduleArtifacts,
        dyn_views: List[_DynView],
        cap: int,
        seed_wcrt: Dict[str, int] = None,
        certified: bool = True,
    ) -> Tuple[Dict[str, int], bool]:
        """The holistic Kleene iteration; returns ``(wcrt, converged)``.

        With ``certified=True`` and no ``seed_wcrt`` this is the default
        fast path: the outer state starts from the configuration's own
        static-only state (the bottom element, a provable lower bound of
        the least fixed point), its jitters grow monotonically across
        passes, and that monotonicity certifies the *inner* warm starts
        -- each busy-window recurrence is seeded with its own previous
        converged demand/window, a lower bound of the new least fixed
        point, so the seeded recurrence provably converges to exactly
        the cold value (see :func:`repro.analysis.fps.seeded_busy_window`,
        whose incremental per-instant bound is also enabled here).

        ``certified=False`` is the fully cold oracle the fast path is
        verified against: same bottom start, but no inner seeds and no
        instant pruning.

        With ``seed_wcrt`` the outer state starts from a neighbouring
        configuration's solution instead.  That trajectory is not
        monotone, so the certification argument does not apply: inner
        warm starts are disabled, and the result may be a fixed point
        above the least one (which is why neighbour seeding is opt-in
        behind ``warm_start="seed"``).
        """
        options = self.options
        fill_strategy = options.dyn_fill_strategy
        availability = arts.availability
        fps_plans = self.fps_plans
        nodes = self.system.nodes

        wcrt: Dict[str, int] = dict(arts.static_wcrt)
        if self._fault_k:
            # k-error hypothesis, static side: each channel error delays
            # any ST frame or message-fed TT job by at most one whole
            # bus cycle (a corrupted static frame retries in its slot's
            # next cycle instance; a displaced or input-starved group
            # slips exactly one cycle per error ahead of it), so k
            # errors cost at most k cycles per static activity.  The
            # inflated values then feed the DYN/FPS jitters through the
            # holistic fix point below.
            bump = self._fault_k * config.gd_cycle
            for name in self._fault_static_names:
                value = wcrt.get(name)
                if value is not None:
                    inflated = value + bump
                    wcrt[name] = inflated if inflated < cap else cap
        jitters: Dict[str, int] = {}
        inner_seeds: Dict[str, object] = {}
        use_inner = certified and seed_wcrt is None
        prune = certified
        # Pattern-level dominance (cache layer 3, riding layer 2's
        # NodeAvailability objects): the elided
        # instant sets live on the cached NodeAvailability objects, so
        # they ride the per-static-segment schedule cache -- a pure-DYN
        # sweep builds them once for the whole sweep.  The cold oracle
        # (``certified=False``) disables dominance along with every
        # other accelerator, whatever the option says.
        dominance = certified and options.dominance == "on"
        dominance_verify = certified and options.dominance == "verify"
        if seed_wcrt is not None:
            for name, value in seed_wcrt.items():
                if name not in wcrt:
                    wcrt[name] = value
        wcrt_get = wcrt.get
        jitters_get = jitters.get
        seeds_get = inner_seeds.get
        # Exact change tracking replaces per-pass input-signature tuples:
        # an activity's busy window is a pure function of its own jitter
        # and its interferers' jitters, so it must be re-evaluated iff
        # its own jitter changed (``last_own``) or some interferer's
        # jitter was updated since its last evaluation (``dirty``, fed by
        # the reverse interference map).
        dependents = self._dependents(config)
        deps_get = dependents.get
        dirty = set()
        dirty_add = dirty.add
        last_own: Dict[str, int] = {}
        last_out: Dict[str, Tuple[int, bool]] = {}
        fps_items = [
            (plan, availability[node])
            for node in nodes
            for plan in fps_plans[node]
        ]
        converged = True
        for _ in range(options.max_holistic_iterations):
            changed = False

            # DYN messages: jitter inherited from the sender task.  The
            # memo caches the busy *window* (a pure function of the
            # interferers' jitters -- plus the own jitter only when
            # ancestor rows exist), so an own-jitter change alone just
            # re-derives R_m = J_m + w + C_m from the cached window.
            for view in dyn_views:
                name = view.name
                j_m = wcrt_get(view.sender, 0)
                if jitters_get(name, 0) != j_m:
                    jitters[name] = j_m
                    changed = True
                    for dep in deps_get(name, ()):
                        dirty_add(dep)
                cached = (
                    last_out.get(name)
                    if name not in dirty
                    and (not view.own_sensitive or last_own.get(name) == j_m)
                    else None
                )
                if cached is not None:
                    w, ok = cached
                else:
                    if view.sendable:
                        w, ok, final = _dyn_busy_window(
                            view.hp_info,
                            view.lf_info,
                            view.lower_slots,
                            view.lam,
                            view.theta,
                            view.sigma,
                            view.ct,
                            view.gd_cycle,
                            view.st_bus,
                            view.ms_len,
                            jitters,
                            cap,
                            j_m,
                            fill_strategy,
                            seeds_get(name) if use_inner else None,
                            view.fault_cycles,
                        )
                        if use_inner:
                            inner_seeds[name] = final
                    else:
                        # The frame can never be sent: certain miss.
                        w, ok = None, False
                    dirty.discard(name)
                    last_own[name] = j_m
                    last_out[name] = (w, ok)
                if w is None:
                    value = cap
                else:
                    value = j_m + w + view.ct
                    if value > cap:
                        value = cap
                converged = converged and ok
                if wcrt_get(name) != value:
                    wcrt[name] = value
                    changed = True

            # FPS tasks: jitter = worst finish of any predecessor.
            for plan, node_availability in fps_items:
                name = plan.name
                j_i = plan.release
                for pred in plan.predecessors:
                    v = wcrt_get(pred, 0)
                    if v > j_i:
                        j_i = v
                if jitters_get(name, 0) != j_i:
                    jitters[name] = j_i
                    changed = True
                    for dep in deps_get(name, ()):
                        dirty_add(dep)
                cached = (
                    last_out.get(name)
                    if name not in dirty
                    and (not plan.own_sensitive or last_own.get(name) == j_i)
                    else None
                )
                if cached is not None:
                    window_value, ok = cached
                else:
                    window_value, ok, demands = _fps_busy_window(
                        plan.wcet,
                        plan.interferers,
                        node_availability,
                        jitters,
                        cap,
                        j_i,
                        seeds_get(name) if use_inner else None,
                        prune,
                        dominance,
                    )
                    if dominance_verify:
                        # Force-build the tables (bypassing the lazy
                        # amortisation threshold): verify must actually
                        # run both ways from the first maximisation, not
                        # compare the full path with itself.
                        node_availability.dominance_tables()
                        elided, elided_ok, _ = _fps_busy_window(
                            plan.wcet,
                            plan.interferers,
                            node_availability,
                            jitters,
                            cap,
                            j_i,
                            seeds_get(name) if use_inner else None,
                            prune,
                            True,
                        )
                        if (elided, elided_ok) != (window_value, ok):
                            self.dominance_divergences += 1
                    if use_inner:
                        inner_seeds[name] = demands
                    dirty.discard(name)
                    last_own[name] = j_i
                    last_out[name] = (window_value, ok)
                converged = converged and ok
                r_i = j_i + window_value
                if r_i > cap:
                    r_i = cap
                if wcrt_get(name) != r_i:
                    wcrt[name] = r_i
                    changed = True

            if not changed:
                break
        else:
            converged = False
        return wcrt, converged


def ancestor_sets(app) -> Dict[str, frozenset]:
    """Transitive predecessors of every activity within its graph."""
    out: Dict[str, frozenset] = {}
    for g in app.graphs:
        closure: Dict[str, set] = {}
        for name in g.topological_order():
            anc = set()
            for pred in g.predecessors(name):
                anc.add(pred)
                anc |= closure[pred]
            closure[name] = anc
        for name, anc in closure.items():
            out[name] = frozenset(anc)
    return out
