"""Node availability function.

FPS tasks execute only in the *slack* of the static schedule (Section 2
of the paper).  The static schedule of a node defines a periodic pattern
of busy intervals over the hyper-period; this module answers "starting at
time t0, when has the node delivered x macroticks of slack?" -- the
primitive the FPS response-time analysis is built on.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


def merge_intervals(intervals: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping (start, end) intervals; drops empty ones."""
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[int, int]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def wrap_busy_intervals(intervals, period):
    """Fold absolute busy intervals into the periodic pattern [0, period).

    The static scheduler may place jobs beyond the hyper-period when a
    candidate configuration is overloaded (the spill is exactly what the
    cost function later reports as deadline misses); for the FPS
    availability pattern the spill occupies the start of the next period,
    so each interval is wrapped modulo *period* and split at boundaries.
    An interval spanning a whole period makes the node permanently busy.
    """
    wrapped = []
    for s, e in intervals:
        if e - s >= period:
            return [(0, period)]
        s_mod = s % period
        length = e - s
        if s_mod + length <= period:
            wrapped.append((s_mod, s_mod + length))
        else:
            wrapped.append((s_mod, period))
            wrapped.append((0, s_mod + length - period))
    return merge_intervals(wrapped)


class NodeAvailability:
    """Periodic availability pattern of one node.

    Parameters
    ----------
    busy:
        Busy (SCS-occupied) intervals within one period ``[0, period)``.
        Intervals crossing the period boundary must be split by the
        caller (the schedule table never produces crossing intervals
        because SCS jobs complete within the horizon).
    period:
        Length of the repeating pattern (the application hyper-period).
    """

    def __init__(self, busy: Sequence[Tuple[int, int]], period: int):
        if period <= 0:
            raise AnalysisError(f"availability period must be positive, got {period}")
        merged = merge_intervals(busy)
        for s, e in merged:
            if s < 0 or e > period:
                raise AnalysisError(
                    f"busy interval ({s}, {e}) escapes the period [0, {period})"
                )
        self.period = period
        self.busy = merged
        self._busy_per_period = sum(e - s for s, e in merged)
        # Precomputed once: the response-time fix points call ``advance``
        # millions of times per optimiser run and the gap list / critical
        # instants never change after construction.
        self._gap_list = self._compute_gaps()
        self._critical_instants = [0] + [s for s, _ in merged]
        # Prefix-sum view of the gaps so ``advance`` can bisect instead of
        # walking the gap list: ``_gap_ends[k]`` is the end of gap k and
        # ``_slack_through[k]`` the pattern slack accumulated up to (and
        # including) gap k.
        self._gap_starts_arr = [s for s, _ in self._gap_list]
        self._gap_ends = [e for _, e in self._gap_list]
        self._slack_through: List[int] = []
        acc = 0
        for s, e in self._gap_list:
            acc += e - s
            self._slack_through.append(acc)
        #: Pattern slack before each critical instant, precomputed: the
        #: FPS busy-window kernel only ever advances from critical
        #: instants, so it can skip the per-call offset bisect entirely.
        self._instant_slack_before = [
            self._slack_before(t) for t in self._critical_instants
        ]
        #: Evaluation order for the busy-window maximisation: instants
        #: sorted by descending initial busy-run length (ties by index).
        #: Instants with long initial blocking tend to produce the
        #: largest busy windows, so visiting them first makes the
        #: incremental per-instant bound of
        #: :func:`repro.analysis.fps.seeded_busy_window` prune the rest
        #: early.  The maximisation result is order-independent.
        end_of_run = dict(merged)

        def _initial_block(t: int) -> int:
            return end_of_run[t] - t if t in end_of_run else 0

        self._instant_eval_order = tuple(
            sorted(
                range(len(self._critical_instants)),
                key=lambda i: (-_initial_block(self._critical_instants[i]), i),
            )
        )

    def _slack_before(self, x: int) -> int:
        """Pattern slack in ``[0, x)`` for ``0 <= x <= period``."""
        i = bisect_right(self._gap_starts_arr, x) - 1
        if i < 0:
            return 0
        end = self._gap_ends[i]
        return self._slack_through[i] - (end - min(end, x))

    def instant_advance_tables(self) -> tuple:
        """Raw tables for the inlined busy-window kernel.

        ``(instants, slack_before_instant, slack_per_period, period,
        gap_ends, slack_through, eval_order)`` -- everything needed to
        compute ``advance(instant, demand)`` without a method call; see
        :func:`repro.analysis.fps.seeded_busy_window`.  Empty-pattern
        nodes (no busy intervals) return ``gap_ends = None``.
        ``eval_order`` lists instant indices with the longest initial
        busy run first -- the order that makes the kernel's incremental
        per-instant bound prune best.
        """
        if not self.busy:
            return (self._critical_instants, None, self.period,
                    self.period, None, None, self._instant_eval_order)
        return (
            self._critical_instants,
            self._instant_slack_before,
            self.period - self._busy_per_period,
            self.period,
            self._gap_ends,
            self._slack_through,
            self._instant_eval_order,
        )

    @property
    def slack_per_period(self) -> int:
        """Available macroticks in one period."""
        return self.period - self._busy_per_period

    def is_busy(self, t: int) -> bool:
        """True when the node is running an SCS task at absolute time *t*."""
        tp = t % self.period
        return any(s <= tp < e for s, e in self.busy)

    def available_in(self, t0: int, t1: int) -> int:
        """Slack macroticks inside the absolute window [t0, t1)."""
        if t1 <= t0:
            return 0
        return (t1 - t0) - self._busy_in(t0, t1)

    def _busy_in(self, t0: int, t1: int) -> int:
        full_periods, x0 = divmod(t0, self.period)
        total = 0
        # advance t0 to the next period boundary
        first_end = (full_periods + 1) * self.period
        if t1 <= first_end:
            return self._busy_in_pattern(x0, t1 - full_periods * self.period)
        total += self._busy_in_pattern(x0, self.period)
        t = first_end
        whole = (t1 - t) // self.period
        total += whole * self._busy_per_period
        t += whole * self.period
        total += self._busy_in_pattern(0, t1 - t)
        return total

    def _busy_in_pattern(self, a: int, b: int) -> int:
        """Busy time within [a, b) where 0 <= a <= b <= period."""
        total = 0
        for s, e in self.busy:
            lo = max(s, a)
            hi = min(e, b)
            if hi > lo:
                total += hi - lo
        return total

    def advance(self, t0: int, demand: int) -> Optional[int]:
        """Earliest absolute time t >= t0 with ``available_in(t0, t) == demand``.

        Returns ``None`` when the pattern has no slack at all (demand can
        never be served).
        """
        if demand < 0:
            raise AnalysisError(f"demand must be >= 0, got {demand}")
        if demand == 0:
            return t0
        if not self.busy:
            # Fully idle node: demand is served back to back.
            return t0 + demand
        slack = self.period - self._busy_per_period
        if slack == 0:
            return None
        period = self.period
        full, x = divmod(t0, period)
        # Slack already consumed by the pattern before offset x.
        starts = self._gap_starts_arr
        through = self._slack_through
        i = bisect_right(starts, x) - 1
        if i < 0:
            before_x = 0
        else:
            end = self._gap_ends[i]
            before_x = through[i] - (end - min(end, x))
        # Serve the demand at pattern offset where the cumulative slack
        # since offset 0 reaches ``before_x + demand`` (spilling whole
        # periods first).
        target = before_x + demand
        whole, target = divmod(target - 1, slack)
        target += 1
        k = bisect_left(through, target)
        pos = self._gap_ends[k] - (through[k] - target)
        return (full + whole) * period + pos

    def busy_starts(self) -> List[int]:
        """Pattern-relative start times of busy intervals (critical instants)."""
        return [s for s, _ in self.busy]

    def critical_instants(self) -> List[int]:
        """Candidate busy-window origins: time 0 plus every busy start."""
        return self._critical_instants

    def _gaps(self) -> List[Tuple[int, int]]:
        return self._gap_list

    def _compute_gaps(self) -> List[Tuple[int, int]]:
        gaps: List[Tuple[int, int]] = []
        prev = 0
        for s, e in self.busy:
            if s > prev:
                gaps.append((prev, s))
            prev = e
        if prev < self.period:
            gaps.append((prev, self.period))
        return gaps
