"""Node availability function.

FPS tasks execute only in the *slack* of the static schedule (Section 2
of the paper).  The static schedule of a node defines a periodic pattern
of busy intervals over the hyper-period; this module answers "starting at
time t0, when has the node delivered x macroticks of slack?" -- the
primitive the FPS response-time analysis is built on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


def merge_intervals(intervals: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping (start, end) intervals; drops empty ones."""
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[int, int]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def wrap_busy_intervals(intervals, period):
    """Fold absolute busy intervals into the periodic pattern [0, period).

    The static scheduler may place jobs beyond the hyper-period when a
    candidate configuration is overloaded (the spill is exactly what the
    cost function later reports as deadline misses); for the FPS
    availability pattern the spill occupies the start of the next period,
    so each interval is wrapped modulo *period* and split at boundaries.
    An interval spanning a whole period makes the node permanently busy.
    """
    wrapped = []
    for s, e in intervals:
        if e - s >= period:
            return [(0, period)]
        s_mod = s % period
        length = e - s
        if s_mod + length <= period:
            wrapped.append((s_mod, s_mod + length))
        else:
            wrapped.append((s_mod, period))
            wrapped.append((0, s_mod + length - period))
    return merge_intervals(wrapped)


class NodeAvailability:
    """Periodic availability pattern of one node.

    Parameters
    ----------
    busy:
        Busy (SCS-occupied) intervals within one period ``[0, period)``.
        Intervals crossing the period boundary must be split by the
        caller (the schedule table never produces crossing intervals
        because SCS jobs complete within the horizon).
    period:
        Length of the repeating pattern (the application hyper-period).
    """

    def __init__(self, busy: Sequence[Tuple[int, int]], period: int):
        if period <= 0:
            raise AnalysisError(f"availability period must be positive, got {period}")
        merged = merge_intervals(busy)
        for s, e in merged:
            if s < 0 or e > period:
                raise AnalysisError(
                    f"busy interval ({s}, {e}) escapes the period [0, {period})"
                )
        self.period = period
        self.busy = merged
        self._busy_per_period = sum(e - s for s, e in merged)
        # Precomputed once: the response-time fix points call ``advance``
        # millions of times per optimiser run and the gap list / critical
        # instants never change after construction.
        self._gap_list = self._compute_gaps()
        self._critical_instants = [0] + [s for s, _ in merged]

    @property
    def slack_per_period(self) -> int:
        """Available macroticks in one period."""
        return self.period - self._busy_per_period

    def is_busy(self, t: int) -> bool:
        """True when the node is running an SCS task at absolute time *t*."""
        tp = t % self.period
        return any(s <= tp < e for s, e in self.busy)

    def available_in(self, t0: int, t1: int) -> int:
        """Slack macroticks inside the absolute window [t0, t1)."""
        if t1 <= t0:
            return 0
        return (t1 - t0) - self._busy_in(t0, t1)

    def _busy_in(self, t0: int, t1: int) -> int:
        full_periods, x0 = divmod(t0, self.period)
        total = 0
        # advance t0 to the next period boundary
        first_end = (full_periods + 1) * self.period
        if t1 <= first_end:
            return self._busy_in_pattern(x0, t1 - full_periods * self.period)
        total += self._busy_in_pattern(x0, self.period)
        t = first_end
        whole = (t1 - t) // self.period
        total += whole * self._busy_per_period
        t += whole * self.period
        total += self._busy_in_pattern(0, t1 - t)
        return total

    def _busy_in_pattern(self, a: int, b: int) -> int:
        """Busy time within [a, b) where 0 <= a <= b <= period."""
        total = 0
        for s, e in self.busy:
            lo = max(s, a)
            hi = min(e, b)
            if hi > lo:
                total += hi - lo
        return total

    def advance(self, t0: int, demand: int) -> Optional[int]:
        """Earliest absolute time t >= t0 with ``available_in(t0, t) == demand``.

        Returns ``None`` when the pattern has no slack at all (demand can
        never be served).
        """
        if demand < 0:
            raise AnalysisError(f"demand must be >= 0, got {demand}")
        if demand == 0:
            return t0
        if not self.busy:
            # Fully idle node: demand is served back to back.
            return t0 + demand
        slack = self.slack_per_period
        if slack == 0:
            return None
        period = self.period
        gaps = self._gap_list
        remaining = demand
        # Skip whole periods first for efficiency.
        whole = (remaining - 1) // slack
        t = t0 + whole * period
        remaining -= whole * slack
        # Walk gap by gap; guaranteed to terminate because each period
        # provides slack_per_period > 0.
        while remaining > 0:
            base = (t // period) * period
            x = t - base
            for s, e in gaps:
                lo = s if s > x else x
                if lo >= e:
                    continue
                room = e - lo
                if room >= remaining:
                    return base + lo + remaining
                remaining -= room
            t = base + period
        return t

    def busy_starts(self) -> List[int]:
        """Pattern-relative start times of busy intervals (critical instants)."""
        return [s for s, _ in self.busy]

    def critical_instants(self) -> List[int]:
        """Candidate busy-window origins: time 0 plus every busy start."""
        return self._critical_instants

    def _gaps(self) -> List[Tuple[int, int]]:
        return self._gap_list

    def _compute_gaps(self) -> List[Tuple[int, int]]:
        gaps: List[Tuple[int, int]] = []
        prev = 0
        for s, e in self.busy:
            if s > prev:
                gaps.append((prev, s))
            prev = e
        if prev < self.period:
            gaps.append((prev, self.period))
        return gaps
