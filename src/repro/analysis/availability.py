"""Node availability function.

FPS tasks execute only in the *slack* of the static schedule (Section 2
of the paper).  The static schedule of a node defines a periodic pattern
of busy intervals over the hyper-period; this module answers "starting at
time t0, when has the node delivered x macroticks of slack?" -- the
primitive the FPS response-time analysis is built on.

Beyond the point queries, each :class:`NodeAvailability` lazily builds
two per-pattern index structures for the busy-window maximisation of
:func:`repro.analysis.fps.seeded_busy_window`: the prefix-sum
:class:`InstantTables` that turn ``advance`` into a ``divmod`` plus a
bisect, and the pattern-level :class:`DominanceTables` that elide
critical instants whose delivered-slack function another instant
dominates pointwise (``docs/ANALYSIS.md`` proves the elision exact).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import AnalysisError

#: Work budget of the dominance construction, as a multiple of the
#: pattern size ``n_instants + n_boundaries``.  Each staircase
#: comparison step costs one unit; once the budget is exhausted the
#: remaining instants are kept as maximal unconditionally (keeping an
#: instant is always safe -- only *eliding* one needs a proof), so the
#: construction is certifiably near-linear in the pattern size while the
#: pruning stays exact.  In practice the sweep never comes close: the
#: budget exists to bound adversarial patterns, not measured ones.
DOMINANCE_BUDGET_FACTOR = 64

#: Number of dominance-enabled maximisations a pattern must serve before
#: the dominance tables are built.  Construction is a per-pattern cost
#: that only pays off when many maximisations reuse it: an ST-heavy
#: sweep gives every configuration a fresh schedule -- and hence fresh
#: availability patterns that each serve only one fix point -- so even
#: building "lazily on first use" costs more than the elision saves
#: there (measured ~0.8x vs. the PR 3 path on the bench sweep).  A
#: pure-DYN sweep reuses one pattern across the whole sweep, sails past
#: the threshold during its first configurations and amortises the
#: construction to nothing.  Until the threshold is crossed the kernel
#: simply runs with the per-instant bound alone -- results are identical
#: either way, so the threshold is a pure cost knob, never a semantic
#: one.  :meth:`NodeAvailability.dominance_tables` bypasses it (a direct
#: request is an explicit demand for the tables).
DOMINANCE_LAZY_THRESHOLD = 64


class DominanceTables(NamedTuple):
    """Pattern-level dominance preorder over critical instants.

    Instant *t* is *dominated* by instant *u* when t's delivered-slack
    function is pointwise at least u's (``available_in(t, t+w) >=
    available_in(u, u+w)`` for every window ``w``): every demand is then
    served from *t* no later than from *u*, so t's busy-window fixed
    point can never exceed u's and t can be elided from the FPS
    maximisation (see ``docs/ANALYSIS.md``, "Pattern-level dominance").
    A property of the availability pattern alone -- built lazily once
    per :class:`NodeAvailability` and amortised across every busy-window
    maximisation that reuses the schedule.
    """

    #: Maximal (non-dominated) instant indices, in the availability's
    #: evaluation order (longest initial busy run first) -- the set the
    #: pruned maximisation iterates.
    maximal_order: Tuple[int, ...]
    #: Dominated instant indices, same order -- evaluated only in the
    #: rare near-cap regime where the activation-count guard of
    #: :func:`repro.analysis.fps.seeded_busy_window` cannot certify
    #: their convergence flag.
    dominated_order: Tuple[int, ...]
    #: Per instant index: the index of a dominating instant, or ``-1``
    #: for maximal instants.  The witness is what makes elision
    #: auditable -- tests check the pointwise inequality against it.
    witness: Tuple[int, ...]


class InstantTables(NamedTuple):
    """Raw per-instant tables of the inlined busy-window kernel.

    Everything :func:`repro.analysis.fps.seeded_busy_window` needs to
    compute ``advance(instant, demand)`` without a method call.
    Empty-pattern nodes (no busy intervals) have ``slack_before``,
    ``gap_ends`` and ``slack_through`` set to ``None``.  ``dominance``
    is ``None`` until the lazily-built dominance tables are requested
    through :meth:`NodeAvailability.instant_advance_tables`.
    """

    #: Candidate busy-window origins: time 0 plus every busy start.
    instants: List[int]
    #: Pattern slack before each instant (``None`` for idle nodes).
    slack_before: Optional[List[int]]
    #: Available macroticks per period.
    slack_per_period: int
    #: Length of the repeating pattern.
    period: int
    #: End of gap k (``None`` for idle nodes).
    gap_ends: Optional[List[int]]
    #: Pattern slack through gap k, inclusive (``None`` for idle nodes).
    slack_through: Optional[List[int]]
    #: Instant indices, longest initial busy run first -- the order that
    #: makes the kernel's incremental per-instant bound prune best.
    eval_order: Tuple[int, ...]
    #: Lazily-built :class:`DominanceTables`, or ``None``.
    dominance: Optional[DominanceTables]


def merge_intervals(intervals: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping (start, end) intervals; drops empty ones."""
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[int, int]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def wrap_busy_intervals(intervals, period):
    """Fold absolute busy intervals into the periodic pattern [0, period).

    The static scheduler may place jobs beyond the hyper-period when a
    candidate configuration is overloaded (the spill is exactly what the
    cost function later reports as deadline misses); for the FPS
    availability pattern the spill occupies the start of the next period,
    so each interval is wrapped modulo *period* and split at boundaries.
    An interval spanning a whole period makes the node permanently busy.
    """
    wrapped = []
    for s, e in intervals:
        if e - s >= period:
            return [(0, period)]
        s_mod = s % period
        length = e - s
        if s_mod + length <= period:
            wrapped.append((s_mod, s_mod + length))
        else:
            wrapped.append((s_mod, period))
            wrapped.append((0, s_mod + length - period))
    return merge_intervals(wrapped)


class NodeAvailability:
    """Periodic availability pattern of one node.

    Parameters
    ----------
    busy:
        Busy (SCS-occupied) intervals within one period ``[0, period)``.
        Intervals crossing the period boundary must be split by the
        caller (the schedule table never produces crossing intervals
        because SCS jobs complete within the horizon).
    period:
        Length of the repeating pattern (the application hyper-period).
    """

    def __init__(self, busy: Sequence[Tuple[int, int]], period: int):
        if period <= 0:
            raise AnalysisError(f"availability period must be positive, got {period}")
        merged = merge_intervals(busy)
        for s, e in merged:
            if s < 0 or e > period:
                raise AnalysisError(
                    f"busy interval ({s}, {e}) escapes the period [0, {period})"
                )
        self.period = period
        self.busy = merged
        self._busy_per_period = sum(e - s for s, e in merged)
        # Precomputed once: the response-time fix points call ``advance``
        # millions of times per optimiser run and the gap list / critical
        # instants never change after construction.
        self._gap_list = self._compute_gaps()
        self._critical_instants = [0] + [s for s, _ in merged]
        # Prefix-sum view of the gaps so ``advance`` can bisect instead of
        # walking the gap list: ``_gap_ends[k]`` is the end of gap k and
        # ``_slack_through[k]`` the pattern slack accumulated up to (and
        # including) gap k.
        self._gap_starts_arr = [s for s, _ in self._gap_list]
        self._gap_ends = [e for _, e in self._gap_list]
        self._slack_through: List[int] = []
        acc = 0
        for s, e in self._gap_list:
            acc += e - s
            self._slack_through.append(acc)
        #: Pattern slack before each critical instant, precomputed: the
        #: FPS busy-window kernel only ever advances from critical
        #: instants, so it can skip the per-call offset bisect entirely.
        self._instant_slack_before = [
            self._slack_before(t) for t in self._critical_instants
        ]
        #: Evaluation order for the busy-window maximisation: instants
        #: sorted by descending initial busy-run length (ties by index).
        #: Instants with long initial blocking tend to produce the
        #: largest busy windows, so visiting them first makes the
        #: incremental per-instant bound of
        #: :func:`repro.analysis.fps.seeded_busy_window` prune the rest
        #: early.  The maximisation result is order-independent.
        end_of_run = dict(merged)

        def _initial_block(t: int) -> int:
            return end_of_run[t] - t if t in end_of_run else 0

        self._instant_eval_order = tuple(
            sorted(
                range(len(self._critical_instants)),
                key=lambda i: (-_initial_block(self._critical_instants[i]), i),
            )
        )
        #: Dominance-enabled maximisations served so far; the dominance
        #: tables are built once this crosses the amortisation threshold
        #: (see :data:`DOMINANCE_LAZY_THRESHOLD`).
        self._dominance_requests = 0
        if not merged:
            self._tables = InstantTables(
                self._critical_instants, None, period, period, None, None,
                self._instant_eval_order, None,
            )
        else:
            self._tables = InstantTables(
                self._critical_instants,
                self._instant_slack_before,
                period - self._busy_per_period,
                period,
                self._gap_ends,
                self._slack_through,
                self._instant_eval_order,
                None,
            )

    def _slack_before(self, x: int) -> int:
        """Pattern slack in ``[0, x)`` for ``0 <= x <= period``."""
        i = bisect_right(self._gap_starts_arr, x) - 1
        if i < 0:
            return 0
        end = self._gap_ends[i]
        return self._slack_through[i] - (end - min(end, x))

    def instant_advance_tables(self, dominance: bool = False) -> InstantTables:
        """Tables for the inlined busy-window kernel, as :class:`InstantTables`.

        With ``dominance=True`` the pattern-level
        :class:`DominanceTables` are built -- once the pattern has
        served :data:`DOMINANCE_LAZY_THRESHOLD` dominance-enabled
        maximisations -- and cached (the ``dominance`` field stays
        ``None`` until then).  The two-stage laziness is deliberate:
        availability patterns are also constructed on paths that run
        only a handful of maximisations per pattern (the FPS-aware
        placement heuristic, ST-heavy sweeps where every configuration
        gets a fresh schedule), and those must not pay a construction
        they cannot amortise.  See
        :func:`repro.analysis.fps.seeded_busy_window` for the consumer.
        """
        if dominance and self._tables.dominance is None:
            self._dominance_requests += 1
            if self._dominance_requests > DOMINANCE_LAZY_THRESHOLD:
                self._tables = self._tables._replace(
                    dominance=self._build_dominance_tables()
                )
        return self._tables

    def dominance_tables(self) -> DominanceTables:
        """The pattern-level dominance preorder over critical instants.

        Built lazily on first call and cached on the availability, so
        every busy-window maximisation against this pattern shares one
        construction.  ``maximal_order + dominated_order`` is a
        permutation of all instant indices and every dominated instant
        carries a dominating ``witness`` -- the elision-safety argument
        is in ``docs/ANALYSIS.md``.

        Unlike the kernel's :meth:`instant_advance_tables` path, a
        direct call builds immediately (no amortisation threshold).

        >>> av = NodeAvailability([(0, 4), (6, 7)], period=10)
        >>> dom = av.dominance_tables()
        >>> [av.critical_instants()[i] for i in dom.maximal_order]
        [0]
        >>> sorted(dom.maximal_order + dom.dominated_order)
        [0, 1, 2]
        """
        if self._tables.dominance is None:
            self._tables = self._tables._replace(
                dominance=self._build_dominance_tables()
            )
        return self._tables.dominance

    def _build_dominance_tables(self) -> DominanceTables:
        """Construct the dominance preorder in near-linear time.

        Every instant's delivered-slack function is a shift of the one
        periodic cumulative-slack staircase ``F`` (prefix sums
        ``_gap_ends``/``_slack_through``):

            S_t(w) = F_ext(t + w) - F_ext(t)

        so "t dominated by u" (``S_t >= S_u`` pointwise) reduces to the
        difference staircase ``w -> F_ext(t+w) - F_ext(u+w)`` attaining
        its minimum at ``w = 0``.  The difference is piecewise linear
        with breakpoints only where ``t+w`` or ``u+w`` crosses a busy
        boundary, and periodic in ``w`` with period ``period`` -- so one
        monotone two-pointer merge of the two instants' precomputed
        relative-boundary lists decides a pair in O(gaps) staircase
        evaluations instead of a pointwise function comparison.

        The sweep visits instants by descending *effective* initial
        busy-run length (wrap-aware): a dominator's initial block is
        necessarily at least as long as the dominated instant's, so
        candidate dominators always precede their targets and only
        current maximal instants are ever tested.  Total work is
        bounded by :data:`DOMINANCE_BUDGET_FACTOR` times the pattern
        size; on budget exhaustion the remaining instants are kept
        (pruning degrades, correctness cannot).
        """
        instants = self._critical_instants
        n = len(instants)
        witness = [-1] * n
        eval_order = self._instant_eval_order
        if n <= 1 or not self.busy:
            return DominanceTables(eval_order, (), tuple(witness))
        period = self.period
        slack = period - self._busy_per_period

        # Effective (wrap-aware) initial busy-run length per instant:
        # a run ending at the period boundary continues into the next
        # period's leading busy interval.  Dominance requires the
        # dominator's run to be at least as long, which is what makes
        # the descending sweep below sound.
        end_of_run = dict(self.busy)
        lead = self.busy[0]

        def _effective_block(t: int) -> int:
            end = end_of_run.get(t)
            if end is None:
                return 0
            length = end - t
            if end == period and lead[0] == 0:
                length += lead[1]
            return length

        blocks = [_effective_block(t) for t in instants]
        order = sorted(range(n), key=lambda i: (-blocks[i], i))

        # Staircase breakpoints (busy boundaries folded into [0, period))
        # and, per instant, the same boundaries as offsets relative to
        # the instant -- two sorted runs, concatenated in order.
        bounds = sorted({b for s, e in self.busy for b in (s, e % period)})
        rel: List[List[int]] = []
        for t in instants:
            k = bisect_left(bounds, t)
            rel.append(
                [b - t for b in bounds[k:]]
                + [b - t + period for b in bounds[:k]]
            )

        slack_before = self._slack_before
        before = self._instant_slack_before
        budget = DOMINANCE_BUDGET_FACTOR * (n + len(bounds) + 1)

        def _dominated_by(t_idx: int, u_idx: int) -> bool:
            """True when instant u's staircase pointwise dominates t's."""
            nonlocal budget
            t = instants[t_idx]
            u = instants[u_idx]
            base = before[t_idx] - before[u_idx]
            a = rel[t_idx]
            b = rel[u_idx]
            ia = ib = 0
            la = len(a)
            lb = len(b)
            while ia < la or ib < lb:
                if ib >= lb or (ia < la and a[ia] <= b[ib]):
                    w = a[ia]
                    ia += 1
                    if ib < lb and b[ib] == w:
                        ib += 1
                else:
                    w = b[ib]
                    ib += 1
                budget -= 1
                tx = t + w
                ux = u + w
                d_t = (
                    slack_before(tx - period) + slack
                    if tx >= period
                    else slack_before(tx)
                )
                d_u = (
                    slack_before(ux - period) + slack
                    if ux >= period
                    else slack_before(ux)
                )
                if d_t - d_u < base:
                    return False
            return True

        maximal = [order[0]]
        for i in order[1:]:
            if budget > 0:
                for u in maximal:
                    if _dominated_by(i, u):
                        witness[i] = u
                        break
                    if budget <= 0:
                        break
            if witness[i] < 0:
                maximal.append(i)
        maximal_set = set(maximal)
        return DominanceTables(
            tuple(i for i in eval_order if i in maximal_set),
            tuple(i for i in eval_order if i not in maximal_set),
            tuple(witness),
        )

    @property
    def slack_per_period(self) -> int:
        """Available macroticks in one period."""
        return self.period - self._busy_per_period

    def is_busy(self, t: int) -> bool:
        """True when the node is running an SCS task at absolute time *t*."""
        tp = t % self.period
        return any(s <= tp < e for s, e in self.busy)

    def available_in(self, t0: int, t1: int) -> int:
        """Slack macroticks inside the absolute window [t0, t1)."""
        if t1 <= t0:
            return 0
        return (t1 - t0) - self._busy_in(t0, t1)

    def _busy_in(self, t0: int, t1: int) -> int:
        full_periods, x0 = divmod(t0, self.period)
        total = 0
        # advance t0 to the next period boundary
        first_end = (full_periods + 1) * self.period
        if t1 <= first_end:
            return self._busy_in_pattern(x0, t1 - full_periods * self.period)
        total += self._busy_in_pattern(x0, self.period)
        t = first_end
        whole = (t1 - t) // self.period
        total += whole * self._busy_per_period
        t += whole * self.period
        total += self._busy_in_pattern(0, t1 - t)
        return total

    def _busy_in_pattern(self, a: int, b: int) -> int:
        """Busy time within [a, b) where 0 <= a <= b <= period."""
        total = 0
        for s, e in self.busy:
            lo = max(s, a)
            hi = min(e, b)
            if hi > lo:
                total += hi - lo
        return total

    def advance(self, t0: int, demand: int) -> Optional[int]:
        """Earliest absolute time t >= t0 with ``available_in(t0, t) == demand``.

        Returns ``None`` when the pattern has no slack at all (demand can
        never be served).
        """
        if demand < 0:
            raise AnalysisError(f"demand must be >= 0, got {demand}")
        if demand == 0:
            return t0
        if not self.busy:
            # Fully idle node: demand is served back to back.
            return t0 + demand
        slack = self.period - self._busy_per_period
        if slack == 0:
            return None
        period = self.period
        full, x = divmod(t0, period)
        # Slack already consumed by the pattern before offset x.
        starts = self._gap_starts_arr
        through = self._slack_through
        i = bisect_right(starts, x) - 1
        if i < 0:
            before_x = 0
        else:
            end = self._gap_ends[i]
            before_x = through[i] - (end - min(end, x))
        # Serve the demand at pattern offset where the cumulative slack
        # since offset 0 reaches ``before_x + demand`` (spilling whole
        # periods first).
        target = before_x + demand
        whole, target = divmod(target - 1, slack)
        target += 1
        k = bisect_left(through, target)
        pos = self._gap_ends[k] - (through[k] - target)
        return (full + whole) * period + pos

    def busy_starts(self) -> List[int]:
        """Pattern-relative start times of busy intervals (critical instants)."""
        return [s for s, _ in self.busy]

    def critical_instants(self) -> List[int]:
        """Candidate busy-window origins: time 0 plus every busy start."""
        return self._critical_instants

    def _gaps(self) -> List[Tuple[int, int]]:
        return self._gap_list

    def _compute_gaps(self) -> List[Tuple[int, int]]:
        gaps: List[Tuple[int, int]] = []
        prev = 0
        for s, e in self.busy:
            if s > prev:
                gaps.append((prev, s))
            prev = e
        if prev < self.period:
            gaps.append((prev, self.period))
        return gaps
