"""Filled-cycle counting for the DYN message analysis.

Ref. [14] of the paper proposes *both* exact approaches and
polynomial-complexity heuristics for computing how many bus cycles the
lower-FrameID traffic can make unusable for a message.  In the adjusted
formulation (see :mod:`repro.analysis.dyn`) this is **bin covering**:
given the multiset of adjusted frame sizes a_j (minislots) released in
the window, how many disjoint groups of sum >= theta can be formed?

* :func:`fill_bound` -- the polynomial bound ``min(n, sum // theta)``
  (always an upper bound on the optimum, hence sound).
* :func:`max_filled_cycles` -- exact branch-and-bound for small
  multisets, falling back to the bound beyond ``exact_limit`` items.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import AnalysisError

#: Above this many frame instances the exact search falls back to the
#: polynomial bound (the search is exponential in the worst case).
DEFAULT_EXACT_LIMIT = 14

#: Supported strategies, selectable via AnalysisOptions.dyn_fill_strategy.
FILL_STRATEGIES = ("bound", "exact")


def fill_bound(items: Sequence[int], theta: int) -> int:
    """Polynomial upper bound on the bin-covering optimum.

    Every filled cycle needs at least one frame and at least *theta*
    adjusted minislots, so ``min(#items-with-size>0 ... n, total // theta)``
    bounds the count.  (Items of size 0 can never help fill a bin but do
    occupy a slot; they are excluded from the item count.)
    """
    if theta < 1:
        raise AnalysisError(f"theta must be >= 1, got {theta}")
    useful = [a for a in items if a > 0]
    return min(len(useful), sum(useful) // theta)


def fill_bound_aggregated(pairs: Sequence[Tuple[int, int]], theta: int) -> int:
    """:func:`fill_bound` over an aggregated ``(size, count)`` multiset.

    The DYN busy-window fix point releases many instances of the same
    adjusted frame size per window; aggregating them keeps the bound a
    handful of integer operations instead of materialising (and summing
    over) a list with one element per frame instance.  Exactly equal to
    ``fill_bound([size] * count for every pair)``.
    """
    if theta < 1:
        raise AnalysisError(f"theta must be >= 1, got {theta}")
    useful = 0
    total = 0
    for size, count in pairs:
        if size > 0 and count > 0:
            useful += count
            total += size * count
    return min(useful, total // theta)


def max_filled_cycles_aggregated(
    pairs: Sequence[Tuple[int, int]],
    theta: int,
    strategy: str = "bound",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """:func:`max_filled_cycles` over an aggregated ``(size, count)`` multiset.

    The ``bound`` strategy stays fully aggregated; ``exact`` expands the
    multiset and delegates, so results match the per-instance API
    bit for bit.
    """
    if strategy not in FILL_STRATEGIES:
        raise AnalysisError(
            f"unknown fill strategy {strategy!r}; choose from {FILL_STRATEGIES}"
        )
    if strategy == "bound":
        return fill_bound_aggregated(pairs, theta)
    items: List[int] = []
    for size, count in pairs:
        items.extend([size] * count)
    return max_filled_cycles(items, theta, strategy, exact_limit)


def max_filled_cycles(
    items: Sequence[int],
    theta: int,
    strategy: str = "bound",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
) -> int:
    """Maximum number of disjoint groups with sum >= *theta*.

    ``strategy="bound"`` returns :func:`fill_bound`;
    ``strategy="exact"`` solves the bin-covering problem exactly when
    the multiset is small, which tightens the DYN response-time bounds
    (never loosens them: exact <= bound).
    """
    if strategy not in FILL_STRATEGIES:
        raise AnalysisError(
            f"unknown fill strategy {strategy!r}; choose from {FILL_STRATEGIES}"
        )
    bound = fill_bound(items, theta)
    if strategy == "bound" or bound <= 1:
        return bound
    useful = sorted((a for a in items if a > 0), reverse=True)
    if len(useful) > exact_limit:
        return bound
    lower = _greedy_cover(useful, theta)
    for k in range(bound, lower, -1):
        if _can_cover(tuple(useful), theta, k):
            return k
    return lower


def _greedy_cover(items_desc: List[int], theta: int) -> int:
    """First-fit-decreasing cover count (a feasible lower bound)."""
    bins = 0
    acc = 0
    for a in items_desc:
        acc += a
        if acc >= theta:
            bins += 1
            acc = 0
    return bins


def _can_cover(items: Tuple[int, ...], theta: int, k: int) -> bool:
    """Can the multiset cover *k* bins of at least *theta* each?

    Depth-first search assigning items (largest first) to bins, with
    symmetry breaking (identical partial bins are interchangeable) and
    a total-sum prune.
    """
    if k <= 0:
        return True
    if sum(items) < k * theta:
        return False

    bins = [0] * k

    def dfs(index: int) -> bool:
        if all(b >= theta for b in bins):
            return True
        if index == len(items):
            return False
        remaining = sum(items[index:])
        deficit = sum(max(0, theta - b) for b in bins)
        if remaining < deficit:
            return False
        seen = set()
        for i, load in enumerate(bins):
            if load >= theta or load in seen:
                continue
            seen.add(load)
            bins[i] = min(load + items[index], theta)
            if dfs(index + 1):
                bins[i] = load
                return True
            bins[i] = load
        # The item may also be discarded (it is not obliged to interfere).
        return dfs(index + 1)

    return dfs(0)
