"""Post-analysis reporting: slack, bottlenecks and bus load.

Helpers that turn an :class:`~repro.analysis.holistic.AnalysisResult`
into the quantities a system designer acts on: which activities are
closest to their deadlines, and how loaded each bus segment is under a
given configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.holistic import AnalysisResult
from repro.core.config import FlexRayConfig
from repro.errors import AnalysisError
from repro.model.system import System


@dataclass(frozen=True)
class SlackEntry:
    """Deadline slack of one activity under an analysed configuration."""

    name: str
    wcrt: int
    deadline: int

    @property
    def slack(self) -> int:
        """Deadline minus worst-case response (negative = miss)."""
        return self.deadline - self.wcrt

    @property
    def usage(self) -> float:
        """Fraction of the deadline consumed by the response time."""
        return self.wcrt / self.deadline


def slack_report(system: System, result: AnalysisResult) -> List[SlackEntry]:
    """Every activity's slack, tightest first."""
    if not result.feasible:
        raise AnalysisError(
            f"cannot build a slack report for an infeasible result: "
            f"{result.failure}"
        )
    app = system.application
    entries = [
        SlackEntry(name=name, wcrt=result.wcrt[name],
                   deadline=app.deadline_of(name))
        for g in app.graphs
        for name in g.topological_order()
    ]
    entries.sort(key=lambda e: (e.slack, e.name))
    return entries


def bottlenecks(
    system: System, result: AnalysisResult, count: int = 5
) -> List[SlackEntry]:
    """The *count* activities with the least slack."""
    return slack_report(system, result)[: max(0, count)]


@dataclass(frozen=True)
class BusLoad:
    """Long-run utilisation of the bus segments under a configuration."""

    st_demand: float  # ST payload demand / ST segment capacity
    dyn_demand: float  # DYN payload demand / DYN segment capacity
    cycle_share_st: float  # fraction of the cycle spent in the ST segment


def bus_load(system: System, config: FlexRayConfig) -> BusLoad:
    """Average per-cycle demand of each segment.

    Demand counts every message instance over the hyper-period against
    the segment capacity offered in the same span; values above 1.0 mean
    the configuration cannot carry the traffic in the long run.
    """
    app = system.application
    hyper = app.hyperperiod
    cycles = hyper / config.gd_cycle
    st_demand = sum(
        config.message_ct(m) * (hyper // app.period_of(m.name))
        for m in app.st_messages()
    )
    dyn_demand = sum(
        config.minislots_needed(m)
        * config.gd_minislot
        * (hyper // app.period_of(m.name))
        for m in app.dyn_messages()
    )
    st_capacity = config.st_bus * cycles
    dyn_capacity = config.dyn_bus * cycles
    return BusLoad(
        st_demand=st_demand / st_capacity if st_capacity else 0.0,
        dyn_demand=dyn_demand / dyn_capacity if dyn_capacity else 0.0,
        cycle_share_st=config.st_bus / config.gd_cycle,
    )
