"""List-scheduling priority: the modified critical-path metric.

The paper (Fig. 2) selects among ready SCS tasks / ST messages with "a
modified critical path metric" from [12]: an activity is the more urgent
the longer the remaining path from it to the graph's sink, with message
costs taken at their bus transmission times.  We additionally subtract
the path length from the graph deadline so activities of tight graphs
win ties against activities of slack graphs.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.config import FlexRayConfig
from repro.model.application import Application


def message_costs(application: Application, config: FlexRayConfig) -> Dict[str, int]:
    """Bus transmission time C_m per message name under *config*."""
    return {m.name: config.message_ct(m) for m in application.messages()}


def critical_path_priorities(
    application: Application, config: FlexRayConfig
) -> Dict[str, int]:
    """Priority value per activity name; **larger = schedule earlier**.

    The value is ``longest_path_from(activity) - slack(graph)`` where
    ``slack(graph) = deadline - total critical path``; subtracting a
    per-graph constant keeps the relative order inside each graph (pure
    critical path) while ranking tight graphs above slack ones.
    """
    costs = message_costs(application, config)
    prio: Dict[str, int] = {}
    for g in application.graphs:
        cp = max(g.longest_path_from(s, costs) for s in g.sources())
        slack = g.deadline - cp
        for name in g.topological_order():
            prio[name] = g.longest_path_from(name, costs) - slack
    return prio


def sort_key(priorities: Mapping[str, int]):
    """Deterministic sort key for ready lists: priority desc, then name."""

    def key(job) -> tuple:
        return (-priorities[job.name], job.release, job.name, job.instance)

    return key
