"""Worst-case response times of DYN messages (Section 5.1 of the paper).

A ready DYN message m with FrameID f on node Np is delayed by

* ``hp(m)`` -- higher-priority messages of the same node sharing f
  (each occupies slot f for a whole cycle),
* ``lf(m)`` -- any message with a FrameID below f (its frame occupies
  whole minislots before slot f), and
* ``ms(m)`` -- the lower dynamic slots themselves: even when unused each
  costs one minislot of delay.

A bus cycle is *filled* (unusable for m) when slot f is taken by hp(m)
or when lower-slot traffic pushes the minislot counter past Np's
``pLatestTx``.  Following Eq. (3):

    w_m(t) = sigma_m + BusCycles_m(t) * gdCycle + w'_m(t)

with ``sigma_m`` the worst first-cycle loss, ``BusCycles_m`` the number
of filled cycles and ``w'_m`` the delay inside the final cycle.  The
recurrence is iterated to a fix point; divergence is truncated at a cap
and flagged.

Filled-cycle counting uses a polynomial bound in the spirit of the
paper's heuristic from [14].  Write q_j for the minislots of an lf frame
and a_j = q_j - 1 for its *adjusted* size (a transmitting frame also
replaces the one minislot its slot would cost anyway).  A cycle with
lower-slot frame set S is filled exactly when

    sum_{j in S} q_j + (f - 1 - |S|) > pLatestTx - 1
    <=>  sum_{j in S} a_j >= theta  with  theta = pLatestTx - f + 2.

So the adversary must cover disjoint bins of adjusted size >= theta from
the lf frame instances released in the window; the number of filled
cycles is bounded by ``min(#instances, total_adjusted // theta)`` -- an
upper bound on the real protocol (which additionally serialises slots),
hence sound for worst-case analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.core.config import FlexRayConfig
from repro.errors import AnalysisError
from repro.analysis.fill import FILL_STRATEGIES, max_filled_cycles_aggregated
from repro.analysis.fps import MAX_FIXPOINT_ITERATIONS, WcrtResult
from repro.model.message import Message
from repro.model.system import System
from repro.model.times import ceil_div


@dataclass(frozen=True)
class DynInterference:
    """Interference sets of one DYN message (paper notation hp/lf/ms)."""

    hp: Tuple[Message, ...]
    lf: Tuple[Message, ...]
    lower_slots: int  # |ms(m)| = FrameID - 1


def interference_sets(
    message: Message, config: FlexRayConfig, system: System
) -> DynInterference:
    """Compute hp(m), lf(m) and |ms(m)| for *message* under *config*."""
    if not message.is_dynamic:
        raise AnalysisError(f"message {message.name!r} is not a DYN message")
    f = config.frame_id_of(message.name)
    node = system.sender_node(message)
    hp: List[Message] = []
    lf: List[Message] = []
    for other in system.application.dyn_messages():
        if other.name == message.name:
            continue
        other_fid = config.frame_id_of(other.name)
        if other_fid < f:
            lf.append(other)
        elif (
            other_fid == f
            and system.sender_node(other) == node
            and (other.priority, other.name) <= (message.priority, message.name)
        ):
            hp.append(other)
    return DynInterference(hp=tuple(hp), lf=tuple(lf), lower_slots=f - 1)


def sigma(message: Message, config: FlexRayConfig) -> int:
    """Worst loss in the arrival cycle: the message becomes ready just
    after the earliest possible start of its slot and waits out the rest
    of the cycle."""
    f = config.frame_id_of(message.name)
    return config.gd_cycle - config.st_bus - (f - 1) * config.gd_minislot


def dyn_message_busy_window(
    message: Message,
    config: FlexRayConfig,
    system: System,
    jitters: Mapping[str, int],
    period_of,
    cap: int,
    own_jitter: int = 0,
    ancestors: frozenset = frozenset(),
    fill_strategy: str = "bound",
) -> WcrtResult:
    """Worst-case queuing delay w_m (Eq. (3)); R_m = J_m + w_m + C_m.

    ``jitters`` maps activity names to release jitters inherited from the
    sender tasks; ``period_of`` maps an activity name to its period.
    ``cap`` truncates divergent recurrences (``converged=False``).
    ``own_jitter``/``ancestors`` drive the same-graph ancestor
    interference reduction (see :func:`repro.analysis.fps.interference_count`).
    ``fill_strategy`` selects the filled-cycle computation: the
    polynomial "bound" or the "exact" bin-covering search of
    :mod:`repro.analysis.fill` (ref. [14] offers both).
    """
    f = config.frame_id_of(message.name)
    node = system.sender_node(message)
    p_latest = config.p_latest_tx(node, system)
    if p_latest is None:  # pragma: no cover - message.is_dynamic guarantees it
        raise AnalysisError(f"node {node!r} has no pLatestTx")
    if f > p_latest or p_latest < 1:
        # The frame can never be sent under this configuration.
        return WcrtResult(value=cap, converged=False)

    sets = interference_sets(message, config, system)
    hp_info = tuple(
        (j.name, period_of(j.name), j.name in ancestors) for j in sets.hp
    )
    lf_info = tuple(
        (j.name, period_of(j.name), j.name in ancestors,
         config.minislots_needed(j) - 1)
        for j in sets.lf
    )
    lam = p_latest - 1  # max minislots consumed before slot f, still sendable
    theta = lam - f + 2  # adjusted minislots needed to fill one cycle
    value, converged = prepped_busy_window(
        hp_info,
        lf_info,
        sets.lower_slots,
        lam,
        theta,
        sigma(message, config),
        config.message_ct(message),
        config.gd_cycle,
        config.st_bus,
        config.gd_minislot,
        jitters,
        cap,
        own_jitter,
        fill_strategy,
    )
    return WcrtResult(value=value, converged=converged)


def prepped_busy_window(
    hp_info: Tuple[Tuple[str, int, bool], ...],
    lf_info: Tuple[Tuple[str, int, bool, int], ...],
    lower_slots: int,
    lam: int,
    theta: int,
    sigma_m: int,
    ct: int,
    gd_cycle: int,
    st_bus: int,
    ms_len: int,
    jitters: Mapping[str, int],
    cap: int,
    own_jitter: int,
    fill_strategy: str,
) -> Tuple[int, bool]:
    """Eq. (3) fix point over prebound interference rows.

    Hot-path variant used by the incremental analysis engine: hp/lf
    membership, periods, ancestor flags and adjusted frame sizes are
    resolved once per configuration (see
    :meth:`repro.analysis.context.AnalysisContext`) instead of on every
    fix-point iteration.  Returns ``(busy window, converged)``.
    """
    w, converged, _ = seeded_busy_window(
        hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct, gd_cycle,
        st_bus, ms_len, jitters, cap, own_jitter, fill_strategy,
    )
    return w, converged


def seeded_busy_window(
    hp_info: Tuple[Tuple[str, int, bool], ...],
    lf_info: Tuple[Tuple[str, int, bool, int], ...],
    lower_slots: int,
    lam: int,
    theta: int,
    sigma_m: int,
    ct: int,
    gd_cycle: int,
    st_bus: int,
    ms_len: int,
    jitters: Mapping[str, int],
    cap: int,
    own_jitter: int,
    fill_strategy: str,
    seed: int = None,
    extra_cycles: int = 0,
) -> Tuple[int, bool, int]:
    """:func:`prepped_busy_window` with a fix-point warm start.

    ``seed`` optionally supplies the starting window; it MUST be a
    certified lower bound of the converged busy window (Eq. (3)'s
    right-hand side is monotone in the window, so iterating from any
    start below the least fixed point reaches exactly the least fixed
    point).  The holistic fix point certifies its seeds through the
    monotone growth of its jitters across Kleene passes; a descending
    step or an iteration-limit exit (an uncertified seed) restarts the
    recurrence cold, so the result always equals the cold computation.

    ``extra_cycles`` charges that many additional whole bus cycles into
    every evaluation of the recurrence -- the k-error fault hypothesis
    (:attr:`~repro.analysis.holistic.AnalysisOptions.fault_hypothesis`)
    uses it to pay for up to k retransmitted frame instances at their
    worst per-error cycle cost.  The term is a constant, so the
    right-hand side stays monotone in the window and the warm-start
    certification argument is unaffected.

    Returns ``(busy window, converged, final window)`` -- the final
    window is the certified seed for the next evaluation under larger
    jitters.
    """
    if fill_strategy not in FILL_STRATEGIES:
        raise AnalysisError(
            f"unknown fill strategy {fill_strategy!r}; "
            f"choose from {FILL_STRATEGIES}"
        )
    jitters_get = jitters.get
    seeded = seed is not None and seed > ct
    t = seed if seeded else ct
    w = 0
    bound_only = fill_strategy == "bound"
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        hp_cycles = 0
        for name, period, is_ancestor in hp_info:
            if is_ancestor:
                slack = t + own_jitter - period
                if slack > 0:
                    hp_cycles += -(-slack // period)
            else:
                hp_cycles += -(-(t + jitters_get(name, 0)) // period)
        # Aggregate the lf frame instances as (adjusted size, count)
        # pairs: the bound strategy never materialises the multiset.
        lf_total = 0  # sum of adjusted sizes over all instances
        lf_useful = 0  # instances with adjusted size > 0
        lf_pairs: List[Tuple[int, int]] = [] if not bound_only else None
        for name, period, is_ancestor, adjusted in lf_info:
            if is_ancestor:
                slack = t + own_jitter - period
                n = -(-slack // period) if slack > 0 else 0
            else:
                n = -(-(t + jitters_get(name, 0)) // period)
            if n:
                if adjusted > 0:
                    lf_total += adjusted * n
                    lf_useful += n
                if lf_pairs is not None:
                    lf_pairs.append((adjusted, n))
        # theta >= 1 is guaranteed by the f <= p_latest check above.
        if bound_only:
            lf_cycles = lf_useful if lf_useful < lf_total // theta else lf_total // theta
        else:
            lf_cycles = max_filled_cycles_aggregated(
                lf_pairs, theta, fill_strategy
            )
        leftover = lf_total - lf_cycles * theta
        if leftover < 0:
            leftover = 0
        final_consumed = min(lam, lower_slots + leftover)
        w_final = st_bus + final_consumed * ms_len
        w = (
            sigma_m
            + (hp_cycles + lf_cycles + extra_cycles) * gd_cycle
            + w_final
        )
        if w >= cap:
            return cap, False, t
        if w <= t:
            if seeded and w < t:
                # The seed overshot the least fixed point: replay cold so
                # the result stays bit-identical to an unseeded run.
                return seeded_busy_window(
                    hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct,
                    gd_cycle, st_bus, ms_len, jitters, cap, own_jitter,
                    fill_strategy, extra_cycles=extra_cycles,
                )
            return w, True, w
        t = w
    if seeded:
        # The truncated value is trajectory-dependent; only the cold
        # trajectory's truncation is the canonical result.
        return seeded_busy_window(
            hp_info, lf_info, lower_slots, lam, theta, sigma_m, ct,
            gd_cycle, st_bus, ms_len, jitters, cap, own_jitter,
            fill_strategy, extra_cycles=extra_cycles,
        )
    return w, False, w


def dyn_message_wcrt(
    message: Message,
    config: FlexRayConfig,
    system: System,
    jitters: Mapping[str, int],
    period_of,
    cap: int,
    ancestors: frozenset = frozenset(),
    fill_strategy: str = "bound",
) -> WcrtResult:
    """Full worst-case response time R_m = J_m + w_m + C_m (Eq. (2))."""
    own_jitter = jitters.get(message.name, 0)
    window = dyn_message_busy_window(
        message, config, system, jitters, period_of, cap, own_jitter, ancestors,
        fill_strategy,
    )
    value = min(cap, own_jitter + window.value + config.message_ct(message))
    return WcrtResult(value=value, converged=window.converged)
