"""Worst-case response times of FPS tasks.

FPS tasks are preempted by higher-priority FPS tasks of their node and
can only run in the slack left by the static (SCS) schedule.  We use the
standard hierarchical-scheduling formulation of the paper's ref. [13]:
the busy-window recurrence

    w = C_i + sum_{j in hp(i)} ceil((w + J_j) / T_j) * C_j

is solved in *available* time through the node's
:class:`~repro.analysis.availability.NodeAvailability`, and maximised
over the critical instants where an SCS busy interval begins.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.analysis.availability import (
    NodeAvailability,
    merge_intervals,
    wrap_busy_intervals,
)
from repro.model.system import System
from repro.model.task import Task
from repro.model.times import ceil_div


@dataclass(frozen=True)
class WcrtResult:
    """Outcome of one response-time computation.

    ``value`` is the worst-case response time in macroticks; when
    ``converged`` is False the recurrence was truncated at the analysis
    cap and ``value`` is the cap -- a certain deadline miss, usable by
    the cost function as a (finite) degree of unschedulability.
    """

    value: int
    converged: bool


#: Iteration limit of each busy-window fix-point.
MAX_FIXPOINT_ITERATIONS = 512


def hp_tasks(task: Task, tasks_on_node: Sequence[Task]) -> List[Task]:
    """FPS tasks of the node that can delay *task*.

    Strictly higher priority (smaller value), plus equal-priority peers
    (ties are modelled pessimistically in both directions).
    """
    return [
        t
        for t in tasks_on_node
        if t.is_fps
        and t.name != task.name
        and (t.priority, t.name) <= (task.priority, task.name)
    ]


def interference_count(
    window: int,
    period: int,
    jitter: int,
    is_ancestor: bool,
    own_jitter: int,
) -> int:
    """Activations of one interferer inside a busy window.

    Ordinary interferers follow the classic jittered bound
    ``ceil((w + J_j) / T_j)``.  Same-graph *ancestors* are phase-locked:
    instance k of an ancestor always completes before instance k of the
    analysed activity becomes ready, so only the ancestor's *later*
    instances (arriving at multiples of its period after the graph
    release) can interfere -- ``ceil(max(0, w + J_own - T_j) / T_j)``,
    the offset-based reduction of the paper's ref. [10].
    """
    if is_ancestor:
        slack = window + own_jitter - period
        return ceil_div(slack, period) if slack > 0 else 0
    return ceil_div(window + jitter, period)


def interferer_info(
    interferers: Sequence[Task],
    period_of,
    ancestors: frozenset,
) -> Tuple[Tuple[str, int, bool, int], ...]:
    """Prebound ``(name, period, is_ancestor, wcet)`` rows per interferer.

    The busy-window fix point re-reads the period and the ancestor flag
    of every interferer on every iteration; resolving both once per
    (task, interferer) pair keeps the inner loop free of graph lookups.
    """
    return tuple(
        (j.name, period_of(j.name), j.name in ancestors, j.wcet)
        for j in interferers
    )


def fps_task_busy_window(
    task: Task,
    interferers: Sequence[Task],
    availability: NodeAvailability,
    jitters: Mapping[str, int],
    period_of,
    cap: int,
    own_jitter: int = 0,
    ancestors: frozenset = frozenset(),
) -> WcrtResult:
    """Longest busy window of *task* (response time excluding its own jitter).

    Parameters
    ----------
    interferers:
        Higher-priority FPS tasks of the same node.
    availability:
        The node's SCS slack pattern.
    jitters:
        Release jitter per activity name (defaults to 0 when absent).
    period_of:
        Callable mapping an activity name to its period.
    cap:
        Truncation bound for divergent recurrences.
    own_jitter:
        The analysed task's own release jitter (worst predecessor
        finish); used only for the ancestor interference reduction.
    ancestors:
        Names of same-graph transitive predecessors of *task*.
    """
    info = interferer_info(interferers, period_of, ancestors)
    value, converged = prepped_busy_window(
        task.wcet, info, availability, jitters, cap, own_jitter
    )
    return WcrtResult(value=value, converged=converged)


def interferer_rows(
    info: Sequence[Tuple[str, int, bool, int]],
    jitters: Mapping[str, int],
    own_jitter: int,
) -> List[Tuple[int, int, int]]:
    """Fully-resolved ``(period, wcet, jitter)`` rows for one maximisation.

    The release jitters are constant for the duration of one busy-window
    maximisation, so the name lookups and the ancestor offset are
    resolved once per call instead of once per fix-point iteration.
    Ancestors get the *negative* offset jitter ``own_jitter - period``;
    with the unified count ``ceil(s / period) if s > 0 else 0`` for
    ``s = window + jitter`` this reproduces
    :func:`interference_count` exactly for both interferer kinds.
    """
    jitters_get = jitters.get
    return [
        (p, c_j, own_jitter - p if is_ancestor else jitters_get(name, 0))
        for name, p, is_ancestor, c_j in info
    ]


def prepped_busy_window(
    wcet: int,
    info: Sequence[Tuple[str, int, bool, int]],
    availability: NodeAvailability,
    jitters: Mapping[str, int],
    cap: int,
    own_jitter: int = 0,
    prune: bool = True,
    dominance: bool = False,
) -> Tuple[int, bool]:
    """Worst busy window over all critical instants, from prebound rows.

    Hot-path variant of :func:`fps_task_busy_window` used by the
    incremental analysis engine: the interferer rows come from
    :func:`interferer_info` (cached per system) instead of being derived
    per call.  ``prune`` enables the incremental per-instant bound and
    ``dominance`` the pattern-level instant elision (see
    :func:`seeded_busy_window`); ``prune=False`` is the unpruned
    reference path the pruning equivalence tests compare against.
    Returns ``(value, converged)``.
    """
    value, converged, _ = seeded_busy_window(
        wcet, info, availability, jitters, cap, own_jitter, None, prune,
        dominance,
    )
    return value, converged


def seeded_busy_window(
    wcet: int,
    info: Sequence[Tuple[str, int, bool, int]],
    availability: NodeAvailability,
    jitters: Mapping[str, int],
    cap: int,
    own_jitter: int,
    seeds: Optional[Sequence[Optional[int]]] = None,
    prune: bool = True,
    dominance: bool = False,
) -> Tuple[int, bool, List[Optional[int]]]:
    """:func:`prepped_busy_window` with per-instant fix-point warm starts.

    ``seeds[k]`` optionally supplies a starting demand for the busy
    window at critical instant k.  Seeds MUST be certified lower bounds
    of the instant's converged demand: the demand recurrence is monotone,
    so iterating from any start below the least fixed point reaches
    exactly the least fixed point (the start-independence argument the
    incremental analysis engine relies on).  The holistic fix point
    satisfies this by construction -- its jitters grow monotonically
    across Kleene passes, so a converged demand from an earlier pass of
    the same analysis bounds the current one from below.  Uncertified
    seeds are additionally caught at runtime: a descending demand step or
    an iteration-limit exit restarts that instant cold, so the returned
    ``(value, converged)`` pair always equals the cold computation.

    ``prune`` enables the **incremental per-instant bound** of the
    third-generation kernel.  Let ``W`` be the worst window found so
    far and ``D_W = wcet + I(W)`` one interference evaluation at ``W``
    (shared by every remaining instant).  The window map of instant t,
    ``phi_t(w) = advance(t, wcet + I(w)) - t``, is monotone, so
    ``phi_t(W) <= W`` makes ``[0, W]`` closed under ``phi_t`` and pins
    the instant's least fixed point below ``W`` -- the instant cannot
    beat the current worst and is skipped after a single table-driven
    ``advance``.  Skipped instants provably never reach the cap (their
    trajectory stays below ``W < cap``), and an activation-count guard
    (skip only while ``N(W) + 2 <= MAX_FIXPOINT_ITERATIONS``, with
    ``N(W)`` the total interferer activations inside ``W``) certifies
    they would have converged within the iteration limit, so the
    ``(value, converged)`` pair is bit-identical to the unpruned path.
    Instants are visited longest-initial-busy-run first (the
    availability's precomputed evaluation order) to grow ``W`` -- and
    with it the prune rate -- as early as possible; the maximisation is
    order-independent.

    ``dominance`` additionally elides **pattern-level dominated**
    instants: the availability's lazily-built
    :meth:`~repro.analysis.availability.NodeAvailability.dominance_tables`
    certify, per dominated instant, a maximal instant whose window map
    dominates it pointwise -- so its fixed point (and every Kleene
    iterate, which covers the truncation regime) can never exceed the
    dominator's, and the instant is skipped without even the bound's
    single ``advance``.  The elision is value- and cap-exact
    unconditionally; the convergence *flag* is certified by the same
    activation-count guard as the per-instant bound, checked once after
    the maximisation -- in the rare near-cap regime where it fails, the
    call replays without dominance, so the returned ``(value,
    converged)`` pair is always bit-identical to the unpruned path.
    The tables are a property of the availability pattern alone, so one
    construction amortises across the entire fix point and -- on
    workloads that reuse schedules, e.g. pure-DYN sweeps -- across every
    configuration sharing the pattern (``docs/ANALYSIS.md`` has the
    proofs).

    Returns ``(value, converged, demands)`` where ``demands[k]`` is the
    converged demand at instant k -- the certified seed for the next call
    under larger jitters (``None`` for instants that were pruned or not
    reached because an earlier instant already hit the cap).
    """
    use_dominance = dominance and prune
    (instants, before, slack, period, gap_ends, through, eval_order, dom) = (
        availability.instant_advance_tables(use_dominance)
    )
    if not use_dominance:
        dom = None
    n_instants = len(instants)
    demands: List[Optional[int]] = [None] * n_instants
    worst = 0
    converged = True
    n_seeds = len(seeds) if seeds is not None else 0
    rows = interferer_rows(info, jitters, own_jitter)
    # The common case inlines the whole demand recurrence (no ``advance``
    # calls): every t0 is a critical instant, whose pattern-slack offset
    # is precomputed on the availability.  Degenerate patterns (fully
    # idle node, zero slack) and warm-start fallbacks take the generic
    # ``_busy_window_at`` path instead; results are identical.
    fast = gap_ends is not None and slack > 0 and wcet > 0
    if not prune:
        schedule = range(n_instants)
        deferred = ()
    elif dom is not None:
        schedule = dom.maximal_order
        deferred = dom.dominated_order
    else:
        schedule = eval_order
        deferred = ()
    # Per-instant bound state; recomputed lazily whenever ``worst`` grows.
    bound_demand = -1
    bound_activations = 0
    for idx in schedule:
        t0 = instants[idx]
        seed = seeds[idx] if idx < n_seeds else None
        if prune and worst > 0:
            if bound_demand < 0:
                bound_demand = wcet
                bound_activations = 0
                for p, c_j, jit in rows:
                    s = worst + jit
                    if s > 0:
                        count = -(-s // p)
                        bound_demand += count * c_j
                        bound_activations += count
            if bound_activations + 2 <= MAX_FIXPOINT_ITERATIONS:
                if fast:
                    whole, rem = divmod(before[idx] + bound_demand - 1, slack)
                    k = bisect_left(through, rem + 1)
                    w_bound = (
                        whole * period + gap_ends[k] - (through[k] - rem - 1)
                        - t0
                    )
                else:
                    end = availability.advance(t0, bound_demand)
                    w_bound = cap if end is None else end - t0
                if w_bound <= worst:
                    continue
        result = None
        if fast:
            seeded = seed is not None and seed > wcet
            demand = seed if seeded else wcet
            window = 0
            offset = before[idx]
            for _ in range(MAX_FIXPOINT_ITERATIONS):
                whole, rem = divmod(offset + demand - 1, slack)
                k = bisect_left(through, rem + 1)
                window = (
                    whole * period + gap_ends[k] - (through[k] - rem - 1) - t0
                )
                if window >= cap:
                    result = (cap, False, demand)
                    break
                new_demand = wcet
                for p, c_j, jit in rows:
                    s = window + jit
                    if s > 0:
                        new_demand += -(-s // p) * c_j
                if new_demand == demand:
                    result = (window, True, demand)
                    break
                if seeded and new_demand < demand:
                    # Uncertified seed: replay this instant cold.
                    result = _busy_window_at(wcet, rows, availability, cap, t0)
                    break
                demand = new_demand
            if result is None:
                result = (
                    _busy_window_at(wcet, rows, availability, cap, t0)
                    if seeded
                    else (window, False, demand)
                )
        else:
            result = _busy_window_at(wcet, rows, availability, cap, t0, seed)
        window, ok, demand = result
        demands[idx] = demand
        if window >= cap:
            return cap, False, demands
        if window > worst:
            worst = window
            bound_demand = -1
        converged = converged and ok
    if deferred:
        # Dominated instants are value-exact unconditionally (their
        # Kleene iterates are pointwise below their dominators'), but
        # their convergence flags need the same activation-count
        # certificate as the per-instant bound: a dominated instant
        # converges within N(worst) + 2 iterations.  Outside that
        # regime -- which requires ~MAX_FIXPOINT_ITERATIONS distinct
        # interferer activations inside the worst window -- replay the
        # maximisation without dominance; the result is identical.
        if bound_demand < 0:
            bound_activations = 0
            for p, c_j, jit in rows:
                s = worst + jit
                if s > 0:
                    bound_activations += -(-s // p)
        if bound_activations + 2 > MAX_FIXPOINT_ITERATIONS:
            return seeded_busy_window(
                wcet, info, availability, jitters, cap, own_jitter, seeds,
                prune, False,
            )
    return worst, converged, demands


def _busy_window_at(
    wcet: int,
    rows: Sequence[Tuple[int, int, int]],
    availability: NodeAvailability,
    cap: int,
    t0: int,
    seed: Optional[int] = None,
) -> Tuple[int, bool, int]:
    """One instant's demand recurrence over resolved interferer rows.

    Generic-``advance`` fallback of :func:`seeded_busy_window`; ``rows``
    come from :func:`interferer_rows`.
    """
    seeded = seed is not None and seed > wcet
    demand = seed if seeded else wcet
    window = 0
    advance = availability.advance
    for _ in range(MAX_FIXPOINT_ITERATIONS):
        end = advance(t0, demand)
        if end is None:
            return cap, False, demand
        window = end - t0
        if window >= cap:
            return cap, False, demand
        new_demand = wcet
        for p, c_j, jit in rows:
            s = window + jit
            if s > 0:
                new_demand += -(-s // p) * c_j
        if new_demand == demand:
            return window, True, demand
        if seeded and new_demand < demand:
            # The seed overshot the least fixed point (it was not a
            # certified lower bound): replay this instant cold so the
            # result stays bit-identical to an unseeded run.
            return _busy_window_at(wcet, rows, availability, cap, t0)
        demand = new_demand
    if seeded:
        # The truncated value is trajectory-dependent; only the cold
        # trajectory's truncation is the canonical result.
        return _busy_window_at(wcet, rows, availability, cap, t0)
    return window, False, demand


def node_local_fps_cost(
    system: System,
    node: str,
    busy: Sequence[Tuple[int, int]],
    horizon: int,
) -> float:
    """Sum of FPS response times on *node* for a candidate busy pattern.

    Used by the FPS-aware SCS placement heuristic (Fig. 2 line 11) to
    compare candidate start times; ``math.inf`` when some FPS task can no
    longer finish.  Jitters are taken as zero -- this is a *relative*
    score between placements, not a final analysis.
    """
    fps = sorted(
        (t for t in system.tasks_on(node) if t.is_fps),
        key=lambda t: (t.priority, t.name),
    )
    if not fps:
        return 0.0
    availability = NodeAvailability(wrap_busy_intervals(busy, horizon), horizon)
    period_of = lambda name: system.application.period_of(name)  # noqa: E731
    cap = 16 * horizon
    total = 0.0
    for task in fps:
        result = fps_task_busy_window(
            task, hp_tasks(task, fps), availability, {}, period_of, cap
        )
        if not result.converged:
            return math.inf
        total += result.value
    return total
