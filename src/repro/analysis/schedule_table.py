"""Static schedule table.

Holds the off-line computed start times of SCS tasks and the (cycle,
slot, in-frame offset) placement of ST messages -- the artefact the
paper's ``GlobalSchedulingAlgorithm`` (Fig. 2) produces and each node's
CPU consults at run time ("2/2" entries in Fig. 1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import FlexRayConfig
from repro.errors import SchedulingError
from repro.flexray.timeline import st_slot_start
from repro.model.message import Message
from repro.model.task import Task


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one SCS task instance."""

    job_key: str
    task: Task
    start: int

    @property
    def finish(self) -> int:
        """Absolute completion time."""
        return self.start + self.task.wcet


@dataclass(frozen=True)
class ScheduledMessage:
    """Placement of one ST message instance inside a static frame.

    The placement itself is *retimable*: only the (cycle, slot, offset)
    coordinates and the transmission time are stored; absolute macrotick
    times are derived on demand from the bound :class:`FlexRayConfig`
    view through :mod:`repro.flexray.timeline`.  Rebinding the entry to
    a configuration with a different cycle length (see
    :meth:`ScheduleTable.retime_for`) therefore shifts every derived
    time consistently without touching the stored placement.
    """

    job_key: str
    message: Message
    cycle: int
    slot: int
    offset: int  # macroticks into the frame payload
    ct: int  # transmission time of this message
    #: The configuration view absolute times are derived from; excluded
    #: from equality so rebound copies compare placement-identical.
    config: FlexRayConfig = field(compare=False, repr=False)

    @property
    def slot_start(self) -> int:
        """Absolute start of the slot instance under the bound config."""
        return st_slot_start(self.config, self.cycle, self.slot)

    @property
    def start(self) -> int:
        """Absolute time the message's bytes start on the bus."""
        return self.slot_start + self.offset

    @property
    def finish(self) -> int:
        """Absolute time the message is fully received."""
        return self.start + self.ct


class ScheduleTable:
    """Mutable builder/container for the static schedule.

    Tracks, per node, the busy intervals occupied by SCS tasks (used both
    for placement and as the FPS availability pattern) and, per static
    slot instance, the frame payload already consumed by packed ST
    messages.
    """

    def __init__(self, config: FlexRayConfig, horizon: int):
        if horizon <= 0:
            raise SchedulingError(f"schedule horizon must be positive, got {horizon}")
        self.config = config
        self.horizon = horizon
        self.tasks: Dict[str, ScheduledTask] = {}
        self.messages: Dict[str, ScheduledMessage] = {}
        self._node_busy: Dict[str, List[Tuple[int, int]]] = {}
        self._frame_used: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # task placement
    # ------------------------------------------------------------------
    def busy_intervals(self, node: str) -> List[Tuple[int, int]]:
        """Sorted, disjoint (start, end) intervals occupied by SCS tasks."""
        return list(self._node_busy.get(node, []))

    def first_fit(self, node: str, earliest: int, duration: int) -> int:
        """Earliest start >= *earliest* of a gap of *duration* MT on *node*."""
        if duration <= 0:
            raise SchedulingError(f"duration must be positive, got {duration}")
        t = max(0, earliest)
        for s, e in self._node_busy.get(node, []):
            if e <= t:
                continue
            if s >= t + duration:
                break
            t = max(t, e)
        return t

    def gap_starts(self, node: str, earliest: int, duration: int, limit: int) -> List[int]:
        """Up to *limit* candidate start times (one per gap) for a task.

        The first candidate is the first-fit start; each later candidate
        is the first fit after the busy interval that bounds the previous
        candidate's gap, i.e. exactly one candidate per distinct gap that
        can hold *duration* macroticks.  Public helper for placement
        exploration (the built-in FPS-aware heuristic of Fig. 2 line 11
        currently spreads candidates over the slack window via
        ``first_fit`` instead -- see ``scheduler._placement_candidates``).
        Candidates are strictly increasing; abutting busy intervals are
        treated as one blocked region.
        """
        if limit < 1:
            return []
        candidates: List[int] = []
        busy = self._node_busy.get(node, [])
        t = max(0, earliest)
        while len(candidates) < limit:
            start = self.first_fit(node, t, duration)
            candidates.append(start)
            # The gap holding [start, start + duration) extends to the
            # first busy interval at or beyond the placement's end (any
            # earlier interval would have blocked the first fit).  The
            # next distinct gap begins after that interval.
            idx = bisect.bisect_left(busy, (start + duration, -1))
            if idx == len(busy):
                break  # the candidate lies in the unbounded tail gap
            t = busy[idx][1]
        return candidates

    def add_task(self, job_key: str, task: Task, start: int) -> ScheduledTask:
        """Record an SCS task instance at *start*; rejects overlaps."""
        if job_key in self.tasks:
            raise SchedulingError(f"job {job_key!r} already scheduled")
        end = start + task.wcet
        intervals = self._node_busy.setdefault(task.node, [])
        idx = bisect.bisect_left(intervals, (start, end))
        for neighbour in intervals[max(0, idx - 1) : idx + 1]:
            if neighbour[0] < end and start < neighbour[1]:
                raise SchedulingError(
                    f"job {job_key!r} at [{start}, {end}) overlaps interval "
                    f"{neighbour} on node {task.node!r}"
                )
        intervals.insert(idx, (start, end))
        entry = ScheduledTask(job_key=job_key, task=task, start=start)
        self.tasks[job_key] = entry
        return entry

    # ------------------------------------------------------------------
    # message placement
    # ------------------------------------------------------------------
    def frame_used(self, cycle: int, slot: int) -> int:
        """Payload macroticks already packed into slot instance (cycle, slot)."""
        return self._frame_used.get((cycle, slot), 0)

    def add_message(
        self, job_key: str, message: Message, cycle: int, slot: int
    ) -> ScheduledMessage:
        """Pack an ST message instance into static slot (cycle, slot).

        The message occupies the next free payload position of the frame;
        rejects the placement when the frame has no room left.
        """
        if job_key in self.messages:
            raise SchedulingError(f"job {job_key!r} already scheduled")
        ct = self.config.message_ct(message)
        used = self.frame_used(cycle, slot)
        if used + ct > self.config.gd_static_slot:
            raise SchedulingError(
                f"frame (cycle {cycle}, slot {slot}) has {used} MT used; message "
                f"{message.name!r} ({ct} MT) does not fit gd_static_slot="
                f"{self.config.gd_static_slot}"
            )
        st_slot_start(self.config, cycle, slot)  # validates (cycle, slot)
        entry = ScheduledMessage(
            job_key=job_key,
            message=message,
            cycle=cycle,
            slot=slot,
            offset=used,
            ct=ct,
            config=self.config,
        )
        self._frame_used[(cycle, slot)] = used + ct
        self.messages[job_key] = entry
        return entry

    # ------------------------------------------------------------------
    # cache support
    # ------------------------------------------------------------------
    def retime_for(self, config: FlexRayConfig) -> "ScheduleTable":
        """Copy with identical placements, re-bound to *config*.

        Placements are stored in (cycle, slot, offset) coordinates, so
        rebinding derives every absolute message time from *config*'s
        cycle geometry on demand.  Used by the incremental analysis
        engine when a cached schedule serves a configuration that shares
        its cache key (same static segment and cycle geometry, e.g. a
        different FrameID assignment): placements are byte-identical,
        only the configuration view the derived times come from changes.

        NOTE: rebinding across a *different* ``gd_cycle`` yields a table
        whose derived times shift with the new geometry -- that is only
        the schedule the global scheduling algorithm would have produced
        when the placement indices coincide, which the engine guarantees
        by keying its schedule cache on the cycle length whenever ST
        messages exist (placement indices are empirically *not*
        cycle-length-invariant; see ``SchedulePlan`` for what is).
        """
        clone = ScheduleTable.__new__(ScheduleTable)
        clone.config = config
        clone.horizon = self.horizon
        clone.tasks = dict(self.tasks)
        clone.messages = {
            key: replace(entry, config=config)
            for key, entry in self.messages.items()
        }
        clone._node_busy = {n: list(v) for n, v in self._node_busy.items()}
        clone._frame_used = dict(self._frame_used)
        return clone

    #: Backwards-compatible alias (PR 1 name).
    clone_for = retime_for

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def finish_of(self, job_key: str) -> Optional[int]:
        """Completion time of a scheduled job, or None when not scheduled."""
        if job_key in self.tasks:
            return self.tasks[job_key].finish
        if job_key in self.messages:
            return self.messages[job_key].finish
        return None

    def task_entries_on(self, node: str) -> List[ScheduledTask]:
        """All SCS task entries of *node*, by start time."""
        return sorted(
            (e for e in self.tasks.values() if e.task.node == node),
            key=lambda e: e.start,
        )

    def st_message_entries(self) -> List[ScheduledMessage]:
        """All ST message entries, by bus time."""
        return sorted(self.messages.values(), key=lambda e: (e.slot_start, e.offset))

    def makespan(self) -> int:
        """Latest completion time of any scheduled activity (0 when empty)."""
        latest = 0
        for e in self.tasks.values():
            latest = max(latest, e.finish)
        for e in self.messages.values():
            latest = max(latest, e.finish)
        return latest
