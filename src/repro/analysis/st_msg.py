"""Response times of statically scheduled activities.

SCS tasks and ST messages have deterministic completion times fixed by
the schedule table; their worst-case response time is simply the largest
``finish - period_start`` over the job instances of the hyper-period.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.schedule_table import ScheduleTable
from repro.model.application import Application


def static_response_times(
    application: Application, table: ScheduleTable, period_of=None
) -> Dict[str, int]:
    """WCRT per SCS task / ST message name, relative to the graph release.

    ``period_of`` optionally supplies a precomputed period lookup (the
    incremental analysis engine passes its per-system period table to
    avoid repeated graph searches); defaults to the application's.
    """
    if period_of is None:
        period_of = application.period_of
    wcrt: Dict[str, int] = {}
    for entry in table.tasks.values():
        name, instance = entry.job_key.rsplit("#", 1)
        base = int(instance) * period_of(name)
        wcrt[name] = max(wcrt.get(name, 0), entry.finish - base)
    for entry in table.messages.values():
        name, instance = entry.job_key.rsplit("#", 1)
        base = int(instance) * period_of(name)
        wcrt[name] = max(wcrt.get(name, 0), entry.finish - base)
    return wcrt


def static_release_offsets(
    application: Application, table: ScheduleTable
) -> Dict[str, int]:
    """Worst ready-time offset of each statically scheduled activity.

    For a DYN message produced by an SCS task, the message becomes ready
    when the task completes; the completion offset (relative to the graph
    release) acts as the message's inherited "jitter" term J_m in
    Eq. (2) -- deterministic, but it still shifts the response time that
    is compared against the relative deadline.
    """
    return static_response_times(application, table)
