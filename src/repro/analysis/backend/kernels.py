"""Batched lockstep evaluation of the holistic fix point.

:func:`run_group` replays the exact Gauss-Seidel pass structure of
``AnalysisContext._fix_point`` -- DYN messages in view order, then FPS
tasks in node order, jitters and response times updated in place as the
pass proceeds -- but carries *every lane of the batch at once*: the
response-time and jitter dictionaries become ``(activity, lane)`` int64
matrices, the dirty-set / input-signature memo becomes boolean masks,
and each activity's busy-window recurrences advance all lanes (and, for
FPS, all surviving critical instants) in lockstep under convergence
masks.

Bit-identity with the Python path rests on three repo-established
facts, not on trajectory equality:

* every busy-window evaluation's ``(value, converged)`` pair is
  seed-independent (certified lower-bound seeds converge to exactly the
  cold least fixed point; uncertified seeds are detected by the same
  descending-step / iteration-limit checks and replayed cold), so the
  lanes' seed matrices may diverge from the Python dictionaries without
  affecting any result;
* the per-instant pruning bound is exact for *any* certified lower
  bound of the final worst window, so screening against the first
  evaluated instant's window (instead of the Python loop's running
  worst) elides a different-but-equally-certified instant subset;
* pattern-level dominance elision is value- and flag-exact by
  construction, so the array kernel simply runs without it -- same
  results, none of the deferred-replay machinery.

Per-activity magnitude prebounds (``arrays.OVERFLOW_LIMIT``) are
checked in unbounded Python arithmetic per batch; activities that could
overflow int64 -- and degenerate availability patterns the staircase
does not cover -- are evaluated per lane on the Python kernels through
a :class:`_LaneJitters` view, inside the same batched pass.
"""

from __future__ import annotations

from typing import List

from repro.analysis.backend import numpy_or_none
from repro.analysis.dyn import seeded_busy_window as _dyn_busy_window
from repro.analysis.fps import (
    MAX_FIXPOINT_ITERATIONS,
    seeded_busy_window as _fps_busy_window,
)

#: Unreachable threshold for the ancestor zero-mask rows: the window
#: ``t`` is always strictly above int64 min, so these rows never mask.
_INT64_MIN = -(1 << 63)


class _LaneJitters:
    """Read-only ``Mapping.get`` view of one lane's jitter column.

    Hands the Python kernels (per-lane fallback paths) the exact jitter
    state of one lane of the batched fix point without materialising a
    dictionary; names outside the activity index resolve to the default,
    mirroring ``jitters.get(name, 0)`` on a dict that never held them.
    """

    __slots__ = ("_J", "_idx", "_lane")

    def __init__(self, J, idx, lane):
        self._J = J
        self._idx = idx
        self._lane = lane

    def get(self, name, default=None):
        i = self._idx.get(name)
        if i is None:
            return default
        return int(self._J[i, self._lane])


def run_group(ctx, plan, configs) -> List:
    """Analyse one group of feasible configurations in lockstep.

    All *configs* share *plan*'s schedule key and DYN structure key (the
    caller groups them); returns one
    :class:`~repro.analysis.holistic.AnalysisResult` per configuration,
    bit-identical to ``AnalysisContext._analyse_python``.
    """
    return _GroupRun(ctx, plan, configs).run()


class _GroupRun:
    """State of one batched fix point (see module docstring)."""

    def __init__(self, ctx, plan, configs):
        np = numpy_or_none()
        self.np = np
        self.ctx = ctx
        self.plan = plan
        self.configs = configs
        self.options = ctx.options
        self.arts = ctx._schedule_artifacts(configs[0])
        i8 = np.int64
        L = self.L = len(configs)
        # Per-lane ``_DynView`` lists are only materialised for Python
        # fallback lanes (overflow-flagged activities); the hot path
        # derives every per-lane scalar arithmetically below.
        self._lane_views = {}
        cap_base = ctx._cap_base
        self.caps_py = [
            ctx.options.cap_factor
            * (cap_base if cap_base > c.gd_cycle else c.gd_cycle)
            for c in configs
        ]
        self.caps = np.asarray(self.caps_py, dtype=i8)
        cap_max = self.cap_max = max(self.caps_py)
        jitter_bound = max(cap_max, plan.static_max, plan.release_max)
        n_ms = np.asarray([c.n_minislots for c in configs], dtype=i8)
        gd_cycle = np.asarray([c.gd_cycle for c in configs], dtype=i8)
        st_bus = np.asarray([c.st_bus for c in configs], dtype=i8)
        ms_len = configs[0].gd_minislot  # structure-key invariant

        A = len(plan.activities)
        # Response times (rows = activity names incl. the static,
        # read-only ones) and release jitters, one column per lane.
        self.W = np.repeat(plan.w0[:, None], L, axis=1)
        # k-error hypothesis, static side: the ``_fix_point`` bump
        # (``min(static + k * gd_cycle, cap)`` per fault-exposed static
        # row), vectorized over lanes before the first pass reads W.
        fault_k = ctx._fault_k
        if fault_k and plan.fault_rows.size:
            rows = plan.fault_rows
            inflated = self.W[rows] + fault_k * gd_cycle[None, :]
            self.W[rows] = np.minimum(inflated, self.caps[None, :])
        self.J = np.zeros((plan.n_rows, L), dtype=i8)
        # The Python fix point's exact-change-tracking memo, per lane:
        # interferer dirty flags, last own jitter / last output of each
        # activity (the first-insertion marker of ``wcrt[name]`` is the
        # per-activity ``_w_written`` flag -- lanes insert in lockstep).
        self.dirty = np.zeros((A, L), dtype=bool)
        self.has = np.zeros((A, L), dtype=bool)
        self.last_own = np.zeros((A, L), dtype=i8)
        self.last_w = np.zeros((A, L), dtype=i8)
        self.last_ok = np.zeros((A, L), dtype=bool)
        self.conv = np.ones(L, dtype=bool)
        # Certified warm-start seeds: converged demands/windows of the
        # previous evaluation, ``-1`` = no seed (numpy analogue of the
        # Python path's absent dictionary entries; a genuinely negative
        # stored value also lands below every ``seed > wcet``/``> ct``
        # threshold, so the sentinel is semantics-preserving).
        self.seeds = {}
        self.lane_scalars = {}
        self.vec = {}
        self._release = {}
        self._w_written = [False] * A
        self._all_has = [False] * A
        self._all_send = [True] * A
        # Shared identity vector: the per-evaluation ``pos`` arrays are
        # read-only prefixes of this (rebinding compresses copy them).
        self._pos0 = np.arange(L)
        for act in plan.activities:
            if act.kind == "fps":
                self._release[act.pos] = np.full(L, act.release, dtype=i8)
            if act.kind == "dyn":
                # The ``_dyn_views`` scalar derivations, vectorized over
                # lanes: ``lam = p_latest - 1`` with
                # ``p_latest = n_minislots - largest + 1``.
                f = act.frame_id
                largest = act.largest
                lam = n_ms - largest
                theta = lam - f + 2
                sigma = gd_cycle - st_bus - (f - 1) * ms_len
                sendable = (f + largest - 1) <= n_ms
                base = sigma + st_bus
                extra_max = 0
                if fault_k:
                    # The k-error extra-cycles term of ``_dyn_views``,
                    # vectorized: ``k * (2 + max_adjusted // theta)``
                    # per lane (1 per error when no lf row survives).
                    # ``extra`` enters Eq. (3) only as the constant
                    # ``extra * gd_cycle`` summand, so it folds into the
                    # hoisted base term exactly.  theta can be <= 0 only
                    # on non-sendable lanes, which the where() zeroes --
                    # the max(theta, 1) guard just keeps the vector
                    # division defined there.
                    m_adj = act.max_adjusted
                    if m_adj <= 0:
                        per_error = fault_k
                    else:
                        per_error = fault_k * (
                            2 + m_adj // np.maximum(theta, 1)
                        )
                    extra = np.where(sendable, per_error, 0)
                    base = base + extra * gd_cycle
                    extra_max = int(extra.max())
                self.lane_scalars[act.pos] = dict(
                    lam=lam,
                    theta=theta,
                    # sigma and st_bus (and the k-error constant) only
                    # ever enter Eq. (3) as their sum, hoisted out of
                    # the round loop.
                    base=base,
                    gd=gd_cycle,
                    sendable=sendable,
                    ms_len=ms_len,
                )
                self._all_send[act.pos] = bool(sendable.all())
                self.seeds[act.pos] = np.full(L, -1, dtype=i8)
                self.vec[act.pos] = act.overflow_safe(
                    cap_max,
                    jitter_bound,
                    int(np.abs(gd_cycle).max()),
                    int(np.abs(sigma).max()),
                    int(np.abs(st_bus).max()),
                    int(np.abs(lam).max()),
                    ms_len,
                    extra_max,
                )
            else:
                self.seeds[act.pos] = np.full(
                    (act.av.n_instants, L), -1, dtype=i8
                )
                self.vec[act.pos] = act.stair and act.overflow_safe(
                    cap_max, jitter_bound
                )

    # ------------------------------------------------------------------
    def run(self):
        np = self.np
        changed = np.zeros(self.L, dtype=bool)
        for _ in range(self.options.max_holistic_iterations):
            changed = np.zeros(self.L, dtype=bool)
            for act in self.plan.activities:
                self._step(act, changed)
            if not changed.any():
                break
        else:
            # A lane still changing in the final pass changed in every
            # pass (one settled pass implies settled forever), so it is
            # exactly the lane whose per-lane Python run would exhaust
            # ``max_holistic_iterations``.
            self.conv &= ~changed
        return self._assemble()

    def _step(self, act, changed):
        """One activity of one Gauss-Seidel pass, all lanes at once."""
        np = self.np
        a = act.pos
        if act.kind == "dyn":
            j = self.W[act.sender_row]
        else:
            preds = act.pred_rows
            if preds:
                j = np.maximum(self._release[a], self.W[preds[0]])
                for pr in preds[1:]:
                    np.maximum(j, self.W[pr], out=j)
            else:
                j = self._release[a]
        upd = self.J[act.row] != j
        upd_any = bool(upd.any())
        if upd_any:
            self.J[act.row] = j
            changed |= upd
            if act.dep_rows is not None and act.dep_rows.size:
                self.dirty[act.dep_rows] |= upd
        if self._all_has[a]:
            need = self.dirty[a]
            if act.own_sensitive:
                need = need | (self.last_own[a] != j)
        else:
            need = ~self.has[a] | self.dirty[a]
            if act.own_sensitive:
                need |= self.last_own[a] != j
        ln = np.nonzero(need)[0]
        if ln.size:
            if act.kind == "dyn":
                self._eval_dyn(act, ln, j)
            else:
                self._eval_fps(act, ln, j)
            if ln.size == self.L:
                self.dirty[a] = False
                if act.own_sensitive:
                    self.last_own[a] = j
                if not self._all_has[a]:
                    self._all_has[a] = True
            else:
                self.dirty[a, ln] = False
                if act.own_sensitive:
                    self.last_own[a, ln] = j[ln]
                if not self._all_has[a]:
                    self.has[a, ln] = True
        elif not upd_any and self._w_written[a]:
            # Steady state: no evaluation and an unchanged own jitter
            # mean ``value`` is byte-for-byte the previous pass's (it is
            # a pure function of ``j`` and the memoised window), so the
            # write-back below cannot flip ``changed``.
            self.conv &= self.last_ok[a]
            return
        self.conv &= self.last_ok[a]
        if act.kind == "dyn":
            value = j + self.last_w[a]
            value += act.ct
            np.minimum(value, self.caps, out=value)
            if not self._all_send[a]:
                value = np.where(
                    self.lane_scalars[a]["sendable"], value, self.caps
                )
        else:
            value = np.minimum(j + self.last_w[a], self.caps)
        if self._w_written[a]:
            wu = self.W[act.row] != value
            if wu.any():
                changed |= wu
        else:
            # First pass: every ``wcrt[name]`` insertion is a change.
            changed[:] = True
            self._w_written[a] = True
        self.W[act.row] = value

    # ------------------------------------------------------------------
    # DYN busy windows (Eq. (3)), lanes in lockstep
    # ------------------------------------------------------------------
    def _eval_dyn(self, act, ln, j):
        np = self.np
        a = act.pos
        if self._all_send[a]:
            sln = ln
        else:
            sendable = self.lane_scalars[a]["sendable"]
            s_mask = sendable[ln]
            nln = ln[~s_mask]
            if nln.size:
                # The frame can never be sent from these lanes: certain
                # miss, window irrelevant (the value clamps to the cap).
                self.last_w[a, nln] = 0
                self.last_ok[a, nln] = False
            sln = ln[s_mask]
            if not sln.size:
                return
        if not self.vec[a]:
            self._eval_dyn_python(act, sln, j)
            return
        i8 = np.int64
        sc = self.lane_scalars[a]
        # When every lane needs evaluation (the early passes), the
        # fancy-index slices collapse to the full per-act arrays; the
        # round loop never mutates them in place, so sharing is safe.
        full = sln.size == self.L
        capv = self.caps if full else self.caps[sln]
        lam = sc["lam"] if full else sc["lam"][sln]
        theta = sc["theta"] if full else sc["theta"][sln]
        base = sc["base"] if full else sc["base"][sln]
        gd = sc["gd"] if full else sc["gd"][sln]
        ms_len = sc["ms_len"]
        ct = act.ct
        lower = act.lower_slots
        # Interferer jitters are frozen for the duration of one
        # evaluation sweep; ancestor rows carry the negative offset
        # jitter own - period (the unified-count formulation).  hp and
        # lf rows share one packed matrix (hp rows first), and the
        # precomputed (3, R) weight matrix folds the three per-round
        # column sums into a single integer matmul.
        has_anc = act.has_anc
        gathered = (
            self.J[act.all_jrow]
            if full
            else self.J[act.all_jrow[:, None], sln]
        )
        # Ceil-division fusion: with the jitters frozen for the whole
        # evaluation, ceil((t + jit) / p) == (t + (jit + p - 1)) // p,
        # so the ``p - 1`` summand folds into the jitter matrix once.
        # The ancestor zero-mask ``s <= 0`` becomes ``t <= -jit``; rows
        # without it get an unreachable threshold.
        if has_anc:
            own = j if full else j[sln]
            jit = np.where(act.all_anc, own[None, :] - act.all_p, gathered)
            jit_pm1 = jit + act.all_pm1
            thresh = np.where(act.all_anc, -jit, _INT64_MIN)
        else:
            jit_pm1 = gathered + act.all_pm1
            thresh = None
        p_col = act.all_p
        weights = act.weights
        no_hp = act.n_hp == 0
        seed = self.seeds[a] if full else self.seeds[a][sln]
        seeded = seed > ct
        seeded_any = bool(seeded.any())
        t = np.where(seeded, seed, ct)
        M = sln.size
        iters = np.zeros(M, dtype=i8)
        res_w = np.zeros(M, dtype=i8)
        res_ok = np.zeros(M, dtype=bool)
        res_fin = np.zeros(M, dtype=i8)
        pos = self._pos0[:M]
        rounds = 0
        while pos.size:
            rounds += 1
            ceils = (t[None, :] + jit_pm1) // p_col
            counts = (
                np.where(t[None, :] <= thresh, 0, ceils)
                if thresh is not None
                else ceils
            )
            sums = weights @ counts
            lf_total = sums[1]
            lf_cycles = np.minimum(lf_total // theta, sums[2])
            leftover = lf_total - lf_cycles * theta
            np.maximum(leftover, 0, out=leftover)
            final_consumed = np.minimum(lam, lower + leftover)
            cycles = lf_cycles if no_hp else sums[0] + lf_cycles
            w = base + cycles * gd + final_consumed * ms_len
            # Boolean algebra on the lane partition: ``le = wle & ~capped``
            # is ``wle > capped``, ``done_conv = le & ~restart`` is
            # ``le ^ restart`` (restart is a subset of le), and
            # ``adv = ~capped & ~le`` is ``~(capped | wle)``.
            capped = w >= capv
            wle = w <= t
            le = wle > capped
            if seeded_any:
                restart = (le & seeded) & (w < t)
                done_conv = le ^ restart
            else:
                restart = None
                done_conv = le
            adv = ~(capped | wle)
            iters += adv
            if rounds >= MAX_FIXPOINT_ITERATIONS:
                # Per-lane iteration counts are bounded by the shared
                # round counter, so exhaustion bookkeeping only has to
                # exist once that counter could have reached the limit.
                exhausted = adv & (iters >= MAX_FIXPOINT_ITERATIONS)
                ex_done = exhausted & ~seeded
                finalize = capped | done_conv | ex_done
                restart_all = (
                    restart | (exhausted & seeded)
                    if restart is not None
                    else exhausted & seeded
                )
                adv = adv & ~exhausted
            else:
                finalize = capped | done_conv
                restart_all = restart
            n_fin = int(np.count_nonzero(finalize))
            # Every surviving lane either advanced (new window ``w``) or
            # restarts cold, so the survivor state is ``w`` compressed,
            # patched below -- no blend against the old ``t`` needed.
            if n_fin:
                fpos = pos[finalize]
                fc = capped[finalize]
                res_w[fpos] = np.where(fc, capv[finalize], w[finalize])
                res_ok[fpos] = done_conv[finalize]
                res_fin[fpos] = np.where(fc, t[finalize], w[finalize])
                keep = ~finalize
                pos = pos[keep]
                t = w[keep]
                seeded = seeded[keep]
                iters = iters[keep]
                capv = capv[keep]
                lam = lam[keep]
                theta = theta[keep]
                base = base[keep]
                gd = gd[keep]
                jit_pm1 = jit_pm1[:, keep]
                if thresh is not None:
                    thresh = thresh[:, keep]
            else:
                t = w
            # Uncertified seeds (descending step or iteration-limit
            # exit) replay cold in place: reset to the unseeded start
            # (``t``/``iters`` are fresh arrays here, never aliased).
            if restart_all is not None and restart_all.any():
                rs = restart_all[keep] if n_fin else restart_all
                t[rs] = ct
                seeded = seeded & ~rs
                iters[rs] = 0
        self.last_w[a, sln] = res_w
        self.last_ok[a, sln] = res_ok
        self.seeds[a][sln] = res_fin

    def _lane_view(self, lane, dyn_index):
        views = self._lane_views.get(lane)
        if views is None:
            views = self.ctx._dyn_views(self.configs[lane])
            self._lane_views[lane] = views
        return views[dyn_index]

    def _eval_dyn_python(self, act, sln, j):
        """Per-lane Python fallback (overflow-flagged activities)."""
        a = act.pos
        for lane in sln.tolist():
            view = self._lane_view(lane, act.dyn_index)
            s = int(self.seeds[a][lane])
            w, ok, final = _dyn_busy_window(
                view.hp_info,
                view.lf_info,
                view.lower_slots,
                view.lam,
                view.theta,
                view.sigma,
                view.ct,
                view.gd_cycle,
                view.st_bus,
                view.ms_len,
                _LaneJitters(self.J, self.plan.name_idx, lane),
                self.caps_py[lane],
                int(j[lane]),
                self.options.dyn_fill_strategy,
                s if s >= 0 else None,
                view.fault_cycles,
            )
            self.last_w[a, lane] = w
            self.last_ok[a, lane] = ok
            self.seeds[a][lane] = final

    # ------------------------------------------------------------------
    # FPS busy-window maximisations, (instant, lane) pairs in lockstep
    # ------------------------------------------------------------------
    def _eval_fps(self, act, ln, j):
        if not self.vec[act.pos]:
            self._eval_fps_python(act, ln, j)
            return
        np = self.np
        i8 = np.int64
        a = act.pos
        av = act.av
        M = ln.size
        # Full-batch fast path, as in ``_eval_dyn``: skip the gather
        # copies when every lane is being evaluated (the early passes).
        full = M == self.L
        capv = self.caps if full else self.caps[ln]
        R = act.r_p.size
        if not R:
            jitm = np.zeros((0, M), dtype=i8)
        else:
            gathered = (
                self.J[act.r_jrow]
                if full
                else self.J[act.r_jrow[:, None], ln]
            )
            if act.has_anc:
                own = j if full else j[ln]
                jitm = np.where(
                    act.r_anc[:, None],
                    own[None, :] - act.r_p[:, None],
                    gathered,
                )
            else:
                jitm = gathered
        seeds_cols = self.seeds[a] if full else self.seeds[a][:, ln]
        new_seeds = np.full(seeds_cols.shape, -1, dtype=i8)
        # Round 1: the first instant of the evaluation order (longest
        # initial busy run), every lane -- the bound needs a worst
        # window to screen against.
        idx0 = int(av.eval_order[0])
        t0 = np.full(M, int(av.instants[idx0]), dtype=i8)
        b0 = np.full(M, int(av.before[idx0]), dtype=i8)
        win1, ok1, fin1, capped1 = self._stair_pairs(
            act, t0, b0, None, seeds_cols[idx0].copy(), capv, jitm
        )
        new_seeds[idx0] = fin1
        value = win1.copy()
        ok_l = ok1.copy()
        if av.n_instants > 1:
            act_cols = np.nonzero(~capped1)[0]
            if act_cols.size:
                # The per-instant bound as an array predicate: one
                # shared interference evaluation at the worst window,
                # one staircase advance per remaining (instant, lane),
                # certified by the same activation-count guard as the
                # Python kernel.
                worst = win1[act_cols]
                if R:
                    s = worst[None, :] + jitm[:, act_cols]
                    counts = np.where(
                        s > 0, (s + act.r_pm1_col) // act.r_p_col, 0
                    )
                    bound_demand = act.wcet + act.r_c @ counts
                    bound_act = counts.sum(axis=0)
                else:
                    bound_demand = np.full(
                        act_cols.size, act.wcet, dtype=i8
                    )
                    bound_act = np.zeros(act_cols.size, dtype=i8)
                guard = bound_act + 2 <= MAX_FIXPOINT_ITERATIONS
                rest = av.eval_order[1:]
                t0r = av.instants[rest]
                b0r = av.before[rest]
                aa = b0r[:, None] + bound_demand[None, :] - 1
                whole, rem = np.divmod(aa, av.slack)
                k = np.searchsorted(av.through, rem + 1)
                w_bound = (
                    whole * av.period
                    + av.gap_ends[k]
                    - (av.through[k] - rem - 1)
                    - t0r[:, None]
                )
                survive = ~(guard[None, :] & (w_bound <= worst[None, :]))
                pr_i, pr_c = np.nonzero(survive)
                if pr_i.size:
                    cols2 = act_cols[pr_c]
                    win2, ok2, fin2, _ = self._stair_pairs(
                        act,
                        t0r[pr_i],
                        b0r[pr_i],
                        cols2,
                        seeds_cols[rest[pr_i], cols2],
                        capv[cols2],
                        jitm,
                    )
                    new_seeds[rest[pr_i], cols2] = fin2
                    np.maximum.at(value, cols2, win2)
                    np.logical_and.at(ok_l, cols2, ok2)
        if full:
            self.last_w[a] = value
            self.last_ok[a] = ok_l
            self.seeds[a] = new_seeds
        else:
            self.last_w[a, ln] = value
            self.last_ok[a, ln] = ok_l
            self.seeds[a][:, ln] = new_seeds

    def _stair_pairs(self, act, t0, b0, cols, seed, capp, jitm):
        """Demand recurrences of (instant, lane) pairs, in lockstep.

        The exact staircase of the Python fast path (divmod + bisect
        over the gap prefix sums), with the same certified warm starts
        and the same uncertified-seed cold restarts.  Returns
        ``(window, converged, final_demand, capped)`` per pair.
        """
        np = self.np
        i8 = np.int64
        av = act.av
        wcet = act.wcet
        P = t0.size
        R = act.r_p.size
        # Ceil-division fusion as in ``_eval_dyn``: the s > 0 gate
        # becomes ``window > -jit`` against the presummed jit + p - 1.
        if R:
            jitc = jitm if cols is None else jitm[:, cols]
            jit_pm1 = jitc + act.r_pm1_col
            neg_jit = -jitc
        else:
            jit_pm1 = neg_jit = None
        p_col = act.r_p_col
        through = av.through
        gap_ends = av.gap_ends
        slack = av.slack
        period = av.period
        seeded = seed > wcet
        seeded_any = bool(seeded.any())
        demand = np.where(seeded, seed, wcet)
        iters = np.zeros(P, dtype=i8)
        res_w = np.zeros(P, dtype=i8)
        res_ok = np.zeros(P, dtype=bool)
        res_fin = np.zeros(P, dtype=i8)
        res_capped = np.zeros(P, dtype=bool)
        pos = self._pos0[:P] if P <= self._pos0.size else np.arange(P)
        r_c = act.r_c
        rounds = 0
        while pos.size:
            rounds += 1
            aa = b0 + demand - 1
            whole, rem = np.divmod(aa, slack)
            k = np.searchsorted(through, rem + 1)
            window = (
                whole * period + gap_ends[k] - (through[k] - rem - 1) - t0
            )
            capped = window >= capp
            n_cap = int(np.count_nonzero(capped))
            if n_cap:
                fpos = pos[capped]
                res_w[fpos] = capp[capped]
                res_fin[fpos] = demand[capped]
                res_capped[fpos] = True
                keep = ~capped
                pos = pos[keep]
                t0 = t0[keep]
                b0 = b0[keep]
                demand = demand[keep]
                seeded = seeded[keep]
                iters = iters[keep]
                capp = capp[keep]
                window = window[keep]
                if R:
                    jit_pm1 = jit_pm1[:, keep]
                    neg_jit = neg_jit[:, keep]
                if not pos.size:
                    break
            if R:
                counts = np.where(
                    window[None, :] > neg_jit,
                    (window[None, :] + jit_pm1) // p_col,
                    0,
                )
                new_demand = wcet + r_c @ counts
            else:
                new_demand = np.full(pos.size, wcet, dtype=i8)
            conv = new_demand == demand
            ncv = ~conv
            if seeded_any:
                restart = (ncv & seeded) & (new_demand < demand)
                adv = ncv ^ restart
            else:
                restart = None
                adv = ncv
            iters += adv
            if rounds >= MAX_FIXPOINT_ITERATIONS:
                # As in ``_eval_dyn``: per-lane iteration counts are
                # bounded by the shared round counter.
                exhausted = adv & (iters >= MAX_FIXPOINT_ITERATIONS)
                ex_done = exhausted & ~seeded
                finalize = conv | ex_done
                restart_all = (
                    restart | (exhausted & seeded)
                    if restart is not None
                    else exhausted & seeded
                )
                adv = adv & ~exhausted
            else:
                finalize = conv
                restart_all = restart
            n_fin = int(np.count_nonzero(finalize))
            # As in ``_eval_dyn``: survivors either advanced to
            # ``new_demand`` or restart cold, so compress ``new_demand``
            # and patch the restarts on the fresh arrays.
            if n_fin:
                fpos = pos[finalize]
                res_w[fpos] = window[finalize]
                res_ok[fpos] = conv[finalize]
                res_fin[fpos] = np.where(
                    conv[finalize], demand[finalize], new_demand[finalize]
                )
                keep = ~finalize
                pos = pos[keep]
                t0 = t0[keep]
                b0 = b0[keep]
                demand = new_demand[keep]
                seeded = seeded[keep]
                iters = iters[keep]
                capp = capp[keep]
                if R:
                    jit_pm1 = jit_pm1[:, keep]
                    neg_jit = neg_jit[:, keep]
            else:
                demand = new_demand
            if restart_all is not None and restart_all.any():
                rs = restart_all[keep] if n_fin else restart_all
                demand[rs] = wcet
                seeded = seeded & ~rs
                iters[rs] = 0
        return res_w, res_ok, res_fin, res_capped

    def _eval_fps_python(self, act, ln, j):
        """Per-lane Python fallback (degenerate patterns, overflow)."""
        a = act.pos
        for lane in ln.tolist():
            seeds = [
                None if v < 0 else v
                for v in self.seeds[a][:, lane].tolist()
            ]
            window_value, ok, demands = _fps_busy_window(
                act.wcet,
                act.plan.interferers,
                act.availability,
                _LaneJitters(self.J, self.plan.name_idx, lane),
                self.caps_py[lane],
                int(j[lane]),
                seeds,
                True,
                False,
            )
            self.last_w[a, lane] = window_value
            self.last_ok[a, lane] = ok
            self.seeds[a][:, lane] = [
                -1 if d is None else d for d in demands
            ]

    # ------------------------------------------------------------------
    def _assemble(self):
        return assemble_results(
            self.ctx,
            self.plan,
            self.arts,
            self.configs,
            self.W,
            self.conv,
            self.cap_max,
        )


def assemble_results(ctx, plan, arts, configs, W, conv, cap_max):
    """``AnalysisResult`` list from a solved ``(n_rows, L)`` W matrix.

    Shared by the numpy and native backends: both end their fix points
    with the same response-time matrix and per-lane convergence flags,
    and the assembly (wcrt dicts in the Python path's insertion order,
    Eq. (5) costs, retimed tables) is backend-independent.
    """
    from repro.analysis.holistic import AnalysisResult
    from repro.core.cost import cost_function

    # ``tolist`` hands back Python ints, so the assembled wcrt dicts
    # are type-identical to the Python path's (JSON-serialisable,
    # same reprs), not just value-equal.
    wcrt_cols = W[plan.wcrt_rows].T.tolist()
    names = plan.wcrt_names
    costs = batch_costs(ctx, plan, W, cap_max, len(configs))
    results = []
    for lane, config in enumerate(configs):
        wcrt = dict(zip(names, wcrt_cols[lane]))
        converged = bool(conv[lane])
        cost = (
            costs[lane]
            if costs is not None
            else cost_function(ctx.app, wcrt)
        )
        table = (
            arts.table
            if arts.table.config is config
            else arts.table.retime_for(config)
        )
        results.append(
            AnalysisResult(
                config=config,
                feasible=True,
                schedulable=cost.schedulable and converged,
                converged=converged,
                cost=cost,
                wcrt=wcrt,
                table=table,
            )
        )
    return results


def batch_costs(ctx, plan, W, cap_max, L):
    """Eq. (5) over all lanes at once, or ``None`` for the fallback.

    The sums are prebounded (every response time is <= its lane's
    cap, so each term is bounded by ``cap_max + |deadline|``) before
    trusting int64; the term order matches ``cost_function``'s
    iteration exactly, so the integer sums -- and hence the float
    conversions -- are identical.
    """
    from repro.analysis.backend.arrays import OVERFLOW_LIMIT
    from repro.core.cost import CostBreakdown

    np = numpy_or_none()
    if plan.cost_rows is None:
        return None
    n_terms = plan.cost_rows.size
    bound = (cap_max + plan.deadline_abs_max + 1) * (n_terms + 1)
    if bound >= OVERFLOW_LIMIT:
        return None
    diff = W[plan.cost_rows] - plan.deadlines[:, None]
    pos = diff > 0
    over = np.where(pos, diff, 0)
    f1 = over.sum(axis=0)
    f2 = diff.sum(axis=0)
    misses = pos.sum(axis=0)
    worst = over.max(axis=0, initial=0)
    costs = []
    for lane in range(L):
        lane_f1 = int(f1[lane])
        lane_f2 = int(f2[lane])
        if lane_f1 > 0:
            costs.append(
                CostBreakdown(
                    value=float(lane_f1),
                    schedulable=False,
                    misses=int(misses[lane]),
                    worst_violation=int(worst[lane]),
                    total_slack=-lane_f2,
                )
            )
        else:
            costs.append(
                CostBreakdown(
                    value=float(lane_f2),
                    schedulable=True,
                    misses=0,
                    worst_violation=0,
                    total_slack=-lane_f2,
                )
            )
    return costs
