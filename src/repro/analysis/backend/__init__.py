"""Accelerated kernel backends (``AnalysisOptions.backend``).

The holistic pipeline spends nearly all of its time in pure integer
arithmetic -- FPS/DYN busy-window fix points over precomputed prefix
sums -- executed as per-candidate Python loops.  This package lowers the
per-system invariants already computed by
:class:`~repro.analysis.context.AnalysisContext` (interferer rows,
``NodeAvailability`` gap/slack prefix sums, ``InstantTables``, DYN fill
rows) into packed int64 plans once per (schedule, frame structure)
group (:mod:`repro.analysis.backend.arrays`), then advances the
busy-window fix points of a whole candidate batch on one of two
engines:

* ``"numpy"`` -- lockstep vectorized evaluation under convergence masks
  (:func:`repro.analysis.backend.kernels.run_group`);
* ``"native"`` -- a compiled C extension (``repro._native``) running
  each lane's full holistic fix point in tight scalar C loops with no
  per-step dispatch at all
  (:func:`repro.analysis.backend.native.run_group_native`) -- which is
  also why it wins on the singleton-lane groups of ST-heavy sweeps
  where the array kernels' per-op dispatch dominates.

The contract is the repo's established one: results are bit-identical
to the pure-Python oracle.  The ingredients:

* exact integer dtypes end to end (int64, never float);
* per-activity magnitude prebounds computed in unbounded Python
  arithmetic at lowering time -- any activity whose worst-case
  intermediate could leave int64 is evaluated on the Python kernels
  instead (:data:`~repro.analysis.backend.arrays.OVERFLOW_LIMIT`);
* the certified warm-start seeds and the per-instant pruning bound are
  carried over as backend state, and both are result-neutral by the
  repo's certification arguments (seeds below the least fixed point
  converge to exactly it; uncertified seeds trigger the same
  cold-replay detection as the Python path);
* oracle/debug modes (``warm_start != "certified"``,
  ``dominance="verify"``, ``dyn_fill_strategy="exact"``) fall back to
  the Python path entirely -- their whole point is exercising the
  reference semantics.

Both accelerators are *optional* dependencies (the ``repro[numpy]`` and
``repro[native]`` extras).  The library imports them lazily through
:func:`numpy_or_none` / :func:`native_or_none`, and :func:`require_backend`
turns their absence into an actionable error at context construction
instead of a deep ImportError mid-analysis.  :data:`BACKEND_REGISTRY`
is the single source of truth for the legal ``AnalysisOptions.backend``
values -- the CLI ``--backend`` choices and the context's validation
error both derive from it.
"""

from __future__ import annotations

try:  # pragma: no cover - trivially one of the two branches per env
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

try:  # pragma: no cover - one branch per build environment
    from repro import _native as _native_module
except ImportError:  # pragma: no cover
    _native_module = None
else:  # pragma: no cover
    # ``src/repro/_native/`` (the C source directory) is importable as
    # an attribute-less PEP 420 namespace package even when the compiled
    # module was never built; only a module exposing the kernel entry
    # points counts as the extension being installed.
    if not hasattr(_native_module, "run_batch"):
        _native_module = None


def numpy_or_none():
    """The numpy module, or ``None`` when the extra is not installed.

    Kept behind a function (reading the module-level ``_numpy``) so
    tests can simulate a numpy-less environment by monkeypatching
    ``repro.analysis.backend._numpy`` to ``None``.
    """
    return _numpy


def native_or_none():
    """The compiled ``repro._native`` module, or ``None`` when absent.

    Same pattern as :func:`numpy_or_none`: tests simulate a build
    without the extension by monkeypatching
    ``repro.analysis.backend._native_module`` to ``None``.
    """
    return _native_module


def require_numpy():
    """Return numpy or raise a :class:`RuntimeError` naming the extra.

    Called once per :class:`~repro.analysis.context.AnalysisContext`
    construction when ``backend`` is ``"numpy"`` or ``"verify"`` -- the
    failure happens eagerly, at the one place the user chose the
    backend, not deep inside an analysis.
    """
    np = numpy_or_none()
    if np is None:
        raise RuntimeError(
            'AnalysisOptions.backend="numpy" requires numpy, which is an '
            "optional dependency of this package; install it with "
            "'pip install repro[numpy]' (or choose backend=\"python\")."
        )
    return np


def require_native():
    """Return ``repro._native`` or raise an actionable :class:`RuntimeError`.

    The native backend needs two things: the compiled extension (built
    by ``pip install repro[native]`` when a C toolchain is present) and
    numpy (the shim stages plan blobs and result buffers as int64
    arrays; the extra depends on it).  Either absence fails eagerly, at
    context construction.
    """
    native = native_or_none()
    if native is None:
        raise RuntimeError(
            'AnalysisOptions.backend="native" requires the compiled '
            "repro._native extension, which is built by the optional "
            "'pip install repro[native]' extra (a C toolchain is needed "
            'at install time); without it choose backend="numpy" or '
            'backend="python".'
        )
    require_numpy()
    return native


def _always_available():
    return True


def _numpy_available():
    return numpy_or_none() is not None


def _native_available():
    return native_or_none() is not None and numpy_or_none() is not None


#: The single source of truth for ``AnalysisOptions.backend``: mode ->
#: (one-line description, availability probe, eager requirement check).
#: The CLI ``--backend`` choices, the context validation error and the
#: docs' backend ladder all derive from this mapping -- a new backend
#: appears exactly once, here.
BACKEND_REGISTRY = {
    "python": {
        "description": "pure-Python scalar oracle (always available)",
        "available": _always_available,
        "require": lambda: None,
    },
    "numpy": {
        "description": "batched lockstep array kernels (repro[numpy] extra)",
        "available": _numpy_available,
        "require": require_numpy,
    },
    "native": {
        "description": "compiled C fix-point kernels (repro[native] extra)",
        "available": _native_available,
        "require": require_native,
    },
    "verify": {
        "description": (
            "run the Python oracle plus every available accelerated "
            "backend and count divergences"
        ),
        "available": _numpy_available,
        "require": require_numpy,
    },
}

#: Legal values of ``AnalysisOptions.backend``, in registry order
#: (re-exported by :mod:`repro.analysis.holistic`).
BACKEND_MODES = tuple(BACKEND_REGISTRY)


def describe_backends() -> str:
    """One-line availability summary of every registered backend.

    Used by the context's unknown-backend error and the CLI ``--backend``
    help text, so both always list exactly the registry.
    """
    parts = []
    for name, spec in BACKEND_REGISTRY.items():
        state = "available" if spec["available"]() else "not installed"
        parts.append(f'"{name}" ({spec["description"]}; {state})')
    return ", ".join(parts)


def require_backend(backend: str):
    """Eagerly check that *backend* is usable; raise otherwise.

    ``KeyError``-free: unknown names are the caller's
    :class:`~repro.errors.ConfigurationError` (validated against
    :data:`BACKEND_MODES` first); known-but-uninstalled backends raise
    the registry's actionable :class:`RuntimeError`.
    """
    BACKEND_REGISTRY[backend]["require"]()
