"""Vectorized numpy kernel backend (``AnalysisOptions.backend``).

The holistic pipeline spends nearly all of its time in pure integer
arithmetic -- FPS/DYN busy-window fix points over precomputed prefix
sums -- executed as per-candidate Python loops.  This package lowers the
per-system invariants already computed by
:class:`~repro.analysis.context.AnalysisContext` (interferer rows,
``NodeAvailability`` gap/slack prefix sums, ``InstantTables``, DYN fill
rows) into packed int64 numpy arrays once per (schedule, frame
structure) group, then advances the busy-window fix points of a whole
candidate batch in lockstep under convergence masks
(:func:`repro.analysis.backend.kernels.run_group`).

The contract is the repo's established one: results are bit-identical
to the pure-Python oracle.  The ingredients:

* exact integer dtypes end to end (int64, never float);
* per-activity magnitude prebounds computed in unbounded Python
  arithmetic at lowering time -- any activity whose worst-case
  intermediate could leave int64 is evaluated on the Python kernels
  instead (:data:`~repro.analysis.backend.arrays.OVERFLOW_LIMIT`);
* the certified warm-start seeds and the per-instant pruning bound are
  carried over as array state and array predicates, and both are
  result-neutral by the repo's certification arguments (seeds below the
  least fixed point converge to exactly it; uncertified seeds trigger
  the same cold-replay detection as the Python path);
* oracle/debug modes (``warm_start != "certified"``,
  ``dominance="verify"``, ``dyn_fill_strategy="exact"``) fall back to
  the Python path entirely -- their whole point is exercising the
  reference semantics.

numpy is an *optional* dependency (the ``repro[numpy]`` extra).  The
library imports it lazily through :func:`numpy_or_none`, and
:func:`require_numpy` turns its absence into an actionable error at
context construction instead of a deep ImportError mid-analysis.
"""

from __future__ import annotations

#: Legal values of ``AnalysisOptions.backend`` (re-exported for callers
#: that do not want to import :mod:`repro.analysis.holistic`).
BACKEND_MODES = ("python", "numpy", "verify")

try:  # pragma: no cover - trivially one of the two branches per env
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None


def numpy_or_none():
    """The numpy module, or ``None`` when the extra is not installed.

    Kept behind a function (reading the module-level ``_numpy``) so
    tests can simulate a numpy-less environment by monkeypatching
    ``repro.analysis.backend._numpy`` to ``None``.
    """
    return _numpy


def require_numpy():
    """Return numpy or raise a :class:`RuntimeError` naming the extra.

    Called once per :class:`~repro.analysis.context.AnalysisContext`
    construction when ``backend`` is ``"numpy"`` or ``"verify"`` -- the
    failure happens eagerly, at the one place the user chose the
    backend, not deep inside an analysis.
    """
    np = numpy_or_none()
    if np is None:
        raise RuntimeError(
            'AnalysisOptions.backend="numpy" requires numpy, which is an '
            "optional dependency of this package; install it with "
            "'pip install repro[numpy]' (or choose backend=\"python\")."
        )
    return np
