"""Dispatch shim of the compiled backend (``backend="native"``).

:func:`run_group_native` is the native twin of
:func:`repro.analysis.backend.kernels.run_group`: same
:class:`~repro.analysis.backend.arrays.GroupPlan` lowering in, same
:func:`~repro.analysis.backend.kernels.assemble_results` out -- but the
fix points in between run inside the ``repro._native`` C extension,
each lane's *entire* holistic Gauss-Seidel iteration in tight scalar
loops with no per-step dispatch (see ``src/repro/_native/nativemodule.c``
for the transcription and its bit-identity argument).

The shim owns the two safety gates the C code relies on:

* **structural**: every FPS activity must be on the staircase fast path
  (``FpsActPlan.stair`` -- a non-degenerate or fully idle availability
  pattern and a positive wcet); a group containing any degenerate
  activity is delegated wholesale to the numpy kernels, whose per-lane
  Python fallbacks cover it.  The verdict is group-invariant, so it is
  cached on the plan's :class:`_NativeState`.
* **overflow**: the same per-activity magnitude prebounds as the numpy
  backend (``overflow_safe`` in unbounded Python ints against
  :data:`~repro.analysis.backend.arrays.OVERFLOW_LIMIT`), evaluated per
  batch because they depend on the lanes' caps; any unsafe activity
  delegates the whole batch to the numpy kernels.

Delegation always lands on the numpy path (``backend="native"`` implies
the numpy extra -- :func:`repro.analysis.backend.require_native` checks
both), so every group is analysed bit-identically to the Python oracle
no matter which gate fires.
"""

from __future__ import annotations

from typing import List

from repro.analysis.backend import native_or_none, numpy_or_none

#: Blob header magic ("NATIV"); bumped if the layout ever changes, so a
#: stale extension rejects new blobs instead of misreading them.
PLAN_MAGIC = 0x4E41544956


class _NativeState:
    """Parsed C plan of one group, cached on ``GroupPlan.native_state``."""

    __slots__ = ("structural_ok", "capsule")

    def __init__(self, plan, native, np):
        self.structural_ok = all(
            act.stair for act in plan.activities if act.kind == "fps"
        )
        self.capsule = (
            native.build_plan(plan_blob(plan, np).tobytes())
            if self.structural_ok
            else None
        )


def plan_blob(plan, np):
    """Serialize *plan* into the flat int64 blob ``build_plan`` parses.

    Layout (every field one int64, in order)::

        MAGIC, n_rows, n_acts, n_avs, n_fault
        w0[n_rows]
        fault_rows[n_fault]
        per availability pattern:
            n_instants, slack, period, n_gaps,
            instants[n_instants], before[n_instants],
            gap_ends[n_gaps], through[n_gaps], eval_order[n_instants]
        per activity (plan order == the Gauss-Seidel pass order):
            kind (0=dyn, 1=fps), row, own_sensitive, n_deps, deps...
            dyn:  sender_row, ct, lower_slots, frame_id, largest,
                  max_adjusted, n_hp, n_lf,
                  n_hp x (period, is_ancestor, jitter_row),
                  n_lf x (period, is_ancestor, jitter_row, adjusted)
            fps:  release, wcet, av_index, n_preds, n_int, preds...,
                  n_int x (period, wcet, is_ancestor, jitter_row)

    Only called for structurally safe groups, so every FPS activity's
    availability carries the (possibly synthetic idle) staircase tables.

    The per-activity section is **structure-invariant** (interferer
    rows, FrameIDs, transmission times; the availability references are
    by index, and the index of a node's pattern -- first occurrence in
    activity order -- is fixed by the template's activity order), so it
    is serialized once and cached on ``plan.template``; only the header,
    ``w0``, the fault rows and the availability tables are per group.
    """
    avs = []
    av_index = {}
    for act in plan.activities:
        if act.kind == "fps" and id(act.av) not in av_index:
            av_index[id(act.av)] = len(avs)
            avs.append(act.av)
    out = [
        PLAN_MAGIC,
        plan.n_rows,
        len(plan.activities),
        len(avs),
        int(plan.fault_rows.size),
    ]
    out += plan.w0.tolist()
    out += plan.fault_rows.tolist()
    for av in avs:
        out += [av.n_instants, av.slack, av.period, len(av.gap_ends)]
        out += av.instants.tolist()
        out += av.before.tolist()
        out += av.gap_ends.tolist()
        out += av.through.tolist()
        out += av.eval_order.tolist()
    acts = plan.template.native_acts
    if acts is None:
        acts = _acts_section(plan.activities, av_index)
        plan.template.native_acts = acts
    return np.asarray(out + acts, dtype=np.int64)


def _acts_section(activities, av_index):
    """The blob's per-activity section (see :func:`plan_blob`)."""
    out = []
    for act in activities:
        deps = act.dep_rows.tolist() if act.dep_rows is not None else []
        out += [
            0 if act.kind == "dyn" else 1,
            act.row,
            int(act.own_sensitive),
            len(deps),
        ]
        out += deps
        if act.kind == "dyn":
            ps = act.all_p[:, 0].tolist()
            ancs = act.all_anc[:, 0].tolist()
            jrows = act.all_jrow.tolist()
            adjs = act.lf_adj[:, 0].tolist()
            n_hp = act.n_hp
            n_lf = len(ps) - n_hp
            out += [
                act.sender_row,
                act.ct,
                act.lower_slots,
                act.frame_id,
                act.largest,
                act.max_adjusted,
                n_hp,
                n_lf,
            ]
            for i in range(n_hp):
                out += [ps[i], int(ancs[i]), jrows[i]]
            for i in range(n_lf):
                out += [
                    ps[n_hp + i],
                    int(ancs[n_hp + i]),
                    jrows[n_hp + i],
                    adjs[i],
                ]
        else:
            out += [
                act.release,
                act.wcet,
                av_index[id(act.av)],
                len(act.pred_rows),
                int(act.r_p.size),
            ]
            out += list(act.pred_rows)
            for p, c, anc, jrow in zip(
                act.r_p.tolist(),
                act.r_c.tolist(),
                act.r_anc.tolist(),
                act.r_jrow.tolist(),
            ):
                out += [p, c, int(anc), jrow]
    return out


def _batch_overflow_safe(ctx, plan, configs, cap_max, ms_len) -> bool:
    """The numpy backend's per-activity prebounds, whole-batch verdict.

    Mirrors ``_GroupRun.__init__``'s ``vec`` computation in plain Python
    ints (deliberately no numpy: the maxima are over a handful of lane
    scalars).  ``False`` delegates the batch to the numpy kernels,
    whose per-activity fallbacks handle the unsafe pieces per lane.
    """
    jitter_bound = max(cap_max, plan.static_max, plan.release_max)
    fault_k = ctx._fault_k
    n_ms_l = [c.n_minislots for c in configs]
    gd_l = [c.gd_cycle for c in configs]
    stb_l = [c.st_bus for c in configs]
    gd_max = max(abs(g) for g in gd_l)
    stb_max = max(abs(s) for s in stb_l)
    for act in plan.activities:
        if act.kind == "dyn":
            f = act.frame_id
            largest = act.largest
            lam_max = max(abs(n - largest) for n in n_ms_l)
            sigma_max = max(
                abs(g - s - (f - 1) * ms_len)
                for g, s in zip(gd_l, stb_l)
            )
            extra_max = 0
            if fault_k:
                for n in n_ms_l:
                    lam = n - largest
                    theta = lam - f + 2
                    if f + largest - 1 > n:
                        continue  # not sendable: no extra cycles
                    per_error = (
                        1
                        if act.max_adjusted <= 0
                        else 2 + act.max_adjusted // theta
                    )
                    extra = fault_k * per_error
                    if extra > extra_max:
                        extra_max = extra
            if not act.overflow_safe(
                cap_max,
                jitter_bound,
                gd_max,
                sigma_max,
                stb_max,
                lam_max,
                ms_len,
                extra_max,
            ):
                return False
        else:
            if not act.overflow_safe(cap_max, jitter_bound):
                return False
    return True


def run_group_native(ctx, plan, configs) -> List:
    """Analyse one group on the C kernels (numpy fallback when unsafe).

    Same contract as :func:`repro.analysis.backend.kernels.run_group`:
    all *configs* share *plan*'s schedule and structure keys, and the
    returned :class:`~repro.analysis.holistic.AnalysisResult` list is
    bit-identical to the per-candidate Python path.
    """
    from repro.analysis.backend.kernels import assemble_results, run_group

    np = numpy_or_none()
    native = native_or_none()
    state = plan.native_state
    if state is None:
        state = _NativeState(plan, native, np)
        plan.native_state = state
    options = ctx.options
    cap_base = ctx._cap_base
    caps_py = [
        options.cap_factor
        * (cap_base if cap_base > c.gd_cycle else c.gd_cycle)
        for c in configs
    ]
    cap_max = max(caps_py)
    ms_len = configs[0].gd_minislot  # structure-key invariant
    if not state.structural_ok or not _batch_overflow_safe(
        ctx, plan, configs, cap_max, ms_len
    ):
        return run_group(ctx, plan, configs)
    L = len(configs)
    i8 = np.int64
    caps = np.asarray(caps_py, dtype=i8)
    n_ms = np.asarray([c.n_minislots for c in configs], dtype=i8)
    gd_cycle = np.asarray([c.gd_cycle for c in configs], dtype=i8)
    st_bus = np.asarray([c.st_bus for c in configs], dtype=i8)
    # Lane-major response-time buffer: each lane's fix point works on
    # one contiguous row; the assembly reads it as (n_rows, L) via .T.
    W = np.empty((L, plan.n_rows), dtype=i8)
    conv = np.empty(L, dtype=i8)
    native.run_batch(
        state.capsule,
        caps,
        n_ms,
        gd_cycle,
        st_bus,
        ms_len,
        ctx._fault_k,
        options.max_holistic_iterations,
        W,
        conv,
    )
    arts = ctx._schedule_artifacts(configs[0])
    return assemble_results(
        ctx, plan, arts, configs, W.T, conv != 0, cap_max
    )
