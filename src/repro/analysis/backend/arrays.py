"""Once-per-group array lowering for the numpy backend.

A *group* is a set of candidate configurations sharing both the
schedule key (identical static schedule, availability patterns and
static response times) and the DYN structure key (identical FrameID
assignment and bus-speed parameters, hence identical hp/lf interference
rows and transmission times).  Everything that is invariant across such
a group -- activity indices, interferer rows as packed int64 arrays,
availability staircase tables, the reverse interference map -- is
lowered here exactly once and cached on the owning
:class:`~repro.analysis.context.AnalysisContext`; the per-lane scalars
(caps, ``lam``/``theta``/``sigma``/``gd_cycle`` of each DYN view) are
cheap and resolved per batch by
:func:`repro.analysis.backend.kernels.run_group`.

A pure-DYN sweep is one group end to end (every candidate shares the
schedule and the FrameID assignment), which is exactly the workload the
batched kernels are built for.  An ST-heavy sweep degenerates to
*singleton* groups -- a fresh group per cycle length -- so the lowering
itself becomes the hot path.  Everything in an activity plan is in fact
invariant under the **structure key alone** (interferer rows, FrameIDs,
transmission times, dependency maps: none of it reads the schedule);
only the availability staircase tables and the static response times
vary with the schedule key.  :class:`StructureTemplate` therefore
caches the whole activity lowering once per structure key (plus the
static-name order, defensively), and :class:`GroupPlan` construction
collapses to binding availability patterns and filling ``w0`` -- which
is what lets the compiled backend beat the warm Python path even on
singleton-lane sweeps.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.backend import numpy_or_none

#: Magnitude prebound of the array kernels.  Every worst-case
#: intermediate of an activity's vectorized fix point is bounded in
#: unbounded Python arithmetic before the first numpy op; any activity
#: whose bound reaches this limit (comfortably inside int64, leaving
#: headroom for one addition) is evaluated on the Python kernels
#: instead.  numpy int64 overflow wraps silently -- the prebound is what
#: makes "exact integer dtypes" a guarantee instead of a hope.
OVERFLOW_LIMIT = 1 << 62


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class AvailabilityArrays:
    """Packed staircase tables of one ``NodeAvailability`` pattern.

    ``stair`` is True for every pattern the vectorized FPS kernel
    handles: a non-degenerate pattern (some busy time, some slack) uses
    the divmod/bisect staircase over the precomputed
    ``gap_ends``/``slack_through`` prefix sums, and a fully *idle* node
    (``advance(t0, d) = t0 + d``) is lowered as the equivalent synthetic
    one-gap staircase (``before = 0``, ``slack = period``,
    ``gap_ends = through = [period]``, so the staircase collapses to
    ``window = demand`` -- exactly the Python generic path's result).
    Only fully busy nodes (zero slack, ``advance`` returns ``None``)
    keep ``stair`` False and take the per-lane Python fallback.
    """

    __slots__ = (
        "stair", "instants", "before", "slack", "period", "gap_ends",
        "through", "eval_order", "n_instants", "before_max",
    )

    def __init__(self, availability):
        np = numpy_or_none()
        tables = availability.instant_advance_tables(False)
        self.slack = tables.slack_per_period
        self.period = tables.period
        self.n_instants = len(tables.instants)
        self.stair = self.slack > 0
        self.instants = np.asarray(tables.instants, dtype=np.int64)
        self.eval_order = np.asarray(tables.eval_order, dtype=np.int64)
        if not self.stair:
            self.before = None
            self.gap_ends = None
            self.through = None
            self.before_max = 0
        elif tables.gap_ends is not None:
            self.before = np.asarray(tables.slack_before, dtype=np.int64)
            self.gap_ends = np.asarray(tables.gap_ends, dtype=np.int64)
            self.through = np.asarray(tables.slack_through, dtype=np.int64)
            self.before_max = max(tables.slack_before)
        else:  # fully idle: the synthetic identity staircase
            self.before = np.zeros(self.n_instants, dtype=np.int64)
            self.gap_ends = np.asarray([self.period], dtype=np.int64)
            self.through = np.asarray([self.period], dtype=np.int64)
            self.before_max = 0


def availability_arrays(availability) -> AvailabilityArrays:
    """Per-pattern arrays, cached on the availability instance.

    Availability objects live in the context's per-static-segment
    schedule cache, so the lowering rides the same lifetime: a pure-DYN
    sweep lowers each node's pattern once for the whole sweep.
    """
    arrays = getattr(availability, "_backend_arrays", None)
    if arrays is None:
        arrays = AvailabilityArrays(availability)
        availability._backend_arrays = arrays
    return arrays


class DynActPlan:
    """Group-invariant lowering of one DYN message's Eq. (3) fix point."""

    __slots__ = (
        "name", "kind", "pos", "row", "sender_row", "own_sensitive", "ct",
        "lower_slots", "dyn_index", "dep_rows", "frame_id", "largest",
        "n_hp", "all_p", "all_anc", "all_jrow", "lf_adj", "weights",
        "all_pm1", "p_max", "has_anc", "hp_rows_py", "lf_rows_py",
        "max_adjusted",
    )

    def __init__(self, np, name, pos, row, sender_row, view, name_idx,
                 frame_id, largest):
        self.name = name
        self.kind = "dyn"
        self.pos = pos
        self.row = row
        self.sender_row = sender_row
        self.own_sensitive = view.own_sensitive
        self.ct = view.ct
        self.lower_slots = view.lower_slots
        self.dyn_index = pos  # DYN acts come first, in dyn_messages order
        self.dep_rows = None
        # The message's FrameID and its sender node's largest DYN frame:
        # with these two group-invariant ints the per-lane view scalars
        # (``lam``/``theta``/``sigma``/``sendable``) are pure arithmetic
        # in the lane's ``n_minislots``/``gd_cycle``, so the batched
        # kernel never has to materialise per-lane ``_DynView`` objects.
        self.frame_id = frame_id
        self.largest = largest
        hp = view.hp_info
        # Under the "bound" fill strategy, lf rows with adjusted size <= 0
        # contribute to neither ``lf_total`` nor ``lf_useful`` -- they are
        # dropped at lowering, which is exact (the Python loop adds
        # nothing for them either).  The surviving lf rows are packed
        # *behind* the hp rows into one combined matrix, so the kernel
        # gathers and ceils once per round and splits at ``n_hp``.
        lf = [r for r in view.lf_info if r[3] > 0]
        rows = list(hp) + lf
        self.n_hp = len(hp)
        # The k-error per-error cycle cost depends on the largest lf
        # adjusted size (``_dyn_views``: max over *all* lf rows, default
        # 0 -- but ``per_error`` is 1 whenever that max is <= 0, so the
        # exact Python value is preserved even though rows with
        # adjusted <= 0 are dropped from the packed matrices below).
        self.max_adjusted = max((r[3] for r in view.lf_info), default=0)
        self.all_p = np.asarray(
            [r[1] for r in rows], dtype=np.int64
        ).reshape(-1, 1)
        self.all_anc = np.asarray(
            [r[2] for r in rows], dtype=bool
        ).reshape(-1, 1)
        self.all_jrow = np.asarray(
            [name_idx[r[0]] if not r[2] else 0 for r in rows],
            dtype=np.int64,
        )
        self.lf_adj = np.asarray(
            [r[3] for r in lf], dtype=np.int64
        ).reshape(-1, 1)
        # One (3, R) weight matrix turns the three per-round column sums
        # (hp activation count, lf adjusted total, lf useful count) into
        # a single integer matmul against the counts matrix.
        nh, nf = len(hp), len(lf)
        weights = np.zeros((3, nh + nf), dtype=np.int64)
        weights[0, :nh] = 1
        weights[1, nh:] = [r[3] for r in lf]
        weights[2, nh:] = 1
        self.weights = weights
        # Ceil-division fusion: ceil(s / p) == (s + p - 1) // p for
        # p > 0, so presumming ``p - 1`` into the frozen jitter matrix
        # saves two array ops per fix-point round.  ``p_max`` feeds the
        # overflow guard (the fused numerator grows by at most p - 1).
        self.all_pm1 = self.all_p - 1
        self.p_max = int(self.all_p.max()) if rows else 0
        self.has_anc = bool(any(r[2] for r in rows))
        self.hp_rows_py = tuple((int(r[1]), bool(r[2])) for r in hp)
        self.lf_rows_py = tuple(
            (int(r[1]), bool(r[2]), int(r[3])) for r in lf
        )

    def overflow_safe(self, cap_max, jitter_bound, gd_max, sigma_max,
                      st_bus_max, lam_max, ms_len, extra_max=0) -> bool:
        """Prebound every int64 intermediate in unbounded Python ints.

        The window ``t`` never exceeds the cap (capped trajectories
        return before advancing) and every jitter is bounded by
        ``jitter_bound``, so per-row activation counts are bounded by
        ``ceil((cap + J) / period)``; the rest follows Eq. (3) termwise.
        ``extra_max`` bounds the constant k-error ``extra_cycles`` term
        charged per round (0 without a fault hypothesis).
        """
        s_max = cap_max + jitter_bound
        hp_max = sum(_ceil_div(s_max, p) for p, _ in self.hp_rows_py)
        lf_max = sum(
            adj * _ceil_div(s_max, p) for p, _, adj in self.lf_rows_py
        )
        w_max = (
            sigma_max
            + (hp_max + lf_max + extra_max) * gd_max
            + st_bus_max
            + (self.lower_slots + lf_max + lam_max) * ms_len
        )
        return (
            s_max + self.p_max < OVERFLOW_LIMIT
            and lf_max < OVERFLOW_LIMIT
            and w_max < OVERFLOW_LIMIT
        )


class FpsActPlan:
    """Structure-invariant lowering of one FPS task's busy-window
    maximisation.  Template instances (built once per structure key)
    leave the schedule-dependent slots unset; :meth:`bind` attaches a
    concrete availability pattern for one group."""

    __slots__ = (
        "name", "kind", "pos", "row", "pred_rows", "release", "wcet",
        "own_sensitive", "plan", "node", "availability", "av", "stair",
        "r_p", "r_c", "r_anc", "r_jrow", "r_p_col", "r_pm1_col", "p_max",
        "has_anc", "rows_py", "dep_rows",
    )

    #: Slots copied verbatim by :meth:`bind` (everything except the
    #: availability-dependent triple set by the bind itself).
    _SHARED_SLOTS = (
        "name", "kind", "pos", "row", "pred_rows", "release", "wcet",
        "own_sensitive", "plan", "node",
        "r_p", "r_c", "r_anc", "r_jrow", "r_p_col", "r_pm1_col", "p_max",
        "has_anc", "rows_py", "dep_rows",
    )

    def __init__(self, np, name, pos, row, pred_rows, plan, node, name_idx):
        self.name = name
        self.kind = "fps"
        self.pos = pos
        self.row = row
        self.pred_rows = pred_rows
        self.release = plan.release
        self.wcet = plan.wcet
        self.own_sensitive = plan.own_sensitive
        self.plan = plan
        self.node = node
        info = plan.interferers
        self.r_p = np.asarray([r[1] for r in info], dtype=np.int64)
        self.r_c = np.asarray([r[3] for r in info], dtype=np.int64)
        self.r_anc = np.asarray([r[2] for r in info], dtype=bool)
        self.r_jrow = np.asarray(
            [name_idx[r[0]] if not r[2] else 0 for r in info],
            dtype=np.int64,
        )
        # Column forms plus the ceil-division fusion margin (see
        # :class:`DynActPlan`): ceil(s / p) == (s + p - 1) // p.
        self.r_p_col = self.r_p[:, None]
        self.r_pm1_col = self.r_p_col - 1
        self.p_max = int(self.r_p.max()) if len(info) else 0
        self.has_anc = bool(any(r[2] for r in info))
        self.rows_py = tuple((int(r[1]), int(r[3])) for r in info)
        self.dep_rows = None

    def bind(self, availability) -> "FpsActPlan":
        """A shallow copy bound to one group's availability pattern.

        The packed interferer arrays are shared (never mutated at run
        time); only the availability triple is per group.  The
        vectorized staircase kernel mirrors the Python fast path, whose
        guard is ``gap_ends is not None and slack > 0 and wcet > 0``;
        everything else runs the per-lane Python fallback.
        """
        bound = object.__new__(FpsActPlan)
        for slot in self._SHARED_SLOTS:
            setattr(bound, slot, getattr(self, slot))
        bound.availability = availability
        bound.av = availability_arrays(availability)
        bound.stair = bound.av.stair and bound.wcet > 0
        return bound

    def overflow_safe(self, cap_max, jitter_bound) -> bool:
        """Prebound the staircase and demand arithmetic in Python ints."""
        s_max = cap_max + jitter_bound
        demand_max = self.wcet + sum(
            c * _ceil_div(s_max, p) for p, c in self.rows_py
        )
        av = self.av
        if not self.stair:
            return True  # Python fallback anyway
        stair_in = av.before_max + demand_max
        window_max = (stair_in // av.slack + 1) * av.period + av.period
        return (
            s_max + self.p_max < OVERFLOW_LIMIT
            and demand_max < OVERFLOW_LIMIT
            and window_max < OVERFLOW_LIMIT
        )


class StructureTemplate:
    """The structure-key-invariant share of a :class:`GroupPlan`.

    Everything lowered here reads only tier-(a)/(c) invariants (system
    structure, FrameID assignment, bus-speed parameters) plus the
    static-name *order* (part of the cache key, defensively) -- never
    the schedule itself.  Cached once per structure key on the context
    (``_structure_template``), so an ST-heavy sweep's singleton groups
    pay the activity lowering exactly once instead of once per cycle
    length.
    """

    __slots__ = (
        "names", "name_idx", "n_rows", "activities", "wcrt_names",
        "wcrt_rows", "cost_rows", "deadlines", "deadline_abs_max",
        "fault_rows", "release_max", "native_acts",
    )

    def __init__(self, ctx, config):
        np = numpy_or_none()
        arts = ctx._schedule_artifacts(config)
        views = ctx._dyn_views(config)

        # --- activity/name index ------------------------------------
        # Rows: static activities first (read-only), then DYN messages
        # (view order), then FPS tasks (node order) -- the Gauss-Seidel
        # evaluation order of the Python fix point.  Any referenced name
        # outside those sets (defensive: senders/predecessors are always
        # covered) gets a zero row, mirroring ``wcrt.get(name, 0)``.
        names: List[str] = list(arts.static_wcrt)
        name_idx: Dict[str, int] = {n: i for i, n in enumerate(names)}

        def _row(name: str) -> int:
            i = name_idx.get(name)
            if i is None:
                i = len(names)
                names.append(name)
                name_idx[name] = i
            return i

        fps_items = [
            (plan, node)
            for node in ctx.system.nodes
            for plan in ctx.fps_plans[node]
        ]
        for view in views:
            _row(view.name)
        for plan, _ in fps_items:
            _row(plan.name)
        for view in views:
            _row(ctx.sender_task[view.name])
        for plan, _ in fps_items:
            for pred in plan.predecessors:
                _row(pred)

        # --- activity plans -----------------------------------------
        structure = ctx._dyn_structure(config)
        _, _, largest_of_sender = ctx._ct_tables(config)
        activities = []
        for view in views:
            activities.append(
                DynActPlan(
                    np,
                    view.name,
                    len(activities),
                    name_idx[view.name],
                    name_idx[ctx.sender_task[view.name]],
                    view,
                    name_idx,
                    structure[view.name][0],
                    largest_of_sender[view.name],
                )
            )
        for plan, node in fps_items:
            activities.append(
                FpsActPlan(
                    np,
                    plan.name,
                    len(activities),
                    name_idx[plan.name],
                    tuple(name_idx[p] for p in plan.predecessors),
                    plan,
                    node,
                    name_idx,
                )
            )
        act_pos = {a.name: a.pos for a in activities}
        for name, deps in ctx._dependents(config).items():
            pos = act_pos.get(name)
            if pos is not None:
                activities[pos].dep_rows = np.asarray(
                    [act_pos[d] for d in deps], dtype=np.int64
                )

        self.names = names
        self.name_idx = name_idx
        self.n_rows = len(names)
        self.activities = activities
        # wcrt assembly order: the Python fix point's exact dict
        # insertion order (static entries, then first-pass activity
        # writes), so verify-mode item-tuple signatures match.
        self.wcrt_names = list(arts.static_wcrt) + [
            a.name for a in activities
        ]
        self.wcrt_rows = np.asarray(
            [name_idx[n] for n in self.wcrt_names], dtype=np.int64
        )
        # Cost lowering (Eq. (5)): rows and deadlines in the exact
        # iteration order of ``cost_function``.  A graph activity with
        # no response-time row would raise in the Python path; leave
        # ``cost_rows`` unset so the kernel falls back to it.
        cost_names = [
            name
            for g in ctx.app.graphs
            for name in g.topological_order()
        ]
        if all(n in name_idx for n in cost_names):
            self.cost_rows = np.asarray(
                [name_idx[n] for n in cost_names], dtype=np.int64
            )
            deadlines = [ctx.app.deadline_of(n) for n in cost_names]
            self.deadlines = np.asarray(deadlines, dtype=np.int64)
            self.deadline_abs_max = max(
                (abs(d) for d in deadlines), default=0
            )
        else:
            self.cost_rows = None
            self.deadlines = None
            self.deadline_abs_max = 0
        self.release_max = max(
            (a.release for a in activities if a.kind == "fps"), default=0
        )
        # Static rows the k-error hypothesis inflates (``_fix_point``'s
        # ``_fault_static_names & wcrt`` intersection as row indices --
        # the bumps are independent per row, so iteration order is
        # irrelevant).  Lowered unconditionally: the rows are a group
        # invariant whether or not the batch carries a hypothesis.
        self.fault_rows = np.asarray(
            [
                name_idx[n]
                for n in arts.static_wcrt
                if n in ctx._fault_static_names
            ],
            dtype=np.int64,
        )
        #: Lazily built per-activity section of the compiled backend's
        #: plan blob (structure-invariant, see
        #: ``repro.analysis.backend.native.plan_blob``); ``None`` until
        #: the first ``backend="native"`` group serializes it.
        self.native_acts = None


class GroupPlan:
    """All group-invariant state of one batched fix point.

    Built once per (schedule key, DYN structure key) and cached on the
    context.  Construction is deliberately thin: the activity lowering
    comes from the shared :class:`StructureTemplate` (FPS activities
    bound to this group's availability patterns, DYN activities shared
    outright -- they carry no schedule-dependent state); only ``w0``
    and the availability bindings are built here.
    """

    __slots__ = (
        "template", "names", "name_idx", "w0", "static_wcrt",
        "static_max", "release_max", "activities", "n_rows",
        "availability", "wcrt_names", "wcrt_rows", "cost_rows",
        "deadlines", "deadline_abs_max", "fault_rows", "native_state",
    )

    def __init__(self, ctx, config):
        np = numpy_or_none()
        arts = ctx._schedule_artifacts(config)
        template = ctx._structure_template(config, tuple(arts.static_wcrt))
        self.template = template
        self.names = template.names
        self.name_idx = template.name_idx
        self.n_rows = template.n_rows
        self.wcrt_names = template.wcrt_names
        self.wcrt_rows = template.wcrt_rows
        self.cost_rows = template.cost_rows
        self.deadlines = template.deadlines
        self.deadline_abs_max = template.deadline_abs_max
        self.fault_rows = template.fault_rows
        self.release_max = template.release_max
        self.static_wcrt = arts.static_wcrt
        self.availability = arts.availability
        self.activities = [
            act if act.kind == "dyn" else act.bind(arts.availability[act.node])
            for act in template.activities
        ]
        w0 = np.zeros(self.n_rows, dtype=np.int64)
        name_idx = template.name_idx
        for name, value in arts.static_wcrt.items():
            w0[name_idx[name]] = value
        self.w0 = w0
        self.static_max = max(arts.static_wcrt.values(), default=0)
        #: Lazily built state of the compiled backend (the parsed plan
        #: capsule plus its structural safety flags); ``None`` until the
        #: first ``backend="native"`` batch touches this group.
        self.native_state = None
