"""Real-life case study: the vehicle cruise controller of Section 7."""

from repro.casestudy.cruise_control import NODES, cruise_controller, shape_summary

__all__ = ["NODES", "cruise_controller", "shape_summary"]
