"""Vehicle cruise-controller case study (Section 7 of the paper).

The paper's real-life example: 54 tasks and 26 messages grouped in 4
task graphs (two time-triggered, two event-triggered) mapped over 5
nodes.  The original task set is not published, so this module
reconstructs a cruise controller with the same shape: the node names
and functional decomposition follow the CC example used throughout the
authors' earlier papers (ABS, transmission, engine, throttle and
central body electronics modules).

All times are macroticks (1 MT = 1 us): control loops run at 20/40 ms,
the event-driven graphs at 80/160 ms.  Deadlines are tighter than the
periods (typical for control loops); they are calibrated so the system
exhibits the paper's reported behaviour: the minimal BBC configuration
misses deadlines while the OBC heuristics find schedulable bus setups.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task

#: The five electronic control units of the case study.
NODES = ("CEM", "ABS", "ETM", "ECM", "TCM")

# Task specs: (name, node, wcet); edge specs: (src, dst, size-or-None).
# A size means the edge crosses nodes and becomes a message of that many
# bytes; None means a same-node precedence edge.

_SPEED_TASKS = [
    # 16 SCS tasks, 40 ms period: the outer cruise control loop.
    ("sc_wheel_fl", "ABS", 420),
    ("sc_wheel_fr", "ABS", 420),
    ("sc_wheel_rl", "ABS", 380),
    ("sc_wheel_rr", "ABS", 380),
    ("sc_speed_fusion", "ABS", 900),
    ("sc_target_speed", "CEM", 520),
    ("sc_speed_error", "ECM", 640),
    ("sc_pid_control", "ECM", 1400),
    ("sc_torque_limit", "ECM", 700),
    ("sc_gear_state", "TCM", 560),
    ("sc_gear_advice", "TCM", 840),
    ("sc_throttle_ref", "ETM", 620),
    ("sc_throttle_act", "ETM", 980),
    ("sc_brake_check", "ABS", 460),
    ("sc_display_speed", "CEM", 380),
    ("sc_log_state", "CEM", 300),
]
_SPEED_EDGES = [
    ("sc_wheel_fl", "sc_speed_fusion", None),
    ("sc_wheel_fr", "sc_speed_fusion", None),
    ("sc_wheel_rl", "sc_speed_fusion", None),
    ("sc_wheel_rr", "sc_speed_fusion", None),
    ("sc_speed_fusion", "sc_speed_error", 24),  # ABS -> ECM
    ("sc_target_speed", "sc_speed_error", 16),  # CEM -> ECM
    ("sc_speed_error", "sc_pid_control", None),
    ("sc_pid_control", "sc_torque_limit", None),
    ("sc_torque_limit", "sc_gear_advice", 20),  # ECM -> TCM
    ("sc_gear_state", "sc_gear_advice", None),
    ("sc_torque_limit", "sc_throttle_ref", 20),  # ECM -> ETM
    ("sc_throttle_ref", "sc_throttle_act", None),
    ("sc_speed_fusion", "sc_brake_check", None),
    ("sc_speed_fusion", "sc_display_speed", 16),  # ABS -> CEM
    ("sc_display_speed", "sc_log_state", None),
    ("sc_gear_advice", "sc_log_state", 12),  # TCM -> CEM
    ("sc_throttle_act", "sc_log_state", 8),  # ETM -> CEM
    ("sc_pid_control", "sc_display_speed", 8),  # ECM -> CEM
]

_THROTTLE_TASKS = [
    # 14 SCS tasks, 20 ms period: the inner throttle/engine loop.
    ("th_pedal_raw", "ETM", 260),
    ("th_pedal_filter", "ETM", 420),
    ("th_plausibility", "ETM", 380),
    ("th_engine_rpm", "ECM", 300),
    ("th_load_estim", "ECM", 520),
    ("th_fuel_calc", "ECM", 680),
    ("th_ignition_calc", "ECM", 560),
    ("th_throttle_pos", "ETM", 340),
    ("th_motor_drive", "ETM", 480),
    ("th_knock_sensor", "ECM", 280),
    ("th_lambda_sensor", "ECM", 260),
    ("th_mixture_adapt", "ECM", 440),
    ("th_idle_control", "ECM", 380),
    ("th_rpm_display", "CEM", 220),
]
_THROTTLE_EDGES = [
    ("th_pedal_raw", "th_pedal_filter", None),
    ("th_pedal_filter", "th_plausibility", None),
    ("th_plausibility", "th_load_estim", 12),  # ETM -> ECM
    ("th_engine_rpm", "th_load_estim", None),
    ("th_load_estim", "th_fuel_calc", None),
    ("th_load_estim", "th_ignition_calc", None),
    ("th_fuel_calc", "th_throttle_pos", 12),  # ECM -> ETM
    ("th_throttle_pos", "th_motor_drive", None),
    ("th_knock_sensor", "th_ignition_calc", None),
    ("th_lambda_sensor", "th_mixture_adapt", None),
    ("th_mixture_adapt", "th_idle_control", None),
    ("th_engine_rpm", "th_rpm_display", 8),  # ECM -> CEM
    ("th_ignition_calc", "th_motor_drive", 8),  # ECM -> ETM
    ("th_idle_control", "th_throttle_pos", 8),  # ECM -> ETM
    ("th_pedal_filter", "th_fuel_calc", 8),  # ETM -> ECM (feed-forward)
]

_DRIVER_TASKS = [
    # 12 FPS tasks, 80 ms period: driver interface and mode logic.
    ("dr_buttons", "CEM", 300),
    ("dr_debounce", "CEM", 260),
    ("dr_mode_logic", "CEM", 900),
    ("dr_resume_speed", "CEM", 340),
    ("dr_brake_pedal", "ABS", 280),
    ("dr_clutch_pedal", "TCM", 260),
    ("dr_disengage", "ECM", 520),
    ("dr_lamp_control", "CEM", 240),
    ("dr_acoustic", "CEM", 220),
    ("dr_stalk_lever", "CEM", 300),
    ("dr_speed_adjust", "ECM", 460),
    ("dr_state_report", "CEM", 280),
]
_DRIVER_EDGES = [
    ("dr_buttons", "dr_debounce", None),
    ("dr_stalk_lever", "dr_debounce", None),
    ("dr_debounce", "dr_mode_logic", None),
    ("dr_brake_pedal", "dr_mode_logic", 8),  # ABS -> CEM
    ("dr_clutch_pedal", "dr_mode_logic", 8),  # TCM -> CEM
    ("dr_mode_logic", "dr_resume_speed", None),
    ("dr_mode_logic", "dr_disengage", 12),  # CEM -> ECM
    ("dr_mode_logic", "dr_speed_adjust", 12),  # CEM -> ECM
    ("dr_mode_logic", "dr_lamp_control", None),
    ("dr_lamp_control", "dr_acoustic", None),
    ("dr_disengage", "dr_state_report", 8),  # ECM -> CEM
    ("dr_resume_speed", "dr_speed_adjust", 8),  # CEM -> ECM
    ("dr_speed_adjust", "dr_state_report", 8),  # ECM -> CEM
]

_DIAG_TASKS = [
    # 12 FPS tasks, 160 ms period: diagnostics and logging.
    ("dg_abs_monitor", "ABS", 600),
    ("dg_etm_monitor", "ETM", 600),
    ("dg_ecm_monitor", "ECM", 640),
    ("dg_tcm_monitor", "TCM", 560),
    ("dg_collect", "CEM", 1100),
    ("dg_classify", "CEM", 900),
    ("dg_store_fault", "CEM", 520),
    ("dg_battery_check", "CEM", 380),
    ("dg_bus_stats", "CEM", 420),
    ("dg_odometer", "TCM", 300),
    ("dg_service_calc", "CEM", 340),
    ("dg_report_gen", "CEM", 760),
]
_DIAG_EDGES = [
    ("dg_abs_monitor", "dg_collect", 16),  # ABS -> CEM
    ("dg_etm_monitor", "dg_collect", 16),  # ETM -> CEM
    ("dg_ecm_monitor", "dg_collect", 16),  # ECM -> CEM
    ("dg_tcm_monitor", "dg_collect", 16),  # TCM -> CEM
    ("dg_collect", "dg_classify", None),
    ("dg_classify", "dg_store_fault", None),
    ("dg_battery_check", "dg_classify", None),
    ("dg_bus_stats", "dg_classify", None),
    ("dg_odometer", "dg_service_calc", 8),  # TCM -> CEM
    ("dg_service_calc", "dg_report_gen", None),
    ("dg_store_fault", "dg_report_gen", None),
]


def _build_graph(
    name: str,
    period: int,
    deadline: int,
    task_specs: List[Tuple[str, str, int]],
    edge_specs: List[Tuple[str, str, object]],
    policy: SchedulingPolicy,
) -> TaskGraph:
    kind = MessageKind.ST if policy is SchedulingPolicy.SCS else MessageKind.DYN
    node_of = {n: node for n, node, _ in task_specs}
    tasks = tuple(
        Task(name=n, wcet=w, node=node, policy=policy, priority=i)
        for i, (n, node, w) in enumerate(task_specs)
    )
    messages: List[Message] = []
    precedences: List[Tuple[str, str]] = []
    for src, dst, size in edge_specs:
        if size is None:
            precedences.append((src, dst))
            if node_of[src] != node_of[dst]:
                raise AssertionError(
                    f"case-study edge {src}->{dst} crosses nodes but has no size"
                )
        else:
            messages.append(
                Message(
                    name=f"msg_{src}__{dst}",
                    size=size,
                    sender=src,
                    receivers=(dst,),
                    kind=kind,
                    priority=len(messages),
                )
            )
    return TaskGraph(
        name=name,
        period=period,
        deadline=deadline,
        tasks=tasks,
        messages=tuple(messages),
        precedences=tuple(precedences),
    )


def cruise_controller() -> System:
    """The 54-task / 26-message / 4-graph / 5-node case study system."""
    graphs = (
        _build_graph(
            "speed_control",
            period=40_000,
            deadline=11_000,
            task_specs=_SPEED_TASKS,
            edge_specs=_SPEED_EDGES,
            policy=SchedulingPolicy.SCS,
        ),
        _build_graph(
            "throttle_control",
            period=20_000,
            deadline=7_000,
            task_specs=_THROTTLE_TASKS,
            edge_specs=_THROTTLE_EDGES,
            policy=SchedulingPolicy.SCS,
        ),
        _build_graph(
            "driver_interface",
            period=80_000,
            deadline=26_000,
            task_specs=_DRIVER_TASKS,
            edge_specs=_DRIVER_EDGES,
            policy=SchedulingPolicy.FPS,
        ),
        _build_graph(
            "diagnostics",
            period=160_000,
            deadline=80_000,
            task_specs=_DIAG_TASKS,
            edge_specs=_DIAG_EDGES,
            policy=SchedulingPolicy.FPS,
        ),
    )
    system = System(NODES, Application("cruise_controller", graphs))
    # Re-assign unique per-node priorities (rate monotonic), as the
    # synthetic generator does; avoids tie pessimism in the analysis.
    from repro.synth.taskgraph_gen import unique_rate_monotonic_priorities

    graphs = tuple(unique_rate_monotonic_priorities(system))
    return System(NODES, Application("cruise_controller", graphs))


def shape_summary(system: System) -> Dict[str, int]:
    """Counts used by tests to pin the paper's published shape."""
    app = system.application
    return {
        "nodes": len(system.nodes),
        "graphs": len(app.graphs),
        "tasks": sum(1 for _ in app.tasks()),
        "messages": sum(1 for _ in app.messages()),
        "tt_graphs": sum(
            1 for g in app.graphs if all(t.is_scs for t in g.tasks)
        ),
        "et_graphs": sum(
            1 for g in app.graphs if all(t.is_fps for t in g.tasks)
        ),
    }
