"""Deterministic channel fault models for the FlexRay simulator.

A fault model describes *when transmissions are corrupted on the bus*.
Three models are provided:

* :class:`IidFaults` -- every transmission attempt is corrupted
  independently with a fixed probability;
* :class:`GilbertElliottFaults` -- the classic bursty two-state channel:
  a Markov chain alternates between a *good* and a *bad* state, each
  with its own corruption rate;
* :class:`BlackoutFaults` -- explicit time windows during which every
  transmission is lost (e.g. an EMI burst of known duration).

Models are *resolved once per run* into a :class:`FaultPlan` (see
:func:`resolve_faults`): the Gilbert--Elliott state walk is rolled out
into explicit elevated-rate windows up front, so the per-transmission
corruption decision is a pure function of ``(seed, activity, instance,
attempt)``.  Two consequences the test-suite relies on:

1. **Reproducibility** -- the same seed gives the same corrupted
   transmissions regardless of simulation event order, trace recording,
   or how many attempts other frames make.
2. **Zero-fault identity** -- a plan with rate 0 and no windows is
   :attr:`FaultPlan.active` == False and the simulator takes exactly
   the fault-free code paths, byte-identical to a run without faults.

Corruption decisions hash with :mod:`hashlib` (BLAKE2b), never the
built-in ``hash`` (which is salted per process by ``PYTHONHASHSEED``
and would break cross-run reproducibility).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.errors import ModelError

__all__ = [
    "BlackoutFaults",
    "FaultModel",
    "FaultPlan",
    "GilbertElliottFaults",
    "IidFaults",
    "NO_FAULTS",
    "resolve_faults",
]

#: 2**64 as a float: maps a 64-bit digest to a uniform draw in [0, 1).
_DRAW_SCALE = float(2**64)


def _uniform_draw(seed: int, name: str, instance: int, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one transmission attempt."""
    key = f"{seed}|{name}|{instance}|{attempt}".encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / _DRAW_SCALE


def _check_rate(label: str, rate: float) -> None:
    if not (0.0 <= rate <= 1.0):
        raise ModelError(f"{label}={rate!r} must be a probability in [0, 1]")


def _check_probability(label: str, p: float) -> None:
    if not (0.0 < p <= 1.0):
        raise ModelError(f"{label}={p!r} must be a probability in (0, 1]")


def _normalise_windows(windows: Iterable[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
    """Sorted, merged ``[start, end)`` windows; rejects malformed ones."""
    cleaned = []
    for window in windows:
        start, end = window
        if end <= start:
            raise ModelError(f"fault window {window!r} must satisfy start < end")
        cleaned.append((int(start), int(end)))
    cleaned.sort()
    merged: list = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


def _in_windows(windows: Tuple[Tuple[int, int], ...], time: int) -> bool:
    for start, end in windows:
        if start <= time < end:
            return True
        if time < start:
            return False
    return False


@dataclass(frozen=True)
class FaultPlan:
    """A fault model resolved for one simulation run.

    The plan is a flat description: a base corruption ``rate``, optional
    ``burst_windows`` during which ``burst_rate`` applies instead (if
    higher), and ``blackouts`` during which *every* transmission is
    corrupted.  :meth:`corrupts` is the single decision point the
    simulator consults per transmission attempt.
    """

    seed: int = 0
    rate: float = 0.0
    burst_windows: Tuple[Tuple[int, int], ...] = ()
    burst_rate: float = 0.0
    blackouts: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)
        _check_rate("burst_rate", self.burst_rate)
        object.__setattr__(
            self, "burst_windows", _normalise_windows(self.burst_windows)
        )
        object.__setattr__(self, "blackouts", _normalise_windows(self.blackouts))

    @property
    def active(self) -> bool:
        """True when this plan can corrupt at least one transmission."""
        return bool(
            self.rate > 0.0
            or (self.burst_rate > 0.0 and self.burst_windows)
            or self.blackouts
        )

    def rate_at(self, time: int) -> float:
        """The effective corruption probability at bus time *time*."""
        if _in_windows(self.blackouts, time):
            return 1.0
        if self.burst_rate > self.rate and _in_windows(self.burst_windows, time):
            return self.burst_rate
        return self.rate

    def corrupts(self, name: str, instance: int, attempt: int, time: int) -> bool:
        """Whether attempt *attempt* of ``(name, instance)`` at *time* fails.

        Pure and deterministic: the decision depends only on the plan
        and the arguments, never on process state or call order.
        """
        rate = self.rate_at(time)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return _uniform_draw(self.seed, name, instance, attempt) < rate


#: The trivial plan: no transmission is ever corrupted.
NO_FAULTS = FaultPlan()


class FaultModel:
    """Base class of seeded channel fault models.

    Subclasses implement :meth:`resolve`, turning model parameters into
    a concrete :class:`FaultPlan` for one run's time horizon.
    """

    def resolve(self, max_time: int, cycle_length: int) -> FaultPlan:
        raise NotImplementedError


@dataclass(frozen=True)
class IidFaults(FaultModel):
    """Independent per-transmission corruption with probability ``rate``."""

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)

    def resolve(self, max_time: int, cycle_length: int) -> FaultPlan:
        return FaultPlan(seed=self.seed, rate=self.rate)


@dataclass(frozen=True)
class GilbertElliottFaults(FaultModel):
    """Bursty two-state (good/bad) Gilbert--Elliott channel.

    The channel state advances once per bus cycle: from *good* it turns
    *bad* with probability ``good_to_bad``, from *bad* it recovers with
    probability ``bad_to_good``.  Transmissions are corrupted with
    ``good_rate`` (usually 0) in the good state and ``bad_rate`` in the
    bad state.  :meth:`resolve` walks the chain once over the run's
    horizon with ``random.Random(seed)`` and freezes the bad intervals
    into the plan's burst windows.
    """

    good_to_bad: float
    bad_to_good: float
    bad_rate: float = 1.0
    good_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability("good_to_bad", self.good_to_bad)
        _check_probability("bad_to_good", self.bad_to_good)
        _check_rate("bad_rate", self.bad_rate)
        _check_rate("good_rate", self.good_rate)

    def resolve(self, max_time: int, cycle_length: int) -> FaultPlan:
        if cycle_length <= 0:
            raise ModelError(
                f"cycle_length={cycle_length} must be positive to resolve "
                "a Gilbert-Elliott fault model"
            )
        rng = random.Random(self.seed)
        windows = []
        bad = False
        bad_since = 0
        time = 0
        while time <= max_time:
            if bad:
                if rng.random() < self.bad_to_good:
                    windows.append((bad_since, time))
                    bad = False
            elif rng.random() < self.good_to_bad:
                bad = True
                bad_since = time
            time += cycle_length
        if bad:
            windows.append((bad_since, time))
        return FaultPlan(
            seed=self.seed,
            rate=self.good_rate,
            burst_windows=tuple(windows),
            burst_rate=self.bad_rate,
        )


@dataclass(frozen=True)
class BlackoutFaults(FaultModel):
    """Explicit ``[start, end)`` windows during which the channel is dead."""

    windows: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "windows", _normalise_windows(tuple(self.windows))
        )

    def resolve(self, max_time: int, cycle_length: int) -> FaultPlan:
        return FaultPlan(blackouts=self.windows)


#: What the simulator accepts as its ``faults`` option.
FaultSpec = Union[FaultModel, FaultPlan, None]


def resolve_faults(
    spec: FaultSpec, max_time: int, cycle_length: int
) -> FaultPlan:
    """Resolve a fault model (or pass a plan through) for one run.

    ``None`` resolves to :data:`NO_FAULTS`; a :class:`FaultPlan` is
    returned unchanged (it is already resolved); a :class:`FaultModel`
    is resolved against the run's horizon.
    """
    if spec is None:
        return NO_FAULTS
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, FaultModel):
        return spec.resolve(max_time, cycle_length)
    raise ModelError(
        f"faults must be a FaultModel, a FaultPlan, or None; got {spec!r}"
    )
