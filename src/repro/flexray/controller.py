"""Communication-controller send buffers (the CHI of Section 2).

Each node's controller-host interface holds, per dynamic slot the node
owns, a priority-ordered queue of frames the CPU has produced.  At the
start of a dynamic slot the controller transmits the highest-priority
frame queued *before* the slot began -- provided the minislot counter
has not passed the node's ``pLatestTx``.

The simulator delegates all CHI behaviour to this class; it is also
usable standalone for protocol-level unit tests.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.config import FlexRayConfig
from repro.model.message import Message
from repro.model.system import System


class ChiQueues:
    """Dynamic-segment send buffers of every node on the bus."""

    def __init__(self, config: FlexRayConfig, system: System):
        self.config = config
        self.system = system
        self._queues: Dict[Tuple[str, int], List[tuple]] = {}
        self._p_latest: Dict[str, Optional[int]] = {
            n: config.p_latest_tx(n, system) for n in system.nodes
        }
        self._pending = 0
        self._max_fid = max(config.frame_ids.values(), default=0)

    @property
    def pending(self) -> int:
        """Frames currently queued across all nodes."""
        return self._pending

    @property
    def max_frame_id(self) -> int:
        """Largest FrameID any message uses (0 when there are none)."""
        return self._max_fid

    def p_latest_tx(self, node: str) -> Optional[int]:
        """``pLatestTx`` of *node* (None when it sends no DYN frames)."""
        return self._p_latest[node]

    def queue(self, message: Message, instance: int, time: int) -> str:
        """CPU writes a frame into the CHI; returns the sending node."""
        node = self.system.sender_node(message)
        fid = self.config.frame_id_of(message.name)
        entry = (message.priority, time, message.name, instance, message)
        heapq.heappush(self._queues.setdefault((node, fid), []), entry)
        self._pending += 1
        return node

    def pop_for_slot(
        self, fid: int, slot_start: int, minislot: int
    ) -> Optional[Tuple[Message, int]]:
        """Frame transmitted in dynamic slot *fid*, or None (empty slot).

        ``slot_start`` filters out frames queued after the controller
        read its buffers; ``minislot`` is the current minislot counter,
        checked against the owning node's pLatestTx.
        """
        for (node, queue_fid), queue in self._queues.items():
            if queue_fid != fid or not queue:
                continue
            latest = self._p_latest[node]
            if latest is None or minislot > latest:
                return None  # the node may not start a transmission now
            candidates = [q for q in queue if q[1] <= slot_start]
            if not candidates:
                return None
            best = min(candidates)
            queue.remove(best)
            heapq.heapify(queue)
            self._pending -= 1
            return (best[4], best[3])
        return None
