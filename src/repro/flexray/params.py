"""FlexRay protocol constants and specification limits.

Values follow the FlexRay 2.x specification as cited by the paper
(Section 6): at most 1023 static slots per cycle, a static slot of at
most 661 macroticks, at most 7994 minislots in the dynamic segment, and
a communication cycle of at most 16 ms.
"""

from __future__ import annotations

#: Maximum number of static slots in a communication cycle
#: (``gdNumberOfStaticSlots`` <= 1023).
MAX_STATIC_SLOTS = 1023

#: Maximum length of one static slot in macroticks (``gdStaticSlot`` <= 661).
MAX_STATIC_SLOT_MT = 661

#: Maximum number of minislots in the dynamic segment
#: (``gNumberOfMinislots`` <= 7994).
MAX_MINISLOTS = 7994

#: Maximum communication cycle length in macroticks (16 ms at 1 MT = 1 us).
MAX_CYCLE_MT = 16000

#: FlexRay payload granularity: payload grows in 2-byte words, which at
#: 10 Mbit/s equals 20 * gdBit = 2 macroticks.  The OBC heuristic steps
#: the static slot length by this amount (paper Fig. 6, line 4).
STATIC_SLOT_STEP_MT = 2

#: Number of payload bits transferred per macrotick in the *default* unit
#: system of this library (1 byte per macrotick).  At the physical
#: 10 Mbit/s rate with 1 MT = 1 us this would be 10; using 8 makes the
#: paper's schematic examples (message sizes 4, 3, 2, ...) map one-to-one
#: to transmission times, which eases cross-checking against the figures.
DEFAULT_BITS_PER_MT = 8

#: Default frame overhead (header + CRC trailer) in bytes.  The paper's
#: examples fold overhead into the message sizes, hence 0 by default; the
#: synthetic workload generator may use the realistic value 8 (5-byte
#: header + 3-byte trailer).
DEFAULT_FRAME_OVERHEAD_BYTES = 0

#: Realistic FlexRay frame overhead in bytes, for users who want it.
PHYSICAL_FRAME_OVERHEAD_BYTES = 8

#: Default length of one minislot, in macroticks.
DEFAULT_GD_MINISLOT = 1
