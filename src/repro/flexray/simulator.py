"""Discrete-event simulator for FlexRay-based distributed systems.

Simulates the full system of Section 2 under a concrete bus
configuration: per-node kernels running SCS tasks from the schedule
table and preemptive fixed-priority FPS tasks in the slack, and the bus
executing static slots (from the table) and the FTDMA dynamic segment
(slot/minislot counters, per-node pLatestTx, FrameID arbitration with
local priority queues -- Section 3).

One *application cycle* (the hyper-period) of releases is simulated;
the bus keeps cycling afterwards until all released work drains (or the
safety horizon is hit), so late dynamic traffic is observed rather than
cut off.  The observed response times are exact for the simulated
release alignment and therefore lower bounds of the analytic worst
case -- the property tests assert exactly that relation.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.availability import NodeAvailability, wrap_busy_intervals
from repro.analysis.schedule_table import ScheduleTable
from repro.analysis.scheduler import ScheduleOptions, build_schedule
from repro.core.config import FlexRayConfig
from repro.errors import ModelError, SimulationError
from repro.flexray.controller import ChiQueues
from repro.flexray.events import EventKind, TraceEvent
from repro.flexray.faults import FaultSpec, resolve_faults
from repro.model.jobs import expand_jobs
from repro.model.message import Message
from repro.model.system import System
from repro.model.task import Task
from repro.model.times import ceil_div


@dataclass(frozen=True)
class SimulationOptions:
    """Simulator tunables."""

    #: Release offset added to every instance of a graph (by graph name);
    #: lets tests explore alignments between task releases and bus cycles.
    graph_offsets: Mapping[str, int] = field(default_factory=dict)
    #: Extra bus cycles simulated beyond the hyper-period to drain traffic.
    drain_factor: int = 64
    #: Collect the full event trace (disable for speed in big sweeps).
    record_trace: bool = True
    schedule: ScheduleOptions = field(default_factory=ScheduleOptions)
    #: Channel fault injection: a :class:`~repro.flexray.faults.FaultModel`
    #: (resolved once per run against the drain horizon) or an already
    #: resolved :class:`~repro.flexray.faults.FaultPlan`.  ``None`` (and
    #: any plan with :attr:`~repro.flexray.faults.FaultPlan.active` ==
    #: False) keeps the simulator on its fault-free code paths,
    #: byte-identical to a run without this option.
    faults: FaultSpec = None


@dataclass(frozen=True)
class SimulationResult:
    """Observed behaviour of one simulation run."""

    observed_wcrt: Dict[str, int]
    response_times: Dict[Tuple[str, int], int]  # (activity, instance) -> R
    unfinished: Tuple[str, ...]
    deadline_misses: Tuple[str, ...]
    trace: Tuple[TraceEvent, ...]
    horizon: int
    #: Per-frame retransmission counts under fault injection:
    #: ``(message, instance) -> number of corrupted attempts``.  Empty
    #: in a fault-free run.  Response times above are *retransmission
    #: aware*: an activity finishes when its (re)transmission finally
    #: arrives, so WCRTs and deadline misses already include the retry
    #: delays counted here.
    retransmissions: Mapping[Tuple[str, int], int] = field(default_factory=dict)

    @property
    def all_finished(self) -> bool:
        """True when every released job completed within the simulation."""
        return not self.unfinished

    @property
    def total_retransmissions(self) -> int:
        """Total corrupted transmission attempts across the run."""
        return sum(self.retransmissions.values())


class _FpsJob:
    """Run-time state of one released FPS task instance."""

    __slots__ = ("task", "instance", "release", "remaining", "started")

    def __init__(self, task: Task, instance: int, release: int):
        self.task = task
        self.instance = instance
        self.release = release
        self.remaining = task.wcet
        self.started = False

    @property
    def key(self) -> Tuple[int, str, int]:
        return (self.task.priority, self.task.name, self.instance)


class _Node:
    """Per-node kernel state: FPS ready queue over the SCS availability."""

    def __init__(self, name: str, availability: NodeAvailability):
        self.name = name
        self.availability = availability
        self.ready: List[Tuple[Tuple[int, str, int], _FpsJob]] = []
        self.last_update = 0
        self.version = 0

    def push(self, job: _FpsJob) -> None:
        heapq.heappush(self.ready, (job.key, job))
        self.version += 1

    def running(self) -> Optional[_FpsJob]:
        return self.ready[0][1] if self.ready else None

    def advance_to(self, now: int) -> None:
        """Account execution of the running FPS job up to *now*."""
        if now <= self.last_update:
            return
        job = self.running()
        if job is not None:
            done = self.availability.available_in(self.last_update, now)
            job.remaining -= min(done, job.remaining)
        self.last_update = now

    def completion_time(self, now: int) -> Optional[int]:
        """Predicted finish of the running job if nothing else happens."""
        job = self.running()
        if job is None:
            return None
        return self.availability.advance(now, job.remaining)


# Event kinds, processed in this order at equal times: releases first so
# arriving work is visible, then bus actions, then CPU bookkeeping.  The
# fault-injection kinds (_EV_ST_TX, _EV_DYN_REQUEUE) slot in between
# without disturbing the relative order of the fault-free kinds, so a
# run without faults pops events in exactly the pre-fault order.
_EV_RELEASE = 0
_EV_SCS_FINISH = 1
_EV_ST_SLOT = 2
#: Drain step of a static slot's retry chain: ordered right after
#: _EV_ST_SLOT so a same-instant scheduled group enqueues before the
#: chain transmits (displaced groups go out in table order).
_EV_ST_TX = 3
_EV_DYN_SLOT = 4
_EV_ARRIVAL = 5
#: A corrupted DYN frame re-enters the CHI at its slot's end: ordered
#: before _EV_DYN_DECIDE so the same-instant slot decision sees it.
_EV_DYN_REQUEUE = 6
_EV_FPS_CHECK = 7
_EV_FPS_READY = 8
#: Second phase of a dynamic-slot event: ordered after every other kind
#: so the slot decision sees all frames queued at the same instant.
_EV_DYN_DECIDE = 9


def simulate(
    system: System,
    config: FlexRayConfig,
    options: SimulationOptions = None,
    table: Optional[ScheduleTable] = None,
) -> SimulationResult:
    """Simulate one application cycle of *system* under *config*.

    ``table`` may supply a pre-built static schedule (e.g. the one an
    :func:`~repro.analysis.holistic.analyse_system` result carries);
    otherwise the scheduler is invoked.
    """
    options = options or SimulationOptions()
    config.validate_for(system)
    for graph_name, offset in options.graph_offsets.items():
        graph = system.application.graph(graph_name)
        if offset and any(t.is_scs for t in graph.tasks):
            raise SimulationError(
                f"graph {graph_name!r} contains SCS tasks; offsetting it would "
                "desynchronise the releases from the static schedule table"
            )
    if table is None:
        table = build_schedule(system, config, options.schedule)
    engine = _Engine(system, config, options, table)
    return engine.run()


class _Engine:
    def __init__(self, system, config, options, table):
        self.system = system
        self.config = config
        self.options = options
        self.table = table
        self.app = system.application
        self.horizon = self.app.hyperperiod
        self.max_time = self.horizon + options.drain_factor * config.gd_cycle
        self.trace: List[TraceEvent] = []
        self.events: List[tuple] = []
        self._seq = 0

        self.nodes: Dict[str, _Node] = {
            name: _Node(
                name,
                NodeAvailability(
                    wrap_busy_intervals(table.busy_intervals(name), self.horizon),
                    self.horizon,
                ),
            )
            for name in system.nodes
        }
        #

        # Precedence bookkeeping: remaining predecessor count per job.
        self.pending: Dict[Tuple[str, int], int] = {}
        self.finish_times: Dict[Tuple[str, int], int] = {}
        self.release_base: Dict[Tuple[str, int], int] = {}
        self.chi = ChiQueues(config, system)
        #: Where the current cycle's dynamic-segment walk stopped because
        #: nothing was queued: ``(cycle, fid, minislot, time)``; a later
        #: queueing inside the segment resumes the walk from here.
        self._dyn_idle = None

        # Channel fault state.  The model resolves once per run against
        # the drain horizon, so corruption decisions are reproducible at
        # a fixed seed regardless of event interleavings.
        self.fault_plan = resolve_faults(
            options.faults, self.max_time, config.gd_cycle
        )
        self.faults_on = self.fault_plan.active
        #: Per-static-slot retry chains: ``slot -> deque of
        #: ``[entries, attempt]`` groups awaiting (re)transmission.
        self._st_pending: Dict[int, deque] = {}
        #: DYN transmission attempts so far per (message, instance).
        self._dyn_attempts: Dict[Tuple[str, int], int] = {}
        #: Corrupted attempts per (activity, instance).
        self.retransmissions: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        self._seed_events()
        while self.events:
            time, order, _seq, kind, payload = heapq.heappop(self.events)
            if time > self.max_time:
                break
            handler = {
                _EV_RELEASE: self._on_release,
                _EV_SCS_FINISH: self._on_scs_finish,
                _EV_ST_SLOT: self._on_st_slot,
                _EV_ST_TX: self._on_st_tx,
                _EV_DYN_SLOT: self._on_dyn_slot,
                _EV_ARRIVAL: self._on_arrival,
                _EV_DYN_REQUEUE: self._on_dyn_requeue,
                _EV_FPS_CHECK: self._on_fps_check,
                _EV_FPS_READY: self._on_fps_ready,
                _EV_DYN_DECIDE: self._on_dyn_decide,
            }[kind]
            handler(time, payload)
        return self._collect()

    def _push(self, time: int, kind: int, payload) -> None:
        self._seq += 1
        heapq.heappush(self.events, (time, kind, self._seq, kind, payload))

    def _record(self, time, kind, activity="", instance=0, node=None, detail=""):
        if self.options.record_trace:
            self.trace.append(
                TraceEvent(
                    time=time,
                    kind=kind,
                    activity=activity,
                    instance=instance,
                    node=node,
                    detail=detail,
                )
            )

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def _seed_events(self) -> None:
        # Graph instance releases over one hyper-period.
        for g in self.app.graphs:
            offset = self.options.graph_offsets.get(g.name, 0)
            for k in range(self.horizon // g.period):
                self._push(k * g.period + offset, _EV_RELEASE, (g, k))
        # SCS task completions straight from the schedule table.
        for entry in self.table.tasks.values():
            name, instance = entry.job_key.rsplit("#", 1)
            self._push(entry.finish, _EV_SCS_FINISH, (entry, int(instance)))
            self._record(
                entry.start,
                EventKind.TASK_START,
                name,
                int(instance),
                entry.task.node,
                "SCS",
            )
        # Static frames from the schedule table.
        by_slot: Dict[Tuple[int, int], list] = {}
        for entry in self.table.messages.values():
            by_slot.setdefault((entry.cycle, entry.slot), []).append(entry)
        for (cycle, slot), entries in by_slot.items():
            self._push(entries[0].slot_start, _EV_ST_SLOT, tuple(entries))
        # Dynamic segment walk of every cycle until the drain horizon.
        cycle = 0
        while cycle * self.config.gd_cycle <= self.max_time:
            start = cycle * self.config.gd_cycle + self.config.st_bus
            if self.config.n_minislots > 0:
                self._push(start, _EV_DYN_SLOT, (cycle, 1, 1))
            cycle += 1

    # ------------------------------------------------------------------
    # graph / CPU events
    # ------------------------------------------------------------------
    def _on_release(self, time: int, payload) -> None:
        graph, instance = payload
        self._record(time, EventKind.RELEASE, graph.name, instance)
        for name in graph.topological_order():
            job = (name, instance)
            self.release_base[job] = time
            self.pending[job] = len(graph.predecessors(name))
        for task in graph.tasks:
            if task.is_fps and self.pending[(task.name, instance)] == 0:
                if task.release > 0:
                    self._push(
                        time + task.release, _EV_FPS_READY, (task, instance)
                    )
                else:
                    self._ready_fps(task, instance, time)

    def _ready_fps(self, task: Task, instance: int, time: int) -> None:
        node = self.nodes[task.node]
        node.advance_to(time)
        node.push(_FpsJob(task, instance, time))
        self._schedule_fps_check(node, time)

    def _schedule_fps_check(self, node: _Node, now: int) -> None:
        completion = node.completion_time(now)
        if completion is not None:
            self._push(completion, _EV_FPS_CHECK, (node.name, node.version))

    def _on_fps_ready(self, time: int, payload) -> None:
        task, instance = payload
        self._ready_fps(task, instance, time)

    def _on_fps_check(self, time: int, payload) -> None:
        name, version = payload
        node = self.nodes[name]
        if version != node.version:
            return  # stale prediction; a newer check is queued
        node.advance_to(time)
        job = node.running()
        if job is None:
            return
        if job.remaining > 0:
            self._schedule_fps_check(node, time)
            return
        heapq.heappop(node.ready)
        node.version += 1
        self._record(
            time, EventKind.TASK_FINISH, job.task.name, job.instance, name, "FPS"
        )
        self._activity_finished(job.task.name, job.instance, time)
        self._schedule_fps_check(node, time)

    def _on_scs_finish(self, time: int, payload) -> None:
        entry, instance = payload
        if self.faults_on and self.pending.get((entry.task.name, instance), 0) > 0:
            # Channel faults delayed an input of this TT job past its
            # table slot: the job slips whole bus cycles until its
            # inputs are in.  (The slipped job's CPU demand is not
            # re-modelled -- the simulation stays a lower bound of the
            # analysis, which the fault-hypothesis tests rely on.)
            self._push(time + self.config.gd_cycle, _EV_SCS_FINISH, payload)
            return
        self._record(
            time,
            EventKind.TASK_FINISH,
            entry.task.name,
            instance,
            entry.task.node,
            "SCS",
        )
        self._activity_finished(entry.task.name, instance, time)

    def _activity_finished(self, name: str, instance: int, time: int) -> None:
        job = (name, instance)
        if job in self.finish_times:
            raise SimulationError(f"activity {name}#{instance} finished twice")
        self.finish_times[job] = time
        graph = self.app.graph_of(name)
        for succ in graph.successors(name):
            sjob = (succ, instance)
            self.pending[sjob] -= 1
            if self.pending[sjob] > 0:
                continue
            self._dispatch_ready(graph, succ, instance, time)

    def _dispatch_ready(self, graph, name: str, instance: int, time: int) -> None:
        """All predecessors of (name, instance) completed at *time*."""
        try:
            task = graph.task(name)
        except ModelError:
            task = None
        if task is not None:
            if task.is_fps:
                self._ready_fps(task, instance, time)
            # SCS successor: runs per schedule table; verify consistency.
            elif self.table.tasks.get(f"{name}#{instance}") is not None:
                entry = self.table.tasks[f"{name}#{instance}"]
                if entry.start < time and not self.faults_on:
                    raise SimulationError(
                        f"SCS task {name}#{instance} scheduled at {entry.start} "
                        f"but its inputs arrive at {time}"
                    )
                # Under fault injection a late input is legal: the
                # job's (deferred) _EV_SCS_FINISH slips cycle by cycle
                # until the inputs are in (see _on_scs_finish).
            return
        message = graph.message(name)
        if message.is_dynamic:
            self._queue_dyn(message, instance, time)
        # ST messages follow the schedule table; consistency is checked
        # when their slot transmits.

    # ------------------------------------------------------------------
    # bus events
    # ------------------------------------------------------------------
    def _on_st_slot(self, time: int, entries) -> None:
        slot = entries[0].slot
        pending = self._st_pending.setdefault(slot, deque())
        pending.append([entries, 0])
        if len(pending) == 1:
            self._transmit_st(time, slot)
        # else: this slot already has a retry chain in flight (an
        # earlier group was corrupted or displaced); the chain's queued
        # _EV_ST_TX drains this group in a later cycle, in table order.

    def _on_st_tx(self, time: int, slot: int) -> None:
        if self._st_pending.get(slot):
            self._transmit_st(time, slot)

    def _transmit_st(self, time: int, slot: int) -> None:
        """(Re)transmit the head group of *slot*'s retry chain at *time*."""
        pending = self._st_pending[slot]
        entries, attempt = pending[0]
        delay = time - entries[0].slot_start
        jobs = []
        for entry in entries:
            name, instance = entry.job_key.rsplit("#", 1)
            instance = int(instance)
            sender = self.app.graph_of(name).task(entry.message.sender)
            sender_finish = self.finish_times.get((sender.name, instance))
            if sender_finish is None or sender_finish > time:
                if self.faults_on:
                    # A corruption upstream slipped the sender past its
                    # table slot: the frame waits for next cycle's slot.
                    self._push(time + self.config.gd_cycle, _EV_ST_TX, slot)
                    return
                raise SimulationError(
                    f"ST message {name}#{instance} is not ready at its slot "
                    f"(cycle {entry.cycle}, slot {entry.slot}, t={time})"
                )
            jobs.append((entry, name, instance))
        corrupted = self.faults_on and self.fault_plan.corrupts(
            jobs[0][1], jobs[0][2], attempt, time
        )
        for entry, name, instance in jobs:
            retry = f" retry {attempt}" if attempt else ""
            self._record(
                time, EventKind.ST_FRAME, name, instance, None,
                f"cycle {entry.cycle} slot {entry.slot}{retry}",
            )
        if corrupted:
            # Corruption is detected at the end of the slot; the whole
            # frame (all messages packed into this slot) retries in the
            # slot's next bus-cycle instance.
            slot_end = time + self.config.gd_static_slot
            pending[0][1] = attempt + 1
            for entry, name, instance in jobs:
                self._bump_retransmission(name, instance)
                self._record(
                    slot_end, EventKind.FRAME_CORRUPTED, name, instance, None,
                    f"ST slot {entry.slot} attempt {attempt}",
                )
            self._push(time + self.config.gd_cycle, _EV_ST_TX, slot)
            return
        pending.popleft()
        for entry, name, instance in jobs:
            self._push(entry.finish + delay, _EV_ARRIVAL, (name, instance))
        if pending:
            self._push(time + self.config.gd_cycle, _EV_ST_TX, slot)

    def _bump_retransmission(self, name: str, instance: int) -> None:
        key = (name, instance)
        self.retransmissions[key] = self.retransmissions.get(key, 0) + 1

    def _queue_dyn(self, message: Message, instance: int, time: int) -> None:
        node = self.chi.queue(message, instance, time)
        self._record(time, EventKind.MSG_QUEUED, message.name, instance, node)
        if self._dyn_idle is not None:
            # The current segment's walk idled out before this frame was
            # queued; resume it at the first slot boundary the frame can
            # make (inclusive: queued exactly at a boundary counts).
            cycle, fid, minislot, idle_time = self._dyn_idle
            self._dyn_idle = None
            segment_end = cycle * self.config.gd_cycle + self.config.gd_cycle
            if time < segment_end:
                ms_len = self.config.gd_minislot
                skipped = -(-(time - idle_time) // ms_len)  # ceil
                self._push(
                    idle_time + skipped * ms_len,
                    _EV_DYN_SLOT,
                    (cycle, fid + skipped, minislot + skipped),
                )

    def _on_dyn_slot(self, time: int, payload) -> None:
        # Two-phase slot decision: the controller reads its buffers at
        # the *start* of the slot, and a frame queued exactly at that
        # instant counts (``pop_for_slot`` filters ``queued <= start``).
        # Re-enqueueing the decision behind every same-instant event
        # (task completions, arrivals) makes the event order match that
        # semantic, so the simulation never exceeds the analysis, which
        # assumes a frame ready at its slot's earliest start makes the
        # cycle.
        self._push(time, _EV_DYN_DECIDE, payload)

    def _on_dyn_decide(self, time: int, payload) -> None:
        cycle, fid, minislot = payload
        segment_end = cycle * self.config.gd_cycle + self.config.gd_cycle
        if time >= segment_end or minislot > self.config.n_minislots:
            return
        if fid > self.chi.max_frame_id:
            return  # no message uses this or any later slot: segment over
        if self.chi.pending == 0:
            # Nothing queued anywhere: the walk idles, but a frame queued
            # later in this segment must still meet its slot -- remember
            # where the walk stopped so ``_queue_dyn`` can resume it.
            self._dyn_idle = (cycle, fid, minislot, time)
            return
        frame = self.chi.pop_for_slot(fid, time, minislot)
        if frame is None:
            # Empty dynamic slot: one minislot elapses.
            self._push(
                time + self.config.gd_minislot,
                _EV_DYN_SLOT,
                (cycle, fid + 1, minislot + 1),
            )
            return
        message, instance = frame
        ct = self.config.message_ct(message)
        slots_used = ceil_div(ct, self.config.gd_minislot)
        attempt = self._dyn_attempts.get((message.name, instance), 0)
        corrupted = self.faults_on and self.fault_plan.corrupts(
            message.name, instance, attempt, time
        )
        retry = f" retry {attempt}" if attempt else ""
        self._record(
            time,
            EventKind.DYN_TX_START,
            message.name,
            instance,
            self.system.sender_node(message),
            f"cycle {cycle} DYN slot {fid}{retry}",
        )
        slot_end = time + slots_used * self.config.gd_minislot
        if corrupted:
            # The frame still occupied its dynamic slot; corruption is
            # detected at slot end, where the frame re-enters the CHI
            # priority queue and re-arbitrates for a later cycle.
            self._dyn_attempts[(message.name, instance)] = attempt + 1
            self._bump_retransmission(message.name, instance)
            self._push(slot_end, _EV_DYN_REQUEUE, (message, instance, fid))
        else:
            self._push(time + ct, _EV_ARRIVAL, (message.name, instance))
        self._push(
            slot_end,
            _EV_DYN_SLOT,
            (cycle, fid + 1, minislot + slots_used),
        )

    def _on_dyn_requeue(self, time: int, payload) -> None:
        message, instance, fid = payload
        self._record(
            time,
            EventKind.FRAME_CORRUPTED,
            message.name,
            instance,
            self.system.sender_node(message),
            f"DYN slot {fid}",
        )
        self._queue_dyn(message, instance, time)

    def _on_arrival(self, time: int, payload) -> None:
        name, instance = payload
        self._record(time, EventKind.MSG_ARRIVAL, name, instance)
        self._activity_finished(name, instance, time)

    # ------------------------------------------------------------------
    def _collect(self) -> SimulationResult:
        response: Dict[Tuple[str, int], int] = {}
        observed: Dict[str, int] = {}
        misses: List[str] = []
        unfinished: List[str] = []
        for job, base in self.release_base.items():
            name, instance = job
            finish = self.finish_times.get(job)
            if finish is None:
                unfinished.append(f"{name}#{instance}")
                continue
            r = finish - base
            response[job] = r
            observed[name] = max(observed.get(name, 0), r)
            if r > self.app.deadline_of(name):
                misses.append(f"{name}#{instance}")
        return SimulationResult(
            observed_wcrt=observed,
            response_times=response,
            unfinished=tuple(sorted(unfinished)),
            deadline_misses=tuple(sorted(misses)),
            trace=tuple(self.trace),
            horizon=self.horizon,
            retransmissions=dict(self.retransmissions),
        )
