"""Simulation trace records.

The simulator emits one :class:`TraceEvent` per observable protocol /
kernel action; tests and examples reconstruct Gantt charts (like the
paper's Figs. 1, 3, 4) from these records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class EventKind(enum.Enum):
    """Type of an observable simulation event."""

    RELEASE = "release"  # a graph instance is activated
    TASK_START = "task_start"
    TASK_PREEMPT = "task_preempt"
    TASK_RESUME = "task_resume"
    TASK_FINISH = "task_finish"
    ST_FRAME = "st_frame"  # a static frame transmission begins
    MSG_QUEUED = "msg_queued"  # a DYN message enters the CHI
    DYN_TX_START = "dyn_tx_start"
    MSG_ARRIVAL = "msg_arrival"  # message fully received
    FRAME_CORRUPTED = "frame_corrupted"  # channel fault detected at slot end
    CYCLE_START = "cycle_start"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulation event."""

    time: int
    kind: EventKind
    activity: str  # task/message name, or "" for cycle events
    instance: int = 0
    node: Optional[str] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" @{self.node}" if self.node else ""
        inst = f"#{self.instance}" if self.activity else ""
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:>8}] {self.kind.value:<12} {self.activity}{inst}{where}{extra}"
