"""FlexRay protocol substrate: constants, cycle geometry, simulator."""

from repro.flexray import params
from repro.flexray.faults import (
    BlackoutFaults,
    FaultModel,
    FaultPlan,
    GilbertElliottFaults,
    IidFaults,
    NO_FAULTS,
    resolve_faults,
)
from repro.flexray.timeline import (
    cycle_of,
    cycle_start,
    dyn_segment_end,
    dyn_segment_start,
    earliest_dyn_slot_start,
    next_cycle_start,
    st_slot_end,
    st_slot_instances,
    st_slot_start,
)

__all__ = [
    "BlackoutFaults",
    "FaultModel",
    "FaultPlan",
    "GilbertElliottFaults",
    "IidFaults",
    "NO_FAULTS",
    "cycle_of",
    "cycle_start",
    "dyn_segment_end",
    "dyn_segment_start",
    "earliest_dyn_slot_start",
    "next_cycle_start",
    "params",
    "resolve_faults",
    "st_slot_end",
    "st_slot_instances",
    "st_slot_start",
]
