"""Bus-cycle geometry helpers.

Pure functions mapping (cycle, slot) coordinates of a
:class:`~repro.core.config.FlexRayConfig` to absolute macrotick times and
back.  Used by the static scheduler, the timing analysis and the
simulator, so all three agree on where every slot lies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.core.config import FlexRayConfig


def cycle_start(config: "FlexRayConfig", cycle: int) -> int:
    """Absolute start time of bus cycle *cycle* (0-based)."""
    if cycle < 0:
        raise ConfigurationError(f"cycle index must be >= 0, got {cycle}")
    return cycle * config.gd_cycle


def st_slot_start(config: "FlexRayConfig", cycle: int, slot: int) -> int:
    """Absolute start time of static slot *slot* (1-based) in *cycle*."""
    if not (1 <= slot <= config.n_static_slots):
        raise ConfigurationError(
            f"static slot {slot} outside [1, {config.n_static_slots}]"
        )
    return cycle_start(config, cycle) + (slot - 1) * config.gd_static_slot

def st_slot_end(config: "FlexRayConfig", cycle: int, slot: int) -> int:
    """Absolute end time of static slot *slot* (1-based) in *cycle*."""
    return st_slot_start(config, cycle, slot) + config.gd_static_slot


def dyn_segment_start(config: "FlexRayConfig", cycle: int) -> int:
    """Absolute start time of the dynamic segment of *cycle*."""
    return cycle_start(config, cycle) + config.st_bus


def dyn_segment_end(config: "FlexRayConfig", cycle: int) -> int:
    """Absolute end time of the dynamic segment of *cycle*."""
    return dyn_segment_start(config, cycle) + config.dyn_bus


def cycle_of(config: "FlexRayConfig", t: int) -> int:
    """Index of the bus cycle containing absolute time *t*."""
    if t < 0:
        raise ConfigurationError(f"time must be >= 0, got {t}")
    return t // config.gd_cycle


def next_cycle_start(config: "FlexRayConfig", t: int) -> int:
    """Start of the first cycle beginning strictly after time *t*."""
    return (cycle_of(config, t) + 1) * config.gd_cycle


def earliest_dyn_slot_start(config: "FlexRayConfig", cycle: int, frame_id: int) -> int:
    """Earliest possible start of dynamic slot *frame_id* in *cycle*.

    Reached when all lower dynamic slots are empty, i.e. each consumed a
    single minislot.
    """
    if frame_id < 1:
        raise ConfigurationError(f"FrameID must be >= 1, got {frame_id}")
    return dyn_segment_start(config, cycle) + (frame_id - 1) * config.gd_minislot


def st_slot_instances(
    config: "FlexRayConfig", node: str, horizon: int
) -> Iterator[Tuple[int, int, int]]:
    """All static slot instances of *node* with start < *horizon*.

    Yields ``(cycle, slot, start_time)`` in chronological order.
    """
    slots = config.st_slots_of(node)
    cycle = 0
    while cycle * config.gd_cycle < horizon:
        for slot in slots:
            start = st_slot_start(config, cycle, slot)
            if start < horizon:
                yield (cycle, slot, start)
        cycle += 1
