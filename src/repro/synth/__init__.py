"""Synthetic workload generation (Section 7 experiment recipe)."""

from repro.synth.suite import full_paper_benchmark, paper_suite
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system

__all__ = [
    "GeneratorConfig",
    "full_paper_benchmark",
    "generate_system",
    "paper_suite",
]
