"""Synthetic workload generation (Section 7 experiment recipe)."""

from repro.synth.sharding import ShardEntry, ShardSpec, shard_plan
from repro.synth.suite import (
    fault_grid,
    full_paper_benchmark,
    paper_suite,
    paper_system,
)
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system

__all__ = [
    "GeneratorConfig",
    "ShardEntry",
    "ShardSpec",
    "fault_grid",
    "full_paper_benchmark",
    "generate_system",
    "paper_suite",
    "paper_system",
    "shard_plan",
]
