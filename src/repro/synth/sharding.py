"""Deterministic sharding of the Section 7 benchmark sweep.

The paper's Fig. 9 experiment runs four optimisers over 25 generated
systems for every node-count class -- at paper scale an embarrassingly
parallel workload of 150+ independent optimiser suites.  This module
partitions that sweep into *shards*: self-describing slices that a
worker process (``benchmarks/fig9_shard.py``) can regenerate and run in
isolation, with an aggregator (``benchmarks/fig9_aggregate.py``) later
merging the per-shard results into the paper-comparable tables.

The partition is a pure function of the suite parameters, so workers on
different hosts agree on the slicing without coordination; systems are
*regenerated* from ``(n_nodes, index, seed)`` via
:func:`repro.synth.suite.paper_system` rather than serialised, keeping
shard hand-off to a single small JSON file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.model.system import System
from repro.synth.suite import GeneratorConfig, paper_system


@dataclass(frozen=True)
class ShardEntry:
    """One benchmark system, identified by its suite coordinates."""

    n_nodes: int
    index: int

    @property
    def system_id(self) -> str:
        """The campaign system id of this entry (``n<nodes>_i<index>``).

        Shared by the shard runner, the fabric-mode Fig. 9 coordinator
        and the aggregator, so per-system results can be matched back
        to suite coordinates however the sweep was executed.
        """
        return f"n{self.n_nodes}_i{self.index}"


@dataclass(frozen=True)
class ShardSpec:
    """A self-describing slice of the full benchmark sweep.

    ``suite_key`` fields (``node_counts``, ``count``, ``seed``) identify
    the sweep the shard belongs to; the aggregator refuses to merge
    shards of different sweeps.
    """

    shard: int
    num_shards: int
    entries: Tuple[ShardEntry, ...]
    node_counts: Tuple[int, ...]
    count: int
    seed: int

    def suite_key(self) -> tuple:
        """Identity of the sweep this shard partitions."""
        return (self.node_counts, self.count, self.seed)

    def systems(self, base: GeneratorConfig = None) -> Iterator[Tuple[ShardEntry, System]]:
        """Regenerate this shard's systems, in shard order."""
        for entry in self.entries:
            yield entry, paper_system(
                entry.n_nodes, entry.index, base, self.seed
            )


def shard_plan(
    node_counts: Sequence[int],
    count: int,
    num_shards: int,
    seed: int = 2007,
) -> List[ShardSpec]:
    """Partition the ``node_counts`` x ``count`` sweep into *num_shards*.

    Systems are interleaved round-robin over the shards in suite order,
    so every shard receives a balanced mix of node-count classes (large
    classes dominate the runtime; a contiguous split would make the last
    shards several times slower than the first).  The plan is
    deterministic: every worker computes the same partition.
    """
    if num_shards < 1:
        raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    if not node_counts:
        raise ValidationError("node_counts must be non-empty")
    ordered = tuple(sorted(set(node_counts)))
    entries = [
        ShardEntry(n_nodes=n, index=i) for n in ordered for i in range(count)
    ]
    buckets: List[List[ShardEntry]] = [[] for _ in range(num_shards)]
    for pos, entry in enumerate(entries):
        buckets[pos % num_shards].append(entry)
    return [
        ShardSpec(
            shard=k,
            num_shards=num_shards,
            entries=tuple(bucket),
            node_counts=ordered,
            count=count,
            seed=seed,
        )
        for k, bucket in enumerate(buckets)
    ]
