"""Benchmark suites (Section 7).

The paper generates 7 sets of 25 applications for systems of 2..7 nodes.
:func:`paper_suite` reproduces one such set; suite sizes are parameters
so laptop runs can use smaller counts while keeping the same structure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from repro.flexray.faults import IidFaults
from repro.model.system import System
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system


def paper_system(
    n_nodes: int,
    index: int,
    base: GeneratorConfig = None,
    seed: int = 2007,
) -> System:
    """Member *index* of the suite ``paper_suite(n_nodes, ..., seed)``.

    The per-member seed derivation is shared with :func:`paper_suite`,
    so any single suite member can be regenerated in isolation -- this
    is what lets a sharded experiment runner rebuild exactly its own
    slice of the full benchmark without materialising the rest.
    """
    base = base or GeneratorConfig()
    cfg = replace(base, n_nodes=n_nodes, seed=seed * 1_000 + n_nodes * 100 + index)
    return generate_system(cfg)


def paper_suite(
    n_nodes: int,
    count: int = 25,
    base: GeneratorConfig = None,
    seed: int = 2007,
) -> List[System]:
    """*count* systems of *n_nodes* nodes following the Section 7 recipe.

    Each system uses a distinct derived seed, so the suite is
    deterministic for a given (n_nodes, count, seed) triple.
    """
    return [paper_system(n_nodes, i, base, seed) for i in range(count)]


def fault_grid(
    rates: Iterable[float], seeds: Iterable[int] = (1, 2, 3)
) -> List[IidFaults]:
    """The (rate x seed) grid of i.i.d. channel-fault scenarios.

    Companion of the suite generators for robustness experiments: every
    suite member can be re-simulated under each scenario of the grid,
    and the grid is deterministic for a given (rates, seeds) pair just
    like the suites are for (n_nodes, count, seed).  Rate-0 scenarios
    are legal and byte-identical to the clean simulator -- include one
    to anchor a sweep's baseline.
    """
    return [IidFaults(rate=r, seed=s) for r in rates for s in seeds]


def full_paper_benchmark(
    node_counts=(2, 3, 4, 5, 6, 7),
    count: int = 25,
    base: GeneratorConfig = None,
    seed: int = 2007,
):
    """All node-count classes of the paper's experiment, as a dict."""
    return {
        n: paper_suite(n, count=count, base=base, seed=seed) for n in node_counts
    }
