"""Benchmark suites (Section 7).

The paper generates 7 sets of 25 applications for systems of 2..7 nodes.
:func:`paper_suite` reproduces one such set; suite sizes are parameters
so laptop runs can use smaller counts while keeping the same structure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.model.system import System
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system


def paper_suite(
    n_nodes: int,
    count: int = 25,
    base: GeneratorConfig = None,
    seed: int = 2007,
) -> List[System]:
    """*count* systems of *n_nodes* nodes following the Section 7 recipe.

    Each system uses a distinct derived seed, so the suite is
    deterministic for a given (n_nodes, count, seed) triple.
    """
    base = base or GeneratorConfig()
    systems = []
    for i in range(count):
        cfg = replace(base, n_nodes=n_nodes, seed=seed * 1_000 + n_nodes * 100 + i)
        systems.append(generate_system(cfg))
    return systems


def full_paper_benchmark(
    node_counts=(2, 3, 4, 5, 6, 7),
    count: int = 25,
    base: GeneratorConfig = None,
    seed: int = 2007,
):
    """All node-count classes of the paper's experiment, as a dict."""
    return {
        n: paper_suite(n, count=count, base=base, seed=seed) for n in node_counts
    }
