"""Synthetic system generator (Section 7 recipe).

The paper evaluates on generated systems: n nodes with 10 tasks each,
task graphs of 5 tasks, half the graphs time-triggered and half
event-triggered, per-node CPU utilisation drawn from 30-60 % and bus
utilisation from 10-70 %.  :func:`generate_system` reproduces that
recipe deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ValidationError
from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic workload generator.

    Defaults mirror Section 7 of the paper; periods are restricted to a
    harmonic-ish set so the hyper-period stays bounded.
    """

    n_nodes: int = 3
    tasks_per_node: int = 10
    tasks_per_graph: int = 5
    tt_graph_share: float = 0.5
    node_utilisation: Tuple[float, float] = (0.30, 0.60)
    bus_utilisation: Tuple[float, float] = (0.10, 0.70)
    periods: Tuple[int, ...] = (10_000, 20_000, 40_000)
    deadline_factor: float = 1.0
    #: Cap on scaled message sizes (bytes).  600 bytes = 600 MT at the
    #: default rate, which still fits the 661 MT static-slot limit; the
    #: achieved bus utilisation saturates below the target when the cap
    #: binds (few, large messages).
    max_message_size: int = 600
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValidationError("need >= 2 nodes for a distributed system")
        if self.tasks_per_graph < 2:
            raise ValidationError("graphs need >= 2 tasks")
        total = self.n_nodes * self.tasks_per_node
        if total % self.tasks_per_graph:
            raise ValidationError(
                f"{total} tasks cannot be grouped into graphs of "
                f"{self.tasks_per_graph}"
            )
        if not 0.0 <= self.tt_graph_share <= 1.0:
            raise ValidationError("tt_graph_share must be within [0, 1]")


def generate_system(config: GeneratorConfig) -> System:
    """Generate one random system according to *config* (deterministic)."""
    rng = random.Random(config.seed)
    nodes = tuple(f"N{i + 1}" for i in range(config.n_nodes))
    total_tasks = config.n_nodes * config.tasks_per_node
    n_graphs = total_tasks // config.tasks_per_graph
    n_tt = round(n_graphs * config.tt_graph_share)

    # Balanced task-to-node mapping: exactly tasks_per_node per node.
    slots = [n for n in nodes for _ in range(config.tasks_per_node)]
    rng.shuffle(slots)

    graphs: List[TaskGraph] = []
    task_index = 0
    for gi in range(n_graphs):
        time_triggered = gi < n_tt
        period = rng.choice(config.periods)
        deadline = max(1, int(period * config.deadline_factor))
        names = [
            f"g{gi}_t{j}" for j in range(config.tasks_per_graph)
        ]
        mapping = {
            name: slots[task_index + j] for j, name in enumerate(names)
        }
        task_index += config.tasks_per_graph
        edges = _random_dag_edges(names, rng)
        graphs.append(
            _build_graph(
                gi, names, mapping, edges, period, deadline, time_triggered, rng
            )
        )

    system = System(nodes, Application("synthetic", tuple(graphs)))
    wcets = _scaled_wcets(system, config, rng)
    sizes = _scaled_sizes(system, config, rng)
    graphs = _rebuilt(system.application, wcets, sizes)
    system = System(nodes, Application("synthetic", tuple(graphs)))
    graphs = unique_rate_monotonic_priorities(system)
    return System(nodes, Application("synthetic", tuple(graphs)))


def _random_dag_edges(
    names: List[str], rng: random.Random
) -> List[Tuple[str, str]]:
    """Connected random DAG: every task after the first gets one
    predecessor among the earlier tasks (a random in-tree), plus an
    occasional extra edge for diamond shapes."""
    edges = []
    for j in range(1, len(names)):
        pred = names[rng.randrange(j)]
        edges.append((pred, names[j]))
        if j >= 2 and rng.random() < 0.25:
            extra = names[rng.randrange(j)]
            if extra != pred:
                edges.append((extra, names[j]))
    return edges


def _build_graph(
    gi, names, mapping, edges, period, deadline, time_triggered, rng
) -> TaskGraph:
    policy = SchedulingPolicy.SCS if time_triggered else SchedulingPolicy.FPS
    kind = MessageKind.ST if time_triggered else MessageKind.DYN
    tasks = tuple(
        Task(
            name=name,
            wcet=rng.randint(50, 400),  # rescaled to the target utilisation
            node=mapping[name],
            policy=policy,
            priority=i,
        )
        for i, name in enumerate(names)
    )
    messages: List[Message] = []
    precedences: List[Tuple[str, str]] = []
    seen_pairs = set()
    for a, b in edges:
        if (a, b) in seen_pairs:
            continue
        seen_pairs.add((a, b))
        if mapping[a] == mapping[b]:
            precedences.append((a, b))
        else:
            messages.append(
                Message(
                    name=f"g{gi}_m{len(messages)}",
                    size=rng.randint(2, 16),  # rescaled to bus utilisation
                    sender=a,
                    receivers=(b,),
                    kind=kind,
                    priority=len(messages),
                )
            )
    return TaskGraph(
        name=f"g{gi}",
        period=period,
        deadline=deadline,
        tasks=tasks,
        messages=tuple(messages),
        precedences=tuple(precedences),
    )


def _scaled_wcets(
    system: System, config: GeneratorConfig, rng
) -> Dict[str, int]:
    """Per-task WCETs rescaled to hit the target node utilisations."""
    app = system.application
    scaled: Dict[str, int] = {}
    for node in system.nodes:
        target = rng.uniform(*config.node_utilisation)
        tasks = system.tasks_on(node)
        if not tasks:
            continue
        current = sum(t.wcet / app.period_of(t.name) for t in tasks)
        factor = target / current if current else 0.0
        for t in tasks:
            scaled[t.name] = max(1, round(t.wcet * factor))
    return scaled


def _scaled_sizes(
    system: System, config: GeneratorConfig, rng
) -> Dict[str, int]:
    """Per-message sizes rescaled to hit the target bus utilisation."""
    app = system.application
    messages = list(app.messages())
    scaled: Dict[str, int] = {}
    if messages:
        target = rng.uniform(*config.bus_utilisation)
        # 1 byte ~ 1 MT at the default rate; utilisation = sum(C/T).
        current = sum(m.size / app.period_of(m.name) for m in messages)
        factor = target / current if current else 0.0
        for m in messages:
            scaled[m.name] = min(
                config.max_message_size, max(1, round(m.size * factor))
            )
    return scaled


def unique_rate_monotonic_priorities(system: System) -> List[TaskGraph]:
    """Distinct rate-monotonic priorities per node (FPS tasks) and per
    node (DYN messages).

    Priority ties across graphs are analysed as mutual interference,
    which is pure pessimism; real integrations assign unique priorities.
    Rate-monotonic ordering (shorter period = higher priority), name as
    the tie-break, mirrors common automotive practice.
    """
    app = system.application
    task_prio: Dict[str, int] = {}
    msg_prio: Dict[str, int] = {}
    for node in system.nodes:
        fps = sorted(
            (t for t in system.tasks_on(node) if t.is_fps),
            key=lambda t: (app.period_of(t.name), t.name),
        )
        for p, t in enumerate(fps):
            task_prio[t.name] = p
        dyn = sorted(
            (
                m
                for m in app.dyn_messages()
                if system.sender_node(m) == node
            ),
            key=lambda m: (app.period_of(m.name), m.name),
        )
        for p, m in enumerate(dyn):
            msg_prio[m.name] = p
    out = []
    for g in app.graphs:
        tasks = tuple(
            Task(
                name=t.name,
                wcet=t.wcet,
                node=t.node,
                policy=t.policy,
                priority=task_prio.get(t.name, t.priority),
                release=t.release,
                deadline=t.deadline,
            )
            for t in g.tasks
        )
        messages = tuple(
            Message(
                name=m.name,
                size=m.size,
                sender=m.sender,
                receivers=m.receivers,
                kind=m.kind,
                priority=msg_prio.get(m.name, m.priority),
                deadline=m.deadline,
            )
            for m in g.messages
        )
        out.append(
            TaskGraph(
                name=g.name,
                period=g.period,
                deadline=g.deadline,
                tasks=tasks,
                messages=messages,
                precedences=g.precedences,
            )
        )
    return out


def _rebuilt(
    app: Application, wcets: Dict[str, int], sizes: Dict[str, int]
) -> List[TaskGraph]:
    """Apply the scaling to fresh immutable graph objects."""
    out = []
    for g in app.graphs:
        tasks = tuple(
            Task(
                name=t.name,
                wcet=wcets.get(t.name, t.wcet),
                node=t.node,
                policy=t.policy,
                priority=t.priority,
                release=t.release,
                deadline=t.deadline,
            )
            for t in g.tasks
        )
        messages = tuple(
            Message(
                name=m.name,
                size=sizes.get(m.name, m.size),
                sender=m.sender,
                receivers=m.receivers,
                kind=m.kind,
                priority=m.priority,
                deadline=m.deadline,
            )
            for m in g.messages
        )
        out.append(
            TaskGraph(
                name=g.name,
                period=g.period,
                deadline=g.deadline,
                tasks=tasks,
                messages=messages,
                precedences=g.precedences,
            )
        )
    return out
