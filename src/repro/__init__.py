"""repro -- reproduction of "Bus Access Optimisation for FlexRay-based
Distributed Embedded Systems" (Pop, Pop, Eles, Peng -- DATE 2007).

Public API highlights
---------------------
Model:       :class:`Task`, :class:`Message`, :class:`TaskGraph`,
             :class:`Application`, :class:`System`
Bus:         :class:`FlexRayConfig`
Analysis:    :func:`analyse_system`
Optimisers:  :func:`optimise_bbc`, :func:`optimise_obc`, :func:`optimise_sa`
Simulation:  :func:`simulate`
Workloads:   :func:`generate_system`, :func:`cruise_controller`
"""

from repro.analysis.holistic import AnalysisOptions, AnalysisResult, analyse_system
from repro.analysis.sensitivity import bottlenecks, bus_load, slack_report
from repro.casestudy.cruise_control import cruise_controller
from repro.core.bbc import basic_configuration, optimise_bbc
from repro.core.ga import GAOptions, optimise_ga
from repro.core.config import FlexRayConfig
from repro.core.cost import CostBreakdown, cost_function
from repro.core.obc import optimise_obc
from repro.core.result import OptimisationResult, SearchPoint
from repro.core.sa import SAOptions, optimise_sa
from repro.core.search import BusOptimisationOptions
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ModelError,
    OptimisationError,
    ReproError,
    SchedulingError,
    SerializationError,
    SimulationError,
    ValidationError,
)
from repro.flexray.simulator import SimulationOptions, SimulationResult, simulate
from repro.io.serialization import load_system, save_system
from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task
from repro.model.validation import validate_system
from repro.synth.suite import paper_suite
from repro.synth.taskgraph_gen import GeneratorConfig, generate_system
from repro.viz.gantt import render_bus_trace, render_cycle, render_schedule

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisOptions",
    "AnalysisResult",
    "Application",
    "BusOptimisationOptions",
    "ConfigurationError",
    "CostBreakdown",
    "FlexRayConfig",
    "GAOptions",
    "GeneratorConfig",
    "Message",
    "MessageKind",
    "ModelError",
    "OptimisationError",
    "OptimisationResult",
    "ReproError",
    "SAOptions",
    "SchedulingError",
    "SchedulingPolicy",
    "SearchPoint",
    "SerializationError",
    "SimulationError",
    "SimulationOptions",
    "SimulationResult",
    "System",
    "Task",
    "TaskGraph",
    "ValidationError",
    "analyse_system",
    "basic_configuration",
    "bottlenecks",
    "bus_load",
    "cost_function",
    "cruise_controller",
    "generate_system",
    "load_system",
    "optimise_bbc",
    "optimise_ga",
    "optimise_obc",
    "optimise_sa",
    "paper_suite",
    "render_bus_trace",
    "render_cycle",
    "render_schedule",
    "save_system",
    "simulate",
    "slack_report",
    "validate_system",
    "__version__",
]
