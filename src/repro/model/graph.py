"""Task graphs.

An application is modelled as a set of directed acyclic graphs (Section 4
of the paper).  Vertices are tasks and messages; an inter-node
communication is represented by a :class:`~repro.model.message.Message`
vertex inserted on the arc between sender and receiver.  Intra-node
communication is a plain precedence edge (its cost is part of the sender's
WCET, as in the paper).

All tasks and messages of a graph share the graph's period; a deadline is
imposed on the whole graph and, optionally, on individual activities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import ModelError, ValidationError
from repro.model.message import Message
from repro.model.task import Task
from repro.model.times import check_time


@dataclass(frozen=True)
class TaskGraph:
    """A periodic DAG of tasks and messages.

    Parameters
    ----------
    name:
        Unique graph name within the application.
    period:
        Activation period (> 0) shared by every activity in the graph.
    deadline:
        Relative end-to-end deadline (> 0) applied to every activity that
        has no individual deadline.
    tasks / messages:
        The activities.  Message sender/receivers must reference tasks of
        this graph mapped to *different* nodes.
    precedences:
        Extra task-to-task edges for same-node data dependencies.
    """

    name: str
    period: int
    deadline: int
    tasks: Tuple[Task, ...]
    messages: Tuple[Message, ...] = ()
    precedences: Tuple[Tuple[str, str], ...] = ()

    # Derived adjacency, built once in __post_init__ (object.__setattr__
    # because the dataclass is frozen).
    _succ: Mapping[str, Tuple[str, ...]] = field(
        default=None, repr=False, compare=False
    )
    _pred: Mapping[str, Tuple[str, ...]] = field(
        default=None, repr=False, compare=False
    )
    _topo: Tuple[str, ...] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("graph name must be non-empty")
        check_time(self.period, f"graph {self.name!r} period", allow_zero=False)
        check_time(self.deadline, f"graph {self.name!r} deadline", allow_zero=False)
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "messages", tuple(self.messages))
        object.__setattr__(
            self, "precedences", tuple((str(a), str(b)) for a, b in self.precedences)
        )
        if not self.tasks:
            raise ValidationError(f"graph {self.name!r} must contain >= 1 task")

        task_by_name = {}
        for t in self.tasks:
            if t.name in task_by_name:
                raise ValidationError(
                    f"graph {self.name!r}: duplicate task name {t.name!r}"
                )
            task_by_name[t.name] = t
        msg_by_name = {}
        for m in self.messages:
            if m.name in msg_by_name or m.name in task_by_name:
                raise ValidationError(
                    f"graph {self.name!r}: duplicate activity name {m.name!r}"
                )
            msg_by_name[m.name] = m

        succ: Dict[str, List[str]] = {n: [] for n in (*task_by_name, *msg_by_name)}
        pred: Dict[str, List[str]] = {n: [] for n in succ}

        def add_edge(a: str, b: str) -> None:
            succ[a].append(b)
            pred[b].append(a)

        for m in self.messages:
            if m.sender not in task_by_name:
                raise ValidationError(
                    f"graph {self.name!r}: message {m.name!r} sender "
                    f"{m.sender!r} is not a task of this graph"
                )
            sender = task_by_name[m.sender]
            add_edge(m.sender, m.name)
            for r in m.receivers:
                if r not in task_by_name:
                    raise ValidationError(
                        f"graph {self.name!r}: message {m.name!r} receiver "
                        f"{r!r} is not a task of this graph"
                    )
                if task_by_name[r].node == sender.node:
                    raise ValidationError(
                        f"graph {self.name!r}: message {m.name!r} connects tasks "
                        f"on the same node {sender.node!r}; same-node communication "
                        "is part of the WCET and must be a precedence edge"
                    )
                add_edge(m.name, r)

        for a, b in self.precedences:
            if a not in task_by_name or b not in task_by_name:
                raise ValidationError(
                    f"graph {self.name!r}: precedence ({a!r}, {b!r}) references "
                    "a non-task or unknown activity"
                )
            if a == b:
                raise ValidationError(
                    f"graph {self.name!r}: self-loop precedence on {a!r}"
                )
            add_edge(a, b)

        topo = _topological_order(succ, pred, self.name)
        object.__setattr__(self, "_succ", {k: tuple(v) for k, v in succ.items()})
        object.__setattr__(self, "_pred", {k: tuple(v) for k, v in pred.items()})
        object.__setattr__(self, "_topo", tuple(topo))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def task(self, name: str) -> Task:
        """Return the task called *name* (raises :class:`ModelError` if absent)."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise ModelError(f"graph {self.name!r} has no task {name!r}")

    def message(self, name: str) -> Message:
        """Return the message called *name* (raises :class:`ModelError` if absent)."""
        for m in self.messages:
            if m.name == name:
                return m
        raise ModelError(f"graph {self.name!r} has no message {name!r}")

    def successors(self, name: str) -> Tuple[str, ...]:
        """Names of direct successors of activity *name*."""
        try:
            return self._succ[name]
        except KeyError:
            raise ModelError(f"graph {self.name!r} has no activity {name!r}") from None

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Names of direct predecessors of activity *name*."""
        try:
            return self._pred[name]
        except KeyError:
            raise ModelError(f"graph {self.name!r} has no activity {name!r}") from None

    def topological_order(self) -> Tuple[str, ...]:
        """All activity names in one valid topological order."""
        return self._topo

    def sources(self) -> Tuple[str, ...]:
        """Activities with no predecessors."""
        return tuple(n for n in self._topo if not self._pred[n])

    def sinks(self) -> Tuple[str, ...]:
        """Activities with no successors."""
        return tuple(n for n in self._topo if not self._succ[n])

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def activity_cost(self, name: str, message_cost: Mapping[str, int] = None) -> int:
        """Execution/transmission cost of one activity.

        Message costs depend on the bus speed, so callers may pass a
        precomputed ``message name -> C_m`` mapping; without one, the raw
        byte size is used (adequate for *relative* critical-path metrics).
        """
        for t in self.tasks:
            if t.name == name:
                return t.wcet
        m = self.message(name)
        if message_cost is not None:
            return message_cost[m.name]
        return m.size

    def longest_path_to(self, name: str, message_cost: Mapping[str, int] = None) -> int:
        """Length of the longest path from any source up to and including *name*.

        This is LP_m of Eq. (4) when *name* is a message.
        """
        self.successors(name)  # existence check
        dist: Dict[str, int] = {}
        for n in self._topo:
            cost = self.activity_cost(n, message_cost)
            best_pred = max((dist[p] for p in self._pred[n]), default=0)
            dist[n] = best_pred + cost
            if n == name:
                return dist[n]
        raise ModelError(f"activity {name!r} not reached in topological order")

    def longest_path_from(
        self, name: str, message_cost: Mapping[str, int] = None
    ) -> int:
        """Length of the longest path starting at *name* (inclusive) to any sink.

        Used as the (modified) critical-path priority of the list scheduler.
        """
        self.successors(name)  # existence check
        dist: Dict[str, int] = {}
        for n in reversed(self._topo):
            cost = self.activity_cost(n, message_cost)
            best_succ = max((dist[s] for s in self._succ[n]), default=0)
            dist[n] = best_succ + cost
        return dist[name]

    def activities(self) -> Iterator[str]:
        """Iterate over all activity names (tasks then messages, topo order)."""
        return iter(self._topo)


def _topological_order(
    succ: Mapping[str, Sequence[str]],
    pred: Mapping[str, Sequence[str]],
    graph_name: str,
) -> List[str]:
    """Kahn's algorithm; raises :class:`ValidationError` on cycles.

    Ties are broken by name so the order is deterministic across runs.
    """
    in_deg = {n: len(ps) for n, ps in pred.items()}
    ready = sorted(n for n, d in in_deg.items() if d == 0)
    order: List[str] = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        inserted = False
        for s in succ[n]:
            in_deg[s] -= 1
            if in_deg[s] == 0:
                ready.append(s)
                inserted = True
        if inserted:
            ready.sort()
    if len(order) != len(in_deg):
        raise ValidationError(f"graph {graph_name!r} contains a cycle")
    return order
