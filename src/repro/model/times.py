"""Time base and small arithmetic helpers.

All times in this library are **integers in macroticks (MT)**.  At the
nominal FlexRay bit rate of 10 Mbit/s one macrotick corresponds to 1 us
(gdBit = 0.1 us, so the FlexRay 2-byte payload granularity equals
20 * gdBit = 2 MT).  Integer time keeps schedule tables, the bus timeline
and the discrete-event simulator exact; no floating-point drift can make
two analyses disagree.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ValidationError

#: Type alias used throughout the code base for readability.
TimeMT = int

#: Number of macroticks per microsecond at the nominal 10 Mbit/s setup.
MT_PER_US = 1

#: gdBit expressed in macroticks (0.1 us = 0.1 MT); only used for the
#: documented conversion of the "20 * gdBit" payload step, which is 2 MT.
PAYLOAD_STEP_MT = 2


def check_time(value: int, name: str = "time", allow_zero: bool = True) -> int:
    """Validate that *value* is a usable time quantity and return it.

    Raises :class:`ValidationError` for non-integers and negatives, and for
    zero when ``allow_zero`` is false.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an int (macroticks), got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    if value == 0 and not allow_zero:
        raise ValidationError(f"{name} must be positive, got 0")
    return value


def lcm(values: Iterable[int]) -> int:
    """Least common multiple of a non-empty iterable of positive ints."""
    result = 1
    seen = False
    for v in values:
        seen = True
        check_time(v, "lcm operand", allow_zero=False)
        result = result // math.gcd(result, v) * v
    if not seen:
        raise ValidationError("lcm() of an empty iterable is undefined")
    return result


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative numerator, positive denominator."""
    if denominator <= 0:
        raise ValidationError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValidationError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def bytes_to_mt(size_bytes: int, bits_per_mt: int = 10) -> int:
    """Transmission time of *size_bytes* on the bus, rounded up to whole MT.

    ``bits_per_mt`` is the number of bits transferred per macrotick; the
    default of 10 corresponds to 10 Mbit/s with 1 MT = 1 us.
    """
    check_time(size_bytes, "size_bytes", allow_zero=False)
    check_time(bits_per_mt, "bits_per_mt", allow_zero=False)
    return ceil_div(size_bytes * 8, bits_per_mt)
