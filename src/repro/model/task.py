"""Task model.

A task is a node of an application task graph (Section 4 of the paper).
It is mapped to a processing node, has a known worst-case execution time,
and is handled by one of the two kernel schedulers:

* ``SCS`` -- static cyclic scheduling: non-preemptable, start times fixed
  off-line in the schedule table;
* ``FPS`` -- fixed-priority scheduling: preemptive, runs in the slack of
  the static schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ValidationError
from repro.model.times import check_time


class SchedulingPolicy(enum.Enum):
    """Kernel scheduler responsible for a task."""

    SCS = "SCS"
    FPS = "FPS"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Priorities are integers where a **smaller value means higher priority**,
#: mirroring FlexRay FrameIDs (FrameID 1 is served first in the DYN segment).
Priority = int


@dataclass(frozen=True)
class Task:
    """A computational activity mapped onto one processing node.

    Parameters
    ----------
    name:
        Globally unique identifier within the application.
    wcet:
        Worst-case execution time in macroticks (> 0).
    node:
        Name of the processing node the task is mapped to.
    policy:
        :class:`SchedulingPolicy` -- SCS (time-triggered) or FPS
        (event-triggered).
    priority:
        Fixed priority for FPS tasks; smaller value = higher priority.
        Ignored for SCS tasks.
    release:
        Earliest activation offset relative to the start of the task-graph
        period (>= 0).
    deadline:
        Optional individual relative deadline.  When ``None`` the enclosing
        task graph's deadline applies.
    """

    name: str
    wcet: int
    node: str
    policy: SchedulingPolicy = SchedulingPolicy.SCS
    priority: Priority = 0
    release: int = 0
    deadline: Optional[int] = None
    bcet: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("task name must be a non-empty string")
        if not self.node:
            raise ValidationError(f"task {self.name!r}: node must be non-empty")
        check_time(self.wcet, f"task {self.name!r} wcet", allow_zero=False)
        check_time(self.release, f"task {self.name!r} release")
        check_time(self.bcet, f"task {self.name!r} bcet")
        if self.bcet > self.wcet:
            raise ValidationError(
                f"task {self.name!r}: bcet {self.bcet} exceeds wcet {self.wcet}"
            )
        if self.deadline is not None:
            check_time(self.deadline, f"task {self.name!r} deadline", allow_zero=False)
        if not isinstance(self.policy, SchedulingPolicy):
            raise ValidationError(
                f"task {self.name!r}: policy must be a SchedulingPolicy"
            )

    @property
    def is_scs(self) -> bool:
        """True when the task is statically (time-triggered) scheduled."""
        return self.policy is SchedulingPolicy.SCS

    @property
    def is_fps(self) -> bool:
        """True when the task is fixed-priority (event-triggered) scheduled."""
        return self.policy is SchedulingPolicy.FPS
