"""Application model: tasks, messages, task graphs, systems, jobs."""

from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.jobs import Job, expand_jobs, iter_fps_tasks, job_count
from repro.model.message import Message, MessageKind
from repro.model.system import System
from repro.model.task import SchedulingPolicy, Task
from repro.model.times import TimeMT, bytes_to_mt, ceil_div, check_time, lcm
from repro.model.validation import validate_system

__all__ = [
    "Application",
    "Job",
    "Message",
    "MessageKind",
    "SchedulingPolicy",
    "System",
    "Task",
    "TaskGraph",
    "TimeMT",
    "bytes_to_mt",
    "ceil_div",
    "check_time",
    "expand_jobs",
    "iter_fps_tasks",
    "job_count",
    "lcm",
    "validate_system",
]
