"""System = processing nodes + application (Section 2 of the paper).

The bus configuration itself (slot sizes, FrameIDs, ...) is *not* part of
the system: it is the design variable the optimisers search over, modelled
by :class:`repro.core.config.FlexRayConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ModelError, ValidationError
from repro.model.application import Application
from repro.model.message import Message
from repro.model.task import Task


@dataclass(frozen=True)
class System:
    """A distributed architecture: named nodes connected by one FlexRay bus.

    Parameters
    ----------
    nodes:
        Names of the processing nodes (ECUs).  Every task of the
        application must be mapped onto one of them.
    application:
        The :class:`~repro.model.application.Application` running on the
        architecture.
    """

    nodes: Tuple[str, ...]
    application: Application

    _tasks_by_node: Mapping[str, Tuple[Task, ...]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValidationError("system needs >= 1 node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValidationError("node names must be unique")
        by_node: Dict[str, list] = {n: [] for n in self.nodes}
        for t in self.application.tasks():
            if t.node not in by_node:
                raise ValidationError(
                    f"task {t.name!r} is mapped to unknown node {t.node!r}"
                )
            by_node[t.node].append(t)
        object.__setattr__(
            self, "_tasks_by_node", {n: tuple(ts) for n, ts in by_node.items()}
        )

    # ------------------------------------------------------------------
    def tasks_on(self, node: str) -> Tuple[Task, ...]:
        """All tasks mapped to *node*."""
        try:
            return self._tasks_by_node[node]
        except KeyError:
            raise ModelError(f"system has no node {node!r}") from None

    def sender_node(self, message: Message) -> str:
        """Node that transmits *message*."""
        return self.application.graph_of(message.name).task(message.sender).node

    def st_sender_nodes(self) -> Tuple[str, ...]:
        """Nodes that transmit at least one ST message (``nodesST``), in node order."""
        senders = {self.sender_node(m) for m in self.application.st_messages()}
        return tuple(n for n in self.nodes if n in senders)

    def dyn_sender_nodes(self) -> Tuple[str, ...]:
        """Nodes that transmit at least one DYN message, in node order."""
        senders = {self.sender_node(m) for m in self.application.dyn_messages()}
        return tuple(n for n in self.nodes if n in senders)

    def messages_sent_by(self, node: str) -> Iterator[Message]:
        """All messages whose sender task runs on *node*."""
        if node not in self._tasks_by_node:
            raise ModelError(f"system has no node {node!r}")
        for m in self.application.messages():
            if self.sender_node(m) == node:
                yield m

    def node_utilisation(self, node: str) -> float:
        """CPU utilisation of *node*: sum of wcet/period over its tasks."""
        return sum(
            t.wcet / self.application.period_of(t.name) for t in self.tasks_on(node)
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        app = self.application
        n_tasks = sum(1 for _ in app.tasks())
        n_msgs = sum(1 for _ in app.messages())
        n_st = sum(1 for _ in app.st_messages())
        return (
            f"System({len(self.nodes)} nodes, {len(app.graphs)} graphs, "
            f"{n_tasks} tasks, {n_msgs} messages [{n_st} ST / {n_msgs - n_st} DYN], "
            f"hyperperiod {app.hyperperiod})"
        )
