"""Hyper-period job expansion.

The static scheduler places *job instances*: if graph G has period T and
the application hyper-period is H, every SCS task / ST message of G
occurs H/T times, instance k released at k*T (+ the task's own release
offset) with absolute deadline k*T + D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.model.application import Application
from repro.model.graph import TaskGraph
from repro.model.message import Message
from repro.model.task import Task


@dataclass(frozen=True)
class Job:
    """One periodic instance of a task or message.

    Attributes
    ----------
    activity:
        The underlying :class:`Task` or :class:`Message`.
    graph:
        The task graph the activity belongs to.
    instance:
        Instance index k within the hyper-period (0-based).
    release:
        Absolute earliest start time of this instance (macroticks from the
        start of the hyper-period).
    abs_deadline:
        Absolute deadline of this instance.
    """

    activity: Union[Task, Message]
    graph: TaskGraph
    instance: int
    release: int
    abs_deadline: int

    @property
    def name(self) -> str:
        """Name of the underlying activity."""
        return self.activity.name

    @property
    def key(self) -> str:
        """Unique job identifier ``name#instance``."""
        return f"{self.activity.name}#{self.instance}"

    @property
    def is_task(self) -> bool:
        """True when the job is a task instance (else a message instance)."""
        return isinstance(self.activity, Task)


def expand_jobs(
    application: Application,
    scs_only: bool = True,
    horizon: int = None,
) -> List[Job]:
    """All job instances over *horizon* (default: the hyper-period).

    With ``scs_only`` (the default) only SCS tasks and ST messages are
    expanded -- exactly the activities placed in the static schedule
    table.  FPS tasks and DYN messages are analysed with response-time
    analysis instead and never appear in the table.
    """
    if horizon is None:
        horizon = application.hyperperiod
    jobs: List[Job] = []
    for g in application.graphs:
        count = max(1, -(-horizon // g.period))  # ceil; >=1 even for tiny horizons
        for t in g.tasks:
            if scs_only and not t.is_scs:
                continue
            jobs.extend(_instances(t, g, count, t.release, t.deadline))
        for m in g.messages:
            if scs_only and not m.is_static:
                continue
            jobs.extend(_instances(m, g, count, 0, m.deadline))
    return jobs


def _instances(activity, graph: TaskGraph, count: int, release_offset: int, deadline):
    eff_deadline = deadline if deadline is not None else graph.deadline
    out = []
    for k in range(count):
        base = k * graph.period
        out.append(
            Job(
                activity=activity,
                graph=graph,
                instance=k,
                release=base + release_offset,
                abs_deadline=base + eff_deadline,
            )
        )
    return out


def job_count(application: Application, horizon: int = None) -> int:
    """Number of SCS/ST jobs the static scheduler will place."""
    return len(expand_jobs(application, scs_only=True, horizon=horizon))


def iter_fps_tasks(application: Application) -> Iterator[Task]:
    """All FPS tasks of the application."""
    return (t for t in application.tasks() if t.is_fps)
