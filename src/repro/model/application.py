"""Application = set of task graphs (Section 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ModelError, ValidationError
from repro.model.graph import TaskGraph
from repro.model.message import Message
from repro.model.task import Task
from repro.model.times import lcm


@dataclass(frozen=True)
class Application:
    """A set of task graphs with globally unique activity names.

    The application's **hyper-period** is the LCM of all graph periods;
    graphs of different periods are implicitly unrolled over it by the
    scheduler (the paper merges communicating graphs over the LCM --
    we keep graphs separate and unroll instances instead, which is
    equivalent for analysis purposes).
    """

    name: str
    graphs: Tuple[TaskGraph, ...]

    _task_index: Mapping[str, Tuple[TaskGraph, Task]] = field(
        default=None, repr=False, compare=False
    )
    _msg_index: Mapping[str, Tuple[TaskGraph, Message]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("application name must be non-empty")
        object.__setattr__(self, "graphs", tuple(self.graphs))
        if not self.graphs:
            raise ValidationError(f"application {self.name!r} needs >= 1 task graph")
        graph_names = set()
        task_index: Dict[str, Tuple[TaskGraph, Task]] = {}
        msg_index: Dict[str, Tuple[TaskGraph, Message]] = {}
        for g in self.graphs:
            if g.name in graph_names:
                raise ValidationError(
                    f"application {self.name!r}: duplicate graph name {g.name!r}"
                )
            graph_names.add(g.name)
            for t in g.tasks:
                if t.name in task_index or t.name in msg_index:
                    raise ValidationError(
                        f"application {self.name!r}: duplicate activity name "
                        f"{t.name!r} (activity names must be globally unique)"
                    )
                task_index[t.name] = (g, t)
            for m in g.messages:
                if m.name in task_index or m.name in msg_index:
                    raise ValidationError(
                        f"application {self.name!r}: duplicate activity name "
                        f"{m.name!r} (activity names must be globally unique)"
                    )
                msg_index[m.name] = (g, m)
        object.__setattr__(self, "_task_index", task_index)
        object.__setattr__(self, "_msg_index", msg_index)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def hyperperiod(self) -> int:
        """LCM of all graph periods."""
        return lcm(g.period for g in self.graphs)

    def graph(self, name: str) -> TaskGraph:
        """Graph called *name*."""
        for g in self.graphs:
            if g.name == name:
                return g
        raise ModelError(f"application {self.name!r} has no graph {name!r}")

    def task(self, name: str) -> Task:
        """Task called *name* (searching all graphs)."""
        try:
            return self._task_index[name][1]
        except KeyError:
            raise ModelError(
                f"application {self.name!r} has no task {name!r}"
            ) from None

    def message(self, name: str) -> Message:
        """Message called *name* (searching all graphs)."""
        try:
            return self._msg_index[name][1]
        except KeyError:
            raise ModelError(
                f"application {self.name!r} has no message {name!r}"
            ) from None

    def graph_of(self, activity_name: str) -> TaskGraph:
        """The graph that contains the task or message *activity_name*."""
        if activity_name in self._task_index:
            return self._task_index[activity_name][0]
        if activity_name in self._msg_index:
            return self._msg_index[activity_name][0]
        raise ModelError(
            f"application {self.name!r} has no activity {activity_name!r}"
        )

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def tasks(self) -> Iterator[Task]:
        """All tasks of all graphs."""
        for g in self.graphs:
            yield from g.tasks

    def messages(self) -> Iterator[Message]:
        """All messages of all graphs."""
        for g in self.graphs:
            yield from g.messages

    def st_messages(self) -> Iterator[Message]:
        """All static-segment messages."""
        return (m for m in self.messages() if m.is_static)

    def dyn_messages(self) -> Iterator[Message]:
        """All dynamic-segment messages."""
        return (m for m in self.messages() if m.is_dynamic)

    def period_of(self, activity_name: str) -> int:
        """Period of the graph containing *activity_name*."""
        return self.graph_of(activity_name).period

    def deadline_of(self, activity_name: str) -> int:
        """Effective relative deadline of an activity.

        The individual deadline when present, otherwise the graph deadline.
        """
        g = self.graph_of(activity_name)
        if activity_name in self._task_index:
            t = self._task_index[activity_name][1]
            return t.deadline if t.deadline is not None else g.deadline
        m = self._msg_index[activity_name][1]
        return m.deadline if m.deadline is not None else g.deadline

    def sender_node(self, message_name: str) -> str:
        """Node that transmits *message_name* (the sender task's node)."""
        g, m = self._msg_index_entry(message_name)
        return g.task(m.sender).node

    def _msg_index_entry(self, message_name: str):
        try:
            return self._msg_index[message_name]
        except KeyError:
            raise ModelError(
                f"application {self.name!r} has no message {message_name!r}"
            ) from None
