"""Message model.

Messages are exchanged between tasks mapped on different nodes and travel
over the FlexRay bus.  Each message is either **static (ST)** -- sent in a
statically scheduled slot of the static segment -- or **dynamic (DYN)** --
sent in the dynamic segment, arbitrated by FrameID and, among local
messages sharing a FrameID, by priority.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.model.task import Priority
from repro.model.times import check_time


class MessageKind(enum.Enum):
    """Transmission segment a message is assigned to."""

    ST = "ST"
    DYN = "DYN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Message:
    """A communication activity between tasks on different nodes.

    Parameters
    ----------
    name:
        Globally unique identifier within the application.
    size:
        Payload size in bytes (> 0); converted to a transmission time C_m
        by the bus configuration (Eq. (1) of the paper).
    sender:
        Name of the producing task.
    receivers:
        Names of the consuming tasks (at least one).
    kind:
        :class:`MessageKind` -- ST (static segment) or DYN (dynamic
        segment).
    priority:
        Relative priority among DYN messages of the same node sharing a
        FrameID; smaller value = higher priority.  Ignored for ST messages.
    deadline:
        Optional individual relative deadline; the graph deadline applies
        when ``None``.
    """

    name: str
    size: int
    sender: str
    receivers: Tuple[str, ...]
    kind: MessageKind = MessageKind.DYN
    priority: Priority = 0
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("message name must be a non-empty string")
        check_time(self.size, f"message {self.name!r} size", allow_zero=False)
        if not self.sender:
            raise ValidationError(f"message {self.name!r}: sender must be non-empty")
        if isinstance(self.receivers, str):
            raise ValidationError(
                f"message {self.name!r}: receivers must be a tuple of task names, "
                "not a single string"
            )
        object.__setattr__(self, "receivers", tuple(self.receivers))
        if not self.receivers:
            raise ValidationError(f"message {self.name!r}: needs >= 1 receiver")
        for r in self.receivers:
            if not r:
                raise ValidationError(
                    f"message {self.name!r}: receiver names must be non-empty"
                )
        if self.sender in self.receivers:
            raise ValidationError(
                f"message {self.name!r}: sender {self.sender!r} cannot also receive it"
            )
        if not isinstance(self.kind, MessageKind):
            raise ValidationError(f"message {self.name!r}: kind must be a MessageKind")
        if self.deadline is not None:
            check_time(
                self.deadline, f"message {self.name!r} deadline", allow_zero=False
            )

    @property
    def is_static(self) -> bool:
        """True for messages sent in the static (TDMA) segment."""
        return self.kind is MessageKind.ST

    @property
    def is_dynamic(self) -> bool:
        """True for messages sent in the dynamic (FTDMA) segment."""
        return self.kind is MessageKind.DYN
