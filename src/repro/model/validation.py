"""Cross-cutting semantic checks on a complete system.

The dataclass constructors already enforce *structural* validity (names
resolve, graphs are acyclic, ...).  :func:`validate_system` performs the
*semantic* checks that involve several objects at once and returns
human-readable diagnostics instead of raising, so design-space explorers
can log them and move on.
"""

from __future__ import annotations

from typing import List

from repro.model.system import System
from repro.model.task import SchedulingPolicy


def validate_system(system: System, strict: bool = False) -> List[str]:
    """Return a list of diagnostic strings; empty means no findings.

    Checks performed:

    * per-node CPU utilisation must be < 1 (``error``),
    * FPS tasks on the same node should have distinct priorities
      (``warning`` -- ties are resolved deterministically by name, but the
      analysis is then pessimistic for both),
    * DYN messages from the same node sharing a priority (``warning``),
    * graphs whose deadline exceeds their period (``info`` -- supported,
      but the analysis assumes at most one pending instance per activity
      and becomes pessimistic when R > T),
    * nodes with no tasks (``info``).

    With ``strict=True`` any ``error`` diagnostic raises
    :class:`~repro.errors.ValidationError`.
    """
    from repro.errors import ValidationError

    findings: List[str] = []
    app = system.application

    for node in system.nodes:
        util = system.node_utilisation(node)
        if util >= 1.0:
            findings.append(
                f"error: node {node!r} is over-utilised ({util:.2f} >= 1.0)"
            )
        if not system.tasks_on(node):
            findings.append(f"info: node {node!r} has no tasks mapped to it")

    for node in system.nodes:
        fps = [t for t in system.tasks_on(node) if t.policy is SchedulingPolicy.FPS]
        seen = {}
        for t in sorted(fps, key=lambda t: t.name):
            if t.priority in seen:
                findings.append(
                    f"warning: FPS tasks {seen[t.priority]!r} and {t.name!r} on node "
                    f"{node!r} share priority {t.priority}"
                )
            else:
                seen[t.priority] = t.name

    for node in system.nodes:
        dyn = [m for m in app.dyn_messages() if system.sender_node(m) == node]
        seen = {}
        for m in sorted(dyn, key=lambda m: m.name):
            if m.priority in seen:
                findings.append(
                    f"warning: DYN messages {seen[m.priority]!r} and {m.name!r} from "
                    f"node {node!r} share priority {m.priority}"
                )
            else:
                seen[m.priority] = m.name

    for g in app.graphs:
        if g.deadline > g.period:
            findings.append(
                f"info: graph {g.name!r} deadline {g.deadline} exceeds its period "
                f"{g.period}; the analysis assumes one pending instance at a time"
            )

    if strict and any(f.startswith("error") for f in findings):
        raise ValidationError("; ".join(f for f in findings if f.startswith("error")))
    return findings
