"""Strategy registry and the common options base of the search runtime.

The registry maps stable strategy names -- ``"bbc"``, ``"obc-cf"``,
``"obc-ee"``, ``"sa"``, ``"ga"`` -- to :class:`StrategySpec` records, so
the CLI (``python -m repro optimise --algorithm <name>``), the
benchmarks, the Fig. 9 shard workers and the campaign layer
(:mod:`repro.core.campaign`) all dispatch by name instead of hard-wired
imports.  Third-party strategies plug in through
:func:`register_strategy` and immediately work everywhere a name is
accepted.

Built-in specs are resolved lazily (module path + attribute, like the
package's PEP 562 exports) so this module never imports the strategy
modules at import time -- they import *it* for the
:class:`StrategyOptions` base.

The one-call entry point is :func:`optimise`::

    from repro.core.strategies import optimise
    result = optimise(system, "obc-cf")
    result = optimise(system, "sa", SAOptions(iterations=3000, seed=7))
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from importlib import import_module
from typing import Callable, Dict, Optional, Tuple, Type

from repro.core.result import OptimisationResult
from repro.core.search import BusOptimisationOptions
from repro.errors import OptimisationError
from repro.model.system import System


@dataclass(frozen=True)
class StrategyOptions:
    """Common base of every strategy's option record.

    Carries the evaluator-level knobs (``bus``) and the run budgets the
    :class:`~repro.core.runtime.SearchDriver` enforces at batch
    boundaries.  Strategy-specific knobs live in subclasses
    (:class:`~repro.core.sa.SAOptions`,
    :class:`~repro.core.ga.GAOptions`); strategies without extra knobs
    (BBC, OBC) take this base directly.
    """

    #: Evaluator / analysis knobs shared by all strategies; ``None``
    #: means the :class:`~repro.core.search.BusOptimisationOptions`
    #: defaults.
    bus: Optional[BusOptimisationOptions] = None
    #: Wall-clock budget of one driver run, enforced at batch
    #: boundaries (``None`` = unbounded).  SA/GA additionally keep
    #: their legacy in-loop checks, so their fixed-seed traces are
    #: unchanged; composite runners that merge several driver runs
    #: (SA's restart chains) apply the budgets *per run* and propagate
    #: ``stop_reason`` -- see :class:`~repro.core.sa.SAOptions`.
    max_seconds: Optional[float] = None
    #: Exact-analysis budget per driver run, enforced at batch
    #: boundaries -- the last batch may overshoot by its own size
    #: (``None`` = unbounded).
    max_evaluations: Optional[int] = None

    def bus_options(self) -> BusOptimisationOptions:
        """The effective evaluator options (defaults when unset)."""
        return self.bus if self.bus is not None else BusOptimisationOptions()

    def with_bus(self, bus: Optional[BusOptimisationOptions]):
        """A copy with the evaluator options replaced (when given)."""
        return self if bus is None else replace(self, bus=bus)


@dataclass(frozen=True)
class StrategySpec:
    """One registry entry.

    ``runner(system, options)`` executes the strategy and returns the
    :class:`~repro.core.result.OptimisationResult`; the default runners
    build a strategy instance and hand it to
    :class:`~repro.core.runtime.SearchDriver`, but a spec may supply
    composite behaviour (SA's restart chains merge several driver runs).
    """

    name: str
    summary: str
    options_type: Type[StrategyOptions]
    runner: Callable[[System, StrategyOptions], OptimisationResult]


#: Built-in strategies, resolved lazily: name -> (module, spec attribute).
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "bbc": ("repro.core.bbc", "STRATEGY_SPEC"),
    "obc-cf": ("repro.core.obc", "STRATEGY_SPEC_CF"),
    "obc-ee": ("repro.core.obc", "STRATEGY_SPEC_EE"),
    "sa": ("repro.core.sa", "STRATEGY_SPEC"),
    "ga": ("repro.core.ga", "STRATEGY_SPEC"),
}

_REGISTERED: Dict[str, StrategySpec] = {}


def register_strategy(spec: StrategySpec) -> None:
    """Register (or override) a strategy under ``spec.name``."""
    _REGISTERED[spec.name] = spec


def available_strategies() -> Tuple[str, ...]:
    """All dispatchable strategy names, sorted."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTERED)))


def get_strategy(name: str) -> StrategySpec:
    """Resolve a strategy name to its spec; unknown names raise."""
    spec = _REGISTERED.get(name)
    if spec is not None:
        return spec
    entry = _BUILTIN.get(name)
    if entry is None:
        raise OptimisationError(
            f"unknown strategy {name!r}; choose from {available_strategies()}"
        )
    module, attribute = entry
    return getattr(import_module(module), attribute)


def optimise(
    system: System,
    strategy: str = "obc-cf",
    options: Optional[StrategyOptions] = None,
) -> OptimisationResult:
    """Run a registered strategy by name through the search runtime.

    ``options`` must be an instance of the strategy's option type (its
    spec's ``options_type``; ``None`` uses the defaults) -- passing,
    say, :class:`~repro.core.ga.GAOptions` to ``"sa"`` is rejected
    rather than silently ignored.
    """
    spec = get_strategy(strategy)
    if options is None:
        options = spec.options_type()
    if not isinstance(options, spec.options_type):
        raise OptimisationError(
            f"strategy {strategy!r} expects {spec.options_type.__name__} "
            f"options, got {type(options).__name__}"
        )
    return spec.runner(system, options)
